#ifndef SURF_UTIL_CSV_H_
#define SURF_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace surf {

/// \brief A parsed CSV table of doubles with named columns.
struct CsvTable {
  std::vector<std::string> header;
  /// Row-major numeric cells; rows[i][j] is column j of row i.
  std::vector<std::vector<double>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return header.size(); }

  /// Index of a named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Extracts one column as a vector. Asserts the column exists.
  std::vector<double> Column(const std::string& name) const;
};

/// \brief Minimal CSV writer used by benches to emit plot-ready series.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : table_{std::move(header), {}} {}

  /// Appends a numeric row; must match the header width.
  void AddRow(std::vector<double> row);

  /// Writes the accumulated table to `path`.
  Status Write(const std::string& path) const;

  const CsvTable& table() const { return table_; }

 private:
  CsvTable table_;
};

/// Reads a numeric CSV (first line = header) from `path`.
StatusOr<CsvTable> ReadCsv(const std::string& path);

/// Writes a numeric CSV to `path`.
Status WriteCsv(const std::string& path, const CsvTable& table);

}  // namespace surf

#endif  // SURF_UTIL_CSV_H_
