#ifndef SURF_ML_GBRT_H_
#define SURF_ML_GBRT_H_

#include <string>
#include <vector>

#include "ml/regressor.h"
#include "ml/tree.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/trace.h"

namespace surf {

/// \brief Hyper-parameters of the gradient-boosted ensemble. Field names
/// follow XGBoost so the grid the paper hypertunes in §V-E
/// (learning_rate ∈ {0.1, 0.01, 0.001}, max_depth ∈ {3,5,7,9},
/// n_estimators ∈ {100, 200, 300}, reg_lambda ∈ {1, 0.1, 0.01, 0.001})
/// maps one-to-one.
struct GbrtParams {
  double learning_rate = 0.1;
  size_t n_estimators = 100;
  size_t max_depth = 6;
  double reg_lambda = 1.0;
  double min_child_weight = 1.0;
  double min_split_gain = 0.0;
  size_t min_samples_leaf = 1;
  /// Row subsampling per tree (stochastic gradient boosting).
  double subsample = 1.0;
  /// Column subsampling per tree.
  double colsample = 1.0;
  /// Histogram resolution.
  size_t max_bins = 256;
  /// Worker threads for histogram building and blocked batch prediction
  /// (0 = hardware concurrency). Results are bit-identical for any value:
  /// parallel work is partitioned per feature / per row block with a
  /// fixed reduction order.
  size_t num_threads = 1;
  /// Derive each larger child's histogram by subtracting the smaller
  /// sibling's from the parent's (off = direct rebuild, the reference
  /// path for equivalence tests).
  bool use_sibling_subtraction = true;
  /// Early stopping: stop when the held-out RMSE has not improved for
  /// `early_stopping_rounds` trees (0 disables; requires
  /// validation_fraction > 0).
  size_t early_stopping_rounds = 0;
  double validation_fraction = 0.0;
  uint64_t seed = 1234;

  /// Short display form (the four §V-E grid axes only).
  std::string ToString() const;

  /// Canonical full serialization of every *model-relevant* field, used by
  /// the serving layer to fingerprint cache keys. Two parameter sets with
  /// equal canonical strings train bit-identical ensembles on the same
  /// data. Runtime-only knobs (`num_threads`, `use_sibling_subtraction`)
  /// are excluded: they never change the fitted model.
  std::string CanonicalString() const;
};

/// \brief Gradient-boosted regression trees with squared-error loss —
/// the from-scratch stand-in for the paper's XGBoost surrogate (§IV).
///
/// Second-order boosting: per round the gradient of ½(pred−y)² is
/// (pred − y) and the hessian is 1, so leaf weights reduce to the familiar
/// -Σresidual / (n + λ). Trees are trained histogram-style on quantile
/// bins; prediction sums raw-threshold tree walks.
class GradientBoostedTrees : public Regressor {
 public:
  GradientBoostedTrees() = default;
  explicit GradientBoostedTrees(GbrtParams params)
      : params_(std::move(params)) {}

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;

  /// Warm-start continuation: appends `extra_trees` boosting rounds fitted
  /// to this model's residuals on (x, y) — the mechanism behind
  /// Surrogate::Update, which folds freshly observed region evaluations
  /// into an already-deployed surrogate without retraining from scratch.
  /// Requires a trained model with matching feature width.
  Status ContinueFit(const FeatureMatrix& x, const std::vector<double>& y,
                     size_t extra_trees);

  double Predict(const std::vector<double>& x) const override;

  /// Copy-free blocked batch prediction: walks every tree over a block of
  /// rows straight out of the column-major matrix (no per-row gather), so
  /// each tree's nodes stay cache-hot across the whole block. Blocks run
  /// in parallel when `num_threads > 1`; output is bit-identical to the
  /// scalar path for any thread count.
  std::vector<double> PredictBatch(const FeatureMatrix& x) const override;

  bool trained() const override { return trained_; }
  std::string Name() const override { return "gbrt"; }

  /// Attaches a cooperative-cancellation token polled between boosting
  /// rounds: Fit/ContinueFit return Cancelled within one round of the
  /// token firing, leaving the model untrained (Fit) or unchanged beyond
  /// the rounds already appended (ContinueFit). The token is runtime-only
  /// state — it never affects a completed fit's results and is excluded
  /// from fingerprints. Reset it (default token) before reusing the model
  /// object for an unrelated fit.
  void SetCancelToken(CancelToken cancel) { cancel_ = std::move(cancel); }

  /// Attaches a trace context recording one "boost_rounds" span per
  /// block of boosting rounds during Fit. Like the cancel token this is
  /// runtime-only, per-request state (tracing never changes the fitted
  /// ensemble); reset it (nullptr) before reusing the model object.
  void SetTrace(TraceContext* trace) { trace_ = trace; }

  const GbrtParams& params() const { return params_; }
  /// Prediction-time parallelism is a runtime choice: retargeting the
  /// thread count never changes results (blocks reduce in a fixed order).
  void set_num_threads(size_t n) { params_.num_threads = n; }
  size_t num_trees() const { return trees_.size(); }
  double base_score() const { return base_score_; }

  /// Training RMSE per boosting round (for learning-curve reports).
  const std::vector<double>& train_curve() const { return train_curve_; }

  /// Model persistence (plain text).
  Status Save(const std::string& path) const;
  static StatusOr<GradientBoostedTrees> Load(const std::string& path);

 private:
  GbrtParams params_;
  CancelToken cancel_;
  TraceContext* trace_ = nullptr;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> train_curve_;
  size_t num_features_ = 0;
  bool trained_ = false;
};

}  // namespace surf

#endif  // SURF_ML_GBRT_H_
