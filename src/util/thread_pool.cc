#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace surf {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    assert(!shutdown_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  assert(pool != nullptr);
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace surf
