#include "sched/tenant_governor.h"

#include <algorithm>
#include <cstdlib>

#include "util/string_util.h"

namespace surf::sched {

const TenantLimits& TenantGovernor::LimitsFor(
    const std::string& tenant) const {
  auto it = options_.per_tenant.find(tenant);
  return it != options_.per_tenant.end() ? it->second
                                         : options_.default_limits;
}

TenantGovernor::Decision TenantGovernor::Admit(const std::string& tenant,
                                               Clock::time_point now) {
  const TenantLimits& limits = LimitsFor(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  if (limits.rate <= 0.0 && limits.max_inflight == 0) {
    // Unlimited tenant: no bucket state at all, so an open fleet of
    // anonymous clients cannot grow the tenant map without bound.
    ++stats_.admitted;
    return Decision::kAdmit;
  }
  Bucket& bucket = buckets_[tenant];
  if (limits.max_inflight > 0 && bucket.inflight >= limits.max_inflight) {
    ++stats_.over_quota;
    return Decision::kOverQuota;
  }
  if (limits.rate > 0.0) {
    const double burst =
        limits.burst > 0.0 ? limits.burst : std::max(limits.rate, 1.0);
    if (!bucket.primed) {
      bucket.tokens = burst;  // first sight: full burst available
      bucket.primed = true;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.refilled_at).count();
      bucket.tokens =
          std::min(burst, bucket.tokens + elapsed * limits.rate);
    }
    bucket.refilled_at = now;
    if (bucket.tokens < 1.0) {
      ++stats_.throttled;
      return Decision::kThrottled;
    }
    bucket.tokens -= 1.0;
  }
  ++bucket.inflight;
  ++stats_.admitted;
  return Decision::kAdmit;
}

void TenantGovernor::Release(const std::string& tenant) {
  const TenantLimits& limits = LimitsFor(tenant);
  if (limits.rate <= 0.0 && limits.max_inflight == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it != buckets_.end() && it->second.inflight > 0) {
    --it->second.inflight;
  }
}

TenantGovernor::Stats TenantGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status TenantGovernor::ParseLimits(const std::string& spec,
                                   TenantLimits* out) {
  const std::vector<std::string> parts = SplitString(spec, ':');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        "tenant limits must be RATE:BURST:QUOTA, got '" + spec + "'");
  }
  double values[3];
  for (int i = 0; i < 3; ++i) {
    const std::string field = TrimString(parts[i]);
    char* end = nullptr;
    values[i] = std::strtod(field.c_str(), &end);
    if (field.empty() || end != field.c_str() + field.size() ||
        values[i] < 0.0) {
      return Status::InvalidArgument(
          "tenant limits field '" + field +
          "' must be a non-negative number (in '" + spec + "')");
    }
  }
  out->rate = values[0];
  out->burst = values[1];
  out->max_inflight = static_cast<size_t>(values[2]);
  return Status::OK();
}

Status TenantGovernor::ParseTenantSpec(const std::string& spec,
                                       Options* options) {
  for (const std::string& entry : SplitString(spec, ',')) {
    const std::string trimmed = TrimString(entry);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "tenant spec entry must be TENANT=RATE:BURST:QUOTA, got '" +
          trimmed + "'");
    }
    TenantLimits limits;
    if (Status parsed = ParseLimits(trimmed.substr(eq + 1), &limits);
        !parsed.ok()) {
      return parsed;
    }
    options->per_tenant[TrimString(trimmed.substr(0, eq))] = limits;
  }
  return Status::OK();
}

}  // namespace surf::sched
