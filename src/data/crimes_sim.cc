#include "data/crimes_sim.h"

#include <algorithm>
#include <cmath>

namespace surf {

CrimesDataset SimulateCrimes(const CrimesSimSpec& spec) {
  Rng rng(spec.seed);
  CrimesDataset out;

  // Hot-spot placement keeps centers away from the border so the Gaussian
  // mass stays mostly inside the unit square (points outside are clamped).
  std::vector<double> weights;
  for (size_t h = 0; h < spec.num_hotspots; ++h) {
    Hotspot hs;
    hs.cx = rng.Uniform(0.12, 0.88);
    hs.cy = rng.Uniform(0.12, 0.88);
    hs.sx = rng.Uniform(spec.min_sigma, spec.max_sigma);
    hs.sy = rng.Uniform(spec.min_sigma, spec.max_sigma);
    hs.weight = rng.Uniform(0.5, 1.5);
    weights.push_back(hs.weight);
    out.hotspots.push_back(hs);
  }

  Dataset data({"x", "y"});
  data.Reserve(spec.num_points);
  std::vector<double> row(2);
  for (size_t n = 0; n < spec.num_points; ++n) {
    if (rng.Bernoulli(spec.hotspot_fraction)) {
      const size_t h = rng.Categorical(weights);
      const Hotspot& hs = out.hotspots[h];
      row[0] = std::clamp(rng.Gaussian(hs.cx, hs.sx), 0.0, 1.0);
      row[1] = std::clamp(rng.Gaussian(hs.cy, hs.sy), 0.0, 1.0);
    } else {
      row[0] = rng.Uniform();
      row[1] = rng.Uniform();
    }
    data.AddRow(row);
  }
  out.data = std::move(data);
  return out;
}

}  // namespace surf
