#ifndef SURF_UTIL_LOGGING_H_
#define SURF_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace surf {

/// \brief Log severities. kQuiet disables all output.
enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kQuiet };

/// Sets the global minimum severity that is emitted (default kWarn so
/// library internals stay silent in tests and benches unless asked).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line to stderr if `level` passes the global threshold.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

/// Stream-style builder behind the SURF_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace surf

/// Usage: SURF_LOG(kInfo) << "trained in " << secs << "s";
#define SURF_LOG(severity) \
  ::surf::internal::LogLine(::surf::LogLevel::severity)

#endif  // SURF_UTIL_LOGGING_H_
