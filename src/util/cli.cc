#include "util/cli.h"

#include <cstdlib>

#include "util/string_util.h"

namespace surf {

CliFlags::CliFlags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliFlags::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliFlags::GetString(const std::string& name,
                                const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

double CliFlags::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

int64_t CliFlags::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool CliFlags::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace surf
