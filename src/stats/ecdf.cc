#include "stats/ecdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace surf {

Ecdf::Ecdf(std::vector<double> samples) {
  samples_.reserve(samples.size());
  for (double s : samples) {
    if (!std::isnan(s)) samples_.push_back(s);
  }
  std::sort(samples_.begin(), samples_.end());
}

double Ecdf::Cdf(double y) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), y);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Ecdf::min() const { return samples_.empty() ? 0.0 : samples_.front(); }
double Ecdf::max() const { return samples_.empty() ? 0.0 : samples_.back(); }

}  // namespace surf
