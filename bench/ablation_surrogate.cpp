// Ablation: surrogate model class — GBRT (the paper's XGBoost stand-in)
// vs ridge regression vs k-NN (footnote 2: "alternative ML models could
// be employed").
//
// Reports test RMSE, mining IoU, training time, and per-prediction
// latency for each class on the same workload.

#include <cstdio>

#include "bench_common.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);

  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 33;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
  WorkloadParams wparams;
  wparams.num_queries = full ? 20000 : 6000;
  const RegionWorkload workload = GenerateWorkload(
      evaluator, ds.data.ComputeBounds(ds.region_cols), wparams);

  std::printf("Ablation — surrogate model class (workload: %zu "
              "evaluations)\n\n",
              workload.size());
  TablePrinter table({"model", "test RMSE", "IoU", "train (s)",
                      "predict (µs)"});

  auto evaluate = [&](Surrogate surrogate) {
    FinderConfig config = bench::MakeFinderConfig(2, 150, 120);
    SurfFinder finder(surrogate.AsStatisticFn(), workload.space, config);
    const FindResult result = finder.Find(bench::ThresholdFor(ds),
                                          ThresholdDirection::kAbove);
    std::vector<Region> regions;
    for (const auto& r : result.regions) regions.push_back(r.region);
    const double iou = bench::AverageIoU(regions, ds.gt_regions);

    // Prediction latency over a fixed probe set.
    Rng rng(12);
    std::vector<Region> probes;
    for (int i = 0; i < 2000; ++i) probes.push_back(
        workload.space.Sample(&rng));
    Stopwatch timer;
    double sink = 0.0;
    for (const auto& p : probes) sink += surrogate.Predict(p);
    const double micros = timer.ElapsedSeconds() * 1e6 /
                          static_cast<double>(probes.size());
    (void)sink;

    table.AddRow({surrogate.model().Name(),
                  FormatDouble(surrogate.metrics().test_rmse, 1),
                  FormatDouble(iou, 3),
                  FormatDouble(surrogate.metrics().train_seconds, 2),
                  FormatDouble(micros, 1)});
  };

  {
    SurrogateTrainOptions options;
    auto gbrt = Surrogate::Train(workload, options);
    if (gbrt.ok()) evaluate(std::move(gbrt).value());
  }
  {
    auto ridge = Surrogate::TrainWithModel(
        std::make_unique<RidgeRegression>(1.0), workload, 0.2, 3);
    if (ridge.ok()) evaluate(std::move(ridge).value());
  }
  {
    auto knn = Surrogate::TrainWithModel(std::make_unique<KnnRegressor>(8),
                                         workload, 0.2, 3);
    if (knn.ok()) evaluate(std::move(knn).value());
  }

  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected: GBRT dominates accuracy (count surfaces are "
              "non-linear); ridge is fastest but underfits badly; k-NN "
              "is accurate but orders of magnitude slower per "
              "prediction, which multiplies across the T·L GSO "
              "evaluations.\n");
  return 0;
}
