#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace surf {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  // Backwards so duplicate keys (possible via AppendMember) resolve
  // last-wins.
  for (auto it = members_.rbegin(); it != members_.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

/// Recursive-descent JSON parser over a raw byte range.
class Parser {
 public:
  Parser(const std::string& text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  StatusOr<JsonValue> Run() {
    JsonValue value;
    SURF_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > limits_.max_depth) {
      return Error("nesting deeper than " +
                   std::to_string(limits_.max_depth));
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SURF_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(), out);
      default:
        // Anything else must be a number; the non-JSON NaN/Infinity
        // spellings fall through to the number grammar and are rejected.
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, JsonValue value, JsonValue* out) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Error(std::string("invalid literal (expected '") + word + "')");
    }
    pos_ += len;
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // fall through to digits
    }
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid number '" + token + "'");
    }
    // Overflowing literals (1e999) parse to ±inf; JSON has no encoding
    // for non-finite values, so reject rather than smuggle them through.
    if (!std::isfinite(v)) {
      return Error("number '" + token + "' is out of double range");
    }
    *out = JsonValue(v);
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          SURF_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00..\uDFFF low half must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            SURF_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired UTF-16 surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      SURF_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SURF_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      SURF_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->AppendMember(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  const JsonParseLimits limits_;
  size_t pos_ = 0;
};

void WriteNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    // JSON cannot represent NaN/Inf; null is the conventional stand-in.
    out->append("null");
    return;
  }
  // Integers within the double-exact range print without an exponent or
  // fraction, which keeps ids and counts readable.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out->append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void WriteValue(const JsonValue& value, int indent, int level,
                std::string* out) {
  const bool pretty = indent > 0;
  const auto newline = [&](int lvl) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * lvl), ' ');
  };
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      break;
    case JsonValue::Type::kBool:
      out->append(value.bool_value() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber:
      WriteNumber(value.number_value(), out);
      break;
    case JsonValue::Type::kString:
      out->push_back('"');
      out->append(JsonEscape(value.string_value()));
      out->push_back('"');
      break;
    case JsonValue::Type::kArray: {
      if (value.array().empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < value.array().size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(level + 1);
        WriteValue(value.array()[i], indent, level + 1, out);
      }
      newline(level);
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      if (value.members().empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < value.members().size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(level + 1);
        out->push_back('"');
        out->append(JsonEscape(value.members()[i].first));
        out->append(pretty ? "\": " : "\":");
        WriteValue(value.members()[i].second, indent, level + 1, out);
      }
      newline(level);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text,
                              const JsonParseLimits& limits) {
  return Parser(text, limits).Run();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, 0, 0, &out);
  return out;
}

std::string WriteJsonPretty(const JsonValue& value) {
  std::string out;
  WriteValue(value, 2, 0, &out);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

}  // namespace surf
