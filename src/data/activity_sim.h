#ifndef SURF_DATA_ACTIVITY_SIM_H_
#define SURF_DATA_ACTIVITY_SIM_H_

#include <array>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace surf {

/// \brief Activity labels mirroring the UCI Human Activity Recognition
/// dataset's six classes.
enum class Activity : int {
  kWalking = 0,
  kWalkingUpstairs,
  kWalkingDownstairs,
  kSitting,
  kStanding,
  kLaying,
};

/// Human-readable activity name ("stand" for kStanding, ...).
std::string ActivityName(Activity a);

/// \brief Simulated stand-in for the UCI Human Activity Recognition
/// accelerometer dataset (§V-C second qualitative experiment).
///
/// Substitution note (DESIGN.md §3): the real dump is an external
/// download. The experiment only needs labelled accelerometer triples
/// (X, Y, Z) where one class ("stand") concentrates in a small pocket of
/// feature space so that regions with ratio(stand) ≥ 0.3 are rare events
/// under the region-statistic CDF — exactly the property the paper reports
/// (P(f > 0.3) ≈ 0.0035). We emit class-conditional anisotropic Gaussians
/// with overlapping dynamic activities and compact static postures.
struct ActivitySimSpec {
  size_t num_points = 30000;
  /// Class mixing proportions across the 6 activities (normalized).
  std::array<double, 6> class_weights = {0.18, 0.15, 0.14, 0.18, 0.17, 0.18};
  uint64_t seed = 11;
};

struct ActivityDataset {
  /// Columns: "accel_x", "accel_y", "accel_z", "activity" (label as double).
  Dataset data;
  /// Per-class mean vectors used by the simulation (for tests).
  std::vector<std::array<double, 3>> class_means;
};

/// Generates the simulated activity dataset.
ActivityDataset SimulateActivity(const ActivitySimSpec& spec);

}  // namespace surf

#endif  // SURF_DATA_ACTIVITY_SIM_H_
