#include "ml/metrics.h"

#include <cassert>
#include <cmath>

#include "util/summary.h"

namespace surf {

double Rmse(const std::vector<double>& pred,
            const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(pred.size()));
}

double Mae(const std::vector<double>& pred,
           const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    s += std::fabs(pred[i] - truth[i]);
  }
  return s / static_cast<double>(pred.size());
}

double R2Score(const std::vector<double>& pred,
               const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  const double mean = Mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace surf
