// Tests for the PRIM baseline (Friedman & Fisher bump hunting): peeling
// toward high-mean boxes, support control, pasting, covering for multiple
// boxes, and the density failure mode the paper discusses in §V-B.

#include <gtest/gtest.h>

#include "prim/prim.h"
#include "util/rng.h"

namespace surf {
namespace {

/// 2-d points with y high inside a planted box, low outside.
void MakeBumpData(const Region& bump, size_t n, uint64_t seed,
                  FeatureMatrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = FeatureMatrix(2);
  x->Reserve(n);
  y->clear();
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> p{rng.Uniform(), rng.Uniform()};
    x->AddRow(p);
    const bool inside = bump.Contains(p);
    y->push_back(rng.Gaussian(inside ? 3.0 : 0.0, 0.5));
  }
}

TEST(PrimTest, FindsPlantedBump) {
  const Region bump({0.5, 0.5}, {0.15, 0.15});
  FeatureMatrix x;
  std::vector<double> y;
  MakeBumpData(bump, 6000, 1, &x, &y);

  PrimParams params;
  params.min_support = 0.01;
  params.max_boxes = 1;
  const Prim prim(params);
  const PrimResult result = prim.Run(x, y);
  ASSERT_EQ(result.boxes.size(), 1u);
  const PrimBox& box = result.boxes[0];
  EXPECT_GT(box.mean, 2.0);
  EXPECT_GT(box.region.IoU(bump), 0.5);
  EXPECT_GE(box.support, params.min_support);
  EXPECT_GT(result.peel_steps, 0u);
}

TEST(PrimTest, CoveringFindsMultipleBumps) {
  const Region bump_a({0.25, 0.25}, {0.12, 0.12});
  const Region bump_b({0.75, 0.75}, {0.12, 0.12});
  Rng rng(2);
  FeatureMatrix x(2);
  std::vector<double> y;
  for (int i = 0; i < 8000; ++i) {
    const std::vector<double> p{rng.Uniform(), rng.Uniform()};
    x.AddRow(p);
    const bool in_a = bump_a.Contains(p);
    const bool in_b = bump_b.Contains(p);
    y.push_back(rng.Gaussian(in_a || in_b ? 3.0 : 0.0, 0.4));
  }

  PrimParams params;
  params.max_boxes = 2;
  params.target_threshold = 2.0;  // the paper's aggregate threshold
  const Prim prim(params);
  const PrimResult result = prim.Run(x, y);
  ASSERT_EQ(result.boxes.size(), 2u);

  // Each planted bump must be matched by exactly one found box.
  double iou_a = 0.0, iou_b = 0.0;
  for (const auto& box : result.boxes) {
    iou_a = std::max(iou_a, box.region.IoU(bump_a));
    iou_b = std::max(iou_b, box.region.IoU(bump_b));
  }
  EXPECT_GT(iou_a, 0.4);
  EXPECT_GT(iou_b, 0.4);
}

TEST(PrimTest, TargetThresholdStopsCovering) {
  const Region bump({0.5, 0.5}, {0.15, 0.15});
  FeatureMatrix x;
  std::vector<double> y;
  MakeBumpData(bump, 5000, 3, &x, &y);
  PrimParams params;
  params.max_boxes = 5;
  params.target_threshold = 2.0;
  const Prim prim(params);
  const PrimResult result = prim.Run(x, y);
  // After the single real bump is removed the remaining means hover near
  // 0 < 2, so covering must stop early.
  EXPECT_LE(result.boxes.size(), 2u);
  for (const auto& box : result.boxes) EXPECT_GE(box.mean, 2.0);
}

TEST(PrimTest, SupportFloorRespected) {
  const Region bump({0.5, 0.5}, {0.1, 0.1});
  FeatureMatrix x;
  std::vector<double> y;
  MakeBumpData(bump, 4000, 4, &x, &y);
  PrimParams params;
  params.min_support = 0.05;  // larger than the bump itself (4% area)
  params.max_boxes = 1;
  const Prim prim(params);
  const PrimResult result = prim.Run(x, y);
  ASSERT_EQ(result.boxes.size(), 1u);
  EXPECT_GE(result.boxes[0].support, 0.05);
}

TEST(PrimTest, ConstantTargetIsDensityBlind) {
  // The paper's §V-B observation: PRIM cannot chase density because its
  // objective is the mean response, which a constant target makes flat.
  Rng rng(5);
  FeatureMatrix x(2);
  std::vector<double> y;
  const Region dense({0.3, 0.3}, {0.1, 0.1});
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    x.AddRow(p);
    y.push_back(1.0);
  }
  for (int i = 0; i < 1500; ++i) {  // dense cluster
    x.AddRow({rng.Uniform(dense.lo(0), dense.hi(0)),
              rng.Uniform(dense.lo(1), dense.hi(1))});
    y.push_back(1.0);
  }
  PrimParams params;
  params.max_boxes = 1;
  const Prim prim(params);
  const PrimResult result = prim.Run(x, y);
  // PRIM returns *a* box, but with no gradient to follow its overlap with
  // the dense cluster is incidental — typically poor.
  if (!result.boxes.empty()) {
    EXPECT_LT(result.boxes[0].region.IoU(dense), 0.5);
  }
}

TEST(PrimTest, PastingImprovesOrKeepsMean) {
  const Region bump({0.5, 0.5}, {0.15, 0.15});
  FeatureMatrix x;
  std::vector<double> y;
  MakeBumpData(bump, 5000, 6, &x, &y);
  PrimParams no_paste;
  no_paste.enable_pasting = false;
  no_paste.max_boxes = 1;
  PrimParams with_paste = no_paste;
  with_paste.enable_pasting = true;

  const PrimResult a = Prim(no_paste).Run(x, y);
  const PrimResult b = Prim(with_paste).Run(x, y);
  ASSERT_FALSE(a.boxes.empty());
  ASSERT_FALSE(b.boxes.empty());
  EXPECT_GE(b.boxes[0].mean + 1e-9, a.boxes[0].mean);
}

TEST(PrimTest, EmptyInputYieldsNothing) {
  FeatureMatrix x(2);
  const Prim prim(PrimParams{});
  const PrimResult result = prim.Run(x, {});
  EXPECT_TRUE(result.boxes.empty());
}

TEST(PrimTest, OneDimensionalPeeling) {
  Rng rng(7);
  FeatureMatrix x(1);
  std::vector<double> y;
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.Uniform();
    x.AddRow({v});
    y.push_back(v > 0.6 && v < 0.8 ? 5.0 : 0.0);
  }
  PrimParams params;
  params.max_boxes = 1;
  const Prim prim(params);
  const PrimResult result = prim.Run(x, y);
  ASSERT_EQ(result.boxes.size(), 1u);
  EXPECT_GT(result.boxes[0].region.lo(0), 0.5);
  EXPECT_LT(result.boxes[0].region.hi(0), 0.9);
  EXPECT_GT(result.boxes[0].mean, 3.0);
}

TEST(PrimTest, PeelAlphaControlsGranularity) {
  const Region bump({0.5, 0.5}, {0.15, 0.15});
  FeatureMatrix x;
  std::vector<double> y;
  MakeBumpData(bump, 5000, 8, &x, &y);
  PrimParams patient;
  patient.peel_alpha = 0.02;
  patient.max_boxes = 1;
  PrimParams greedy = patient;
  greedy.peel_alpha = 0.3;
  const PrimResult a = Prim(patient).Run(x, y);
  const PrimResult b = Prim(greedy).Run(x, y);
  ASSERT_FALSE(a.boxes.empty());
  ASSERT_FALSE(b.boxes.empty());
  // The patient runs peels more often (smaller slivers per step).
  EXPECT_GT(a.peel_steps, b.peel_steps);
}

}  // namespace
}  // namespace surf
