#ifndef SURF_GEOM_BOUNDS_H_
#define SURF_GEOM_BOUNDS_H_

#include <vector>

#include "geom/region.h"

namespace surf {

/// \brief Axis-aligned bounding box of a data domain, used to clamp
/// optimizer particles and scale workload side-lengths (paper §V-A trains
/// with lengths covering 1–15 % of the data domain).
class Bounds {
 public:
  Bounds() = default;
  Bounds(std::vector<double> lo, std::vector<double> hi);

  /// Unit hypercube [0,1]^d (the synthetic datasets' domain).
  static Bounds Unit(size_t dims);

  size_t dims() const { return lo_.size(); }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }
  double lo(size_t i) const { return lo_[i]; }
  double hi(size_t i) const { return hi_[i]; }

  /// Extent hi-lo on dimension i.
  double Extent(size_t i) const { return hi_[i] - lo_[i]; }

  /// Largest extent across dimensions.
  double MaxExtent() const;

  /// Expands to include point `a`.
  void Extend(const std::vector<double>& a);

  /// True if a point lies inside (inclusive).
  bool Contains(const std::vector<double>& a) const;

  /// The full domain expressed as a Region.
  Region AsRegion() const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace surf

#endif  // SURF_GEOM_BOUNDS_H_
