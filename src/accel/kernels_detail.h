#ifndef SURF_ACCEL_KERNELS_DETAIL_H_
#define SURF_ACCEL_KERNELS_DETAIL_H_

/// \file
/// \brief Shared scalar helpers behind the kernel backends.
///
/// Every function here has exactly ONE definition, in kernels_generic.cc,
/// which is compiled with baseline flags. The vector backends call these
/// for remainders, small inputs, and the sub-histogram merge instead of
/// re-instantiating inline copies: an inline helper instantiated inside
/// a `-mavx512f` TU could be COMDAT-selected by the linker as THE
/// definition, silently putting wide-ISA (and FMA-contracted) code on the
/// generic path — breaking both portability and bit-identity. Keeping
/// them out-of-line makes the reference semantics single-sourced.

#include <cstddef>
#include <cstdint>

#include "accel/kernels.h"

namespace surf {
namespace accel_detail {

/// Early-exit scalar walk of rows [begin, end) — the reference tail for
/// the interleaved predictors, and the whole path when levels == 0.
void TreePredictRows(const AccelTreeNode* nodes, const double* values,
                     const double* const* cols, size_t begin, size_t end,
                     double scale, double* out);

/// Scalar membership-mask update over [r0, n).
void MaskRangeTail(const double* col, size_t r0, size_t n, double lo,
                   double hi, uint8_t* mask);

/// Scalar mask-byte sum over [r0, n).
uint64_t MaskCountTail(const uint8_t* mask, size_t r0, size_t n);

/// The complete generic reference kernels (the bodies behind
/// kAccelGenericOps). Exposed for two reasons: a backend TU whose ISA
/// the toolchain cannot compile fills its (never-selected) table with
/// real definitions instead of copy-initializing from another global at
/// dynamic-init time, and the vector backends reuse HistU8UnitRef /
/// TreePredictRef directly — measurement showed the gather/scatter
/// vector forms of those two kernels are net losses (see kernels.h).
void HistU8UnitRef(const uint8_t* bins, const uint32_t* row_ids,
                   const double* grad, size_t n, uint32_t num_bins,
                   double* g, uint32_t* cnt);
void TreePredictRef(const AccelTreeNode* nodes, const double* values,
                    size_t levels, const double* const* cols, size_t begin,
                    size_t end, double scale, double* out);
void MaskRangeRef(const double* col, size_t n, double lo, double hi,
                  uint8_t* mask);
uint64_t MaskCountRef(const uint8_t* mask, size_t n);

}  // namespace accel_detail
}  // namespace surf

#endif  // SURF_ACCEL_KERNELS_DETAIL_H_
