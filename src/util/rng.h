#ifndef SURF_UTIL_RNG_H_
#define SURF_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace surf {

/// \brief Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every stochastic component in the library (data generators, optimizers,
/// ML subsampling) receives an explicit `Rng` or seed so experiments are
/// reproducible bit-for-bit across runs. xoshiro256++ passes BigCrush and
/// is much faster than std::mt19937_64; seeding goes through splitmix64 as
/// recommended by the xoshiro authors to avoid correlated low-entropy
/// states.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached pair).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate.
  double Exponential(double rate);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size() if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of an index vector. Both overloads draw the
  /// same UniformInt sequence, so the resulting permutation depends only
  /// on the vector length, not the element type.
  void Shuffle(std::vector<size_t>* indices);
  void Shuffle(std::vector<uint32_t>* indices);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace surf

#endif  // SURF_UTIL_RNG_H_
