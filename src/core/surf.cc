#include "core/surf.h"

#include <algorithm>
#include <cassert>

#include "stats/grid_index.h"
#include "stats/kd_tree.h"
#include "stats/rtree.h"
#include "stats/sharded_evaluator.h"

namespace surf {

std::unique_ptr<RegionEvaluator> MakeEvaluator(BackendKind kind,
                                               const Dataset* data,
                                               const Statistic& statistic) {
  switch (kind) {
    case BackendKind::kScan:
      return std::make_unique<ScanEvaluator>(data, statistic);
    case BackendKind::kGridIndex:
      return std::make_unique<GridIndexEvaluator>(data, statistic);
    case BackendKind::kKdTree:
      return std::make_unique<KdTreeEvaluator>(data, statistic);
    case BackendKind::kRTree:
      return std::make_unique<RTreeEvaluator>(data, statistic);
  }
  return nullptr;
}

std::unique_ptr<RegionEvaluator> MakeEvaluator(BackendKind kind,
                                               const Dataset* data,
                                               const Statistic& statistic,
                                               size_t shards) {
  if (shards <= 1) return MakeEvaluator(kind, data, statistic);
  ShardingOptions options;
  options.num_shards = shards;
  // Range-partition on the first box dimension so shards become
  // disjoint slabs most queries prune or answer from summaries; only
  // the columns the statistic touches are materialized.
  options.order_by = static_cast<int>(statistic.region_cols.front());
  options.columns = statistic.region_cols;
  if (statistic.needs_value_column()) {
    options.columns.push_back(static_cast<size_t>(statistic.value_col));
  }
  return std::make_unique<ShardedScanEvaluator>(
      ShardedDataset::Partition(*data, options), statistic);
}

Kde FitDataKde(const Dataset& data, const std::vector<size_t>& region_cols,
               size_t max_samples, uint64_t seed, CancelToken cancel) {
  if (cancel.cancelled()) return Kde();
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  points.reserve(data.num_rows());
  std::vector<double> p(region_cols.size());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if ((r & 0xFFFF) == 0 && cancel.cancelled()) return Kde();
    for (size_t j = 0; j < region_cols.size(); ++j) {
      p[j] = data.Get(r, region_cols[j]);
    }
    points.push_back(p);
  }
  if (cancel.cancelled()) return Kde();
  return Kde::FitSampled(points, max_samples, &rng);
}

StatusOr<Surf> Surf::Build(const Dataset* data, Statistic statistic,
                           const SurfOptions& options, ThreadPool* pool) {
  if (data == nullptr || data->num_rows() == 0) {
    return Status::InvalidArgument("null or empty dataset");
  }
  if (statistic.region_cols.empty()) {
    return Status::InvalidArgument("statistic has no region columns");
  }
  for (size_t c : statistic.region_cols) {
    if (c >= data->num_cols()) {
      return Status::InvalidArgument("region column out of range");
    }
  }
  if (statistic.needs_value_column() &&
      (statistic.value_col < 0 ||
       static_cast<size_t>(statistic.value_col) >= data->num_cols())) {
    return Status::InvalidArgument("value column out of range");
  }

  Surf surf;
  surf.data_ = data;
  surf.options_ = options;
  surf.evaluator_ =
      MakeEvaluator(options.backend, data, statistic, options.shards);

  const Bounds domain = data->ComputeBounds(statistic.region_cols);
  const RegionWorkload workload =
      GenerateWorkload(*surf.evaluator_, domain, options.workload);
  if (workload.size() == 0) {
    return Status::FailedPrecondition(
        "workload generation produced no defined statistics");
  }

  auto surrogate = Surrogate::Train(workload, options.surrogate, pool);
  if (!surrogate.ok()) return surrogate.status();
  surf.surrogate_ = std::move(surrogate).value();

  // The finder roams the same length range the surrogate was trained on;
  // extrapolating to larger boxes than any training example would let the
  // optimizer exploit unconstrained model behaviour. Discovery of narrow
  // valid basins is instead handled by KDE-seeded initialization (§III-B
  // guidance applied at t = 0, see GlowwormSwarmOptimizer::Optimize).
  surf.space_ = workload.space;

  if (options.fit_kde) {
    surf.kde_ = std::make_unique<Kde>(
        FitDataKde(*data, statistic.region_cols, options.kde_max_samples,
                   options.workload.seed + 1));
  }

  FinderConfig finder_config = options.finder;
  if (finder_config.auto_scale_gso) {
    // §V-G swarm sizing (L = 50·d) as a lower bound on the caller's
    // choice; radius fractions stay at their space-relative defaults.
    GsoParams& gso = finder_config.gso;
    gso.num_glowworms =
        std::max(gso.num_glowworms,
                 GsoParams::PaperScaled(statistic.region_cols.size())
                     .num_glowworms);
  }
  surf.finder_ = std::make_unique<SurfFinder>(
      surf.surrogate_.AsStatisticFn(), surf.space_, finder_config);
  surf.finder_->SetBatchEstimate(surf.surrogate_.AsBatchStatisticFn());
  if (surf.kde_ != nullptr) surf.finder_->SetKde(surf.kde_.get());
  if (options.validate_results) {
    surf.finder_->SetValidator(surf.evaluator_.get());
  }
  return surf;
}

FindResult Surf::FindRegions(double threshold,
                             ThresholdDirection direction) const {
  assert(finder_ != nullptr);
  return finder_->Find(threshold, direction);
}

Ecdf Surf::SampleStatisticEcdf(size_t n, uint64_t seed) const {
  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    samples.push_back(evaluator_->Evaluate(space_.Sample(&rng)));
  }
  return Ecdf(std::move(samples));
}

}  // namespace surf
