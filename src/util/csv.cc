#include "util/csv.h"

#include <cassert>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace surf {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> CsvTable::Column(const std::string& name) const {
  const int idx = ColumnIndex(name);
  assert(idx >= 0 && "unknown CSV column");
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[static_cast<size_t>(idx)]);
  return out;
}

void CsvWriter::AddRow(std::vector<double> row) {
  assert(row.size() == table_.header.size());
  table_.rows.push_back(std::move(row));
}

Status CsvWriter::Write(const std::string& path) const {
  return WriteCsv(path, table_);
}

StatusOr<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV file " + path);
  }
  for (auto& field : SplitString(line, ',')) {
    table.header.push_back(TrimString(field));
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (TrimString(line).empty()) continue;
    auto fields = SplitString(line, ',');
    if (fields.size() != table.header.size()) {
      return Status::IOError("row " + std::to_string(line_no) + " of " + path +
                             " has " + std::to_string(fields.size()) +
                             " fields, expected " +
                             std::to_string(table.header.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      char* end = nullptr;
      const std::string t = TrimString(f);
      const double v = std::strtod(t.c_str(), &end);
      if (end == t.c_str()) {
        return Status::IOError("non-numeric cell '" + t + "' at line " +
                               std::to_string(line_no) + " of " + path);
      }
      row.push_back(v);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write " + path);
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i) out << ',';
    out << table.header[i];
  }
  out << '\n';
  std::ostringstream cell;
  cell.precision(10);
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      cell.str("");
      cell << row[i];
      out << cell.str();
    }
    out << '\n';
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace surf
