#include "ml/kde.h"

#include <cassert>
#include <cmath>

namespace surf {

double StdNormalCdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

Kde Kde::FitFlat(std::vector<double> flat, size_t d) {
  assert(d > 0);
  assert(!flat.empty() && flat.size() % d == 0);
  const size_t n = flat.size() / d;

  Kde kde;
  kde.points_ = std::move(flat);

  // Scott's rule bandwidth per dimension.
  kde.bandwidths_.resize(d);
  const double factor =
      std::pow(static_cast<double>(n), -1.0 / (static_cast<double>(d) + 4.0));
  for (size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += kde.points_[i * d + j];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dev = kde.points_[i * d + j] - mean;
      var += dev * dev;
    }
    var /= static_cast<double>(n > 1 ? n - 1 : 1);
    const double sigma = std::sqrt(var);
    kde.bandwidths_[j] = std::max(1e-6, sigma * factor);
  }
  return kde;
}

Kde Kde::Fit(const std::vector<std::vector<double>>& points) {
  assert(!points.empty());
  const size_t d = points[0].size();
  std::vector<double> flat;
  flat.reserve(points.size() * d);
  for (const auto& p : points) {
    assert(p.size() == d);
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return FitFlat(std::move(flat), d);
}

Kde Kde::FitSampled(const std::vector<std::vector<double>>& points,
                    size_t max_samples, Rng* rng) {
  if (points.size() <= max_samples) return Fit(points);
  std::vector<size_t> idx(points.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  // Gather the selected rows straight into the flat buffer.
  assert(!points.empty());
  const size_t d = points[0].size();
  std::vector<double> flat;
  flat.reserve(max_samples * d);
  for (size_t i = 0; i < max_samples; ++i) {
    const auto& p = points[idx[i]];
    assert(p.size() == d);
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return FitFlat(std::move(flat), d);
}

double Kde::Density(const std::vector<double>& point) const {
  const size_t d = dims();
  assert(point.size() == d);
  const size_t n = num_samples();
  assert(n > 0);

  double norm = 1.0;
  for (size_t j = 0; j < d; ++j) {
    norm *= bandwidths_[j] * std::sqrt(2.0 * M_PI);
  }

  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double expo = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double z = (point[j] - points_[i * d + j]) / bandwidths_[j];
      expo += z * z;
    }
    sum += std::exp(-0.5 * expo);
  }
  return sum / (static_cast<double>(n) * norm);
}

std::vector<double> Kde::SamplePoint(size_t i) const {
  const size_t d = dims();
  assert(i < num_samples());
  return std::vector<double>(points_.begin() + static_cast<long>(i * d),
                             points_.begin() + static_cast<long>((i + 1) * d));
}

std::vector<double> Kde::DrawPoint(Rng* rng) const {
  const size_t n = num_samples();
  assert(n > 0);
  std::vector<double> p = SamplePoint(rng->UniformInt(n));
  for (size_t j = 0; j < p.size(); ++j) {
    p[j] += rng->Gaussian(0.0, bandwidths_[j]);
  }
  return p;
}

double Kde::RegionMass(const Region& region) const {
  const size_t d = dims();
  assert(region.dims() == d);
  const size_t n = num_samples();
  assert(n > 0);

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double mass = 1.0;
    for (size_t j = 0; j < d; ++j) {
      const double mu = points_[i * d + j];
      const double h = bandwidths_[j];
      const double upper = StdNormalCdf((region.hi(j) - mu) / h);
      const double lower = StdNormalCdf((region.lo(j) - mu) / h);
      mass *= (upper - lower);
      if (mass <= 0.0) break;
    }
    total += mass;
  }
  return total / static_cast<double>(n);
}

}  // namespace surf
