#ifndef SURF_DIST_CLUSTER_EVALUATOR_H_
#define SURF_DIST_CLUSTER_EVALUATOR_H_

/// \file
/// \brief Distributed scatter-gather exact evaluator: the coordinator
/// side of the cluster execution mode.
///
/// A ClusterEvaluator is a drop-in RegionEvaluator backend: workload
/// labelling and result validation call it exactly like the in-process
/// backends, so MiningService, the surrogate cache, jobs, cancellation,
/// and tracing all compose unchanged. Per batch of regions it
///
///  1. gives unhealthy workers a /healthz chance to rejoin, then splits
///     the `num_shards`-way partition into contiguous ascending shard
///     groups, one per healthy worker;
///  2. scatters one `POST /v1/shards:evaluate` per group concurrently —
///     each worker evaluates its assigned shards over the whole query
///     batch and ships the raw per-(query, shard) accumulators back
///     UNMERGED;
///  3. gathers and merges in ascending shard order — seed with shard
///     0's partial, Merge(1), Merge(2), ... — replaying the exact left
///     fold ShardedScanEvaluator performs in process, so the cluster
///     result is bit-identical to single-node `shards = N` evaluation
///     for every statistic kind (median included, via the exact-state
///     sketch wire form).
///
/// Fault tolerance: a retriable RPC failure (connection refused/reset,
/// timeout, worker 5xx, or the `dist.shard_rpc` failpoint) marks the
/// worker unhealthy and re-homes the whole shard group onto the next
/// healthy worker under the configured RetryPolicy, with cancel-aware
/// backoff. A successful re-home degrades the evaluation (flag +
/// reason, surfaced through response provenance) but changes no bits of
/// the result — the shards are re-evaluated against the same partition
/// spec. A group whose retries exhaust (or a scatter with no healthy
/// workers) yields NaN labels for the batch: the evaluator's native
/// "could not compute" value, which drop_undefined filters out of
/// training workloads and validation reports as non-compliant.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dist/worker_pool.h"
#include "stats/evaluator.h"
#include "util/retry.h"

namespace surf {
namespace dist {

/// \brief Coordinator-side scatter-gather evaluator; see file comment.
class ClusterEvaluator : public RegionEvaluator {
 public:
  /// \brief Cluster execution configuration.
  struct Options {
    /// Dataset name the workers hold (registered under the same name).
    std::string dataset;
    /// Expected content fingerprint; workers answer 412 on mismatch.
    /// 0 = skip the check.
    uint64_t fingerprint = 0;
    /// Total shard count of the partition. 0 defaults to the worker
    /// count — one contiguous slab per worker.
    size_t num_shards = 0;
    /// Per-RPC transport budget, seconds.
    double rpc_timeout_seconds = 300.0;
    /// Re-home policy for failed shard groups. The default makes three
    /// attempts with short backoff — with the pool's health marking,
    /// attempt k lands on the k-th next healthy worker.
    RetryPolicy retry = MakeDefaultRetry();
  };

  /// Non-owning `pool`; it must outlive the evaluator. The partition
  /// spec (order_by / columns) is derived from the statistic exactly
  /// like MakeEvaluator derives it for the in-process sharded backend.
  ClusterEvaluator(WorkerPool* pool, Statistic stat, Options options);

  const Statistic& statistic() const override { return stat_; }

  /// Total shard count of the cluster partition (after the worker-count
  /// default is applied).
  size_t num_shards() const { return num_shards_; }

  /// Whether any evaluation so far was served degraded (a shard group
  /// was re-homed after a worker failure, or a batch was abandoned).
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }
  /// First degradation cause observed ("" while !degraded()).
  std::string degraded_reason() const;

 protected:
  double EvaluateImpl(const Region& region,
                      const CancelToken& cancel) const override;
  std::vector<double> EvaluateBatchImpl(
      const std::vector<Region>& regions,
      const CancelToken& cancel) const override;

 private:
  static RetryPolicy MakeDefaultRetry() {
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_seconds = 0.05;
    policy.max_backoff_seconds = 1.0;
    return policy;
  }

  /// One shard group's scatter: evaluate `shards` over `regions`,
  /// re-homing across healthy workers on retriable failure. Fills
  /// `partials[q][s]` (query-major, group shard order) on success.
  Status EvaluateGroup(const std::vector<size_t>& shards,
                       const std::vector<Region>& regions,
                       size_t first_worker, const CancelToken& cancel,
                       std::vector<std::vector<StatisticAccumulator>>*
                           partials) const;

  void MarkDegraded(const std::string& reason) const;

  WorkerPool* pool_;
  Statistic stat_;
  Options options_;
  size_t num_shards_;
  /// Partition spec shipped with every request (derived once).
  int order_by_;
  std::vector<size_t> columns_;

  mutable std::atomic<bool> degraded_{false};
  mutable std::mutex reason_mu_;
  mutable std::string degraded_reason_;
};

}  // namespace dist
}  // namespace surf

#endif  // SURF_DIST_CLUSTER_EVALUATOR_H_
