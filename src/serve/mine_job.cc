#include "serve/mine_job.h"

#include <cmath>

#include "serve/mining_service.h"

namespace surf {

// ----------------------------------------------------------------- MineJob

MineJob::MineJob(MineRequest request, double deadline_seconds)
    : request_(std::make_unique<MineRequest>(std::move(request))) {
  if (deadline_seconds > 0.0) cancel_.SetDeadline(deadline_seconds);
  if (request_->trace) trace_ = std::make_shared<TraceContext>();
}

int64_t MineJob::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - created_at_)
      .count();
}

MineJob::~MineJob() = default;

void MineJob::Cancel() { cancel_.Cancel(); }

const MineResponse& MineJob::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return response_ != nullptr; });
  return *response_;
}

bool MineJob::TryGet(MineResponse* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (response_ == nullptr) return false;
  if (out != nullptr) *out = *response_;
  return true;
}

bool MineJob::done() const {
  return phase_.load(std::memory_order_acquire) == Phase::kDone;
}

MineJob::Progress MineJob::progress() const {
  Progress p;
  p.phase = phase_.load(std::memory_order_acquire);
  p.cancel_requested = cancel_.cancelled();
  p.iterations = search_progress_.iterations.load(std::memory_order_relaxed);
  p.max_iterations =
      search_progress_.max_iterations.load(std::memory_order_relaxed);
  p.valid_particles =
      search_progress_.valid_particles.load(std::memory_order_relaxed);
  // Per-phase elapsed times from the stamped offsets: a phase not yet
  // entered reads 0, the running phase reads elapsed-so-far, a finished
  // job reads final durations.
  const int64_t finished = finished_ns_.load(std::memory_order_relaxed);
  const int64_t now = finished >= 0 ? finished : NowNs();
  const int64_t training = training_started_ns_.load(std::memory_order_relaxed);
  const int64_t searching =
      searching_started_ns_.load(std::memory_order_relaxed);
  p.queued_seconds = (training >= 0 ? training : now) * 1e-9;
  if (training >= 0) {
    p.training_seconds = ((searching >= 0 ? searching : now) - training) * 1e-9;
  }
  if (searching >= 0) p.searching_seconds = (now - searching) * 1e-9;
  return p;
}

const MineRequest& MineJob::request() const { return *request_; }

std::chrono::steady_clock::time_point MineJob::completed_at() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_at_;
}

void MineJob::SetPhase(Phase phase) {
  const int64_t ns = NowNs();
  if (phase == Phase::kTraining) {
    training_started_ns_.store(ns, std::memory_order_relaxed);
  } else if (phase == Phase::kSearching) {
    searching_started_ns_.store(ns, std::memory_order_relaxed);
  }
  phase_.store(phase, std::memory_order_release);
}

void MineJob::Complete(MineResponse response) {
  finished_ns_.store(NowNs(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    response_ = std::make_unique<MineResponse>(std::move(response));
    completed_at_ = std::chrono::steady_clock::now();
  }
  // Publish the terminal phase only after the response is readable, so
  // done() == true implies TryGet succeeds.
  phase_.store(Phase::kDone, std::memory_order_release);
  cv_.notify_all();
}

MineResponse MineJob::TakeResponse() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(*response_);
}

// ---------------------------------------------------------------- JobTable

std::string JobTable::Add(std::shared_ptr<MineJob> job) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string id = "job-" + std::to_string(next_id_++);
  order_.push_back(id);
  jobs_.emplace(id, std::make_pair(std::move(job), std::prev(order_.end())));
  EnforceRetention();
  return id;
}

std::shared_ptr<MineJob> JobTable::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.first;
}

bool JobTable::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  order_.erase(it->second.second);
  jobs_.erase(it);
  return true;
}

size_t JobTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

uint64_t JobTable::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t JobTable::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t before = evictions_;
  EnforceRetention();
  return static_cast<size_t>(evictions_ - before);
}

void JobTable::EnforceRetention() {
  // Age pass first: a finished job older than the age cap is evicted no
  // matter how full the table is. Completion times are monotone only
  // per job (insertion order is not completion order), so the whole
  // list is walked; the pass is skipped entirely when no age cap is
  // configured.
  if (std::isfinite(options_.max_age_seconds) && !jobs_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    const auto max_age = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(options_.max_age_seconds));
    for (auto it = order_.begin(); it != order_.end();) {
      auto found = jobs_.find(*it);
      if (found != jobs_.end() && found->second.first->done() &&
          now - found->second.first->completed_at() > max_age) {
        jobs_.erase(found);
        it = order_.erase(it);
        ++evictions_;
      } else {
        ++it;
      }
    }
  }

  // Count pass, size-guarded: a table within the cap costs nothing per
  // Add. Past the cap, walk from the oldest entry evicting finished
  // jobs until back under it (live jobs are never evicted, so a table
  // dominated by live jobs simply stays over the cap until they
  // finish).
  if (jobs_.size() <= options_.max_finished) return;
  auto it = order_.begin();
  while (jobs_.size() > options_.max_finished && it != order_.end()) {
    auto found = jobs_.find(*it);
    if (found != jobs_.end() && found->second.first->done()) {
      jobs_.erase(found);
      it = order_.erase(it);
      ++evictions_;
    } else {
      ++it;
    }
  }
}

}  // namespace surf
