#ifndef SURF_NET_SURF_HANDLER_H_
#define SURF_NET_SURF_HANDLER_H_

/// \file
/// \brief The HTTP router exposing MiningService as a JSON API (`surfd`).
///
/// Endpoints (see docs/api.md for payload examples):
///   POST /v1/datasets     register a dataset (CSV path or inline rows)
///   POST /v1/mine         serve one MineRequest
///   POST /v1/mine:batch   serve many MineRequests over the worker pool
///   POST /v1/evaluations  append observed evaluations (warm-start feed)
///   GET  /v1/cache/stats  surrogate-cache counters
///   GET  /healthz         liveness probe
///   GET  /metrics         Prometheus text exposition
///
/// Library `Status` codes map onto HTTP statuses via
/// HttpStatusFromStatus (NotFound→404, InvalidArgument→400,
/// AlreadyExists→409, ...); transport overload is answered 429 by the
/// HttpServer admission control before a handler ever runs.

#include <string>
#include <vector>

#include "net/http_server.h"
#include "net/json_codec.h"
#include "net/metrics.h"
#include "serve/mining_service.h"

namespace surf {

/// \brief Routes HTTP requests to MiningService calls. Thread-safe: the
/// service and metrics registry are both concurrent, and the handler
/// itself is stateless beyond them.
class SurfHandler {
 public:
  /// Binds the handler to a service and a metrics registry (both
  /// non-owning; they must outlive the handler).
  SurfHandler(MiningService* service, ServerMetrics* metrics);

  /// Dispatches one request: route match → JSON decode → service call →
  /// JSON encode, recording per-route metrics on every path.
  HttpResponse Handle(const HttpRequest& request);

  /// Adapter for HttpServer's handler slot.
  HttpHandler AsHttpHandler() {
    return [this](const HttpRequest& request) { return Handle(request); };
  }

 private:
  /// One route-table entry.
  struct Route {
    std::string method;
    std::string path;
    HttpResponse (SurfHandler::*fn)(const HttpRequest&);
  };

  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleCacheStats(const HttpRequest& request);
  HttpResponse HandleRegisterDataset(const HttpRequest& request);
  HttpResponse HandleMine(const HttpRequest& request);
  HttpResponse HandleMineBatch(const HttpRequest& request);
  HttpResponse HandleEvaluations(const HttpRequest& request);

  /// Column-name → index resolver backed by the service's registry.
  ColumnResolver MakeResolver() const;

  MiningService* service_;
  ServerMetrics* metrics_;
  std::vector<Route> routes_;
};

}  // namespace surf

#endif  // SURF_NET_SURF_HANDLER_H_
