#ifndef SURF_DATA_CRIMES_SIM_H_
#define SURF_DATA_CRIMES_SIM_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace surf {

/// \brief Simulated stand-in for the Chicago "Crimes 2001–present" dataset
/// used in the paper's qualitative experiment (§V-C, Fig. 5).
///
/// Substitution note (see DESIGN.md §3): the real CSV is an online download
/// we do not have. The experiment only relies on a 2-D spatial point
/// pattern with localized high-density hot-spots, so we synthesize a
/// mixture of anisotropic Gaussian hot-spots over a uniform background in
/// [0,1]^2, which reproduces the heavy-tailed region-count distribution the
/// y_R = Q3 threshold experiment depends on.
struct CrimesSimSpec {
  size_t num_points = 50000;
  size_t num_hotspots = 6;
  /// Fraction of points drawn from hot-spots (rest are background noise).
  double hotspot_fraction = 0.65;
  /// Hot-spot standard deviation range (anisotropic, per-axis).
  double min_sigma = 0.02;
  double max_sigma = 0.07;
  uint64_t seed = 7;
};

/// \brief One simulated hot-spot (for ground-truth introspection in tests).
struct Hotspot {
  double cx, cy;
  double sx, sy;
  double weight;
};

struct CrimesDataset {
  /// Columns: "x", "y" in [0,1].
  Dataset data;
  std::vector<Hotspot> hotspots;
};

/// Generates the simulated crimes dataset.
CrimesDataset SimulateCrimes(const CrimesSimSpec& spec);

}  // namespace surf

#endif  // SURF_DATA_CRIMES_SIM_H_
