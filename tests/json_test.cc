// Tests for the JSON layer of the network front-end: the util/json
// parser/writer and the net/json_codec wire codecs. The codec contract
// under test is the satellite of ISSUE 3: MineRequest → JSON →
// MineRequest round-trips losslessly (including every nested recipe),
// provenance fields survive with bit fidelity, NaN/Inf never leak into
// documents, and malformed/fuzzed input returns InvalidArgument instead
// of crashing.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/api_v2.h"
#include "dist/wire.h"
#include "net/json_codec.h"
#include "serve/fingerprint.h"
#include "stats/quantile_sketch.h"
#include "stats/statistic.h"
#include "util/json.h"
#include "util/rng.h"

namespace surf {
namespace {

// ----------------------------------------------------------- util/json

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-0.5e3")->number_value(), -500.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonParse, NestedStructure) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_TRUE(a->array()[2].Find("b")->bool_value());
  EXPECT_EQ(v->Find("c")->string_value(), "x");
}

TEST(JsonParse, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\ndAé€")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "a\"b\\c\ndA\xC3\xA9\xE2\x82\xAC");
  // Surrogate pair: U+1F600.
  auto emoji = ParseJson(R"("😀")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->string_value(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* cases[] = {
      "",
      "{",
      "[1,",
      "{\"a\" 1}",
      "{\"a\": 1,}",
      "[1 2]",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"\\ud800 unpaired\"",
      "01",
      "1.",
      "1e",
      "+1",
      "tru",
      "nul",
      "{\"a\": 1} trailing",
      "\x01",
      "\"ctrl \x02 char\"",
  };
  for (const char* text : cases) {
    auto v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(JsonParse, RejectsNanAndInfinityTokens) {
  // Not part of the JSON grammar; the codec satellite requires they are
  // rejected rather than smuggled through as doubles.
  for (const char* text :
       {"NaN", "nan", "Infinity", "-Infinity", "inf", "1e999",
        "{\"x\": NaN}", "[Infinity]"}) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParse, DuplicateKeysResolveLastWins) {
  auto v = ParseJson(R"({"a": 1, "b": 2, "a": 3})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Find("a")->number_value(), 3.0);
  EXPECT_DOUBLE_EQ(v->Find("b")->number_value(), 2.0);
}

TEST(JsonParse, LargeObjectParsesInLinearTime) {
  // 200k members: quadratic member insertion would take minutes here
  // (a DoS vector for network bodies); linear parses in milliseconds.
  std::string text = "{";
  for (int i = 0; i < 200000; ++i) {
    if (i > 0) text.push_back(',');
    text += "\"k" + std::to_string(i) + "\":" + std::to_string(i);
  }
  text.push_back('}');
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 200000u);
  EXPECT_DOUBLE_EQ(v->Find("k199999")->number_value(), 199999.0);
}

TEST(JsonParse, DepthLimitStopsRecursion) {
  std::string deep(5000, '[');
  deep.append(5000, ']');
  auto v = ParseJson(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonWrite, EscapingRoundTrips) {
  JsonValue obj = JsonValue::Object();
  obj.Set("s", JsonValue(std::string("line\nquote\"back\\slash\ttab\x01")));
  const std::string text = WriteJson(obj);
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->string_value(),
            obj.Find("s")->string_value());
}

TEST(JsonWrite, NonFiniteBecomesNull) {
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue(std::numeric_limits<double>::quiet_NaN()));
  arr.Append(JsonValue(std::numeric_limits<double>::infinity()));
  arr.Append(JsonValue(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(WriteJson(arr), "[null,null,null]");
}

TEST(JsonWrite, DoublesRoundTripBitExactly) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    double v;
    if (i % 3 == 0) {
      v = rng.Uniform(-1e12, 1e12);
    } else if (i % 3 == 1) {
      v = rng.Gaussian() * std::pow(10.0, rng.Uniform(-20, 20));
    } else {
      v = rng.Uniform();
    }
    JsonValue arr = JsonValue::Array();
    arr.Append(JsonValue(v));
    auto parsed = ParseJson(WriteJson(arr));
    ASSERT_TRUE(parsed.ok());
    const double back = parsed->array()[0].number_value();
    EXPECT_EQ(back, v) << "lost precision for " << v;
  }
}

TEST(JsonParse, FuzzedInputNeverCrashes) {
  // Random byte soup plus random truncations of a valid document: every
  // outcome must be a clean Status, never a crash or hang.
  const std::string valid = WriteJson([] {
    JsonValue obj = JsonValue::Object();
    obj.Set("a", JsonValue(1.5));
    JsonValue arr = JsonValue::Array();
    arr.Append(JsonValue("x"));
    arr.Append(JsonValue(true));
    obj.Set("b", std::move(arr));
    return obj;
  }());
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    std::string input;
    if (i % 2 == 0) {
      const size_t len = rng.UniformInt(64);
      for (size_t j = 0; j < len; ++j) {
        input.push_back(static_cast<char>(rng.UniformInt(256)));
      }
    } else {
      input = valid.substr(0, rng.UniformInt(valid.size() + 1));
      if (!input.empty() && rng.Bernoulli(0.5)) {
        input[rng.UniformInt(input.size())] =
            static_cast<char>(rng.UniformInt(256));
      }
    }
    auto v = ParseJson(input);  // must return, whatever the verdict
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

// ------------------------------------------------------- net/json_codec

/// Builds a request with every field moved off its default, pseudo-randomly
/// per `seed` — the property-test generator.
MineRequest RandomizedRequest(uint64_t seed) {
  Rng rng(seed);
  MineRequest r;
  r.dataset = "ds_" + std::to_string(rng.UniformInt(1000));
  r.statistic.kind = static_cast<StatisticKind>(rng.UniformInt(6));
  r.statistic.region_cols = {rng.UniformInt(4), 4 + rng.UniformInt(4)};
  r.statistic.value_col = static_cast<int>(rng.UniformInt(8));
  r.statistic.label_value = rng.Uniform(-5, 5);
  r.threshold = rng.Gaussian(500, 200);
  r.direction = rng.Bernoulli(0.5) ? ThresholdDirection::kAbove
                                   : ThresholdDirection::kBelow;
  r.mode = rng.Bernoulli(0.5) ? MineRequest::Mode::kThreshold
                              : MineRequest::Mode::kTopK;
  r.topk.k = 1 + rng.UniformInt(9);
  r.topk.c = rng.Uniform(0.1, 2.0);
  r.topk.nms_max_iou = rng.Uniform();
  r.topk.gso.num_glowworms = 10 + rng.UniformInt(300);
  r.topk.gso.seed = rng.UniformInt(1 << 30);
  r.finder.c = rng.Uniform(0.5, 8.0);
  r.finder.auto_scale_gso = rng.Bernoulli(0.5);
  r.finder.use_log_objective = rng.Bernoulli(0.5);
  r.finder.nms_max_iou = rng.Uniform();
  r.finder.max_regions = 1 + rng.UniformInt(31);
  r.finder.use_kde_guidance = rng.Bernoulli(0.5);
  r.finder.use_kde_seeding = rng.Bernoulli(0.5);
  r.finder.gso.max_iterations = 10 + rng.UniformInt(200);
  r.finder.gso.luciferin_decay = rng.Uniform();
  r.finder.gso.luciferin_gain = rng.Uniform();
  r.finder.gso.initial_radius_frac = rng.Uniform();
  r.finder.gso.step_frac = rng.Uniform(0.001, 0.1);
  r.finder.gso.kde_seeded_fraction = rng.Uniform();
  r.finder.gso.kde_mass_guidance = rng.Bernoulli(0.5);
  r.finder.gso.exploration_restart_prob = rng.Uniform();
  r.finder.gso.desired_neighbors = 1 + rng.UniformInt(10);
  r.finder.gso.seed = rng.UniformInt(1 << 30);
  r.workload.num_queries = 100 + rng.UniformInt(100000);
  r.workload.min_length_frac = rng.Uniform(0.001, 0.05);
  r.workload.max_length_frac = rng.Uniform(0.05, 0.4);
  r.workload.drop_undefined = rng.Bernoulli(0.5);
  r.workload.seed = rng.UniformInt(1 << 30);
  r.surrogate.gbrt.learning_rate = rng.Uniform(0.001, 0.5);
  r.surrogate.gbrt.n_estimators = 50 + rng.UniformInt(400);
  r.surrogate.gbrt.max_depth = 2 + rng.UniformInt(10);
  r.surrogate.gbrt.reg_lambda = rng.Uniform(0.0001, 2.0);
  r.surrogate.gbrt.subsample = rng.Uniform(0.5, 1.0);
  r.surrogate.gbrt.colsample = rng.Uniform(0.5, 1.0);
  r.surrogate.gbrt.max_bins = 16 + rng.UniformInt(240);
  r.surrogate.gbrt.seed = rng.UniformInt(1 << 30);
  r.surrogate.hypertune = rng.Bernoulli(0.3);
  r.surrogate.grid.learning_rates = {rng.Uniform(0.01, 0.2)};
  r.surrogate.grid.max_depths = {2 + rng.UniformInt(8),
                                 2 + rng.UniformInt(8)};
  r.surrogate.cv_folds = 2 + rng.UniformInt(4);
  r.surrogate.test_fraction = rng.Uniform(0.1, 0.4);
  r.surrogate.seed = rng.UniformInt(1 << 30);
  r.backend = static_cast<BackendKind>(rng.UniformInt(4));
  r.use_kde = rng.Bernoulli(0.5);
  r.validate = rng.Bernoulli(0.5);
  r.record_evaluations = rng.Bernoulli(0.5);
  return r;
}

TEST(MineRequestCodec, RoundTripIsLossless) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const MineRequest original = RandomizedRequest(seed);
    const JsonValue encoded = MineRequestToJson(original);
    auto decoded = MineRequestFromJson(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

    // Lossless: re-encoding the decoded request reproduces the document
    // byte-for-byte (the writer is deterministic), so no field was
    // dropped, defaulted, or rounded.
    EXPECT_EQ(WriteJson(MineRequestToJson(*decoded)), WriteJson(encoded))
        << "seed " << seed;

    // Spot checks on semantically-critical fields.
    EXPECT_EQ(decoded->dataset, original.dataset);
    EXPECT_EQ(decoded->mode, original.mode);
    EXPECT_EQ(decoded->direction, original.direction);
    EXPECT_EQ(decoded->threshold, original.threshold);
    EXPECT_EQ(decoded->backend, original.backend);
    EXPECT_EQ(decoded->finder.gso.seed, original.finder.gso.seed);

    // The cache key is derived from (statistic, workload, model recipe):
    // equal fingerprints mean an HTTP round trip targets the same cached
    // surrogate as the in-process request.
    EXPECT_EQ(FingerprintStatistic(decoded->statistic),
              FingerprintStatistic(original.statistic));
    EXPECT_EQ(FingerprintWorkloadParams(decoded->workload),
              FingerprintWorkloadParams(original.workload));
    EXPECT_EQ(FingerprintTrainOptions(decoded->surrogate),
              FingerprintTrainOptions(original.surrogate));
  }
}

TEST(MineRequestCodec, MinimalRequestUsesDefaults) {
  auto decoded = MineRequestFromJson(*ParseJson(
      R"({"dataset": "d", "statistic": {"region_cols": [0, 1]}})"));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const MineRequest defaults;
  EXPECT_EQ(decoded->statistic.kind, StatisticKind::kCount);
  EXPECT_EQ(decoded->mode, MineRequest::Mode::kThreshold);
  EXPECT_EQ(decoded->workload.num_queries, defaults.workload.num_queries);
  EXPECT_EQ(decoded->finder.max_regions, defaults.finder.max_regions);
  EXPECT_EQ(decoded->use_kde, defaults.use_kde);
}

TEST(MineRequestCodec, RejectsBadDocuments) {
  const char* cases[] = {
      R"([1, 2])",                                        // not an object
      R"({"statistic": {"region_cols": [0]}})",           // missing dataset
      R"({"dataset": "d"})",                              // no region cols
      R"({"dataset": "d", "statistic": {"region_cols": [0],
          "kind": "p99"}})",                              // unknown kind
      R"({"dataset": "d", "statistic": {"region_cols": [0]},
          "direction": "sideways"})",                     // bad enum
      R"({"dataset": "d", "statistic": {"region_cols": [0]},
          "threshold": "high"})",                         // wrong type
      R"({"dataset": "d", "statistic": {"region_cols": [0]},
          "workload": {"num_queries": -4}})",             // negative size
      R"({"dataset": "d", "statistic": {"region_cols": [0]},
          "workload": {"seed": 1.5}})",                   // fractional seed
      R"({"dataset": "d", "statistic": {"region_cols": ["x"]}})",
      // ^ name resolution without a resolver
      R"({"dataset": "d", "statistic": {"region_cols": [0, 1e300]}})",
      // ^ index too large to cast (would be UB unchecked)
      R"({"dataset": "d", "statistic": {"region_cols": [0],
          "value_col": 1e18}})",                        // beyond int range
      R"({"dataset": "d", "statistic": {"region_cols": [0],
          "value_col": -2}})",                          // only -1 is legal
      R"({"dataset": "d", "statistic": {"region_cols": [0]},
          "surrogate": {"grid": {"max_depths": [1e300]}}})",
  };
  for (const char* text : cases) {
    auto json = ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    auto decoded = MineRequestFromJson(*json);
    ASSERT_FALSE(decoded.ok()) << "accepted: " << text;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(MineRequestCodec, ResolvesColumnNames) {
  const ColumnResolver resolver = [](const std::string& dataset,
                                     const std::string& column) {
    if (dataset != "trips") return -1;
    if (column == "x") return 2;
    if (column == "y") return 5;
    if (column == "fare") return 7;
    return -1;
  };
  auto decoded = MineRequestFromJson(
      *ParseJson(R"({"dataset": "trips",
                     "statistic": {"kind": "avg",
                                   "region_cols": ["x", "y"],
                                   "value_col": "fare"}})"),
      &resolver);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->statistic.region_cols, (std::vector<size_t>{2, 5}));
  EXPECT_EQ(decoded->statistic.value_col, 7);

  auto unknown = MineRequestFromJson(
      *ParseJson(R"({"dataset": "trips",
                     "statistic": {"region_cols": ["nope"]}})"),
      &resolver);
  EXPECT_FALSE(unknown.ok());
}

TEST(ProvenanceCodec, FieldFidelity) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    SurrogateProvenance p;
    p.dataset_fingerprint = rng.Next();  // full 64-bit range
    p.training_set_size = rng.UniformInt(1u << 20);
    p.cv_rmse = i % 4 == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : rng.Uniform(0, 100);
    p.holdout_rmse = rng.Uniform(0, 100);
    p.train_seconds = rng.Uniform(0, 1000);
    p.warm_starts = rng.UniformInt(50);
    p.pending_examples = rng.UniformInt(4096);
    if (i % 3 == 0) {
      p.degraded = true;
      p.degraded_reason = "stale-while-revalidate: retrain in flight";
    }

    auto decoded = ProvenanceFromJson(ProvenanceToJson(p));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->dataset_fingerprint, p.dataset_fingerprint);
    EXPECT_EQ(decoded->training_set_size, p.training_set_size);
    EXPECT_EQ(decoded->degraded, p.degraded);
    EXPECT_EQ(decoded->degraded_reason, p.degraded_reason);
    // Non-degraded provenance stays byte-identical to the pre-failpoint
    // wire form: the degraded fields only appear once true.
    if (!p.degraded) {
      EXPECT_EQ(WriteJson(ProvenanceToJson(p)).find("degraded"),
                std::string::npos);
    }
    EXPECT_EQ(decoded->holdout_rmse, p.holdout_rmse);
    EXPECT_EQ(decoded->train_seconds, p.train_seconds);
    EXPECT_EQ(decoded->warm_starts, p.warm_starts);
    EXPECT_EQ(decoded->pending_examples, p.pending_examples);
    if (std::isnan(p.cv_rmse)) {
      EXPECT_TRUE(std::isnan(decoded->cv_rmse));
      // The wire form must be null, not a NaN token.
      EXPECT_NE(WriteJson(ProvenanceToJson(p)).find("\"cv_rmse\":null"),
                std::string::npos);
    } else {
      EXPECT_EQ(decoded->cv_rmse, p.cv_rmse);
    }
  }
}

TEST(MineResponseCodec, RegionsRoundTripBitExactly) {
  Rng rng(31);
  MineResponse response;
  response.cache_hit = true;
  response.total_seconds = 0.125;
  response.provenance.dataset_fingerprint = rng.Next();
  response.provenance.training_set_size = 9000;
  for (int i = 0; i < 8; ++i) {
    FoundRegion r;
    r.region = Region({rng.Uniform(-100, 100), rng.Uniform(-100, 100)},
                      {rng.Uniform(0, 10), rng.Uniform(0, 10)});
    r.fitness = rng.Gaussian();
    r.estimate = rng.Gaussian(100, 30);
    r.true_value = i % 3 == 0 ? std::numeric_limits<double>::quiet_NaN()
                              : rng.Gaussian(100, 30);
    r.complies_true = i % 2 == 0;
    response.result.regions.push_back(r);
  }
  response.result.report.seconds = 0.5;
  response.result.report.iterations = 120;
  response.result.report.objective_evaluations = 12000;
  response.result.report.particle_valid_fraction = 0.84;
  response.result.report.converged = true;
  response.result.report.true_compliance = 0.75;

  const std::string wire =
      WriteJson(MineResponseToJson(response, MineRequest::Mode::kThreshold));
  auto parsed_json = ParseJson(wire);
  ASSERT_TRUE(parsed_json.ok());
  auto decoded = MineResponseFromJson(*parsed_json);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_TRUE(decoded->status.ok());
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_EQ(decoded->provenance.dataset_fingerprint,
            response.provenance.dataset_fingerprint);
  ASSERT_EQ(decoded->result.regions.size(), response.result.regions.size());
  for (size_t i = 0; i < response.result.regions.size(); ++i) {
    const FoundRegion& a = response.result.regions[i];
    const FoundRegion& b = decoded->result.regions[i];
    // Bit-identical geometry is what the HTTP parity acceptance check
    // rests on.
    EXPECT_EQ(a.region, b.region) << "region " << i;
    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.estimate, b.estimate);
    if (std::isnan(a.true_value)) {
      EXPECT_TRUE(std::isnan(b.true_value));
    } else {
      EXPECT_EQ(a.true_value, b.true_value);
    }
    EXPECT_EQ(a.complies_true, b.complies_true);
  }
  EXPECT_EQ(decoded->result.report.objective_evaluations, 12000u);
  EXPECT_EQ(decoded->result.report.converged, true);

  // Error statuses survive the wire too.
  MineResponse failed;
  failed.status = Status::NotFound("dataset 'x' not registered");
  auto failed_back = MineResponseFromJson(*ParseJson(WriteJson(
      MineResponseToJson(failed, MineRequest::Mode::kThreshold))));
  ASSERT_TRUE(failed_back.ok());
  EXPECT_EQ(failed_back->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(failed_back->status.message(), "dataset 'x' not registered");
}

TEST(StatusMapping, LibraryCodesMapOntoHttp) {
  EXPECT_EQ(HttpStatusFromStatus(Status::OK()), 200);
  EXPECT_EQ(HttpStatusFromStatus(Status::InvalidArgument("")), 400);
  EXPECT_EQ(HttpStatusFromStatus(Status::NotFound("")), 404);
  EXPECT_EQ(HttpStatusFromStatus(Status::AlreadyExists("")), 409);
  EXPECT_EQ(HttpStatusFromStatus(Status::TimedOut("")), 408);
  EXPECT_EQ(HttpStatusFromStatus(Status::FailedPrecondition("")), 412);
  EXPECT_EQ(HttpStatusFromStatus(Status::Internal("")), 500);
  EXPECT_EQ(HttpStatusFromStatus(Status::IOError("")), 500);
  EXPECT_EQ(HttpStatusFromStatus(Status::OutOfRange("")), 400);
}

// ------------------------------------------- accumulator / sketch wire

/// Every statistic kind, with a value column where one is needed.
std::vector<Statistic> AllStatisticKinds() {
  return {Statistic::Count({0, 1}),
          Statistic::Average({0, 1}, 2),
          Statistic::Sum({0, 1}, 2),
          Statistic::MedianOf({0, 1}, 2),
          Statistic::VarianceOf({0, 1}, 2),
          Statistic::LabelRatio({0, 1}, 2, 1.0)};
}

/// Bitwise double equality (NaN == NaN, -0.0 != +0.0): the merge-law
/// contract is bit identity, not numeric closeness.
bool BitEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

TEST(AccumulatorCodec, SerializeDeserializeMergeIsBitIdentical) {
  // The distributed merge law: deserialize each per-shard partial from
  // its wire form, fold in ascending shard order, and the finalized
  // value is bit-identical to folding the in-process originals. Checked
  // for every statistic kind over many random splits — this is the
  // property the coordinator's correctness rests on.
  for (const Statistic& stat : AllStatisticKinds()) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed * 1000 + static_cast<uint64_t>(stat.kind));
      const size_t num_shards = 1 + rng.UniformInt(6);
      std::vector<StatisticAccumulator> partials(num_shards,
                                                 StatisticAccumulator(stat));
      for (size_t s = 0; s < num_shards; ++s) {
        const size_t rows = rng.UniformInt(200);
        for (size_t i = 0; i < rows; ++i) {
          // Mix magnitudes so summation order matters: any reassociation
          // in the codec path would show up as a bit difference.
          partials[s].Add(rng.Bernoulli(0.2)
                              ? rng.Gaussian() * 1e12
                              : (rng.Bernoulli(0.3) ? 1.0 : rng.Gaussian()));
        }
      }

      // In-process fold: seed with shard 0, merge 1..N-1 ascending.
      StatisticAccumulator direct = partials[0];
      for (size_t s = 1; s < num_shards; ++s) direct.Merge(partials[s]);

      // Wire fold: same shape, but every operand went through
      // JSON text and back.
      std::vector<StatisticAccumulator> decoded;
      for (const StatisticAccumulator& p : partials) {
        auto parsed = ParseJson(WriteJson(p.ToJson()));
        ASSERT_TRUE(parsed.ok());
        auto back = StatisticAccumulator::FromJson(*parsed, stat);
        ASSERT_TRUE(back.ok()) << back.status().ToString();
        decoded.push_back(std::move(back).value());
      }
      StatisticAccumulator wire = decoded[0];
      for (size_t s = 1; s < num_shards; ++s) wire.Merge(decoded[s]);

      EXPECT_EQ(wire.count(), direct.count())
          << StatisticKindName(stat.kind) << " seed " << seed;
      EXPECT_TRUE(BitEqual(wire.Finalize(), direct.Finalize()))
          << StatisticKindName(stat.kind) << " seed " << seed << ": "
          << wire.Finalize() << " vs " << direct.Finalize();
    }
  }
}

TEST(AccumulatorCodec, WireFormIsStableUnderRoundTrip) {
  // ToJson∘FromJson∘ToJson is the identity on documents: no field is
  // dropped, re-defaulted, or re-rounded by a decode/encode cycle.
  for (const Statistic& stat : AllStatisticKinds()) {
    Rng rng(7 + static_cast<uint64_t>(stat.kind));
    StatisticAccumulator acc(stat);
    for (int i = 0; i < 300; ++i) acc.Add(rng.Gaussian(3.0, 10.0));
    const std::string wire = WriteJson(acc.ToJson());
    auto parsed = ParseJson(wire);
    ASSERT_TRUE(parsed.ok());
    auto decoded = StatisticAccumulator::FromJson(*parsed, stat);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(WriteJson(decoded->ToJson()), wire)
        << StatisticKindName(stat.kind);
  }
}

TEST(AccumulatorCodec, NonFiniteSumsSurviveTheWire) {
  // Hex-encoded IEEE-754 bit patterns carry NaN/Inf states that JSON
  // numbers cannot; an overflowed sum must not decode as null/0.
  const Statistic stat = Statistic::Sum({0}, 1);
  StatisticAccumulator acc(stat);
  acc.Add(std::numeric_limits<double>::infinity());
  acc.Add(-std::numeric_limits<double>::infinity());  // sum is now NaN
  auto parsed = ParseJson(WriteJson(acc.ToJson()));
  ASSERT_TRUE(parsed.ok());
  auto decoded = StatisticAccumulator::FromJson(*parsed, stat);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(BitEqual(decoded->Finalize(), acc.Finalize()));
}

TEST(AccumulatorCodec, RejectsMalformedDocuments) {
  const Statistic stat = Statistic::MedianOf({0}, 1);
  const char* cases[] = {
      R"([1])",                                  // not an object
      R"({"count": -1, "sum": "0x0"})",          // negative count
      R"({"count": 1.5, "sum": "0x0"})",         // fractional count
      R"({"count": 1, "sum": "zebra"})",         // unparseable hex
      R"({"count": 1, "sum": 12})",              // sum must be hex string
      R"({"count": 1, "sum": "0x0", "sketch": [1]})",  // sketch not object
  };
  for (const char* text : cases) {
    auto json = ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    auto decoded = StatisticAccumulator::FromJson(*json, stat);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << text;
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(QuantileSketchCodec, RoundTripIsBitExactEvenAfterCompaction) {
  // Push far past capacity so the compactor hierarchy, parities, and
  // counters all carry state, then require the document and the median
  // to survive a round trip bit for bit.
  QuantileSketch sketch(64);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) sketch.Add(rng.Gaussian() * 100.0);
  ASSERT_FALSE(sketch.exact());  // compactions really happened
  const std::string wire = WriteJson(sketch.ToJson());
  auto parsed = ParseJson(wire);
  ASSERT_TRUE(parsed.ok());
  auto decoded = QuantileSketch::FromJson(*parsed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(WriteJson(decoded->ToJson()), wire);
  EXPECT_EQ(decoded->count(), sketch.count());
  EXPECT_EQ(decoded->compactions(), sketch.compactions());
  EXPECT_TRUE(BitEqual(decoded->Median(), sketch.Median()));

  // Merging deserialized sketches equals merging the originals.
  QuantileSketch other(64);
  for (int i = 0; i < 3000; ++i) other.Add(rng.Gaussian(50, 10));
  auto other_back = QuantileSketch::FromJson(*ParseJson(
      WriteJson(other.ToJson())));
  ASSERT_TRUE(other_back.ok());
  QuantileSketch merged_direct = sketch;
  merged_direct.Merge(other);
  decoded->Merge(*other_back);
  EXPECT_EQ(WriteJson(decoded->ToJson()), WriteJson(merged_direct.ToJson()));
}

// ------------------------------------------ shard-evaluate wire codecs

dist::ShardEvaluateRequest SampleShardRequest() {
  dist::ShardEvaluateRequest r;
  r.dataset = "trips";
  r.has_fingerprint = true;
  r.fingerprint = 0xDEADBEEFCAFEF00Dull;
  r.statistic = Statistic::Average({0, 1}, 2);
  r.num_shards = 8;
  r.order_by = 0;
  r.columns = {0, 1, 2};
  r.shards = {2, 3, 5};
  r.queries = {Region({0.0, 0.0}, {1.0, 1.0}),
               Region({-3.5, 2.25}, {0.5, 4.0})};
  r.deadline_seconds = 12.5;
  return r;
}

TEST(ShardEvaluateCodec, RequestRoundTripIsLossless) {
  const dist::ShardEvaluateRequest original = SampleShardRequest();
  const JsonValue encoded = ShardEvaluateRequestToJson(original);
  auto decoded = ShardEvaluateRequestFromJson(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(WriteJson(ShardEvaluateRequestToJson(*decoded)),
            WriteJson(encoded));
  EXPECT_EQ(decoded->dataset, original.dataset);
  EXPECT_TRUE(decoded->has_fingerprint);
  // The fingerprint uses the full 64-bit range — a JSON number would
  // round it above 2^53; the hex-string wire form must not.
  EXPECT_EQ(decoded->fingerprint, original.fingerprint);
  EXPECT_EQ(decoded->num_shards, original.num_shards);
  EXPECT_EQ(decoded->order_by, original.order_by);
  EXPECT_EQ(decoded->columns, original.columns);
  EXPECT_EQ(decoded->shards, original.shards);
  ASSERT_EQ(decoded->queries.size(), original.queries.size());
  for (size_t i = 0; i < original.queries.size(); ++i) {
    EXPECT_EQ(decoded->queries[i], original.queries[i]);
  }
  EXPECT_EQ(decoded->deadline_seconds, original.deadline_seconds);

  // Without a fingerprint the key is absent, and decodes as "unchecked".
  dist::ShardEvaluateRequest bare = original;
  bare.has_fingerprint = false;
  bare.fingerprint = 0;
  const std::string bare_wire = WriteJson(ShardEvaluateRequestToJson(bare));
  EXPECT_EQ(bare_wire.find("fingerprint"), std::string::npos);
  auto bare_back = ShardEvaluateRequestFromJson(*ParseJson(bare_wire));
  ASSERT_TRUE(bare_back.ok());
  EXPECT_FALSE(bare_back->has_fingerprint);
}

TEST(ShardEvaluateCodec, RequestRejectsBadDocuments) {
  const std::string valid =
      WriteJson(ShardEvaluateRequestToJson(SampleShardRequest()));
  // Mutate one field at a time off a valid document.
  auto mutate = [&](const std::string& key, const std::string& value) {
    auto json = ParseJson(valid);
    EXPECT_TRUE(json.ok());
    json->Set(key, *ParseJson(value));
    return WriteJson(*json);
  };
  const std::string cases[] = {
      mutate("dataset", "17"),            // wrong type
      mutate("num_shards", "0"),          // must be >= 1
      mutate("shards", "[]"),             // empty assignment
      mutate("shards", "[3, 2, 5]"),      // not ascending
      mutate("shards", "[2, 2, 5]"),      // duplicate (not strict)
      mutate("shards", "[2, 3, 8]"),      // index >= num_shards
      mutate("order_by", "1.5"),          // fractional
      mutate("deadline_seconds", "-1"),   // negative
      mutate("fingerprint", "\"xyz\""),   // unparseable hex
      R"({"statistic": {"region_cols": [0]}, "num_shards": 1,
          "shards": [0], "queries": []})",  // missing dataset
  };
  for (const std::string& text : cases) {
    auto json = ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    auto decoded = ShardEvaluateRequestFromJson(*json);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << text;
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(ShardEvaluateCodec, ResponsePartialsSurviveBitExactly) {
  // partials[q][s] round-trips with merge-law fidelity: finalizing a
  // fold of decoded partials equals finalizing a fold of the originals.
  const Statistic stat = Statistic::VarianceOf({0}, 1);
  Rng rng(314);
  dist::ShardEvaluateResponse response;
  for (int q = 0; q < 3; ++q) {
    std::vector<StatisticAccumulator> row;
    for (int s = 0; s < 4; ++s) {
      StatisticAccumulator acc(stat);
      const size_t rows = rng.UniformInt(50);
      for (size_t i = 0; i < rows; ++i) acc.Add(rng.Gaussian() * 1e6);
      row.push_back(std::move(acc));
    }
    response.partials.push_back(std::move(row));
  }
  auto parsed = ParseJson(WriteJson(ShardEvaluateResponseToJson(response)));
  ASSERT_TRUE(parsed.ok());
  auto decoded = ShardEvaluateResponseFromJson(*parsed, stat);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->partials.size(), response.partials.size());
  for (size_t q = 0; q < response.partials.size(); ++q) {
    ASSERT_EQ(decoded->partials[q].size(), response.partials[q].size());
    StatisticAccumulator direct = response.partials[q][0];
    StatisticAccumulator wire = decoded->partials[q][0];
    for (size_t s = 1; s < response.partials[q].size(); ++s) {
      direct.Merge(response.partials[q][s]);
      wire.Merge(decoded->partials[q][s]);
    }
    EXPECT_EQ(wire.count(), direct.count()) << "query " << q;
    EXPECT_TRUE(BitEqual(wire.Finalize(), direct.Finalize())) << "query " << q;
  }
}

TEST(ShardEvaluateCodec, ResponseRejectsBadDocuments) {
  const Statistic stat = Statistic::Count({0});
  for (const char* text :
       {R"({"partials": 3})", R"({"partials": [7]})",
        R"({"partials": [[{"count": -2}]]})", R"([1, 2])"}) {
    auto json = ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    auto decoded = ShardEvaluateResponseFromJson(*json, stat);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << text;
  }
}

TEST(MineRequestCodec, ClusterFlagRoundTripsInBothSchemas) {
  // v1 flat form.
  MineRequest v1;
  v1.dataset = "d";
  v1.statistic = Statistic::Count({0, 1});
  v1.cluster = true;
  auto v1_back = MineRequestFromJson(*ParseJson(
      WriteJson(MineRequestToJson(v1))));
  ASSERT_TRUE(v1_back.ok());
  EXPECT_TRUE(v1_back->cluster);
  // Default stays false when the key is absent.
  auto v1_default = MineRequestFromJson(*ParseJson(
      R"({"dataset": "d", "statistic": {"region_cols": [0]}})"));
  ASSERT_TRUE(v1_default.ok());
  EXPECT_FALSE(v1_default->cluster);

  // v2 named-section form: execution.cluster, surviving both the codec
  // and the v2 ↔ legacy bridge.
  v2::MineRequest v2req = v2::FromLegacy(v1);
  v2req.api_version = 2;
  EXPECT_TRUE(v2req.execution.cluster);
  auto v2_back = MineRequestV2FromJson(*ParseJson(
      WriteJson(MineRequestV2ToJson(v2req))));
  ASSERT_TRUE(v2_back.ok()) << v2_back.status().ToString();
  EXPECT_TRUE(v2_back->execution.cluster);
  EXPECT_TRUE(v2::ToLegacy(*v2_back).cluster);
}

TEST(MineRequestCodec, FuzzedDocumentsNeverCrash) {
  // Structured fuzz: parse random mutations of a valid request document;
  // whenever the JSON itself parses, the codec must return a clean
  // status (either outcome), never crash.
  const std::string valid = WriteJson(MineRequestToJson(RandomizedRequest(5)));
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string input = valid;
    const size_t edits = 1 + rng.UniformInt(8);
    for (size_t e = 0; e < edits; ++e) {
      input[rng.UniformInt(input.size())] =
          static_cast<char>(rng.UniformInt(128));
    }
    auto json = ParseJson(input);
    if (!json.ok()) continue;
    auto decoded = MineRequestFromJson(*json);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace surf
