#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "util/failpoint.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace surf {

namespace {

using Clock = std::chrono::steady_clock;

/// Polling granularity: the unit at which blocked reads/writes re-check
/// the drain flag and their deadline.
constexpr int kPollSliceMs = 20;

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

bool Expired(Clock::time_point deadline) { return Clock::now() >= deadline; }

/// Waits up to one poll slice (bounded by `deadline`) for `events`.
bool PollSlice(int fd, short events, Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  const int timeout_ms = static_cast<int>(
      std::clamp<long long>(remaining.count(), 0, kPollSliceMs));
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

std::string LowerAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

double HttpRequest::RemainingSeconds() const {
  if (deadline == Clock::time_point::max()) {
    return std::numeric_limits<double>::infinity();
  }
  const double remaining =
      std::chrono::duration<double>(deadline - Clock::now()).count();
  return remaining > 0.0 ? remaining : 0.0;
}

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& h : headers) {
    if (h.first == name) return &h.second;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse JsonErrorResponse(int status_code, const std::string& code,
                               const std::string& message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue(code));
  error.Set("message", JsonValue(message));
  JsonValue body = JsonValue::Object();
  body.Set("error", std::move(error));
  HttpResponse response;
  response.status_code = status_code;
  response.body = WriteJson(body) + "\n";
  return response;
}

HttpServer::HttpServer(Options options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.accept_backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // The acceptor polls with a timeout so Shutdown() can stop it without
  // racy cross-thread close() tricks.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  // Thread-per-connection: an admitted keep-alive connection holds its
  // worker until it closes, so the pool must cover max_inflight or
  // admitted connections would starve in the queue behind long-lived
  // ones.
  const size_t workers =
      options_.num_workers > 0
          ? options_.num_workers
          : std::max(ThreadPool::DefaultThreadCount(), options_.max_inflight);
  workers_ = std::make_unique<ThreadPool>(workers);

  draining_.store(false);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Every admitted connection either finishes its in-flight request or
    // notices the drain flag at its next poll slice and closes.
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return stats_.inflight == 0; });
  }
  workers_.reset();
  running_.store(false, std::memory_order_release);
}

HttpServer::Stats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void HttpServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    if (!PollSlice(listen_fd_, POLLIN, DeadlineAfter(1.0))) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections_accepted;
      if (stats_.inflight < options_.max_inflight) {
        ++stats_.inflight;
        admit = true;
      } else {
        ++stats_.connections_rejected;
      }
    }
    if (!admit) {
      // Backpressure: answer 429 inline on the acceptor thread (a fixed
      // small write) rather than queueing unbounded work.
      HttpResponse rejected = JsonErrorResponse(
          429, "overloaded", "server at max in-flight connections");
      rejected.headers.emplace_back("Retry-After", "1");
      WriteResponse(fd, rejected, /*keep_alive=*/false);
      // The client may have already sent its request; close() with
      // unread bytes in the receive queue provokes an RST that can
      // discard the 429 before the client reads it. Half-close our
      // side and briefly drain theirs so the response survives.
      ::shutdown(fd, SHUT_WR);
      const auto drain_deadline = DeadlineAfter(0.05);
      char sink[4096];
      while (!Expired(drain_deadline)) {
        const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
        if (n == 0) break;  // client finished and closed
        if (n < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            break;
          }
          PollSlice(fd, POLLIN, drain_deadline);
        }
      }
      ::close(fd);
      continue;
    }
    workers_->Submit([this, fd] {
      ServeConnection(fd);
      std::lock_guard<std::mutex> lock(mu_);
      --stats_.inflight;
      if (stats_.inflight == 0) drained_cv_.notify_all();
    });
  }
}

namespace {

/// Parses the header section (request line + fields, no trailing CRLF
/// CRLF). Returns an HTTP status code: 0 on success, else the error code
/// to answer with.
int ParseRequestHead(const std::string& head, HttpRequest* request) {
  size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::vector<std::string> parts = SplitString(request_line, ' ');
  if (parts.size() != 3) return 400;
  request->method = parts[0];
  request->target = parts[1];
  if (!StartsWith(parts[2], "HTTP/1.")) return 400;

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) return 400;
    request->headers.emplace_back(LowerAscii(TrimString(line.substr(0, colon))),
                                  TrimString(line.substr(colon + 1)));
  }
  return 0;
}

}  // namespace

int HttpServer::ReadRequest(int fd, HttpRequest* request) {
  // One request per read: surplus bytes beyond Content-Length (HTTP
  // pipelining) are dropped — keep-alive clients that wait for each
  // response before sending the next request (ours all do) never
  // pipeline.
  std::string buffer;
  bool saw_byte = false;
  auto deadline = DeadlineAfter(options_.idle_timeout_seconds);
  size_t head_end = std::string::npos;

  // Phase 1: header section.
  while (true) {
    head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer.size() > options_.max_header_bytes) {
      WriteResponse(fd,
                    JsonErrorResponse(431, "headers_too_large",
                                      "header section exceeds limit"),
                    false);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.parse_errors;
      return -1;
    }
    if (!saw_byte && draining_.load(std::memory_order_acquire) &&
        buffer.empty()) {
      return 0;  // idle connection during drain: close cleanly
    }
    if (Expired(deadline)) {
      if (!saw_byte) return 0;  // idle keep-alive timeout
      WriteResponse(fd,
                    JsonErrorResponse(408, "deadline_exceeded",
                                      "request not received in time"),
                    false);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.request_timeouts;
      return -1;
    }
    PollSlice(fd, POLLIN, deadline);
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (!saw_byte) {
        // The per-request deadline starts at the first byte.
        saw_byte = true;
        deadline = DeadlineAfter(options_.request_deadline_seconds);
      }
      buffer.append(chunk, static_cast<size_t>(n));
    } else if (n == 0) {
      return saw_byte ? -1 : 0;  // EOF
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return saw_byte ? -1 : 0;
    }
  }

  const int parse_code = ParseRequestHead(buffer.substr(0, head_end), request);
  if (parse_code != 0) {
    WriteResponse(fd,
                  JsonErrorResponse(parse_code, "bad_request",
                                    "malformed HTTP request"),
                  false);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.parse_errors;
    return -1;
  }
  if (request->FindHeader("transfer-encoding") != nullptr) {
    WriteResponse(fd,
                  JsonErrorResponse(501, "unsupported",
                                    "chunked transfer encoding not supported"),
                  false);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.parse_errors;
    return -1;
  }

  // Phase 2: Content-Length body.
  size_t content_length = 0;
  if (const std::string* cl = request->FindHeader("content-length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      WriteResponse(fd,
                    JsonErrorResponse(400, "bad_request",
                                      "invalid Content-Length"),
                    false);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.parse_errors;
      return -1;
    }
    content_length = static_cast<size_t>(v);
  }
  if (content_length > options_.max_body_bytes) {
    WriteResponse(fd,
                  JsonErrorResponse(413, "payload_too_large",
                                    "request body exceeds limit"),
                  false);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.parse_errors;
    return -1;
  }

  std::string body = buffer.substr(head_end + 4);
  while (body.size() < content_length) {
    if (Expired(deadline)) {
      WriteResponse(fd,
                    JsonErrorResponse(408, "deadline_exceeded",
                                      "request body not received in time"),
                    false);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.request_timeouts;
      return -1;
    }
    PollSlice(fd, POLLIN, deadline);
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      body.append(chunk, static_cast<size_t>(n));
    } else if (n == 0) {
      return -1;  // EOF mid-body
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return -1;
    }
  }
  body.resize(content_length);
  request->body = std::move(body);
  // Hand the handler what is left of the request deadline, so
  // long-running work can cancel itself instead of burning the worker
  // past a budget the client has already given up on.
  request->deadline = deadline;
  return 1;
}

bool SendAll(int fd, const char* data, size_t size, double timeout_seconds) {
  // A delay action here stalls the write (slow-client simulation); an
  // error action drops the response as if the peer vanished mid-write.
  if (!MaybeFailpoint("net.write").ok()) return false;
  const auto deadline = DeadlineAfter(timeout_seconds);
  size_t sent = 0;
  while (sent < size) {
    if (Expired(deadline)) return false;
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return false;  // should not happen; treat as a dead peer
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel buffer full (tiny SO_SNDBUF, slow reader): wait for
      // writability in bounded slices so the deadline stays live.
      PollSlice(fd, POLLOUT, deadline);
      continue;
    }
    return false;  // hard send error (ECONNRESET, EPIPE, ...)
  }
  return true;
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status_code));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status_code));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\nConnection: ");
  out.append(keep_alive ? "keep-alive" : "close");
  for (const auto& [name, value] : response.headers) {
    out.append("\r\n");
    out.append(name);
    out.append(": ");
    out.append(value);
  }
  out.append("\r\n\r\n");
  out.append(response.body);

  const bool ok =
      SendAll(fd, out.data(), out.size(), options_.request_deadline_seconds);
  if (!ok) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_failures;
  }
  return ok;
}

void HttpServer::ServeConnection(int fd) {
  while (true) {
    HttpRequest request;
    const int got = ReadRequest(fd, &request);
    if (got <= 0) break;

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      // A handler bug must not kill the worker or vanish silently: log
      // it, count it, and tell the client something went wrong.
      SURF_LOG(kError) << "handler threw for " << request.method << " "
                       << request.target << ": " << e.what();
      response = JsonErrorResponse(500, "internal", "handler threw");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_exceptions;
    } catch (...) {
      SURF_LOG(kError) << "handler threw a non-exception type for "
                       << request.method << " " << request.target;
      response = JsonErrorResponse(500, "internal", "handler threw");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_exceptions;
    }

    // Close after this response when the client asked to, or when the
    // server is draining (so clients re-connect elsewhere).
    bool keep_alive = !draining_.load(std::memory_order_acquire);
    if (const std::string* conn = request.FindHeader("connection")) {
      if (LowerAscii(*conn) == "close") keep_alive = false;
    }
    const bool written = WriteResponse(fd, response, keep_alive);
    if (written) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests_served;
    }
    if (!written || !keep_alive) break;
  }
  ::close(fd);
}

}  // namespace surf
