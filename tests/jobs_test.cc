// Tests for the asynchronous job core (ISSUE 4): Submit/Wait parity with
// the blocking Mine, cooperative cancellation mid-search and
// mid-training, deadlines, cancel-after-completion, the single-flight
// leader-cancellation takeover, and the JobTable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "api/api_v2.h"
#include "data/synthetic.h"
#include "serve/mine_job.h"
#include "serve/mining_service.h"
#include "util/cancel.h"
#include "util/stopwatch.h"

namespace surf {
namespace {

SyntheticDataset DensityData(size_t dims, size_t k, uint64_t seed = 42) {
  SyntheticSpec spec;
  spec.dims = dims;
  spec.num_gt_regions = k;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 6000;
  spec.seed = seed;
  return SyntheticGenerator::Generate(spec);
}

/// A request with a small (fast) training recipe and quick search.
MineRequest SmallRequest(const std::string& dataset_name, double threshold) {
  MineRequest request;
  request.dataset = dataset_name;
  request.statistic = Statistic::Count({0, 1});
  request.threshold = threshold;
  request.workload.num_queries = 800;
  request.surrogate.gbrt.n_estimators = 30;
  request.surrogate.gbrt.max_depth = 4;
  request.finder.gso.max_iterations = 25;
  request.finder.gso.num_glowworms = 60;
  request.finder.auto_scale_gso = false;
  return request;
}

/// Same cache key as SmallRequest, but a search long enough to cancel:
/// convergence disabled and a huge iteration budget.
MineRequest LongSearchRequest(const std::string& dataset_name,
                              double threshold) {
  MineRequest request = SmallRequest(dataset_name, threshold);
  request.finder.gso.max_iterations = 200000;
  request.finder.gso.convergence_tol_frac = 0.0;
  return request;
}

class JobsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = DensityData(2, 1);
    MiningService::Options options;
    options.num_threads = 4;
    service_.emplace(options);
    ASSERT_TRUE(service_->RegisterDataset("d", data_.data).ok());
  }

  MiningService& service() { return *service_; }

  SyntheticDataset data_;
  std::optional<MiningService> service_;
};

// ------------------------------------------------------------ Submit/Wait

TEST_F(JobsTest, SubmitWaitMatchesBlockingMineBitIdentically) {
  const MineRequest request = SmallRequest("d", 400.0);
  const MineResponse blocking = service().Mine(request);
  ASSERT_TRUE(blocking.status.ok()) << blocking.status.ToString();

  auto job = service().Submit(request);
  const MineResponse& async = job->Wait();
  ASSERT_TRUE(async.status.ok()) << async.status.ToString();
  EXPECT_TRUE(async.cache_hit);  // the blocking call trained the entry

  ASSERT_EQ(async.result.regions.size(), blocking.result.regions.size());
  for (size_t i = 0; i < async.result.regions.size(); ++i) {
    for (size_t j = 0; j < async.result.regions[i].region.dims(); ++j) {
      EXPECT_EQ(async.result.regions[i].region.center(j),
                blocking.result.regions[i].region.center(j));
      EXPECT_EQ(async.result.regions[i].region.half_length(j),
                blocking.result.regions[i].region.half_length(j));
    }
    EXPECT_EQ(async.result.regions[i].estimate,
              blocking.result.regions[i].estimate);
  }
  EXPECT_TRUE(job->done());
  EXPECT_EQ(job->progress().phase, MineJob::Phase::kDone);

  MineResponse polled;
  EXPECT_TRUE(job->TryGet(&polled));
  EXPECT_TRUE(polled.status.ok());
}

TEST_F(JobsTest, ValidationRunsOnEveryEntryPoint) {
  MineRequest request = SmallRequest("d", 400.0);
  request.record_evaluations = true;
  request.validate = false;
  const MineResponse blocking = service().Mine(request);
  EXPECT_EQ(blocking.status.code(), StatusCode::kInvalidArgument);

  auto job = service().Submit(request);
  EXPECT_EQ(job->Wait().status.code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- cancellation

TEST_F(JobsTest, CancelMidSearchStopsWithinAnIterationWithPartials) {
  // Warm the cache so the long job goes straight to searching.
  ASSERT_TRUE(service().Mine(SmallRequest("d", 400.0)).status.ok());

  auto job = service().Submit(LongSearchRequest("d", 400.0));
  // Wait until the search is demonstrably under way.
  for (int i = 0; i < 2000 && job->progress().iterations < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(job->progress().iterations, 3u) << "search never started";

  Stopwatch timer;
  job->Cancel();
  const MineResponse& response = job->Wait();
  const double cancel_latency = timer.ElapsedSeconds();

  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(response.result.report.cancelled);
  // Stopped long before the 200k-iteration budget.
  EXPECT_LT(response.result.report.iterations, 100000u);
  // ... and promptly in wall-clock terms (one iteration is ~sub-ms; the
  // bound is generous for loaded CI machines).
  EXPECT_LT(cancel_latency, 5.0);
  // Partial provenance rides along with the Cancelled status.
  EXPECT_TRUE(response.cache_hit);
  EXPECT_GT(response.provenance.training_set_size, 0u);
}

TEST_F(JobsTest, CancelAfterCompletionIsHarmlessNoOp) {
  auto job = service().Submit(SmallRequest("d", 400.0));
  const MineResponse& response = job->Wait();
  ASSERT_TRUE(response.status.ok());
  const size_t regions = response.result.regions.size();

  job->Cancel();  // must not disturb the published response
  EXPECT_TRUE(job->done());
  MineResponse after;
  ASSERT_TRUE(job->TryGet(&after));
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.result.regions.size(), regions);
  EXPECT_EQ(job->progress().phase, MineJob::Phase::kDone);
}

TEST_F(JobsTest, DeadlineExceededReturnsCancelled) {
  // Warm the cache; the deadline should then bite mid-search.
  ASSERT_TRUE(service().Mine(SmallRequest("d", 400.0)).status.ok());

  v2::MineRequest request = v2::FromLegacy(LongSearchRequest("d", 400.0));
  request.api_version = 2;
  request.execution.deadline_seconds = 0.15;
  Stopwatch timer;
  const v2::MineResponse response = service().Mine(request);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(response.result.report.cancelled);
  EXPECT_LT(timer.ElapsedSeconds(), 10.0);
}

TEST_F(JobsTest, CancelDuringTrainingAbortsPromptly) {
  // A fresh key with an expensive fit: cancellation must land between
  // boosting rounds, well before the full training completes.
  MineRequest request = SmallRequest("d", 400.0);
  request.workload.num_queries = 4000;
  request.surrogate.gbrt.n_estimators = 4000;
  request.surrogate.gbrt.max_depth = 6;

  auto job = service().Submit(request);
  for (int i = 0; i < 2000 &&
                  job->progress().phase == MineJob::Phase::kQueued;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  job->Cancel();
  const MineResponse& response = job->Wait();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
}

// -------------------------------------------- single-flight leader cancel

TEST_F(JobsTest, CancelledTrainingLeaderDoesNotStrandWaiters) {
  // A slow-to-train key: the leader is cancelled mid-fit while several
  // blocking waiters share its in-flight training. The waiters (whose
  // own tokens never fire) must not be stranded: one takes over as the
  // new leader and every waiter ends OK.
  MineRequest request = SmallRequest("d", 400.0);
  request.workload.num_queries = 4000;
  request.surrogate.gbrt.n_estimators = 1500;
  request.surrogate.gbrt.max_depth = 6;

  auto leader = service().Submit(request);
  for (int i = 0; i < 2000 &&
                  leader->progress().phase == MineJob::Phase::kQueued;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  constexpr size_t kWaiters = 3;
  std::vector<std::thread> threads;
  std::vector<MineResponse> responses(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) {
    threads.emplace_back([this, &request, &responses, i] {
      responses[i] = service().Mine(request);
    });
  }
  // Give the waiters time to join the in-flight training, then cancel
  // the leader.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  leader->Cancel();

  const MineResponse& leader_response = leader->Wait();
  for (auto& t : threads) t.join();

  // The leader may have been cancelled mid-training (Cancelled) or may
  // have finished the fit before the token was observed (OK): both are
  // legal; what is not legal is a stranded or Cancelled *waiter*.
  EXPECT_TRUE(leader_response.status.ok() ||
              leader_response.status.code() == StatusCode::kCancelled)
      << leader_response.status.ToString();
  for (size_t i = 0; i < kWaiters; ++i) {
    EXPECT_TRUE(responses[i].status.ok())
        << "waiter " << i << ": " << responses[i].status.ToString();
    EXPECT_GT(responses[i].provenance.training_set_size, 0u);
  }
  // The entry is usable afterwards regardless of who trained it.
  const MineResponse after = service().Mine(request);
  EXPECT_TRUE(after.status.ok());
  EXPECT_TRUE(after.cache_hit);
}

TEST_F(JobsTest, CancelledWaitersObserveCancelled) {
  // Waiters whose own token has fired must *not* take over: they
  // observe Cancelled.
  MineRequest request = SmallRequest("d", 400.0);
  request.workload.num_queries = 4000;
  request.surrogate.gbrt.n_estimators = 1500;
  request.surrogate.gbrt.max_depth = 6;

  v2::MineRequest with_deadline = v2::FromLegacy(request);
  with_deadline.api_version = 2;
  with_deadline.execution.deadline_seconds = 120.0;

  auto leader = service().Submit(with_deadline);
  for (int i = 0; i < 2000 &&
                  leader->progress().phase == MineJob::Phase::kQueued;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto waiter = service().Submit(with_deadline);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Cancel both: the waiter's own token fires, so it must not retrain.
  waiter->Cancel();
  leader->Cancel();
  // Neither job may hang, and the only legal non-OK outcome is
  // Cancelled (OK means the fit finished before the token was seen).
  const MineResponse& leader_response = leader->Wait();
  EXPECT_TRUE(leader_response.status.ok() ||
              leader_response.status.code() == StatusCode::kCancelled)
      << leader_response.status.ToString();
  const MineResponse& waiter_response = waiter->Wait();
  EXPECT_TRUE(waiter_response.status.ok() ||
              waiter_response.status.code() == StatusCode::kCancelled)
      << waiter_response.status.ToString();
}

// --------------------------------------------------------------- JobTable

TEST(JobTableTest, AddFindRemoveAndRetention) {
  SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());

  JobTable table(/*max_finished=*/2);
  std::vector<std::string> ids;
  std::vector<std::shared_ptr<MineJob>> jobs;
  for (int i = 0; i < 4; ++i) {
    auto job = service.Submit(SmallRequest("d", 400.0));
    job->Wait();
    ids.push_back(table.Add(job));
    jobs.push_back(std::move(job));
  }
  // Ids are unique and monotonic.
  EXPECT_EQ(ids[0], "job-1");
  EXPECT_NE(ids[0], ids[1]);
  // Retention keeps at most 2 finished jobs: the oldest were evicted.
  EXPECT_LE(table.size(), 2u);
  EXPECT_EQ(table.Find(ids[0]), nullptr);
  EXPECT_NE(table.Find(ids[3]), nullptr);
  // Eviction never invalidates an outstanding handle.
  EXPECT_TRUE(jobs[0]->done());

  EXPECT_TRUE(table.Remove(ids[3]));
  EXPECT_FALSE(table.Remove(ids[3]));
  EXPECT_EQ(table.Find(ids[3]), nullptr);
}

TEST(JobTableTest, AgeCapEvictsOldFinishedJobsAndCountsEvictions) {
  SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());

  JobTable::Options retention;
  retention.max_finished = 256;  // count cap never reached here
  retention.max_age_seconds = 0.2;
  JobTable table(retention);
  EXPECT_EQ(table.evictions(), 0u);

  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    auto job = service.Submit(SmallRequest("d", 400.0));
    job->Wait();
    ids.push_back(table.Add(job));
  }
  // Mining wall-time may already exceed the 0.2s horizon between Adds,
  // so some jobs can be age-evicted by the Add-time retention pass —
  // but never lost: evicted + resident always accounts for all three.
  EXPECT_EQ(table.evictions() + table.size(), 3u);

  // Past the horizon, a sweep drains every remaining finished job.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  table.Sweep();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evictions(), 3u);
  for (const std::string& id : ids) {
    EXPECT_EQ(table.Find(id), nullptr);
  }
}

TEST(JobTableTest, CountCapEvictionAdvancesTheEvictionCounter) {
  SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());

  JobTable table(/*max_finished=*/2);
  for (int i = 0; i < 5; ++i) {
    auto job = service.Submit(SmallRequest("d", 400.0));
    job->Wait();
    table.Add(job);
  }
  // Bounded growth: the table never exceeds the cap (all jobs are
  // finished), and each eviction was counted.
  EXPECT_LE(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 5u - table.size());
}

TEST(JobTableTest, LiveJobsAreNeverAgeEvicted) {
  JobTable::Options retention;
  retention.max_age_seconds = 0.0;  // everything finished is evictable
  JobTable table(retention);

  SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());

  v2::MineRequest slow = v2::FromLegacy(SmallRequest("d", 400.0));
  slow.execution.deadline_seconds = 30.0;
  auto job = service.Submit(slow);
  const std::string id = table.Add(job);
  // The job may or may not still be running at this instant, but a
  // sweep must never evict a live one; once it finishes, the age cap of
  // zero evicts it on the next sweep.
  if (!job->done()) {
    table.Sweep();
    EXPECT_NE(table.Find(id), nullptr);
  }
  job->Wait();
  table.Sweep();
  EXPECT_EQ(table.Find(id), nullptr);
}

// ------------------------------------------------------------ CancelToken

TEST(CancelTokenTest, InertDefaultAndSourceSemantics) {
  CancelToken inert;
  EXPECT_FALSE(inert.cancelled());
  EXPECT_FALSE(inert.can_cancel());
  EXPECT_TRUE(inert.ToStatus().ok());

  CancelSource source;
  CancelToken token = source.token();
  EXPECT_TRUE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
  source.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, DeadlineFiresAndImmediateDeadlineCancels) {
  CancelSource source;
  source.SetDeadline(0.05);
  CancelToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(token.cancelled());

  CancelSource immediate;
  immediate.SetDeadline(0.0);
  EXPECT_TRUE(immediate.cancelled());
}

}  // namespace
}  // namespace surf
