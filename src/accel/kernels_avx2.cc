// AVX2 kernel backend. Compiled with -mavx2 -ffp-contract=off (per-file
// flags from CMakeLists.txt); when the toolchain cannot build AVX2 this
// TU degrades to a never-selected table of the generic reference
// kernels. FP contraction is disabled so stray scalar code in this TU
// cannot be FMA-fused into results that differ from the generic
// reference.
//
// Only the mask kernels carry vector bodies: the histogram and tree
// walk resolve to the shared scalar reference routines — their
// gather-based vector forms measured slower than the scalar loops
// (see kernels.h and docs/perf.md).

#include "accel/kernels_detail.h"

#if defined(SURF_ACCEL_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <array>
#include <cstring>

namespace surf {
namespace {

using accel_detail::MaskCountTail;
using accel_detail::MaskRangeTail;

// ------------------------------------------------------------ mask scan

/// kExpandBits[m] has byte j = (m >> j) & 1: turns an 8-bit compare
/// movemask into eight 0/1 mask bytes with one table load.
constexpr std::array<uint64_t, 256> kExpandBits = [] {
  std::array<uint64_t, 256> table{};
  for (int m = 0; m < 256; ++m) {
    uint64_t v = 0;
    for (int j = 0; j < 8; ++j) {
      if (m & (1 << j)) v |= uint64_t{1} << (8 * j);
    }
    table[static_cast<size_t>(m)] = v;
  }
  return table;
}();

void MaskRangeAvx2(const double* col, size_t n, double lo, double hi,
                   uint8_t* mask) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t r = 0;
  // 8 rows per iteration: two 4-wide NLT/NGT compares (unordered-true,
  // so NaN keeps the row — the legacy semantics), movemask to 8 bits,
  // table-expand to bytes, AND into the mask.
  for (; r + 8 <= n; r += 8) {
    const __m256d c0 = _mm256_loadu_pd(col + r);
    const __m256d c1 = _mm256_loadu_pd(col + r + 4);
    const __m256d in0 =
        _mm256_and_pd(_mm256_cmp_pd(c0, vlo, _CMP_NLT_UQ),
                      _mm256_cmp_pd(c0, vhi, _CMP_NGT_UQ));
    const __m256d in1 =
        _mm256_and_pd(_mm256_cmp_pd(c1, vlo, _CMP_NLT_UQ),
                      _mm256_cmp_pd(c1, vhi, _CMP_NGT_UQ));
    const int bits =
        _mm256_movemask_pd(in0) | (_mm256_movemask_pd(in1) << 4);
    uint64_t cur;
    std::memcpy(&cur, mask + r, sizeof(cur));
    cur &= kExpandBits[static_cast<size_t>(bits)];
    std::memcpy(mask + r, &cur, sizeof(cur));
  }
  MaskRangeTail(col, r, n, lo, hi, mask);
}

uint64_t MaskCountAvx2(const uint8_t* mask, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t r = 0;
  for (; r + 32 <= n; r += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + r));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, _mm256_setzero_si256()));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         MaskCountTail(mask, r, n);
}

}  // namespace

const bool kAccelAvx2Compiled = true;
// Histogram and tree walk: the shared scalar reference (compiled in the
// generic TU — no wide-ISA recompilation), per the measurements in
// kernels.h.
const AccelOps kAccelAvx2Ops = {
    /*backend=*/1,
    /*name=*/"avx2",
    accel_detail::HistU8UnitRef,
    accel_detail::TreePredictRef,
    MaskRangeAvx2,
    MaskCountAvx2,
};

}  // namespace surf

#else  // !SURF_ACCEL_HAVE_AVX2

namespace surf {

const bool kAccelAvx2Compiled = false;
// Never-selected placeholder (AccelSupported() gates on the flag above):
// the generic reference kernels under the avx2 label.
const AccelOps kAccelAvx2Ops = {
    /*backend=*/1,
    /*name=*/"avx2",
    accel_detail::HistU8UnitRef,
    accel_detail::TreePredictRef,
    accel_detail::MaskRangeRef,
    accel_detail::MaskCountRef,
};

}  // namespace surf

#endif
