// AVX-512 kernel backend (F + BW + DQ + VL). Compiled with
// -mavx512f -mavx512bw -mavx512dq -mavx512vl -ffp-contract=off via
// per-file flags from CMakeLists.txt; degrades to a never-selected table
// of the generic reference kernels when the toolchain lacks AVX-512
// support.
//
// As in the AVX2 TU, only the mask kernels carry vector bodies — the
// histogram (gather-add-scatter) and tree walk (four dependent gathers
// per level) vector forms measured 2.6–4× slower than the shared scalar
// reference routines they now alias (see kernels.h and docs/perf.md).

#include "accel/kernels_detail.h"

#if defined(SURF_ACCEL_HAVE_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace surf {
namespace {

using accel_detail::MaskCountTail;
using accel_detail::MaskRangeTail;

// ------------------------------------------------------------ mask scan

void MaskRangeAvx512(const double* col, size_t n, double lo, double hi,
                     uint8_t* mask) {
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vhi = _mm512_set1_pd(hi);
  size_t r = 0;
  // 16 rows per iteration: two 8-wide NLT/NGT compares (unordered-true,
  // so NaN keeps the row) land directly in k-registers; movm expands the
  // 16 bits to 0x00/0xFF bytes which AND into the mask (mask bytes are
  // 0/1, so 0xFF preserves them).
  for (; r + 16 <= n; r += 16) {
    const __m512d c0 = _mm512_loadu_pd(col + r);
    const __m512d c1 = _mm512_loadu_pd(col + r + 8);
    const __mmask8 m0 =
        _mm512_cmp_pd_mask(c0, vlo, _CMP_NLT_UQ) &
        _mm512_cmp_pd_mask(c0, vhi, _CMP_NGT_UQ);
    const __mmask8 m1 =
        _mm512_cmp_pd_mask(c1, vlo, _CMP_NLT_UQ) &
        _mm512_cmp_pd_mask(c1, vhi, _CMP_NGT_UQ);
    const __mmask16 m =
        static_cast<__mmask16>(m0) |
        static_cast<__mmask16>(static_cast<__mmask16>(m1) << 8);
    const __m128i keep = _mm_movm_epi8(m);
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + r));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mask + r),
                     _mm_and_si128(cur, keep));
  }
  MaskRangeTail(col, r, n, lo, hi, mask);
}

uint64_t MaskCountAvx512(const uint8_t* mask, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t r = 0;
  for (; r + 64 <= n; r += 64) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(mask + r));
    acc = _mm512_add_epi64(acc, _mm512_sad_epu8(v, _mm512_setzero_si512()));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc)) +
         MaskCountTail(mask, r, n);
}

}  // namespace

const bool kAccelAvx512Compiled = true;
// Histogram and tree walk: the shared scalar reference (compiled in the
// generic TU — no wide-ISA recompilation), per the measurements in
// kernels.h.
const AccelOps kAccelAvx512Ops = {
    /*backend=*/2,
    /*name=*/"avx512",
    accel_detail::HistU8UnitRef,
    accel_detail::TreePredictRef,
    MaskRangeAvx512,
    MaskCountAvx512,
};

}  // namespace surf

#else  // !SURF_ACCEL_HAVE_AVX512

namespace surf {

const bool kAccelAvx512Compiled = false;
// Never-selected placeholder (AccelSupported() gates on the flag above):
// the generic reference kernels under the avx512 label.
const AccelOps kAccelAvx512Ops = {
    /*backend=*/2,
    /*name=*/"avx512",
    accel_detail::HistU8UnitRef,
    accel_detail::TreePredictRef,
    accel_detail::MaskRangeRef,
    accel_detail::MaskCountRef,
};

}  // namespace surf

#endif
