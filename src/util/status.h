#ifndef SURF_UTIL_STATUS_H_
#define SURF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace surf {

/// \brief Error codes used across the library.
///
/// SuRF follows the RocksDB/Arrow convention of returning a `Status` (or
/// `StatusOr<T>`) from any operation that can fail for a reason the caller
/// may want to recover from (I/O, malformed configuration, empty inputs).
/// Programmer errors (out-of-range indices, dimension mismatches that can
/// only arise from incorrect call sites) are guarded with assertions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kTimedOut,
  kInternal,
  kAlreadyExists,
  kCancelled,
  kUnavailable,
};

/// \brief A lightweight success/error result carrying a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable representation, e.g. "InvalidArgument: empty dataset".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// Accessing the value of an error-state `StatusOr` is a programmer error
/// and trips an assertion.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on error StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on error StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on error StatusOr");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status from an expression, RocksDB-style.
#define SURF_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::surf::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace surf

#endif  // SURF_UTIL_STATUS_H_
