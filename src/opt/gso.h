#ifndef SURF_OPT_GSO_H_
#define SURF_OPT_GSO_H_

#include <cstdint>
#include <vector>

#include "ml/kde.h"
#include "opt/objective.h"
#include "opt/solution_space.h"
#include "util/cancel.h"
#include "util/trace.h"

namespace surf {

/// \brief Glowworm Swarm Optimization parameters.
///
/// Defaults follow Krishnanand & Ghose '09 as adopted by the paper
/// (§V-D: T = 100, L = 100, r0 = 3, γ = 0.6, ρ = 0.4). The paper's §V-G
/// dimension-aware tuning (L = 50·d, r0 = (1 − ½^{1/L})^{1/d}) is exposed
/// through `PaperScaled`.
struct GsoParams {
  /// Number of glowworms L.
  size_t num_glowworms = 100;
  /// Maximum iterations T.
  size_t max_iterations = 100;
  /// Luciferin decay ρ (Eq. 6).
  double luciferin_decay = 0.4;
  /// Luciferin enhancement γ (Eq. 6).
  double luciferin_gain = 0.6;
  /// Initial luciferin ℓ(0).
  double initial_luciferin = 5.0;
  /// Initial neighborhood radius r0, as a fraction of the flat-space
  /// diagonal (the classic absolute value 3 assumed unit-ish domains).
  double initial_radius_frac = 0.35;
  /// Maximum sensor radius r_s (fraction of the diagonal).
  double sensor_radius_frac = 0.45;
  /// Radius adaptation rate β.
  double radius_beta = 0.08;
  /// Desired neighbour count n_t for radius adaptation.
  size_t desired_neighbors = 5;
  /// Movement step s (fraction of the diagonal).
  double step_frac = 0.01;
  /// Early stop when the swarm's mean movement stays below this fraction
  /// of the diagonal for `convergence_window` iterations (0 disables).
  double convergence_tol_frac = 5e-4;
  size_t convergence_window = 10;
  /// Extension beyond the paper: per-iteration probability that an
  /// *invalid* particle with no brighter neighbour re-seeds at a fresh
  /// random position. The paper leaves such glowworms stationary; enable
  /// this when the threshold is so extreme that the initial spread may
  /// miss every valid pocket (e.g. ratio ≥ 0.9 requests). 0 = paper
  /// behaviour.
  double exploration_restart_prob = 0.0;
  /// When a KDE prior is supplied, this fraction of the swarm is
  /// initialized with centers drawn from the KDE (jittered data
  /// locations) instead of uniformly — §III-B's "use p_A(a) as a guide"
  /// applied at t = 0, which is what lets the swarm discover narrow valid
  /// basins (e.g. a single dense box occupying 2 % of the domain). 0
  /// restores fully uniform initialization.
  double kde_seeded_fraction = 0.5;
  /// Per-iteration Eq. 8 re-weighting of neighbour selection by KDE
  /// region mass. One RegionMass integral per particle per iteration —
  /// by far the most expensive KDE use; latency-sensitive serving
  /// configurations disable it and keep the (one-off) seeded
  /// initialization above.
  bool kde_mass_guidance = true;
  uint64_t seed = 99;

  /// The paper's §V-G scaling for data dimensionality d (region space is
  /// 2d-dimensional): L = 50·d, r0 = (1 − ½^{1/L})^{1/d}.
  static GsoParams PaperScaled(size_t data_dims);
};

/// \brief Per-iteration trace used by the convergence experiments (Fig. 9).
struct GsoHistory {
  /// Mean objective over valid particles, one entry per iteration.
  std::vector<double> mean_fitness;
  /// Mean particle movement (flat-space L2) per iteration.
  std::vector<double> mean_movement;
  /// Fraction of particles with a valid (defined) objective.
  std::vector<double> valid_fraction;
};

/// \brief Final swarm state.
struct GsoResult {
  std::vector<Region> particles;
  std::vector<double> fitness;
  std::vector<bool> valid;
  /// Luciferin levels at termination.
  std::vector<double> luciferin;
  size_t iterations_run = 0;
  /// True if the movement-based criterion fired before max_iterations.
  bool converged = false;
  /// True when a CancelToken stopped the swarm early. The partial swarm
  /// (positions, fitness, validity) is still fully populated and usable.
  bool cancelled = false;
  /// Total objective evaluations (T · L per the paper's cost model).
  uint64_t objective_evaluations = 0;
  GsoHistory history;

  /// Fraction of final particles with valid objective (the Fig. 1 "84 %
  /// of particles converged to satisfying regions" metric).
  double ValidFraction() const;
};

/// \brief Glowworm Swarm Optimization over the region solution space
/// (paper §III-A), with optional KDE-guided neighbour selection (§III-B,
/// Eq. 8).
///
/// Each glowworm is a candidate region [x, l] ∈ R^{2d}. Iterations run the
/// two GSO phases: the luciferin update (Eq. 6) and the probabilistic move
/// toward a brighter neighbour (Eq. 7 — or Eq. 8 when a KDE prior is
/// supplied), followed by the adaptive-radius update. Invalid particles
/// (undefined objective) receive no luciferin reinforcement, so swarms
/// starved of valid fitness dim out and stop attracting others — the
/// paper's mechanism for isolating glowworms stuck in undefined space.
class GlowwormSwarmOptimizer {
 public:
  explicit GlowwormSwarmOptimizer(GsoParams params) : params_(params) {}

  /// Runs the swarm against `fitness` within `space`. If `kde` is
  /// non-null the Eq. 8 region-mass weighting steers neighbour choice.
  /// `cancel` is polled once per iteration: a fired token (flag or
  /// deadline) stops the swarm within one iteration, marking the result
  /// `cancelled` while keeping the partial swarm reportable. `progress`,
  /// when non-null, is updated every iteration for concurrent observers.
  /// A non-null `trace` records one "gso_iterations" span per block of
  /// iterations; tracing never changes the swarm trajectory.
  GsoResult Optimize(const FitnessFn& fitness,
                     const RegionSolutionSpace& space,
                     const Kde* kde = nullptr, CancelToken cancel = {},
                     SearchProgress* progress = nullptr,
                     TraceContext* trace = nullptr) const;

  /// Batched variant: the whole swarm is scored with one `fitness` call
  /// per iteration (one surrogate PredictBatch instead of L tree walks).
  /// Identical trajectory to the scalar overload for the same seed.
  GsoResult Optimize(const BatchFitnessFn& fitness,
                     const RegionSolutionSpace& space,
                     const Kde* kde = nullptr, CancelToken cancel = {},
                     SearchProgress* progress = nullptr,
                     TraceContext* trace = nullptr) const;

  const GsoParams& params() const { return params_; }

 private:
  GsoParams params_;
};

}  // namespace surf

#endif  // SURF_OPT_GSO_H_
