// Microbenchmarks (google-benchmark) for the hot paths every experiment
// leans on: surrogate prediction, GBRT tree traversal, KDE region-mass
// integrals, exact range queries across the three back-ends, GSO
// iterations, and IoU math.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ml/kde.h"
#include "stats/grid_index.h"
#include "stats/kd_tree.h"

namespace surf {
namespace {

/// Shared fixtures, built once.
struct MicroFixture {
  SyntheticDataset ds;
  std::unique_ptr<ScanEvaluator> scan;
  std::unique_ptr<GridIndexEvaluator> grid;
  std::unique_ptr<KdTreeEvaluator> kdtree;
  Surrogate surrogate;
  std::unique_ptr<Kde> kde;
  RegionSolutionSpace space;
  std::vector<Region> probes;

  static MicroFixture& Get() {
    static MicroFixture* fixture = [] {
      auto* f = new MicroFixture();
      SyntheticSpec spec;
      spec.dims = 2;
      spec.num_gt_regions = 1;
      spec.statistic = SyntheticStatistic::kDensity;
      spec.num_background = 50000;
      spec.seed = 3;
      f->ds = SyntheticGenerator::Generate(spec);
      const Statistic stat = Statistic::Count(f->ds.region_cols);
      f->scan = std::make_unique<ScanEvaluator>(&f->ds.data, stat);
      f->grid =
          std::make_unique<GridIndexEvaluator>(&f->ds.data, stat, 16);
      f->kdtree = std::make_unique<KdTreeEvaluator>(&f->ds.data, stat);

      WorkloadParams wparams;
      wparams.num_queries = 4000;
      const RegionWorkload workload = GenerateWorkload(
          *f->grid, f->ds.data.ComputeBounds(f->ds.region_cols), wparams);
      f->space = workload.space;
      auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
      f->surrogate = std::move(surrogate).value();

      Rng rng(4);
      std::vector<std::vector<double>> points;
      for (size_t r = 0; r < 2000; ++r) {
        points.push_back(
            {f->ds.data.Get(r, 0), f->ds.data.Get(r, 1)});
      }
      f->kde = std::make_unique<Kde>(Kde::Fit(points));
      for (int i = 0; i < 256; ++i) f->probes.push_back(
          f->space.Sample(&rng));
      return f;
    }();
    return *fixture;
  }
};

void BM_SurrogatePredict(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.surrogate.Predict(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_SurrogatePredict);

void BM_ScanEvaluate(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scan->Evaluate(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_ScanEvaluate);

void BM_GridIndexEvaluate(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.grid->Evaluate(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_GridIndexEvaluate);

void BM_KdTreeEvaluate(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kdtree->Evaluate(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_KdTreeEvaluate);

void BM_KdeRegionMass(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kde->RegionMass(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_KdeRegionMass);

void BM_RegionIoU(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.probes[i & 255].IoU(f.probes[(i + 1) & 255]));
    ++i;
  }
}
BENCHMARK(BM_RegionIoU);

void BM_GsoIteration(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  ObjectiveConfig oconfig;
  oconfig.threshold = 1000.0;
  const RegionObjective objective(f.surrogate.AsStatisticFn(), oconfig);
  GsoParams params;
  params.num_glowworms = static_cast<size_t>(state.range(0));
  params.max_iterations = 1;
  params.convergence_tol_frac = 0.0;
  const GlowwormSwarmOptimizer gso(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gso.Optimize(objective.AsFitnessFn(), f.space));
  }
}
BENCHMARK(BM_GsoIteration)->Arg(50)->Arg(100)->Arg(200);

void BM_GbrtTraining(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  WorkloadParams wparams;
  wparams.num_queries = static_cast<size_t>(state.range(0));
  const RegionWorkload workload = GenerateWorkload(
      *f.grid, f.ds.data.ComputeBounds(f.ds.region_cols), wparams);
  GbrtParams params;
  params.n_estimators = 50;
  for (auto _ : state) {
    GradientBoostedTrees model(params);
    benchmark::DoNotOptimize(
        model.Fit(workload.features, workload.targets));
  }
}
BENCHMARK(BM_GbrtTraining)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace surf

BENCHMARK_MAIN();
