// Tests for the sharded dataset backend: ShardedDataset partitioning
// (balance, range partitioning, empty/single-row shards), the
// ColumnSummary / StatisticAccumulator monoid laws, and the
// ShardedScanEvaluator's ISSUE 5 acceptance contract — sharded-vs-
// unsharded bit-identity, merge-order determinism at 1/2/8 threads, and
// per-shard-batch cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <tuple>

#include "accel/accel.h"
#include "core/workload.h"
#include "data/sharded.h"
#include "stats/evaluator.h"
#include "stats/sharded_evaluator.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace surf {
namespace {

/// Random dataset over [0,1]^d with a value column and a binary label.
/// `integer_values` snaps the value column to small integers, making
/// every sum exactly representable — floating-point addition is then
/// associative, so sharded re-partitioning cannot perturb even the
/// summed statistics and bit-identity holds at every shard count.
Dataset MakeData(size_t n, size_t d, uint64_t seed, bool integer_values) {
  std::vector<std::string> names;
  for (size_t j = 0; j < d; ++j) names.push_back("a" + std::to_string(j));
  names.push_back("v");
  names.push_back("label");
  Dataset ds(names);
  Rng rng(seed);
  std::vector<double> row(d + 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
    row[d] = integer_values ? std::floor(rng.Uniform(-500.0, 500.0))
                            : rng.Gaussian(1.0, 2.0);
    row[d + 1] = rng.Bernoulli(0.3) ? 1.0 : 0.0;
    ds.AddRow(row);
  }
  return ds;
}

Statistic MakeStatistic(int kind, size_t d) {
  std::vector<size_t> cols;
  for (size_t j = 0; j < d; ++j) cols.push_back(j);
  switch (kind) {
    case 0: return Statistic::Count(cols);
    case 1: return Statistic::Average(cols, d);
    case 2: return Statistic::Sum(cols, d);
    case 3: return Statistic::MedianOf(cols, d);
    case 4: return Statistic::VarianceOf(cols, d);
    default: return Statistic::LabelRatio(cols, d + 1, 1.0);
  }
}

Region RandomRegion(size_t d, Rng* rng) {
  std::vector<double> center(d), half(d);
  for (size_t j = 0; j < d; ++j) {
    center[j] = rng->Uniform();
    half[j] = rng->Uniform(0.02, 0.4);
  }
  return Region(center, half);
}

/// Bitwise comparison with NaN == NaN.
void ExpectSameDouble(double expected, double actual, const char* what) {
  if (std::isnan(expected)) {
    EXPECT_TRUE(std::isnan(actual)) << what;
  } else {
    EXPECT_EQ(expected, actual) << what;
  }
}

// -------------------------------------------------------- ShardedDataset

TEST(ShardedDatasetTest, PartitionBalancedContiguousRanges) {
  const Dataset ds = MakeData(103, 2, 1, true);
  ShardingOptions options;
  options.num_shards = 8;
  const ShardedDataset sharded = ShardedDataset::Partition(ds, options);

  ASSERT_EQ(sharded.num_shards(), 8u);
  EXPECT_EQ(sharded.num_rows(), 103u);
  EXPECT_EQ(sharded.num_cols(), ds.num_cols());
  EXPECT_EQ(sharded.column_names(), ds.column_names());

  size_t total = 0, smallest = 103, largest = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const size_t rows = sharded.shard(s).num_rows();
    total += rows;
    smallest = std::min(smallest, rows);
    largest = std::max(largest, rows);
    EXPECT_EQ(sharded.shard(s).column(0).size(), rows);
  }
  EXPECT_EQ(total, 103u);
  EXPECT_LE(largest - smallest, 1u);  // balanced within one row
}

TEST(ShardedDatasetTest, NaturalOrderPreservesRowSequence) {
  const Dataset ds = MakeData(50, 1, 2, false);
  ShardingOptions options;
  options.num_shards = 4;
  const ShardedDataset sharded = ShardedDataset::Partition(ds, options);
  size_t r = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    for (double v : sharded.shard(s).column(0)) {
      EXPECT_EQ(v, ds.Get(r++, 0));
    }
  }
  EXPECT_EQ(r, ds.num_rows());
}

TEST(ShardedDatasetTest, OrderByGivesDisjointSlabs) {
  const Dataset ds = MakeData(1000, 2, 3, true);
  ShardingOptions options;
  options.num_shards = 8;
  options.order_by = 0;
  const ShardedDataset sharded = ShardedDataset::Partition(ds, options);
  for (size_t s = 0; s + 1 < sharded.num_shards(); ++s) {
    EXPECT_LE(sharded.shard(s).summary(0).max,
              sharded.shard(s + 1).summary(0).min);
  }
}

TEST(ShardedDatasetTest, EmptyAndSingleRowShards) {
  // More shards than rows: trailing shards are empty but remain valid.
  const Dataset ds = MakeData(3, 1, 4, true);
  ShardingOptions options;
  options.num_shards = 8;
  const ShardedDataset sharded = ShardedDataset::Partition(ds, options);
  ASSERT_EQ(sharded.num_shards(), 8u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sharded.shard(s).num_rows(), 1u);
  }
  for (size_t s = 3; s < 8; ++s) {
    EXPECT_EQ(sharded.shard(s).num_rows(), 0u);
    EXPECT_EQ(sharded.shard(s).summary(0).count, 0u);
  }
  // Empty shards are the monoid identity: the total is unaffected.
  EXPECT_EQ(sharded.TotalSummary(0).count, 3u);

  // And the evaluator over single-row/empty shards still answers
  // exactly.
  ScanEvaluator scan(&ds, Statistic::Count({0}));
  ShardedScanEvaluator sharded_eval(std::move(sharded), Statistic::Count({0}),
                                    1);
  Rng rng(5);
  for (int q = 0; q < 20; ++q) {
    const Region region = RandomRegion(1, &rng);
    EXPECT_EQ(scan.Evaluate(region), sharded_eval.Evaluate(region));
  }
}

TEST(ShardedDatasetTest, TotalSummaryMatchesDirectAggregation) {
  const Dataset ds = MakeData(777, 2, 6, true);
  for (int order_by : {-1, 0}) {
    ShardingOptions options;
    options.num_shards = 5;
    options.order_by = order_by;
    const ShardedDataset sharded = ShardedDataset::Partition(ds, options);
    const ColumnSummary total = sharded.TotalSummary(2);  // value column
    ColumnSummary direct;
    for (size_t r = 0; r < ds.num_rows(); ++r) direct.Observe(ds.Get(r, 2));
    EXPECT_EQ(total.count, direct.count);
    EXPECT_EQ(total.min, direct.min);
    EXPECT_EQ(total.max, direct.max);
    // Integer-valued column: the re-associated sums are still exact.
    EXPECT_EQ(total.sum, direct.sum);
    EXPECT_EQ(total.sum_sq, direct.sum_sq);
  }
}

// ------------------------------------------------------- accumulator laws

TEST(StatisticAccumulatorTest, MergeIdentityAndAssociativity) {
  const Statistic stat = Statistic::Average({0}, 1);
  Rng rng(7);
  std::vector<double> xs, ys, zs;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(std::floor(rng.Uniform(-99.0, 99.0)));
    ys.push_back(std::floor(rng.Uniform(-99.0, 99.0)));
    zs.push_back(std::floor(rng.Uniform(-99.0, 99.0)));
  }
  auto fill = [&](const std::vector<double>& vs) {
    StatisticAccumulator acc(stat);
    for (double v : vs) acc.Add(v);
    return acc;
  };

  // Identity: merging an empty accumulator changes nothing.
  StatisticAccumulator with_identity = fill(xs);
  with_identity.Merge(StatisticAccumulator(stat));
  ExpectSameDouble(fill(xs).Finalize(), with_identity.Finalize(),
                   "right identity");

  // Associativity on exactly-representable values: (x·y)·z == x·(y·z).
  StatisticAccumulator left = fill(xs);
  left.Merge(fill(ys));
  left.Merge(fill(zs));
  StatisticAccumulator yz = fill(ys);
  yz.Merge(fill(zs));
  StatisticAccumulator right = fill(xs);
  right.Merge(yz);
  ExpectSameDouble(left.Finalize(), right.Finalize(), "associativity");
}

TEST(StatisticAccumulatorTest, MedianMergesThroughSketch) {
  const Statistic stat = Statistic::MedianOf({0}, 1);
  StatisticAccumulator whole(stat);
  StatisticAccumulator lo_half(stat), hi_half(stat);
  for (int i = 1; i <= 101; ++i) {
    whole.Add(i);
    (i <= 50 ? lo_half : hi_half).Add(i);
  }
  StatisticAccumulator merged = lo_half;
  merged.Merge(hi_half);
  EXPECT_EQ(whole.Finalize(), 51.0);
  EXPECT_EQ(merged.Finalize(), 51.0);  // exact below sketch capacity
  EXPECT_EQ(merged.count(), 101u);
}

// --------------------------------------------- sharded-vs-unsharded laws

class ShardBitIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardBitIdentityTest, MatchesScanBitwiseOnIntegerData) {
  const auto [seed, kind] = GetParam();
  const size_t d = 2;
  // Integer value column: every statistic, summed ones included, must be
  // bit-identical to the unsharded scan at every shard count, every
  // partitioning, and every thread count.
  const Dataset ds = MakeData(2500, d, static_cast<uint64_t>(seed), true);
  const Statistic stat = MakeStatistic(kind, d);
  ScanEvaluator reference(&ds, stat);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    for (int order_by : {-1, 0}) {
      ShardingOptions options;
      options.num_shards = shards;
      options.order_by = order_by;
      ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                                   stat, 2);
      Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
      for (int q = 0; q < 40; ++q) {
        const Region region = RandomRegion(d, &rng);
        ExpectSameDouble(reference.Evaluate(region),
                         sharded.Evaluate(region), "sharded vs scan");
      }
    }
  }
}

std::string ShardCaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kinds[] = {"count", "avg", "sum",
                                "median", "var", "ratio"};
  return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
         kinds[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKinds, ShardBitIdentityTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(0, 1, 2, 3, 4, 5)),
    ShardCaseName);

TEST(ShardedEvaluatorTest, OneShardNaturalOrderBitIdenticalOnRealData) {
  // Arbitrary floating-point values: a single natural-order shard runs
  // the exact accumulation sequence of the legacy scan, so even the
  // rounding must match — this is the shards=1 acceptance criterion.
  const size_t d = 2;
  const Dataset ds = MakeData(3000, d, 42, false);
  for (int kind : {0, 1, 2, 4, 5}) {  // the exact (non-median) kinds
    const Statistic stat = MakeStatistic(kind, d);
    ScanEvaluator reference(&ds, stat);
    ShardedScanEvaluator sharded(
        ShardedDataset::Partition(ds, ShardingOptions{}), stat, 1);
    Rng rng(9);
    for (int q = 0; q < 40; ++q) {
      const Region region = RandomRegion(d, &rng);
      ExpectSameDouble(reference.Evaluate(region), sharded.Evaluate(region),
                       "one-shard vs scan");
    }
  }
}

TEST(ShardedEvaluatorTest, ManyShardsRealDataAgreeToRounding) {
  // Re-partitioned floating-point sums may re-associate; they must
  // still agree to relative rounding error.
  const size_t d = 2;
  const Dataset ds = MakeData(3000, d, 43, false);
  for (int kind : {1, 2, 4}) {
    const Statistic stat = MakeStatistic(kind, d);
    ScanEvaluator reference(&ds, stat);
    ShardingOptions options;
    options.num_shards = 8;
    options.order_by = 0;
    ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                                 stat, 2);
    Rng rng(10);
    for (int q = 0; q < 40; ++q) {
      const Region region = RandomRegion(d, &rng);
      const double expected = reference.Evaluate(region);
      const double actual = sharded.Evaluate(region);
      if (std::isnan(expected)) {
        EXPECT_TRUE(std::isnan(actual));
      } else {
        EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + std::fabs(expected)));
      }
    }
  }
}

TEST(ShardedEvaluatorTest, MergeOrderDeterminismAcrossThreadCounts) {
  // The per-shard partials merge in ascending shard index no matter
  // which worker finishes first: 1, 2, and 8 threads must produce
  // bit-identical results — floating-point data, median included. The
  // whole sweep repeats under every supported SURF_ACCEL backend (the
  // mask kernels feeding the scan are specified bit-identical), and the
  // single-thread result under each backend must also match the generic
  // baseline bitwise.
  const size_t d = 2;
  const Dataset ds = MakeData(4000, d, 44, false);
  ShardingOptions options;
  options.num_shards = 8;
  options.order_by = 0;
  const AccelBackend saved = ActiveAccelBackend();
  for (int backend = 0; backend < kNumAccelBackends; ++backend) {
    const AccelBackend b = static_cast<AccelBackend>(backend);
    if (!AccelSupported(b)) continue;
    setenv("SURF_ACCEL", AccelBackendName(b), 1);
    ReselectAccelFromEnv();
    ASSERT_EQ(ActiveAccelBackend(), b);
    for (int kind : {0, 1, 2, 3, 4, 5}) {
      const Statistic stat = MakeStatistic(kind, d);
      ShardedScanEvaluator one(ShardedDataset::Partition(ds, options), stat,
                               1);
      ShardedScanEvaluator two(ShardedDataset::Partition(ds, options), stat,
                               2);
      ShardedScanEvaluator eight(ShardedDataset::Partition(ds, options), stat,
                                 8);
      EXPECT_EQ(one.num_threads(), 1u);
      EXPECT_EQ(two.num_threads(), 2u);
      EXPECT_EQ(eight.num_threads(), 8u);
      Rng rng(11);
      for (int q = 0; q < 30; ++q) {
        const Region region = RandomRegion(d, &rng);
        const double a = one.Evaluate(region);
        const double b2 = two.Evaluate(region);
        const double c = eight.Evaluate(region);
        const std::string label =
            std::string(AccelBackendName(b)) + " kind " + std::to_string(kind);
        ExpectSameDouble(a, b2, (label + ": 1 vs 2 threads").c_str());
        ExpectSameDouble(a, c, (label + ": 1 vs 8 threads").c_str());
        // Cross-backend: generic runs first, so compare against it.
        SetActiveAccelBackend(AccelBackend::kGeneric);
        const double g = one.Evaluate(region);
        SetActiveAccelBackend(b);
        ExpectSameDouble(g, a, (label + ": generic vs backend").c_str());
      }
    }
  }
  unsetenv("SURF_ACCEL");
  SetActiveAccelBackend(saved);
}

TEST(ShardedEvaluatorTest, CountsOneEvaluationPerQueryNotPerShard) {
  const Dataset ds = MakeData(100, 1, 45, true);
  ShardingOptions options;
  options.num_shards = 8;
  ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                               Statistic::Count({0}), 2);
  Rng rng(12);
  sharded.Evaluate(RandomRegion(1, &rng));
  sharded.Evaluate(RandomRegion(1, &rng));
  EXPECT_EQ(sharded.evaluation_count(), 2u);
}

TEST(ShardedDatasetTest, PartitionClampsAbsurdShardCounts) {
  const Dataset ds = MakeData(64, 1, 48, true);
  ShardingOptions options;
  options.num_shards = size_t{1} << 40;  // would OOM if resized literally
  const ShardedDataset clamped = ShardedDataset::Partition(ds, options);
  EXPECT_EQ(clamped.num_shards(), ShardingOptions::kMaxShards);
  EXPECT_EQ(clamped.TotalSummary(0).count, 64u);

  options.num_shards = 0;
  EXPECT_EQ(ShardedDataset::Partition(ds, options).num_shards(), 1u);
}

TEST(ShardedEvaluatorTest, NanRowsMatchLegacyScanSemantics) {
  // The legacy row test `!(v < lo || v > hi)` keeps NaN coordinates
  // inside every box; the sharded backend must reproduce that — in the
  // mask pass, and in the prune decision (a range-partitioned shard
  // full of NaNs has an empty [min, max] yet its rows still count).
  const size_t d = 2;
  Dataset ds = MakeData(2000, d, 49, true);
  Rng rng(50);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 40; ++i) {
    const size_t r = static_cast<size_t>(rng.Uniform(0.0, 1999.0));
    ds.Set(r, 0, nan);              // region column
    if (i < 10) ds.Set(r, d, nan);  // value column: sums must poison
  }

  for (int kind : {0, 1, 2, 5}) {  // count / avg / sum / ratio
    const Statistic stat = MakeStatistic(kind, d);
    ScanEvaluator reference(&ds, stat);
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      ShardingOptions options;
      options.num_shards = shards;
      options.order_by = 0;  // NaNs sort into the trailing shard
      ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                                   stat, 2);
      Rng query_rng(51);
      for (int q = 0; q < 30; ++q) {
        const Region region = RandomRegion(d, &query_rng);
        ExpectSameDouble(reference.Evaluate(region),
                         sharded.Evaluate(region), "NaN rows vs scan");
      }
    }
  }
}

// ----------------------------------------------------------- cancellation

TEST(ShardedEvaluatorTest, FiredTokenSkipsEveryShardBatch) {
  const Dataset ds = MakeData(5000, 2, 46, true);
  ShardingOptions options;
  options.num_shards = 16;
  ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                               Statistic::Count({0, 1}), 1);
  CancelSource source;
  source.Cancel();
  Rng rng(13);
  sharded.Evaluate(RandomRegion(2, &rng), source.token());
  // The token is polled before each shard batch, so a pre-fired token
  // never touches a shard.
  EXPECT_EQ(sharded.shards_scanned(), 0u);
  EXPECT_EQ(sharded.shards_block_merged(), 0u);
  EXPECT_EQ(sharded.shards_pruned(), 0u);
}

TEST(ShardedEvaluatorTest, CancellationLandsMidShardScan) {
  // A workload labelling run over many shards must stop within one
  // shard batch of the cancel, not at the next whole-query boundary:
  // the returned workload is a strict prefix of the request.
  const Dataset ds = MakeData(60000, 2, 47, true);
  ShardingOptions options;
  options.num_shards = 8;
  options.order_by = 0;
  options.columns = {0, 1};
  ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                               Statistic::Count({0, 1}), 1);
  WorkloadParams params;
  params.num_queries = 200000;
  params.seed = 3;

  CancelSource source;
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.Cancel();
  });
  started.store(true);
  const RegionWorkload workload = GenerateWorkload(
      sharded, ds.ComputeBounds({0, 1}), params, source.token());
  canceller.join();
  EXPECT_TRUE(source.cancelled());
  EXPECT_LT(workload.size(), params.num_queries);
}

}  // namespace
}  // namespace surf
