#ifndef SURF_OPT_OBJECTIVE_H_
#define SURF_OPT_OBJECTIVE_H_

#include <functional>

#include "geom/region.h"

namespace surf {

/// \brief Which side of the threshold is "interesting" (paper Problem 1:
/// statistics less than or greater than y_R).
enum class ThresholdDirection {
  /// Seek regions with f(x,l) > y_R.
  kAbove,
  /// Seek regions with f(x,l) < y_R.
  kBelow,
};

/// \brief Objective configuration shared by both functional forms.
struct ObjectiveConfig {
  /// The user's cut-off value y_R.
  double threshold = 0.0;
  ThresholdDirection direction = ThresholdDirection::kAbove;
  /// Region-size regularizer c (paper Eq. 2/4; §V uses c = 4).
  double c = 4.0;
  /// true → log objective J (Eq. 4); false → raw ratio objective (Eq. 2).
  /// The log form leaves constraint-violating regions *undefined*, which
  /// is what isolates invalid glowworms (paper §V-F / Fig. 7).
  bool use_log = true;
};

/// \brief A fitness evaluation: the objective value plus a validity flag.
///
/// `valid == false` encodes the paper's "logarithm undefined" semantics —
/// the region violates the threshold constraint (or f itself is undefined
/// because the region is empty). Optimizers must not treat the value as
/// meaningful in that case.
struct FitnessValue {
  double value = 0.0;
  bool valid = false;
};

/// Statistic provider: region -> y (possibly NaN where f is undefined).
using StatisticFn = std::function<double(const Region&)>;

/// Batched statistic provider: scores many regions in one call (one
/// surrogate PredictBatch instead of one tree-walk per region).
using BatchStatisticFn =
    std::function<std::vector<double>(const std::vector<Region>&)>;

/// Generic fitness: region -> FitnessValue (used directly by optimizers).
using FitnessFn = std::function<FitnessValue(const Region&)>;

/// Batched fitness: scores a whole population (e.g. a particle swarm) in
/// one call. Element i corresponds to regions[i].
using BatchFitnessFn =
    std::function<std::vector<FitnessValue>(const std::vector<Region>&)>;

/// \brief The SuRF objective over a statistic function (true f or a
/// surrogate f̂).
///
/// Log form (Eq. 4):  J = log(diff) − c · Σ_i log(l_i)
/// Ratio form (Eq. 2): J = diff / (Π_i l_i)^c
/// with diff = y_R − f for kBelow and f − y_R for kAbove (the paper's
/// "maximize −J" branch folded into a sign-free positive difference).
class RegionObjective {
 public:
  RegionObjective(StatisticFn statistic, ObjectiveConfig config);

  /// Same objective with a batched statistic source: EvaluateMany scores
  /// all regions through one `batch_statistic` call. The scalar
  /// `statistic` stays for one-off probes (reports, validation).
  RegionObjective(StatisticFn statistic, BatchStatisticFn batch_statistic,
                  ObjectiveConfig config);

  /// Evaluates the objective; invalid where the constraint is violated,
  /// where f is NaN, or where any side length is non-positive.
  FitnessValue Evaluate(const Region& region) const;

  /// Batched Evaluate: one statistic call for the whole population, then
  /// the (cheap) objective math per region. Falls back to per-region
  /// statistics when no batch source was supplied. Result i matches
  /// Evaluate(regions[i]) exactly. When `stats_out` is non-null it
  /// receives the raw statistic per region (NaN where it was never
  /// computed), sparing callers a second statistic pass.
  std::vector<FitnessValue> EvaluateMany(
      const std::vector<Region>& regions,
      std::vector<double>* stats_out = nullptr) const;

  /// Exposes the raw statistic (for validation/report paths).
  double Statistic(const Region& region) const { return statistic_(region); }

  const ObjectiveConfig& config() const { return config_; }

  /// Adapters for optimizer APIs.
  FitnessFn AsFitnessFn() const;
  BatchFitnessFn AsBatchFitnessFn() const;

 private:
  /// Objective math on an already-computed statistic value.
  FitnessValue FromStatistic(const Region& region, double y) const;

  StatisticFn statistic_;
  BatchStatisticFn batch_statistic_;  // may be null
  ObjectiveConfig config_;
};

/// True if the statistic value satisfies the threshold constraint.
bool SatisfiesThreshold(double y, double threshold,
                        ThresholdDirection direction);

/// Wraps a scalar fitness into the batched optimizer signature (the
/// function object is copied, so the adapter owns its callee).
BatchFitnessFn ToBatchFitness(FitnessFn fitness);

/// Scores every region through `batch` when non-null, else by looping
/// `scalar` — the shared fallback for report/extraction paths.
std::vector<double> EvaluateStatistics(const std::vector<Region>& regions,
                                       const StatisticFn& scalar,
                                       const BatchStatisticFn& batch);

}  // namespace surf

#endif  // SURF_OPT_OBJECTIVE_H_
