// Ablation: KDE-guided neighbour selection (Eq. 8) vs plain GSO (Eq. 7).
//
// The paper motivates the KDE prior in §III-B: surrogate models are
// defined even where no data exists, so unguided particles can chase
// phantom optima in empty space. This bench compares, with and without
// the prior, (a) the fraction of final particles whose region actually
// holds data and (b) the IoU against planted ground truth — on a dataset
// with a large empty corridor to make the failure mode visible.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

namespace {

/// A d=2 density dataset whose points avoid the right half of the domain
/// entirely (except the planted region), leaving empty space where an
/// unguided surrogate can hallucinate.
SyntheticDataset MakeGappyDataset(uint64_t seed) {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = seed;
  SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  // Rebuild the dataset, folding background points into the left half.
  Dataset squeezed({"a1", "a2"});
  squeezed.Reserve(ds.data.num_rows());
  for (size_t r = 0; r < ds.data.num_rows(); ++r) {
    std::vector<double> row = ds.data.Row(r);
    const bool in_gt = ds.gt_regions[0].Contains(row);
    if (!in_gt && row[0] > 0.55) row[0] *= 0.5;
    squeezed.AddRow(row);
  }
  ds.data = std::move(squeezed);
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 3));

  std::printf("Ablation — Eq. 7 (plain) vs Eq. 8 (KDE-guided) neighbour "
              "selection on gappy data\n\n");
  TablePrinter table({"trial", "guidance", "IoU", "particles in data",
                      "mine (s)"});

  for (size_t trial = 0; trial < trials; ++trial) {
    const SyntheticDataset ds = MakeGappyDataset(200 + trial);
    ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));

    for (bool use_kde : {false, true}) {
      SurfOptions options;
      options.workload.num_queries = 4000;
      options.workload.seed = 300 + trial;
      options.finder = bench::MakeFinderConfig(2, 150, 120);
      options.finder.use_kde_guidance = use_kde;
      options.fit_kde = use_kde;
      options.validate_results = false;
      auto surf = Surf::Build(&ds.data, bench::StatisticFor(ds), options);
      if (!surf.ok()) continue;
      const FindResult result = surf->FindRegions(
          bench::ThresholdFor(ds), ThresholdDirection::kAbove);

      // Fraction of final particles whose box holds at least one point.
      size_t populated = 0;
      for (const auto& p : result.gso.particles) {
        if (evaluator.Evaluate(p) > 0.0) ++populated;
      }
      std::vector<Region> regions;
      for (const auto& r : result.regions) regions.push_back(r.region);
      table.AddRow(
          {std::to_string(trial + 1), use_kde ? "Eq.8 KDE" : "Eq.7 plain",
           FormatDouble(bench::AverageIoU(regions, ds.gt_regions), 3),
           FormatDouble(static_cast<double>(populated) /
                            static_cast<double>(
                                result.gso.particles.size()),
                        3),
           FormatDouble(result.report.seconds, 2)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected: the KDE-guided runs keep a larger fraction of "
              "the swarm inside populated space at comparable IoU, at a "
              "modest mining-time premium (one region-mass integral per "
              "neighbour candidate).\n");
  return 0;
}
