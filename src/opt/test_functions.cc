#include "opt/test_functions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace surf {

namespace {

double FlatDistanceSq(const std::vector<double>& a,
                      const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return s;
}

}  // namespace

FitnessValue GaussianBumps::Evaluate(const Region& region) const {
  const std::vector<double> flat = region.ToFlat();
  double value = 0.0;
  for (const auto& peak : peaks) {
    assert(peak.size() == flat.size());
    value += std::exp(-0.5 * FlatDistanceSq(flat, peak) / (sigma * sigma));
  }
  FitnessValue out;
  out.value = value;
  out.valid = value > validity_floor;
  return out;
}

FitnessFn GaussianBumps::AsFitnessFn() const {
  return [*this](const Region& region) { return Evaluate(region); };
}

int GaussianBumps::NearestPeak(const Region& region) const {
  if (peaks.empty()) return -1;
  const std::vector<double> flat = region.ToFlat();
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t p = 0; p < peaks.size(); ++p) {
    const double d = FlatDistanceSq(flat, peaks[p]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(p);
    }
  }
  return best;
}

double GaussianBumps::DistanceToNearestPeak(const Region& region) const {
  const int p = NearestPeak(region);
  if (p < 0) return std::numeric_limits<double>::infinity();
  return std::sqrt(
      FlatDistanceSq(region.ToFlat(), peaks[static_cast<size_t>(p)]));
}

FitnessFn InvertedRastrigin(std::vector<double> center, double scale) {
  return [center = std::move(center), scale](const Region& region) {
    const std::vector<double> flat = region.ToFlat();
    assert(flat.size() == center.size());
    double value = 0.0;
    for (size_t i = 0; i < flat.size(); ++i) {
      const double z = (flat[i] - center[i]) / scale;
      value += z * z - 10.0 * std::cos(2.0 * M_PI * z) + 10.0;
    }
    FitnessValue out;
    out.value = -value;  // maximize
    out.valid = true;
    return out;
  };
}

}  // namespace surf
