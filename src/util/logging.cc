#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "util/trace.h"

namespace surf {

namespace {

std::mutex g_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kQuiet:
      return "QUIET";
  }
  return "?";
}

bool ParseLogLevel(const char* name, LogLevel* out) {
  if (name == nullptr) return false;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "quiet" || lower == "off" || lower == "none") {
    *out = LogLevel::kQuiet;
  } else {
    return false;
  }
  return true;
}

/// Default threshold: SURF_LOG_LEVEL when set and parseable (operators
/// can raise verbosity without a rebuild), else kWarn so library
/// internals stay silent in tests and benches unless asked.
LogLevel InitialLevel() {
  LogLevel level = LogLevel::kWarn;
  ParseLogLevel(std::getenv("SURF_LOG_LEVEL"), &level);
  return level;
}

std::atomic<LogLevel>& Level() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

/// ISO-8601 UTC with milliseconds, e.g. "2026-08-08T12:34:56.789Z".
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&secs, &utc);
  char date[24];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buf, size, "%s.%03dZ", date, static_cast<int>(ms));
}

}  // namespace

void SetLogLevel(LogLevel level) { Level().store(level); }
LogLevel GetLogLevel() { return Level().load(); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(Level().load())) return;
  char stamp[32];
  FormatTimestamp(stamp, sizeof(stamp));
  const uint32_t tid = CurrentThreadIndex();
  // The active request's trace id, when a span is open on this thread —
  // lets operators join a log line to its trace and /v1/trace export.
  const std::string* trace_id = CurrentTraceId();
  std::lock_guard<std::mutex> lock(g_mu);
  if (trace_id != nullptr) {
    std::fprintf(stderr, "[surf %s %s tid=%u %s] %s\n", stamp,
                 LevelName(level), tid, trace_id->c_str(), msg.c_str());
  } else {
    std::fprintf(stderr, "[surf %s %s tid=%u] %s\n", stamp, LevelName(level),
                 tid, msg.c_str());
  }
}

}  // namespace surf
