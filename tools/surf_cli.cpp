// surf_cli — command-line front end to the SuRF pipeline.
//
// Subcommands:
//   mine   load a CSV dataset, train (or load) a surrogate, mine regions
//   ecdf   print region-statistic quantiles (to help pick a threshold)
//   train  train a surrogate and save it for later `mine --model` runs
//
// Examples:
//   surf_cli mine --data crimes.csv --cols x,y --stat count \
//            --threshold 800 --direction above
//   surf_cli ecdf --data crimes.csv --cols x,y --stat count
//   surf_cli train --data crimes.csv --cols x,y --stat count \
//            --queries 50000 --model crimes.surf
//   surf_cli mine --data crimes.csv --cols x,y --stat count \
//            --model crimes.surf --threshold 800

#include <cstdio>
#include <string>

#include "core/surf.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace surf;

int Fail(const std::string& msg) {
  std::fprintf(stderr, "surf_cli: %s\n", msg.c_str());
  return 1;
}

void PrintUsage() {
  std::printf(
      "usage: surf_cli <mine|ecdf|train> --data FILE.csv --cols a,b[,c]\n"
      "  common:  --stat count|avg|sum|median|var|ratio\n"
      "           --value-col NAME     (avg/sum/median/var/ratio)\n"
      "           --label VALUE        (ratio)\n"
      "           --queries N          past evaluations to learn from\n"
      "           --hypertune          GridSearchCV before the final fit\n"
      "  mine:    --threshold Y  --direction above|below  --c C\n"
      "           --model FILE         reuse a saved surrogate\n"
      "           --max-regions K\n"
      "  train:   --model FILE         output path\n");
}

StatusOr<Statistic> ParseStatistic(const CliFlags& flags,
                                   const Dataset& data) {
  std::vector<size_t> cols;
  for (const auto& name : SplitString(flags.GetString("cols", ""), ',')) {
    if (name.empty()) continue;
    const int idx = data.ColumnIndex(TrimString(name));
    if (idx < 0) {
      return Status::InvalidArgument("unknown column '" + name + "'");
    }
    cols.push_back(static_cast<size_t>(idx));
  }
  if (cols.empty()) {
    return Status::InvalidArgument("--cols is required (comma separated)");
  }

  const std::string kind = flags.GetString("stat", "count");
  if (kind == "count") return Statistic::Count(cols);

  const std::string value_name = flags.GetString("value-col", "");
  const int value_idx = data.ColumnIndex(value_name);
  if (value_idx < 0) {
    return Status::InvalidArgument("--value-col required for --stat " +
                                   kind);
  }
  const size_t value_col = static_cast<size_t>(value_idx);
  if (kind == "avg") return Statistic::Average(cols, value_col);
  if (kind == "sum") return Statistic::Sum(cols, value_col);
  if (kind == "median") return Statistic::MedianOf(cols, value_col);
  if (kind == "var") return Statistic::VarianceOf(cols, value_col);
  if (kind == "ratio") {
    return Statistic::LabelRatio(cols, value_col,
                                 flags.GetDouble("label", 1.0));
  }
  return Status::InvalidArgument("unknown --stat '" + kind + "'");
}

SurfOptions ParseOptions(const CliFlags& flags) {
  SurfOptions options;
  options.workload.num_queries =
      static_cast<size_t>(flags.GetInt("queries", 10000));
  options.surrogate.hypertune = flags.GetBool("hypertune", false);
  options.finder.c = flags.GetDouble("c", 4.0);
  options.finder.max_regions =
      static_cast<size_t>(flags.GetInt("max-regions", 16));
  options.finder.gso.max_iterations =
      static_cast<size_t>(flags.GetInt("iterations", 120));
  return options;
}

FindResult MineWithLoadedModel(const CliFlags& flags, const Dataset& data,
                               const Surrogate& surrogate, double threshold,
                               ThresholdDirection direction) {
  FinderConfig config;
  config.c = flags.GetDouble("c", 4.0);
  config.max_regions =
      static_cast<size_t>(flags.GetInt("max-regions", 16));
  config.gso.max_iterations =
      static_cast<size_t>(flags.GetInt("iterations", 120));
  // Same §V-G swarm sizing Surf::Build applies.
  config.gso.num_glowworms = std::max(
      config.gso.num_glowworms,
      GsoParams::PaperScaled(surrogate.statistic().region_cols.size())
          .num_glowworms);

  SurfFinder finder(surrogate.AsStatisticFn(), surrogate.space(), config);
  finder.SetBatchEstimate(surrogate.AsBatchStatisticFn());

  // Validate reported regions against the true statistic, and give the
  // swarm the same KDE data prior Surf::Build fits.
  const auto evaluator = MakeEvaluator(BackendKind::kGridIndex, &data,
                                       surrogate.statistic());
  finder.SetValidator(evaluator.get());
  const auto& region_cols = surrogate.statistic().region_cols;
  Rng rng(6);
  std::vector<std::vector<double>> points;
  points.reserve(data.num_rows());
  std::vector<double> p(region_cols.size());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t j = 0; j < region_cols.size(); ++j) {
      p[j] = data.Get(r, region_cols[j]);
    }
    points.push_back(p);
  }
  // Same sample cap as SurfOptions.kde_max_samples.
  const Kde kde = Kde::FitSampled(points, 2000, &rng);
  finder.SetKde(&kde);
  return finder.Find(threshold, direction);
}

int RunMine(const CliFlags& flags, const Dataset& data) {
  auto statistic = ParseStatistic(flags, data);
  if (!statistic.ok()) return Fail(statistic.status().ToString());
  if (!flags.Has("threshold")) return Fail("--threshold is required");
  const double threshold = flags.GetDouble("threshold", 0.0);
  const ThresholdDirection direction =
      flags.GetString("direction", "above") == "below"
          ? ThresholdDirection::kBelow
          : ThresholdDirection::kAbove;

  FindResult result;
  const std::string model_path = flags.GetString("model", "");
  if (!model_path.empty()) {
    auto surrogate = Surrogate::Load(model_path);
    if (!surrogate.ok()) return Fail(surrogate.status().ToString());
    std::printf("loaded surrogate from %s\n", model_path.c_str());
    result =
        MineWithLoadedModel(flags, data, *surrogate, threshold, direction);
  } else {
    auto surf = Surf::Build(&data, *statistic, ParseOptions(flags));
    if (!surf.ok()) return Fail(surf.status().ToString());
    std::printf(
        "surrogate: test RMSE %s (%zu training evaluations, "
        "%.2fs)\n",
        FormatDouble(surf->surrogate().metrics().test_rmse, 2).c_str(),
        surf->surrogate().metrics().num_train_examples,
        surf->surrogate().metrics().train_seconds);
    result = surf->FindRegions(threshold, direction);
  }

  TablePrinter table({"region", "box", "estimate", "true", "complies"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& r = result.regions[i];
    std::vector<std::string> box;
    for (size_t j = 0; j < r.region.dims(); ++j) {
      box.push_back("[" + FormatDouble(r.region.lo(j), 3) + "," +
                    FormatDouble(r.region.hi(j), 3) + "]");
    }
    table.AddRow({"#" + std::to_string(i + 1), JoinStrings(box, "x"),
                  FormatDouble(r.estimate, 2),
                  FormatDouble(r.true_value, 2),
                  r.complies_true ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("%zu regions in %.2fs (%.0f%% of swarm in valid space, "
              "%.0f%% true compliance)\n",
              result.regions.size(), result.report.seconds,
              100.0 * result.report.particle_valid_fraction,
              100.0 * result.report.true_compliance);
  return 0;
}

int RunEcdf(const CliFlags& flags, const Dataset& data) {
  auto statistic = ParseStatistic(flags, data);
  if (!statistic.ok()) return Fail(statistic.status().ToString());
  SurfOptions options = ParseOptions(flags);
  options.workload.num_queries = 2000;  // light: ECDF only
  options.fit_kde = false;
  auto surf = Surf::Build(&data, *statistic, options);
  if (!surf.ok()) return Fail(surf.status().ToString());
  const Ecdf ecdf = surf->SampleStatisticEcdf(
      static_cast<size_t>(flags.GetInt("samples", 4000)), 7);
  TablePrinter table({"quantile", "statistic"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    table.AddRow({FormatDouble(q, 2), FormatDouble(ecdf.Quantile(q), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunTrain(const CliFlags& flags, const Dataset& data) {
  auto statistic = ParseStatistic(flags, data);
  if (!statistic.ok()) return Fail(statistic.status().ToString());
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Fail("--model output path is required");
  auto surf = Surf::Build(&data, *statistic, ParseOptions(flags));
  if (!surf.ok()) return Fail(surf.status().ToString());
  if (auto st = surf->surrogate().Save(model_path); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("trained on %zu evaluations (test RMSE %s) -> %s\n",
              surf->surrogate().metrics().num_train_examples,
              FormatDouble(surf->surrogate().metrics().test_rmse, 2).c_str(),
              model_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surf;
  CliFlags flags(argc, argv);
  if (flags.positional().empty()) {
    PrintUsage();
    return 1;
  }
  const std::string command = flags.positional()[0];

  const std::string data_path = flags.GetString("data", "");
  if (data_path.empty()) return Fail("--data FILE.csv is required");
  auto data = Dataset::LoadCsv(data_path);
  if (!data.ok()) return Fail(data.status().ToString());
  std::printf("loaded %zu rows x %zu columns from %s\n",
              data->num_rows(), data->num_cols(), data_path.c_str());

  if (command == "mine") return RunMine(flags, *data);
  if (command == "ecdf") return RunEcdf(flags, *data);
  if (command == "train") return RunTrain(flags, *data);
  PrintUsage();
  return 1;
}
