#ifndef SURF_UTIL_CANCEL_H_
#define SURF_UTIL_CANCEL_H_

/// \file
/// \brief Cooperative cancellation: CancelSource/CancelToken and the live
/// SearchProgress observer long-running loops update.
///
/// Cancellation in SuRF is cooperative and deadline-aware: a request
/// owner holds a CancelSource and hands copies of its CancelToken to the
/// expensive loops (workload labelling, GBRT boosting rounds, KDE
/// fitting, GSO/PSO iterations). Each loop polls `cancelled()` once per
/// iteration — one atomic load plus, when a deadline is armed, one
/// steady_clock read — and unwinds within a single iteration when the
/// flag fires or the deadline passes. Nothing is ever interrupted
/// mid-iteration, so partial state (the swarm so far, the trees fitted so
/// far) stays consistent and can be reported with the Cancelled status.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace surf {

/// \brief Shared state behind a CancelSource and its tokens.
struct CancelStateImpl {
  /// Set once by CancelSource::Cancel; never cleared.
  std::atomic<bool> cancelled{false};
  /// Armed deadline in steady-clock ticks since epoch (0 = no deadline).
  std::atomic<int64_t> deadline_ns{0};
};

/// \brief Cheap copyable view of a cancellation request.
///
/// A default-constructed token is inert: it never reports cancellation,
/// so every cancellation hook can take one by value with a `{}` default
/// and legacy callers stay untouched.
class CancelToken {
 public:
  /// Inert token (never cancelled, no deadline).
  CancelToken() = default;

  /// True once the owning source was cancelled or its deadline passed.
  bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_acquire)) return true;
    const int64_t deadline = state_->deadline_ns.load(std::memory_order_acquire);
    if (deadline == 0) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline;
  }

  /// Cancelled("...") when `cancelled()`, OK otherwise — the status a
  /// loop should return when it unwinds.
  Status ToStatus() const {
    return cancelled() ? Status::Cancelled("request cancelled") : Status::OK();
  }

  /// Whether this token is wired to a source at all (an inert token can
  /// be skipped entirely by hot loops).
  bool can_cancel() const { return state_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const CancelStateImpl> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const CancelStateImpl> state_;
};

/// \brief Owner side of a cancellation: create one per request, hand out
/// tokens, call Cancel() (idempotent) or arm a deadline.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelStateImpl>()) {}

  /// A token observing this source.
  CancelToken token() const { return CancelToken(state_); }

  /// Requests cancellation. Idempotent; a no-op after the work finished.
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }

  /// Arms (or re-arms) a deadline `seconds` from now; tokens report
  /// cancelled once it passes. Non-positive values cancel immediately.
  void SetDeadline(double seconds) {
    if (seconds <= 0.0) {
      Cancel();
      return;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    state_->deadline_ns.store(deadline.time_since_epoch().count(),
                              std::memory_order_release);
  }

  /// Whether Cancel() was called or the armed deadline passed.
  bool cancelled() const { return token().cancelled(); }

 private:
  std::shared_ptr<CancelStateImpl> state_;
};

/// \brief Live progress counters a search loop updates once per
/// iteration. Lock-free: any thread may read a consistent-enough snapshot
/// while the search runs (the counters are independently atomic, not
/// mutually consistent — good enough for progress reporting).
struct SearchProgress {
  /// Optimizer iterations completed so far.
  std::atomic<uint64_t> iterations{0};
  /// Iteration budget of the current search (0 until the loop starts).
  std::atomic<uint64_t> max_iterations{0};
  /// Particles currently holding a valid (defined) objective — the live
  /// proxy for regions-found-so-far before distinct-region extraction.
  std::atomic<uint64_t> valid_particles{0};
};

}  // namespace surf

#endif  // SURF_UTIL_CANCEL_H_
