// Figure 6: surrogate training overhead vs workload size, with and
// without GridSearchCV hypertuning (log-scale y in the paper).
//
// The paper sweeps 10k–388k past queries and tunes a 144-combination
// grid. The default here sweeps a smaller range with the reduced grid so
// the bench finishes quickly; --full restores the paper's grid (warning:
// hours of CPU, exactly the cost the figure is about).

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);

  const std::vector<size_t> sweep =
      full ? std::vector<size_t>{10000, 52000, 94000, 136000, 178000}
           : std::vector<size_t>{2000, 6000, 12000, 20000};

  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 6;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
  const Bounds domain = ds.data.ComputeBounds(ds.region_cols);

  std::printf("Figure 6 — surrogate training overhead (%s grid: %zu "
              "combinations when hypertuning)\n\n",
              full ? "paper" : "reduced",
              full ? GridSearchSpace().NumCombinations()
                   : GridSearchSpace::Small().NumCombinations());

  TablePrinter table(
      {"queries", "train (s)", "hypertune+train (s)", "test RMSE"});
  CsvWriter csv({"queries", "plain_seconds", "hypertune_seconds"});

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  for (size_t q : sweep) {
    WorkloadParams wparams;
    wparams.num_queries = q;
    const RegionWorkload workload =
        GenerateWorkload(evaluator, domain, wparams);

    SurrogateTrainOptions plain;
    plain.gbrt.n_estimators = 100;
    auto plain_model = Surrogate::Train(workload, plain, &pool);
    if (!plain_model.ok()) continue;

    SurrogateTrainOptions tuned = plain;
    tuned.hypertune = true;
    tuned.grid = full ? GridSearchSpace() : GridSearchSpace::Small();
    tuned.cv_folds = full ? 3 : 2;
    auto tuned_model = Surrogate::Train(workload, tuned, &pool);
    if (!tuned_model.ok()) continue;

    table.AddRow({std::to_string(q),
                  FormatDouble(plain_model->metrics().train_seconds, 2),
                  FormatDouble(tuned_model->metrics().train_seconds, 2),
                  FormatDouble(tuned_model->metrics().test_rmse, 1)});
    csv.AddRow({static_cast<double>(q),
                plain_model->metrics().train_seconds,
                tuned_model->metrics().train_seconds});
  }
  std::printf("%s", table.ToString().c_str());

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nExpected shape (paper): both curves grow with the "
              "workload; hypertuning sits 1-2 orders of magnitude above "
              "plain training — a one-off cost since models train once "
              "and serve many requests.\n");
  return 0;
}
