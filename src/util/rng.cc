#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace surf {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size();
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: r == total
}

void Rng::Shuffle(std::vector<size_t>* indices) {
  for (size_t i = indices->size(); i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap((*indices)[i - 1], (*indices)[j]);
  }
}

void Rng::Shuffle(std::vector<uint32_t>* indices) {
  for (size_t i = indices->size(); i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap((*indices)[i - 1], (*indices)[j]);
  }
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace surf
