// Unit tests for the util module: Status/StatusOr, Rng, summaries, CSV,
// string helpers, table printing, CLI flags, and the thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "util/cancel.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/summary.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace surf {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyTypesWork) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    SURF_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectWeights) {
  Rng rng(15);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.Categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsSignalsMiss) {
  Rng rng(16);
  std::vector<double> weights{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.Categorical(weights), weights.size());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<size_t> idx{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&idx);
  std::set<size_t> seen(idx.begin(), idx.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(123);
  Rng child = a.Fork();
  // Child diverges from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == child.Next()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

// --------------------------------------------------------------- Summary

TEST(SummaryTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, RunningStatsEdgeCases) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);  // single sample
}

TEST(SummaryTest, MeanAndStd) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_EQ(StdDev({5.0}), 0.0);
}

TEST(SummaryTest, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(SummaryTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Median({9.0, 1.0, 5.0}), 5.0);
}

TEST(SummaryTest, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(SummaryTest, PearsonConstantSideIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SummaryTest, FitLineRecoversSlope) {
  std::vector<double> xs{0, 1, 2, 3};
  std::vector<double> ys{1, 3, 5, 7};  // y = 1 + 2x
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

// ------------------------------------------------------------ StringUtil

TEST(StringUtilTest, Split) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  x \t"), "x");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5, 4), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 4), "2");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

TEST(StringUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, RoundTrip) {
  CsvWriter writer({"a", "b"});
  writer.AddRow({1.0, 2.5});
  writer.AddRow({-3.0, 0.125});
  const std::string path = "/tmp/surf_csv_test.csv";
  ASSERT_TRUE(writer.Write(path).ok());

  auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->num_cols(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[1][1], 0.125);
  EXPECT_EQ(table->Column("a")[0], 1.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto table = ReadCsv("/tmp/definitely_missing_surf.csv");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"x", "y"};
  EXPECT_EQ(table.ColumnIndex("y"), 1);
  EXPECT_EQ(table.ColumnIndex("z"), -1);
}

TEST(CsvTest, RaggedRowRejected) {
  const std::string path = "/tmp/surf_csv_ragged.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a,b\n1,2\n3\n", f);
    fclose(f);
  }
  auto table = ReadCsv(path);
  EXPECT_FALSE(table.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.ToString();
  // header rule + separator + top/bottom = 4 rules
  size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

// ------------------------------------------------------------------- CLI

TEST(CliTest, ParsesAllForms) {
  // Note: a bare "--flag" greedily consumes a following non-flag token as
  // its value, so positionals must precede flags or flags must use '='.
  const char* argv[] = {"prog", "positional", "--alpha=1.5", "--n", "42",
                        "--flag"};
  CliFlags flags(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.GetInt("n", 0), 42);
  EXPECT_TRUE(flags.GetBool("flag", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(CliTest, FlagValueConsumesNextToken) {
  const char* argv[] = {"prog", "--name", "value"};
  CliFlags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(CliTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("name", "dft"), "dft");
  EXPECT_EQ(flags.GetInt("n", -1), -1);
  EXPECT_FALSE(flags.Has("n"));
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(50, 0);
  ParallelFor(&pool, hits.size(), [&](size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGate) {
  const LogLevel prior = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emission below the gate is a no-op (nothing to assert besides no
  // crash; output goes to stderr).
  SURF_LOG(kDebug) << "suppressed";
  SetLogLevel(prior);
}

// -------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(double(i));
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1000.0 * 0.99);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

// ------------------------------------------------------------ failpoints

// Each test disarms everything on exit so the process-wide registry
// never leaks state into other tests.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().ClearAll(); }
};

TEST_F(FailpointTest, IdleRegistryIsFreeAndPasses) {
  EXPECT_FALSE(FailpointRegistry::active());
  EXPECT_TRUE(MaybeFailpoint("serve.train").ok());
  EXPECT_TRUE(FailpointRegistry::Global().List().empty());
}

TEST_F(FailpointTest, ErrorActionFiresEveryHit) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Set("serve.train", "error").ok());
  EXPECT_TRUE(FailpointRegistry::active());
  const Status fired = MaybeFailpoint("serve.train");
  EXPECT_EQ(fired.code(), StatusCode::kInternal);
  EXPECT_NE(fired.message().find("serve.train"), std::string::npos);
  // Other sites stay dark.
  EXPECT_TRUE(MaybeFailpoint("cache.insert").ok());

  const auto infos = reg.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].site, "serve.train");
  EXPECT_EQ(infos[0].hits, 1u);
  EXPECT_EQ(infos[0].fires, 1u);

  EXPECT_TRUE(reg.Clear("serve.train"));
  EXPECT_FALSE(FailpointRegistry::active());
  EXPECT_TRUE(MaybeFailpoint("serve.train").ok());
}

TEST_F(FailpointTest, ProbabilityDrawsAreDeterministicUnderSeed) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.SetSeed(1234);
  ASSERT_TRUE(reg.Set("serve.train", "prob:0.5").ok());
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(!MaybeFailpoint("serve.train").ok());
  }
  // Reseeding with the same seed resets the counters: the decision
  // sequence replays exactly.
  reg.SetSeed(1234);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(!MaybeFailpoint("serve.train").ok(), first[i]) << "hit " << i;
  }
  // A 0.5 probability over 64 draws fires somewhere strictly between
  // never and always (deterministic given the seed).
  const size_t fires = static_cast<size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FailpointTest, ConfigureParsesListsAndRejectsBadSpecsAtomically) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(
      reg.Configure("serve.train=error, cache.insert=prob:0.25").ok());
  EXPECT_EQ(reg.List().size(), 2u);
  // One malformed entry arms nothing from the list.
  reg.ClearAll();
  EXPECT_FALSE(
      reg.Configure("serve.train=error,cache.insert=prob:nope").ok());
  EXPECT_FALSE(reg.Configure("serve.train=explode").ok());
  EXPECT_FALSE(reg.Configure("serve.train=prob:1.5").ok());
  EXPECT_TRUE(reg.List().empty());
  EXPECT_FALSE(FailpointRegistry::active());
  // The empty spec is a no-op, not an error.
  EXPECT_TRUE(reg.Configure("").ok());
}

TEST_F(FailpointTest, DelayActionSleepsThenPasses) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Set("net.write", "delay:30").ok());
  Stopwatch sw;
  EXPECT_TRUE(MaybeFailpoint("net.write").ok());
  EXPECT_GE(sw.ElapsedSeconds(), 0.025);
}

TEST_F(FailpointTest, KnownSitesCatalogueListsEveryCompiledSite) {
  const std::vector<std::string>& sites = FailpointRegistry::KnownSites();
  const std::set<std::string> unique(sites.begin(), sites.end());
  EXPECT_EQ(unique.size(), sites.size());
  EXPECT_TRUE(unique.count("data.load_csv"));
  EXPECT_TRUE(unique.count("serve.train"));
  EXPECT_TRUE(unique.count("cache.insert"));
  EXPECT_TRUE(unique.count("shard.evaluate"));
  EXPECT_TRUE(unique.count("net.write"));
}

// ----------------------------------------------------------------- retry

TEST(RetryTest, DefaultPolicyMakesExactlyOneAttempt) {
  RetryPolicy policy;
  EXPECT_FALSE(policy.enabled());
  int attempts = 0;
  const Status status = RunWithRetry(policy, [&] {
    ++attempts;
    return Status::Internal("transient");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, RetriesTransientFailuresUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 0.001;
  policy.max_backoff_seconds = 0.002;
  int attempts = 0;
  const Status status = RunWithRetry(policy, [&] {
    return ++attempts < 3 ? Status::Internal("transient") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, NonRetriableStatusReturnsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 0.001;
  int attempts = 0;
  const Status status = RunWithRetry(policy, [&] {
    ++attempts;
    return Status::InvalidArgument("bad request");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(attempts, 1);
  EXPECT_FALSE(IsRetriableStatus(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetriableStatus(Status::Cancelled("x")));
  EXPECT_FALSE(IsRetriableStatus(Status::NotFound("x")));
  EXPECT_TRUE(IsRetriableStatus(Status::Internal("x")));
  EXPECT_TRUE(IsRetriableStatus(Status::IOError("x")));
  EXPECT_TRUE(IsRetriableStatus(Status::TimedOut("x")));
  EXPECT_TRUE(IsRetriableStatus(Status::Unavailable("x")));
}

TEST(RetryTest, CancelledTokenStopsTheLoop) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_seconds = 0.005;
  policy.max_backoff_seconds = 0.005;
  CancelSource source;
  int attempts = 0;
  const Status status = RunWithRetry(
      policy,
      [&] {
        if (++attempts == 2) source.Cancel();
        return Status::Internal("transient");
      },
      source.token());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts, 2);
}

TEST(RetryTest, BackoffGrowsAndIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.5;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0), 0.1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.2);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 0.4);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.5);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(10), 0.5);
  // Jitter stays inside the configured band and is deterministic for a
  // given (seed, retry index).
  policy.jitter_fraction = 0.2;
  for (int i = 0; i < 5; ++i) {
    const double base = policy.BackoffSeconds(i);
    RetryPolicy same = policy;
    EXPECT_DOUBLE_EQ(same.BackoffSeconds(i), base);
    const double nominal = std::min(
        policy.initial_backoff_seconds * std::pow(2.0, i),
        policy.max_backoff_seconds);
    EXPECT_GE(base, nominal * 0.8 - 1e-12);
    EXPECT_LE(base, nominal * 1.2 + 1e-12);
  }
}

}  // namespace
}  // namespace surf
