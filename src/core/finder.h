#ifndef SURF_CORE_FINDER_H_
#define SURF_CORE_FINDER_H_

/// \file
/// \brief The GSO-based region-mining engine and its configuration.

#include <cstdint>
#include <vector>

#include "ml/kde.h"
#include "opt/gso.h"
#include "opt/naive_search.h"
#include "opt/objective.h"
#include "stats/evaluator.h"

namespace surf {

/// \brief Region-finder configuration: the GSO engine plus the objective
/// and result-extraction knobs.
struct FinderConfig {
  /// GSO engine parameters (swarm size, iterations, radii, seeding).
  GsoParams gso;
  /// Let Surf::Build retune the GSO neighbourhood radius and swarm size
  /// for the data dimensionality per the paper's §V-G rules (L = 50·d,
  /// r0 = (1 − ½^{1/L})^{1/d}). Explicitly set num_glowworms survive as
  /// a lower bound. Disable to drive the raw GsoParams untouched.
  bool auto_scale_gso = true;
  /// Size regularizer c (paper Eq. 2/4; §V uses 4).
  double c = 4.0;
  /// Log objective (Eq. 4) vs ratio objective (Eq. 2).
  bool use_log_objective = true;
  /// Result extraction: particles are reduced to distinct regions via
  /// greedy non-max suppression at this IoU ceiling.
  double nms_max_iou = 0.25;
  /// Maximum number of distinct regions reported.
  size_t max_regions = 16;
  /// Steer neighbour selection by the KDE data prior (Eq. 8) when a KDE
  /// is attached. This is the expensive KDE use: one region-mass
  /// integral per particle per iteration.
  bool use_kde_guidance = true;
  /// Seed a fraction of the initial swarm from the KDE data prior
  /// (§III-B guidance at t = 0; see GsoParams::kde_seeded_fraction).
  /// One-off cost — latency-sensitive serving recipes keep this on even
  /// with `use_kde_guidance` off.
  bool use_kde_seeding = true;
};

/// \brief One reported region.
struct FoundRegion {
  /// The mined hyper-rectangle.
  Region region;
  /// Objective value Ĵ at the particle.
  double fitness = 0.0;
  /// Surrogate estimate ŷ = f̂(x, l).
  double estimate = 0.0;
  /// True statistic y = f(x, l); NaN when no validator was attached.
  double true_value = 0.0;
  /// Whether the *true* statistic satisfies the threshold (the paper's
  /// Fig. 5 compliance check). False when unvalidated.
  bool complies_true = false;
};

/// \brief Run metadata for the performance tables.
struct FindReport {
  /// Mining wall-time in seconds.
  double seconds = 0.0;
  /// GSO iterations run.
  size_t iterations = 0;
  /// Objective evaluations issued against the statistic source.
  uint64_t objective_evaluations = 0;
  /// Fraction of final particles with a defined objective (Fig. 1's 84 %).
  double particle_valid_fraction = 0.0;
  /// Whether the swarm met the movement-convergence criterion early.
  bool converged = false;
  /// Whether a CancelToken (or deadline) stopped the search early; the
  /// reported regions are the partial extraction from the swarm so far.
  bool cancelled = false;
  /// Fraction of reported regions whose true statistic complies (only
  /// meaningful with a validator attached).
  double true_compliance = 0.0;
};

/// \brief Full mining outcome.
struct FindResult {
  /// Distinct reported regions, best fitness first.
  std::vector<FoundRegion> regions;
  /// Run metadata (timing, evaluations, compliance).
  FindReport report;
  /// Raw final swarm (for the particle-plot experiments).
  GsoResult gso;
};

/// \brief SuRF's mining engine (paper §III): multimodal GSO over a
/// statistic estimate, with KDE guidance and distinct-region extraction.
///
/// The statistic source is pluggable: pass a surrogate's estimate for the
/// SuRF configuration or a true-evaluator closure for the paper's
/// f+GlowWorm comparison arm — the engine is identical.
class SurfFinder {
 public:
  /// `estimate` supplies f̂ (or f). `space` bounds the particle domain.
  SurfFinder(StatisticFn estimate, RegionSolutionSpace space,
             FinderConfig config);

  /// Attaches a batched estimate source (e.g.
  /// Surrogate::AsBatchStatisticFn). When set, the optimizer scores each
  /// swarm iteration with one call instead of one estimate per particle.
  /// Must agree with the scalar `estimate` value-for-value.
  void SetBatchEstimate(BatchStatisticFn batch_estimate) {
    batch_estimate_ = std::move(batch_estimate);
  }

  /// Attaches a KDE prior over the data distribution (non-owning). Used
  /// for Eq. 8 neighbour guidance when config.use_kde_guidance is set
  /// and for seeded swarm initialization when config.use_kde_seeding is
  /// set; ignored when both are off.
  void SetKde(const Kde* kde) { kde_ = kde; }

  /// Attaches the true-statistic evaluator used to validate reported
  /// regions (non-owning). Optional.
  void SetValidator(const RegionEvaluator* validator) {
    validator_ = validator;
  }

  /// Attaches a cooperative-cancellation token polled once per GSO
  /// iteration. A fired token stops the search within one iteration;
  /// Find then extracts and returns the regions found so far with
  /// `report.cancelled` set.
  void SetCancelToken(CancelToken cancel) { cancel_ = std::move(cancel); }

  /// Attaches a live progress observer (non-owning) updated once per GSO
  /// iteration. Optional.
  void SetProgress(SearchProgress* progress) { progress_ = progress; }

  /// Attaches a trace context (non-owning, nullable): Find then records
  /// "search" and "extraction" stage spans plus per-block GSO iteration
  /// children. Tracing never changes the mined regions.
  void SetTrace(TraceContext* trace) { trace_ = trace; }

  /// Mines regions whose statistic is above/below `threshold`.
  FindResult Find(double threshold, ThresholdDirection direction) const;

  /// The finder configuration.
  const FinderConfig& config() const { return config_; }
  /// The particle solution space.
  const RegionSolutionSpace& space() const { return space_; }

 private:
  StatisticFn estimate_;
  BatchStatisticFn batch_estimate_;  // may be null
  RegionSolutionSpace space_;
  FinderConfig config_;
  const Kde* kde_ = nullptr;
  const RegionEvaluator* validator_ = nullptr;
  CancelToken cancel_;
  SearchProgress* progress_ = nullptr;
  TraceContext* trace_ = nullptr;
};

}  // namespace surf

#endif  // SURF_CORE_FINDER_H_
