#include "opt/clustering.h"

#include <cassert>
#include <queue>

namespace surf {

std::vector<SwarmCluster> ClusterSwarm(const std::vector<Region>& particles,
                                       const std::vector<double>& fitness,
                                       const std::vector<bool>& valid,
                                       double eps, size_t min_points) {
  assert(particles.size() == fitness.size());
  assert(particles.size() == valid.size());
  const size_t n = particles.size();

  // Neighbour lists over valid particles only (O(n²) — swarm sizes are
  // hundreds, not millions).
  std::vector<std::vector<size_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    if (!valid[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (!valid[j]) continue;
      if (particles[i].FlatDistance(particles[j]) <= eps) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }

  constexpr int kUnvisited = -1;
  constexpr int kNoise = -2;
  std::vector<int> label(n, kUnvisited);
  std::vector<SwarmCluster> clusters;

  for (size_t i = 0; i < n; ++i) {
    if (!valid[i] || label[i] != kUnvisited) continue;
    if (neighbors[i].size() + 1 < min_points) {
      label[i] = kNoise;
      continue;
    }
    // Grow a new cluster from core point i.
    const int cluster_id = static_cast<int>(clusters.size());
    clusters.emplace_back();
    std::queue<size_t> frontier;
    frontier.push(i);
    label[i] = cluster_id;
    while (!frontier.empty()) {
      const size_t p = frontier.front();
      frontier.pop();
      clusters[static_cast<size_t>(cluster_id)].members.push_back(p);
      if (neighbors[p].size() + 1 < min_points) continue;  // border point
      for (size_t q : neighbors[p]) {
        if (label[q] == kNoise) {
          label[q] = cluster_id;  // noise absorbed as border
          clusters[static_cast<size_t>(cluster_id)].members.push_back(q);
        } else if (label[q] == kUnvisited) {
          label[q] = cluster_id;
          frontier.push(q);
        }
      }
    }
  }

  for (auto& cluster : clusters) {
    assert(!cluster.members.empty());
    cluster.best_index = cluster.members[0];
    cluster.best_fitness = fitness[cluster.members[0]];
    for (size_t m : cluster.members) {
      if (fitness[m] > cluster.best_fitness) {
        cluster.best_fitness = fitness[m];
        cluster.best_index = m;
      }
    }
  }
  return clusters;
}

}  // namespace surf
