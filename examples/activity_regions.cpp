// Activity regions: the paper's second §V-C experiment over a (simulated)
// smartphone accelerometer dataset.
//
// SuRF mines feature-space regions with a high ratio of the "stand"
// activity (ratio ≥ 0.3), which the paper shows to be a rare event under
// the region-statistic CDF (P(f > 0.3) ≈ 0.0035) — demonstrating that
// SuRF can pin-point statistically unlikely regions. The boxes it returns
// demarcate interpretable classification boundaries in (X, Y, Z).
//
// Run:  ./build/examples/activity_regions [--points N] [--ratio r]

#include <cstdio>

#include "core/surf.h"
#include "data/activity_sim.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  surf::CliFlags flags(argc, argv);

  surf::ActivitySimSpec spec;
  spec.num_points = static_cast<size_t>(flags.GetInt("points", 25000));
  const surf::ActivityDataset activity = surf::SimulateActivity(spec);
  std::printf("activity: %zu accelerometer readings\n",
              activity.data.num_rows());

  // Ratio-of-"stand" statistic over the 3 accelerometer axes.
  const double stand_label =
      static_cast<double>(static_cast<int>(surf::Activity::kStanding));
  const surf::Statistic stat =
      surf::Statistic::LabelRatio({0, 1, 2}, 3, stand_label);

  surf::SurfOptions options;
  options.workload.num_queries = 12000;
  options.finder.gso.num_glowworms = 200;
  options.finder.gso.max_iterations = 150;
  // Ratios live in [0, 1]; the default c = 4 over-penalizes the tiny
  // log-differences, so relax the size regularizer a little.
  options.finder.c = 2.0;

  auto surf_or = surf::Surf::Build(&activity.data, stat, options);
  if (!surf_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 surf_or.status().ToString().c_str());
    return 1;
  }
  const surf::Surf& pipeline = *surf_or;

  // How unlikely is the requested ratio? (paper: P ≈ 0.0035 for 0.3)
  const double target_ratio = flags.GetDouble("ratio", 0.3);
  const surf::Ecdf ecdf = pipeline.SampleStatisticEcdf(4000, 13);
  std::printf("P(ratio(stand) > %.2f) over random regions = %.4f\n",
              target_ratio, ecdf.Exceedance(target_ratio));

  const surf::FindResult result =
      pipeline.FindRegions(target_ratio, surf::ThresholdDirection::kAbove);

  surf::TablePrinter table(
      {"region", "center (x,y,z)", "est. ratio", "true ratio", "complies"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& r = result.regions[i];
    table.AddRow({"#" + std::to_string(i + 1),
                  "(" + surf::FormatDouble(r.region.center(0), 2) + "," +
                      surf::FormatDouble(r.region.center(1), 2) + "," +
                      surf::FormatDouble(r.region.center(2), 2) + ")",
                  surf::FormatDouble(r.estimate, 3),
                  surf::FormatDouble(r.true_value, 3),
                  r.complies_true ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());

  // Ground-truth check: the simulation's "stand" signature mean.
  const auto& stand_mean =
      activity.class_means[static_cast<size_t>(surf::Activity::kStanding)];
  std::printf("(simulation's stand signature is centred at "
              "(%.2f, %.2f, %.2f))\n",
              stand_mean[0], stand_mean[1], stand_mean[2]);
  std::printf("compliance with the true ratio: %.0f%% of %zu regions\n",
              100.0 * result.report.true_compliance,
              result.regions.size());
  return 0;
}
