// surf_cli — command-line front end to the SuRF pipeline.
//
// Subcommands:
//   mine   load a CSV dataset, train (or load) a surrogate, mine regions
//   ecdf   print region-statistic quantiles (to help pick a threshold)
//   train  train a surrogate and save it for later `mine --model` runs
//   batch  serve many mining requests from a query file through the
//          MiningService (shared surrogate cache + worker pool)
//   serve  run surfd, the embedded HTTP/JSON front-end, until
//          SIGINT/SIGTERM triggers a graceful drain
//
// Examples:
//   surf_cli mine --data crimes.csv --cols x,y --stat count
//            --threshold 800 --direction above
//   surf_cli ecdf --data crimes.csv --cols x,y --stat count
//   surf_cli train --data crimes.csv --cols x,y --stat count
//            --queries 50000 --model crimes.surf
//   surf_cli mine --data crimes.csv --model crimes.surf --threshold 800
//   surf_cli batch --queryfile queries.txt --threads 8
//   surf_cli serve --port 8080 --threads 8 --max-inflight 64
// (flags may wrap across lines; each example is one invocation)
//
// Query-file format (one directive per line, '#' comments):
//   dataset NAME PATH.csv
//   mine dataset=NAME cols=x,y stat=count threshold=800 [direction=above]
//        [queries=10000] [c=4] [max-regions=16] [iterations=120] [topk=K]
//        [shards=N]
// Requests sharing (dataset, statistic, training recipe) share one cached
// surrogate — the first request trains it, the rest reuse it.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <thread>

#include "api/api.h"
#include "core/surf.h"
#include "net/http_server.h"
#include "net/metrics.h"
#include "net/surf_handler.h"
#include "serve/mining_service.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace surf;

int Fail(const std::string& msg) {
  std::fprintf(stderr, "surf_cli: %s\n", msg.c_str());
  return 1;
}

void PrintUsage() {
  std::printf(
      "usage: surf_cli <mine|ecdf|train|batch|serve|version> [flags]\n"
      "  common:  --data FILE.csv      dataset (mine/ecdf/train)\n"
      "           --cols a,b[,c]       region columns\n"
      "           --stat count|avg|sum|median|var|ratio\n"
      "           --value-col NAME     (avg/sum/median/var/ratio)\n"
      "           --label VALUE        (ratio)\n"
      "           --queries N          past evaluations to learn from\n"
      "           --shards N           row-range shards for the exact\n"
      "                                back-end (1 = classic single\n"
      "                                evaluator; >=2 = shard-parallel\n"
      "                                scan with summary pruning)\n"
      "           --hypertune          GridSearchCV before the final fit\n"
      "  mine:    --threshold Y  --direction above|below  --c C\n"
      "           --model FILE         mine with a saved surrogate; the\n"
      "                                statistic/columns/solution space\n"
      "                                come from the model file, so\n"
      "                                --cols/--stat are not needed\n"
      "           --max-regions K  --iterations T\n"
      "  train:   --model FILE         output path\n"
      "  batch:   --queryfile FILE     query file (see header comment)\n"
      "           --threads N          service worker threads (0 = all\n"
      "                                cores); requests run concurrently\n"
      "                                against shared cached surrogates\n"
      "           --data FILE.csv      optional dataset registered as\n"
      "                                'default' for mine lines without\n"
      "                                dataset=\n"
      "  serve:   --port N             listen port (default 8080)\n"
      "           --bind ADDR          bind address (default 127.0.0.1)\n"
      "           --threads N          service worker threads (0 = all)\n"
      "           --http-workers N     interactive HTTP workers (0 = auto)\n"
      "           --batch-workers N    batch-class workers / batch\n"
      "                                concurrency cap (0 = workers/8)\n"
      "           --max-inflight N     concurrent requests before 429\n"
      "           --max-queue N        ready-queue depth before load\n"
      "                                shedding (503; 0 = never shed)\n"
      "           --tenant-default R:B:Q  default tenant limits as\n"
      "                                RATE:BURST:QUOTA (0 = unlimited)\n"
      "           --tenant-limit T=R:B:Q[,...]  per-tenant limits keyed\n"
      "                                by the x-surf-tenant header\n"
      "           --no-coalesce        disable single-flight coalescing\n"
      "                                of identical /v1/mine requests\n"
      "           --deadline SECONDS   per-request deadline (default 30)\n"
      "           --data FILE.csv      optional dataset registered as\n"
      "                                'default' at startup\n"
      "           --cache-max-age S    surrogate staleness horizon\n"
      "                                (default: never stale)\n"
      "           --train-retries N    extra training attempts on\n"
      "                                transient failure (default 0)\n"
      "           --breaker-threshold N consecutive training failures\n"
      "                                that open a key's circuit breaker\n"
      "                                (503 + Retry-After; 0 = off)\n"
      "           --breaker-open S     seconds an open breaker refuses\n"
      "                                retrains (default 5)\n"
      "           --negative-ttl S     seconds a training failure is\n"
      "                                replayed without retraining\n"
      "                                (default 0 = off)\n"
      "           --job-retention N    finished jobs kept for polling\n"
      "                                (default 256)\n"
      "           --job-max-age S      finished jobs older than this are\n"
      "                                evicted (default: never)\n"
      "           --workers H:P,...    remote surfd workers; enables\n"
      "                                distributed (cluster) execution\n"
      "           --trace-ring N       completed request traces kept for\n"
      "                                GET /v1/trace/{id} (default 64)\n"
      "           --enable-failpoints  expose the /v1/failpoints fault-\n"
      "                                injection admin API (chaos/debug\n"
      "                                deployments only)\n"
      "           SIGINT/SIGTERM drain in-flight requests, then exit\n"
      "           SURF_LOG_LEVEL=debug|info|warn|error filters the\n"
      "                                structured log (default info)\n"
      "  version: print API/library version and build info (also\n"
      "           --version anywhere), for v1-vs-v2 schema negotiation\n");
}

int RunVersion() {
  const BuildInfo info = GetBuildInfo();
  std::printf("%s\n", VersionString().c_str());
  std::printf("api_version: %d\napi_min_version: %d\nlibrary_version: %s\n"
              "compiler: %s\ncxx_standard: %s\n",
              info.api_version, info.api_min_version,
              info.library_version.c_str(), info.compiler.c_str(),
              info.cxx_standard.c_str());
  return 0;
}

StatusOr<Statistic> ParseStatisticTokens(const Dataset& data,
                                         const std::string& cols_csv,
                                         const std::string& kind,
                                         const std::string& value_name,
                                         double label) {
  std::vector<size_t> cols;
  for (const auto& name : SplitString(cols_csv, ',')) {
    if (name.empty()) continue;
    const int idx = data.ColumnIndex(TrimString(name));
    if (idx < 0) {
      return Status::InvalidArgument("unknown column '" + name + "'");
    }
    cols.push_back(static_cast<size_t>(idx));
  }
  if (cols.empty()) {
    return Status::InvalidArgument("cols is required (comma separated)");
  }
  if (kind == "count") return Statistic::Count(cols);

  const int value_idx = data.ColumnIndex(value_name);
  if (value_idx < 0) {
    return Status::InvalidArgument("value-col required for stat " + kind);
  }
  const size_t value_col = static_cast<size_t>(value_idx);
  if (kind == "avg") return Statistic::Average(cols, value_col);
  if (kind == "sum") return Statistic::Sum(cols, value_col);
  if (kind == "median") return Statistic::MedianOf(cols, value_col);
  if (kind == "var") return Statistic::VarianceOf(cols, value_col);
  if (kind == "ratio") return Statistic::LabelRatio(cols, value_col, label);
  return Status::InvalidArgument("unknown stat '" + kind + "'");
}

StatusOr<Statistic> ParseStatistic(const CliFlags& flags,
                                   const Dataset& data) {
  return ParseStatisticTokens(data, flags.GetString("cols", ""),
                              flags.GetString("stat", "count"),
                              flags.GetString("value-col", ""),
                              flags.GetDouble("label", 1.0));
}

SurfOptions ParseOptions(const CliFlags& flags) {
  SurfOptions options;
  options.workload.num_queries =
      static_cast<size_t>(flags.GetInt("queries", 10000));
  options.surrogate.hypertune = flags.GetBool("hypertune", false);
  options.finder.c = flags.GetDouble("c", 4.0);
  options.finder.max_regions =
      static_cast<size_t>(flags.GetInt("max-regions", 16));
  options.finder.gso.max_iterations =
      static_cast<size_t>(flags.GetInt("iterations", 120));
  options.shards = static_cast<size_t>(flags.GetInt("shards", 1));
  return options;
}

FindResult MineWithLoadedModel(const CliFlags& flags, const Dataset& data,
                               const Surrogate& surrogate, double threshold,
                               ThresholdDirection direction) {
  FinderConfig config;
  config.c = flags.GetDouble("c", 4.0);
  config.max_regions =
      static_cast<size_t>(flags.GetInt("max-regions", 16));
  config.gso.max_iterations =
      static_cast<size_t>(flags.GetInt("iterations", 120));
  // Same §V-G swarm sizing Surf::Build applies.
  config.gso.num_glowworms = std::max(
      config.gso.num_glowworms,
      GsoParams::PaperScaled(surrogate.statistic().region_cols.size())
          .num_glowworms);

  SurfFinder finder(surrogate.AsStatisticFn(), surrogate.space(), config);
  finder.SetBatchEstimate(surrogate.AsBatchStatisticFn());

  // Validate reported regions against the true statistic, and give the
  // swarm the same KDE data prior Surf::Build fits (same 2000-sample cap
  // as SurfOptions.kde_max_samples).
  const auto evaluator = MakeEvaluator(BackendKind::kGridIndex, &data,
                                       surrogate.statistic());
  finder.SetValidator(evaluator.get());
  const Kde kde =
      FitDataKde(data, surrogate.statistic().region_cols, 2000, 6);
  finder.SetKde(&kde);
  return finder.Find(threshold, direction);
}

void PrintFindResult(const FindResult& result) {
  TablePrinter table({"region", "box", "estimate", "true", "complies"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& r = result.regions[i];
    std::vector<std::string> box;
    for (size_t j = 0; j < r.region.dims(); ++j) {
      box.push_back("[" + FormatDouble(r.region.lo(j), 3) + "," +
                    FormatDouble(r.region.hi(j), 3) + "]");
    }
    table.AddRow({"#" + std::to_string(i + 1), JoinStrings(box, "x"),
                  FormatDouble(r.estimate, 2),
                  FormatDouble(r.true_value, 2),
                  r.complies_true ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
}

int RunMine(const CliFlags& flags, const Dataset& data) {
  if (!flags.Has("threshold")) return Fail("--threshold is required");
  const double threshold = flags.GetDouble("threshold", 0.0);
  const ThresholdDirection direction =
      flags.GetString("direction", "above") == "below"
          ? ThresholdDirection::kBelow
          : ThresholdDirection::kAbove;

  FindResult result;
  const std::string model_path = flags.GetString("model", "");
  if (!model_path.empty()) {
    // The saved surrogate embeds the statistic, columns, and solution
    // space — --cols/--stat are not consulted. The embedded column
    // indices must still exist in the supplied CSV.
    auto surrogate = Surrogate::Load(model_path);
    if (!surrogate.ok()) return Fail(surrogate.status().ToString());
    const Statistic& stat = surrogate->statistic();
    for (size_t c : stat.region_cols) {
      if (c >= data.num_cols()) {
        return Fail("model was trained on column index " +
                    std::to_string(c) + " but --data has only " +
                    std::to_string(data.num_cols()) + " columns");
      }
    }
    if (stat.needs_value_column() &&
        (stat.value_col < 0 ||
         static_cast<size_t>(stat.value_col) >= data.num_cols())) {
      return Fail("model's value column is out of range for --data");
    }
    std::printf("loaded surrogate from %s\n", model_path.c_str());
    result =
        MineWithLoadedModel(flags, data, *surrogate, threshold, direction);
  } else {
    auto statistic = ParseStatistic(flags, data);
    if (!statistic.ok()) return Fail(statistic.status().ToString());
    auto surf = Surf::Build(&data, *statistic, ParseOptions(flags));
    if (!surf.ok()) return Fail(surf.status().ToString());
    std::printf(
        "surrogate: test RMSE %s (%zu training evaluations, "
        "%.2fs)\n",
        FormatDouble(surf->surrogate().metrics().test_rmse, 2).c_str(),
        surf->surrogate().metrics().num_train_examples,
        surf->surrogate().metrics().train_seconds);
    result = surf->FindRegions(threshold, direction);
  }

  PrintFindResult(result);
  std::printf("%zu regions in %.2fs (%.0f%% of swarm in valid space, "
              "%.0f%% true compliance)\n",
              result.regions.size(), result.report.seconds,
              100.0 * result.report.particle_valid_fraction,
              100.0 * result.report.true_compliance);
  return 0;
}

int RunEcdf(const CliFlags& flags, const Dataset& data) {
  auto statistic = ParseStatistic(flags, data);
  if (!statistic.ok()) return Fail(statistic.status().ToString());
  SurfOptions options = ParseOptions(flags);
  options.workload.num_queries = 2000;  // light: ECDF only
  options.fit_kde = false;
  auto surf = Surf::Build(&data, *statistic, options);
  if (!surf.ok()) return Fail(surf.status().ToString());
  const Ecdf ecdf = surf->SampleStatisticEcdf(
      static_cast<size_t>(flags.GetInt("samples", 4000)), 7);
  TablePrinter table({"quantile", "statistic"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    table.AddRow({FormatDouble(q, 2), FormatDouble(ecdf.Quantile(q), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunTrain(const CliFlags& flags, const Dataset& data) {
  auto statistic = ParseStatistic(flags, data);
  if (!statistic.ok()) return Fail(statistic.status().ToString());
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Fail("--model output path is required");
  auto surf = Surf::Build(&data, *statistic, ParseOptions(flags));
  if (!surf.ok()) return Fail(surf.status().ToString());
  if (auto st = surf->surrogate().Save(model_path); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("trained on %zu evaluations (test RMSE %s) -> %s\n",
              surf->surrogate().metrics().num_train_examples,
              FormatDouble(surf->surrogate().metrics().test_rmse, 2).c_str(),
              model_path.c_str());
  return 0;
}

/// key=value lookup over one query-file line's tokens.
class LineArgs {
 public:
  explicit LineArgs(const std::vector<std::string>& tokens) {
    for (const auto& token : tokens) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) continue;
      kv_[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  std::string Get(const std::string& key, const std::string& def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& key) const { return kv_.count(key) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

StatusOr<MineRequest> ParseMineLine(const MiningService& service,
                                    const LineArgs& args) {
  MineRequest request;
  request.dataset = args.Get("dataset", "default");
  const Dataset* data = service.dataset(request.dataset);
  if (data == nullptr) {
    return Status::NotFound("dataset '" + request.dataset +
                            "' not declared (use a 'dataset NAME PATH' "
                            "line or --data)");
  }
  auto statistic = ParseStatisticTokens(
      *data, args.Get("cols", ""), args.Get("stat", "count"),
      args.Get("value-col", ""), args.GetDouble("label", 1.0));
  if (!statistic.ok()) return statistic.status();
  request.statistic = *statistic;

  if (args.Has("topk")) {
    request.mode = MineRequest::Mode::kTopK;
    request.topk.k = static_cast<size_t>(args.GetInt("topk", 3));
    request.topk.c = args.GetDouble("c", 0.8);
    request.topk.gso.max_iterations =
        static_cast<size_t>(args.GetInt("iterations", 120));
  } else {
    if (!args.Has("threshold")) {
      return Status::InvalidArgument(
          "mine line needs threshold= (or topk=)");
    }
    request.threshold = args.GetDouble("threshold", 0.0);
    request.direction = args.Get("direction", "above") == "below"
                            ? ThresholdDirection::kBelow
                            : ThresholdDirection::kAbove;
    request.finder.c = args.GetDouble("c", 4.0);
    request.finder.max_regions =
        static_cast<size_t>(args.GetInt("max-regions", 16));
    request.finder.gso.max_iterations =
        static_cast<size_t>(args.GetInt("iterations", 120));
  }
  request.workload.num_queries =
      static_cast<size_t>(args.GetInt("queries", 10000));
  request.shards = static_cast<size_t>(args.GetInt("shards", 1));
  return request;
}

int RunBatch(const CliFlags& flags) {
  const std::string query_path = flags.GetString("queryfile", "");
  if (query_path.empty()) return Fail("--queryfile FILE is required");

  MiningService::Options options;
  options.num_threads =
      static_cast<size_t>(flags.GetInt("threads", 0));
  MiningService service(options);
  std::printf("service: %zu worker threads\n", service.num_threads());

  const std::string data_path = flags.GetString("data", "");
  if (!data_path.empty()) {
    if (auto st = service.RegisterCsvDataset("default", data_path);
        !st.ok()) {
      return Fail(st.ToString());
    }
  }

  std::ifstream in(query_path);
  if (!in) return Fail("cannot open " + query_path);
  std::vector<MineRequest> requests;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = TrimString(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const auto& t : SplitString(trimmed, ' ')) {
      if (!t.empty()) tokens.push_back(t);
    }
    const std::string lead = tokens.empty() ? "" : tokens[0];
    if (lead == "dataset") {
      if (tokens.size() != 3) {
        return Fail(query_path + ":" + std::to_string(line_no) +
                    ": expected 'dataset NAME PATH'");
      }
      if (auto st = service.RegisterCsvDataset(tokens[1], tokens[2]);
          !st.ok()) {
        return Fail(query_path + ":" + std::to_string(line_no) + ": " +
                    st.ToString());
      }
      const Dataset* data = service.dataset(tokens[1]);
      std::printf("dataset %s: %zu rows x %zu columns from %s\n",
                  tokens[1].c_str(), data->num_rows(), data->num_cols(),
                  tokens[2].c_str());
    } else if (lead == "mine") {
      auto request = ParseMineLine(service, LineArgs(tokens));
      if (!request.ok()) {
        return Fail(query_path + ":" + std::to_string(line_no) + ": " +
                    request.status().ToString());
      }
      requests.push_back(std::move(request).value());
    } else {
      return Fail(query_path + ":" + std::to_string(line_no) +
                  ": unknown directive '" + lead + "'");
    }
  }
  if (requests.empty()) return Fail("query file has no mine lines");

  Stopwatch timer;
  const std::vector<MineResponse> responses = service.MineBatch(requests);
  const double seconds = timer.ElapsedSeconds();

  int failures = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const MineResponse& response = responses[i];
    std::printf("-- request %zu/%zu [%s, %s]\n", i + 1, responses.size(),
                responses[i].cache_hit ? "cache hit" : "trained",
                requests[i].dataset.c_str());
    if (!response.status.ok()) {
      std::printf("   %s\n", response.status.ToString().c_str());
      ++failures;
      continue;
    }
    if (requests[i].mode == MineRequest::Mode::kTopK) {
      TablePrinter table({"rank", "box", "estimate"});
      for (size_t r = 0; r < response.topk.regions.size(); ++r) {
        const auto& scored = response.topk.regions[r];
        std::vector<std::string> box;
        for (size_t j = 0; j < scored.region.dims(); ++j) {
          box.push_back("[" + FormatDouble(scored.region.lo(j), 3) + "," +
                        FormatDouble(scored.region.hi(j), 3) + "]");
        }
        table.AddRow({"#" + std::to_string(r + 1), JoinStrings(box, "x"),
                      FormatDouble(scored.statistic, 2)});
      }
      std::printf("%s", table.ToString().c_str());
    } else {
      PrintFindResult(response.result);
    }
  }

  const SurrogateCache::Stats stats = service.cache().stats();
  std::printf(
      "%zu requests in %.2fs (%.1f req/s) | surrogate cache: %llu hits, "
      "%llu misses, %llu evictions\n",
      responses.size(), seconds, responses.size() / seconds,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.evictions));
  // Per-request failures must reach the process exit code, so scripted
  // batch runs cannot silently half-succeed.
  std::printf("batch summary: %d/%zu requests failed\n", failures,
              responses.size());
  if (failures > 0) {
    std::fprintf(stderr, "surf_cli: %d of %zu batch requests failed\n",
                 failures, responses.size());
    return 1;
  }
  return 0;
}

/// SIGINT/SIGTERM flip this; the serve loop polls it and then drains.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleStopSignal(int) { g_shutdown_requested = 1; }

int RunServe(const CliFlags& flags) {
  // A server wants its lifecycle in the log; the library default (warn)
  // suits embedders and tests. SURF_LOG_LEVEL still wins when set.
  if (std::getenv("SURF_LOG_LEVEL") == nullptr) {
    SetLogLevel(LogLevel::kInfo);
  }
  MiningService::Options service_options;
  service_options.num_threads =
      static_cast<size_t>(flags.GetInt("threads", 0));
  service_options.cache.max_age_seconds =
      flags.GetDouble("cache-max-age",
                      std::numeric_limits<double>::infinity());
  service_options.cache.breaker_failure_threshold =
      static_cast<size_t>(flags.GetInt("breaker-threshold", 0));
  service_options.cache.breaker_open_seconds =
      flags.GetDouble("breaker-open", 5.0);
  service_options.cache.negative_ttl_seconds =
      flags.GetDouble("negative-ttl", 0.0);
  // --train-retries counts *extra* attempts; the policy counts total.
  service_options.training_retry.max_attempts =
      flags.GetInt("train-retries", 0) + 1;
  service_options.trace_ring_capacity =
      static_cast<size_t>(flags.GetInt("trace-ring", 64));
  // --workers turns this instance into a cluster coordinator: requests
  // with execution.cluster scatter shard groups to these endpoints.
  const std::string workers = flags.GetString("workers", "");
  for (const std::string& endpoint : SplitString(workers, ',')) {
    const std::string trimmed = TrimString(endpoint);
    if (!trimmed.empty()) {
      service_options.cluster_workers.push_back(trimmed);
    }
  }
  MiningService service(service_options);

  const std::string data_path = flags.GetString("data", "");
  if (!data_path.empty()) {
    if (auto st = service.RegisterCsvDataset("default", data_path);
        !st.ok()) {
      return Fail(st.ToString());
    }
    const Dataset* data = service.dataset("default");
    std::printf("dataset default: %zu rows x %zu columns from %s\n",
                data->num_rows(), data->num_cols(), data_path.c_str());
  }

  ServerMetrics metrics;
  SurfHandler::Options handler_options;
  handler_options.enable_failpoint_admin =
      flags.GetBool("enable-failpoints", false);
  handler_options.job_retention.max_finished =
      static_cast<size_t>(flags.GetInt("job-retention", 256));
  handler_options.job_retention.max_age_seconds =
      flags.GetDouble("job-max-age",
                      std::numeric_limits<double>::infinity());
  handler_options.coalesce_identical_mines =
      !flags.GetBool("no-coalesce", false);
  SurfHandler handler(&service, &metrics, handler_options);

  HttpServer::Options options;
  options.bind_address = flags.GetString("bind", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  options.num_workers =
      static_cast<size_t>(flags.GetInt("http-workers", 0));
  options.batch_workers =
      static_cast<size_t>(flags.GetInt("batch-workers", 0));
  options.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight", 64));
  options.max_queue_depth =
      static_cast<size_t>(flags.GetInt("max-queue", 0));
  options.request_deadline_seconds = flags.GetDouble("deadline", 30.0);
  // Per-tenant QoS: --tenant-default caps tenants without an explicit
  // entry; --tenant-limit names specific tenants.
  const std::string tenant_default = flags.GetString("tenant-default", "");
  if (!tenant_default.empty()) {
    if (auto st = sched::TenantGovernor::ParseLimits(
            tenant_default, &options.qos.default_limits);
        !st.ok()) {
      return Fail(st.ToString());
    }
  }
  const std::string tenant_limits = flags.GetString("tenant-limit", "");
  if (!tenant_limits.empty()) {
    if (auto st =
            sched::TenantGovernor::ParseTenantSpec(tenant_limits, &options.qos);
        !st.ok()) {
      return Fail(st.ToString());
    }
  }
  HttpServer server(options, handler.AsHttpHandler());
  handler.set_transport_stats_provider(
      [&server] { return server.stats(); });
  if (auto st = server.Start(); !st.ok()) return Fail(st.ToString());

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("surfd listening on http://%s:%u (workers=%zu+%zu batch, "
              "max-inflight=%zu, deadline=%.1fs)\n",
              options.bind_address.c_str(), server.port(), server.workers(),
              server.batch_workers(), options.max_inflight,
              options.request_deadline_seconds);
  std::fflush(stdout);

  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("signal received: draining in-flight requests...\n");
  std::fflush(stdout);
  server.Shutdown();
  const HttpServer::Stats stats = server.stats();
  std::printf("drained. served %llu requests (%llu connections, %llu "
              "rejected with 429, %llu timeouts)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_rejected),
              static_cast<unsigned long long>(stats.request_timeouts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surf;
  CliFlags flags(argc, argv);
  if (flags.GetBool("version", false)) return RunVersion();
  if (flags.positional().empty()) {
    PrintUsage();
    return 1;
  }
  const std::string command = flags.positional()[0];

  if (command == "version") return RunVersion();
  if (command == "batch") return RunBatch(flags);
  if (command == "serve") return RunServe(flags);

  if (command == "mine" || command == "ecdf" || command == "train") {
    const std::string data_path = flags.GetString("data", "");
    if (data_path.empty()) return Fail("--data FILE.csv is required");
    auto data = Dataset::LoadCsv(data_path);
    if (!data.ok()) return Fail(data.status().ToString());
    std::printf("loaded %zu rows x %zu columns from %s\n",
                data->num_rows(), data->num_cols(), data_path.c_str());
    if (command == "mine") return RunMine(flags, *data);
    if (command == "ecdf") return RunEcdf(flags, *data);
    return RunTrain(flags, *data);
  }

  PrintUsage();
  return 1;
}
