// Tests for the pipeline trace layer: span recording and nesting, the
// disabled-mode cost contract (zero allocation), StageStats histograms,
// the trace ring, the JSON/Chrome encoders, and the guarantee that
// tracing never perturbs mined results.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/finder.h"
#include "core/surrogate.h"
#include "core/workload.h"
#include "data/synthetic.h"
#include "net/json_codec.h"
#include "util/json.h"
#include "util/trace.h"

// Global allocation counter backing the disabled-mode zero-allocation
// test. Counting relaxed-atomically keeps the override harmless for the
// rest of the binary.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace surf {
namespace {

// ------------------------------------------------------------ TraceContext

TEST(TraceContextTest, RaiiSpansNestThroughThreadCursor) {
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "request");
    {
      TraceSpan child(&ctx, "training", TraceStage::kTraining);
      TraceSpan grandchild(&ctx, "kde_fit", TraceStage::kTraining);
      (void)grandchild;
    }
    TraceSpan sibling(&ctx, "search", TraceStage::kSearch);
    (void)sibling;
  }
  const auto spans = ctx.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, 0);   // training under request
  EXPECT_EQ(spans[2].parent, 1);   // kde_fit under training
  EXPECT_EQ(spans[3].parent, 0);   // search back under request
  for (const auto& span : spans) EXPECT_GT(span.dur_ns, 0u);
}

TEST(TraceContextTest, ExplicitParentCrossesThreads) {
  TraceContext ctx;
  int32_t worker_parent = -1;
  {
    TraceSpan root(&ctx, "request");
    std::thread worker([&ctx, &root, &worker_parent] {
      TraceSpan span(&ctx, "label_batch", TraceStage::kLabelling,
                     root.index());
      worker_parent = span.index();
    });
    worker.join();
  }
  const auto spans = ctx.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(worker_parent, 1);
  EXPECT_EQ(spans[1].parent, 0);
  // The worker got its own dense thread index.
  EXPECT_NE(spans[1].tid, spans[0].tid);
}

TEST(TraceContextTest, ConcurrentRecordingIsSafeAndComplete) {
  TraceContext ctx;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&ctx, "concurrent", TraceStage::kLabelling);
        (void)span;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ctx.Snapshot().size(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(ctx.dropped(), 0u);
}

TEST(TraceContextTest, SpanCapCountsDrops) {
  TraceContext ctx;
  for (size_t i = 0; i < TraceContext::kMaxSpans + 100; ++i) {
    ctx.EndSpan(ctx.BeginSpan("flood", TraceStage::kNone, -1));
  }
  EXPECT_EQ(ctx.Snapshot().size(), TraceContext::kMaxSpans);
  EXPECT_EQ(ctx.dropped(), 100u);
}

TEST(TraceContextTest, StageSecondsSumsClosedSpans) {
  TraceContext ctx;
  const int32_t a = ctx.BeginSpan("search", TraceStage::kSearch, -1);
  const int32_t b = ctx.BeginSpan("search", TraceStage::kSearch, -1);
  ctx.EndSpan(a);
  ctx.EndSpan(b);
  const int32_t open = ctx.BeginSpan("search", TraceStage::kSearch, -1);
  (void)open;  // never closed: must not count
  const auto stages = ctx.StageSeconds();
  EXPECT_GT(stages[static_cast<int>(TraceStage::kSearch)], 0.0);
  EXPECT_EQ(stages[static_cast<int>(TraceStage::kTraining)], 0.0);
  EXPECT_EQ(stages[0], 0.0);  // kNone never accumulates
}

TEST(TraceContextTest, CurrentTraceIdFollowsInnermostSpan) {
  EXPECT_EQ(CurrentTraceId(), nullptr);
  TraceContext ctx;
  {
    TraceSpan span(&ctx, "request");
    ASSERT_NE(CurrentTraceId(), nullptr);
    EXPECT_EQ(*CurrentTraceId(), ctx.id());
  }
  EXPECT_EQ(CurrentTraceId(), nullptr);
}

// --------------------------------------------------------- disabled mode

TEST(TraceSpanTest, DisabledModeAllocatesNothing) {
  // Warm the thread-local cursor and counters outside the window.
  { TraceSpan warm(nullptr, "warm"); }
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    TraceSpan span(nullptr, "hot", TraceStage::kSearch);
    span.Attr("count", static_cast<uint64_t>(i));
    span.Attr("ratio", 0.5);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);
}

TEST(TraceSpanTest, DisabledModeLeavesCursorAlone) {
  TraceContext ctx;
  TraceSpan outer(&ctx, "request");
  { TraceSpan disabled(nullptr, "noop"); }
  // A null-context span must not disturb the enclosing trace's cursor.
  TraceSpan child(&ctx, "child");
  EXPECT_EQ(ctx.Snapshot()[1].parent, 0);
}

// ------------------------------------------------------------- StageStats

TEST(StageStatsTest, RecordsIntoCorrectBucket) {
  StageStats& stats = StageStats::Instance();
  stats.Reset();
  stats.Record(TraceStage::kTraining, 2'000'000);  // 2ms → le=0.0025
  stats.Record(TraceStage::kTraining, 400'000'000);  // 0.4s → le=0.5
  stats.Record(TraceStage::kTraining, 60'000'000'000);  // 60s → +Inf
  const auto snap = stats.Get(TraceStage::kTraining);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets[2], 1u);   // 0.0025 bound
  EXPECT_EQ(snap.buckets[9], 1u);   // 0.5 bound
  EXPECT_EQ(snap.buckets[StageStats::kNumBuckets - 1], 1u);  // +Inf
  EXPECT_NEAR(snap.sum_seconds, 60.402, 1e-6);
  stats.Reset();
}

TEST(StageStatsTest, ClosedStagedSpansFeedTheHistograms) {
  StageStats& stats = StageStats::Instance();
  stats.Reset();
  TraceContext ctx;
  { TraceSpan span(&ctx, "workload_gen", TraceStage::kWorkloadGen); }
  { TraceSpan span(&ctx, "tree", TraceStage::kNone); }
  EXPECT_EQ(stats.Get(TraceStage::kWorkloadGen).count, 1u);
  // kNone spans are tree-only.
  for (int s = 1; s < kNumTraceStages; ++s) {
    if (s == static_cast<int>(TraceStage::kWorkloadGen)) continue;
    EXPECT_EQ(stats.Get(static_cast<TraceStage>(s)).count, 0u);
  }
  stats.Reset();
}

// -------------------------------------------------------------- TraceRing

TEST(TraceRingTest, FindsRetainedAndEvictsOldest) {
  TraceRing ring(2);
  auto a = std::make_shared<TraceContext>();
  auto b = std::make_shared<TraceContext>();
  auto c = std::make_shared<TraceContext>();
  const std::string id_a = a->id();
  ring.Add(a);
  ring.Add(b);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.Find(id_a), a);
  ring.Add(c);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.Find(id_a), nullptr);  // oldest fell off
  EXPECT_EQ(ring.Find(c->id()), c);
}

// --------------------------------------------------------------- encoders

TEST(TraceJsonTest, SummaryCarriesStagesAndSpans) {
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "request");
    TraceSpan search(&ctx, "search", TraceStage::kSearch);
    search.Attr("iterations", static_cast<uint64_t>(42));
  }
  const JsonValue summary = TraceSummaryToJson(ctx);
  ASSERT_TRUE(summary.is_object());
  EXPECT_EQ(summary.Find("id")->string_value(), ctx.id());
  EXPECT_EQ(summary.Find("dropped_spans")->number_value(), 0.0);

  const JsonValue* stages = summary.Find("stage_seconds");
  ASSERT_NE(stages, nullptr);
  EXPECT_GT(stages->Find("search")->number_value(), 0.0);
  EXPECT_EQ(stages->Find("training")->number_value(), 0.0);

  const JsonValue* spans = summary.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array().size(), 2u);
  const JsonValue& search_span = spans->array()[1];
  EXPECT_EQ(search_span.Find("name")->string_value(), "search");
  EXPECT_EQ(search_span.Find("stage")->string_value(), "search");
  EXPECT_EQ(search_span.Find("parent")->number_value(), 0.0);
  EXPECT_GT(search_span.Find("dur_us")->number_value(), 0.0);
  EXPECT_EQ(search_span.Find("attrs")->Find("iterations")->string_value(),
            "42");
  // The root span carries no stage and no attrs → both keys absent.
  EXPECT_EQ(spans->array()[0].Find("stage"), nullptr);
  EXPECT_EQ(spans->array()[0].Find("attrs"), nullptr);
}

TEST(TraceJsonTest, ChromeExportIsStructurallyValid) {
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "request");
    TraceSpan train(&ctx, "training", TraceStage::kTraining);
    train.Attr("rounds", std::string("0..24"));
  }
  const JsonValue chrome = TraceToChromeJson(ctx);
  ASSERT_TRUE(chrome.is_object());
  EXPECT_EQ(chrome.Find("displayTimeUnit")->string_value(), "ms");
  EXPECT_EQ(chrome.Find("otherData")->Find("trace_id")->string_value(),
            ctx.id());

  const JsonValue* events = chrome.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const auto spans = ctx.Snapshot();
  ASSERT_EQ(events->array().size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const JsonValue& event = events->array()[i];
    // The complete-event fields Perfetto requires.
    EXPECT_EQ(event.Find("ph")->string_value(), "X");
    EXPECT_STREQ(event.Find("name")->string_value().c_str(), spans[i].name);
    EXPECT_TRUE(event.Find("cat")->is_string());
    EXPECT_EQ(event.Find("pid")->number_value(), 1.0);
    EXPECT_EQ(event.Find("tid")->number_value(),
              static_cast<double>(spans[i].tid));
    // Microsecond timestamps, straight from the nanosecond record.
    EXPECT_DOUBLE_EQ(event.Find("ts")->number_value(),
                     static_cast<double>(spans[i].start_ns) * 1e-3);
    EXPECT_DOUBLE_EQ(event.Find("dur")->number_value(),
                     static_cast<double>(spans[i].dur_ns) * 1e-3);
    ASSERT_NE(event.Find("args"), nullptr);
  }
  // The nested training event categorizes under its stage.
  EXPECT_EQ(events->array()[1].Find("cat")->string_value(), "training");
  // The whole document must serialize (Perfetto loads the string form).
  EXPECT_FALSE(WriteJson(chrome).empty());
}

TEST(TraceJsonTest, ResponseEnvelopeEmitsTraceOnlyWhenPresent) {
  MineResponse response;
  response.provenance.training_set_size = 10;
  const std::string untraced =
      WriteJson(MineResponseToJson(response, MineRequest::Mode::kThreshold));
  EXPECT_EQ(untraced.find("\"trace\""), std::string::npos);

  auto trace = std::make_shared<TraceContext>();
  { TraceSpan span(trace.get(), "request"); }
  response.trace = trace;
  const std::string traced =
      WriteJson(MineResponseToJson(response, MineRequest::Mode::kThreshold));
  EXPECT_NE(traced.find("\"trace\""), std::string::npos);
  EXPECT_NE(traced.find(trace->id()), std::string::npos);

  // Dropping the trace again restores the exact pre-tracing encoding.
  response.trace = nullptr;
  EXPECT_EQ(
      WriteJson(MineResponseToJson(response, MineRequest::Mode::kThreshold)),
      untraced);
}

TEST(TraceJsonTest, RequestTraceFlagRoundTrips) {
  MineRequest request;
  request.dataset = "d";
  request.statistic = Statistic::Count({0, 1});
  request.trace = true;
  const JsonValue encoded = MineRequestToJson(request);
  EXPECT_TRUE(encoded.Find("trace")->bool_value());
  auto decoded = MineRequestFromJson(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->trace);

  // v2 carries the flag inside the execution recipe. FromLegacy keeps
  // api_version = 1, so stamp 2 to exercise the named-section decoder.
  v2::MineRequest v2_request = v2::FromLegacy(request);
  v2_request.api_version = 2;
  EXPECT_TRUE(v2_request.execution.trace);
  const JsonValue v2_encoded = MineRequestV2ToJson(v2_request);
  EXPECT_TRUE(
      v2_encoded.Find("execution")->Find("trace")->bool_value());
  auto v2_decoded = MineRequestV2FromJson(v2_encoded);
  ASSERT_TRUE(v2_decoded.ok());
  EXPECT_TRUE(v2_decoded->execution.trace);
}

// ------------------------------------------------- pipeline integration

SyntheticDataset SmallDensityData() {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 3000;
  spec.seed = 42;
  return SyntheticGenerator::Generate(spec);
}

struct PipelineOutcome {
  RegionWorkload workload;
  FindResult found;
};

PipelineOutcome RunPipeline(const SyntheticDataset& ds, TraceContext* trace) {
  ScanEvaluator eval(&ds.data, Statistic::Count({0, 1}));
  WorkloadParams wparams;
  wparams.num_queries = 800;
  PipelineOutcome out;
  out.workload = GenerateWorkload(eval, ds.data.ComputeBounds({0, 1}),
                                  wparams, {}, trace);
  SurrogateTrainOptions sopts;
  sopts.gbrt.n_estimators = 30;
  auto surrogate = Surrogate::Train(out.workload, sopts, nullptr, {}, trace);
  EXPECT_TRUE(surrogate.ok());
  FinderConfig config;
  config.gso.num_glowworms = 60;
  config.gso.max_iterations = 25;
  SurfFinder finder(surrogate->AsStatisticFn(), out.workload.space, config);
  finder.SetBatchEstimate(surrogate->AsBatchStatisticFn());
  finder.SetTrace(trace);
  out.found = finder.Find(100.0, ThresholdDirection::kAbove);
  return out;
}

TEST(TraceIdentityTest, TracingDoesNotPerturbResults) {
  const SyntheticDataset ds = SmallDensityData();
  const PipelineOutcome off = RunPipeline(ds, nullptr);
  TraceContext ctx;
  PipelineOutcome on;
  {
    TraceSpan root(&ctx, "request");
    on = RunPipeline(ds, &ctx);
  }

  // Same workload, bit for bit.
  ASSERT_EQ(on.workload.size(), off.workload.size());
  EXPECT_EQ(on.workload.targets, off.workload.targets);

  // Same mined regions, bit for bit (deterministic seeds; spans observe,
  // never branch).
  ASSERT_EQ(on.found.regions.size(), off.found.regions.size());
  for (size_t i = 0; i < on.found.regions.size(); ++i) {
    EXPECT_EQ(on.found.regions[i].region.center(),
              off.found.regions[i].region.center());
    EXPECT_EQ(on.found.regions[i].region.half_lengths(),
              off.found.regions[i].region.half_lengths());
    EXPECT_EQ(on.found.regions[i].fitness, off.found.regions[i].fitness);
    EXPECT_EQ(on.found.regions[i].estimate, off.found.regions[i].estimate);
  }
  EXPECT_EQ(on.found.report.iterations, off.found.report.iterations);
  EXPECT_EQ(on.found.report.objective_evaluations,
            off.found.report.objective_evaluations);
}

TEST(TraceIdentityTest, StageSpansPartitionPipelineTime) {
  const SyntheticDataset ds = SmallDensityData();
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "request");
    RunPipeline(ds, &ctx);
  }
  const auto spans = ctx.Snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_STREQ(spans[0].name, "request");
  const double wall = static_cast<double>(spans[0].dur_ns) * 1e-9;

  // The four top-level stages partition the request: present, and
  // summing to (almost all of) its wall time. Labelling is excluded —
  // its spans nest inside workload_gen.
  const auto stages = ctx.StageSeconds();
  const double partition =
      stages[static_cast<int>(TraceStage::kWorkloadGen)] +
      stages[static_cast<int>(TraceStage::kTraining)] +
      stages[static_cast<int>(TraceStage::kSearch)] +
      stages[static_cast<int>(TraceStage::kExtraction)];
  EXPECT_GT(stages[static_cast<int>(TraceStage::kWorkloadGen)], 0.0);
  EXPECT_GT(stages[static_cast<int>(TraceStage::kTraining)], 0.0);
  EXPECT_GT(stages[static_cast<int>(TraceStage::kSearch)], 0.0);
  EXPECT_GT(stages[static_cast<int>(TraceStage::kExtraction)], 0.0);
  EXPECT_LE(partition, wall * 1.001);
  EXPECT_GE(partition, wall * 0.90);

  // Labelling children recorded under workload_gen, and the batched GSO
  // iteration spans under search.
  bool saw_labelling = false;
  bool saw_gso_batch = false;
  for (const auto& span : spans) {
    if (span.stage == TraceStage::kLabelling) saw_labelling = true;
    if (std::string(span.name) == "gso_iterations") saw_gso_batch = true;
  }
  EXPECT_TRUE(saw_labelling);
  EXPECT_TRUE(saw_gso_batch);
  EXPECT_EQ(ctx.dropped(), 0u);
}

}  // namespace
}  // namespace surf
