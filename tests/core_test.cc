// Tests for the SuRF core: workload generation, surrogate training and
// persistence, the finder, and the Surf facade.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/surf.h"
#include "data/synthetic.h"
#include "ml/knn.h"
#include "ml/linear.h"

namespace surf {
namespace {

SyntheticDataset DensityData(size_t dims, size_t k, uint64_t seed = 42) {
  SyntheticSpec spec;
  spec.dims = dims;
  spec.num_gt_regions = k;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 8000;
  spec.seed = seed;
  return SyntheticGenerator::Generate(spec);
}

// -------------------------------------------------------------- Workload

TEST(WorkloadTest, GeneratesRequestedQueries) {
  const SyntheticDataset ds = DensityData(2, 1);
  ScanEvaluator eval(&ds.data, Statistic::Count({0, 1}));
  WorkloadParams params;
  params.num_queries = 500;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0, 1}), params);
  EXPECT_EQ(workload.size(), 500u);  // counts are never NaN
  EXPECT_EQ(workload.features.num_features(), 4u);  // 2d
  EXPECT_EQ(eval.evaluation_count(), 500u);
}

TEST(WorkloadTest, LengthsRespectFractions) {
  const SyntheticDataset ds = DensityData(2, 1);
  ScanEvaluator eval(&ds.data, Statistic::Count({0, 1}));
  WorkloadParams params;
  params.num_queries = 300;
  params.min_length_frac = 0.01;
  params.max_length_frac = 0.15;
  const Bounds domain = ds.data.ComputeBounds({0, 1});
  const RegionWorkload workload = GenerateWorkload(eval, domain, params);
  for (size_t i = 0; i < workload.size(); ++i) {
    const Region r = workload.RegionAt(i);
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_GE(r.half_length(j), 0.01 * domain.Extent(j) - 1e-12);
      EXPECT_LE(r.half_length(j), 0.15 * domain.Extent(j) + 1e-12);
      EXPECT_GE(r.center(j), domain.lo(j));
      EXPECT_LE(r.center(j), domain.hi(j));
    }
  }
}

TEST(WorkloadTest, TargetsMatchDirectEvaluation) {
  const SyntheticDataset ds = DensityData(1, 1);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams params;
  params.num_queries = 50;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), params);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(workload.targets[i],
                     eval.Evaluate(workload.RegionAt(i)));
  }
}

TEST(WorkloadTest, DropsUndefinedAverages) {
  // A tiny dataset leaves most random regions empty: the aggregate
  // workload must drop those NaN targets.
  Dataset tiny({"x", "v"});
  tiny.AddRow({0.5, 1.0});
  tiny.AddRow({0.51, 2.0});
  ScanEvaluator eval(&tiny, Statistic::Average({0}, 1));
  WorkloadParams params;
  params.num_queries = 200;
  const RegionWorkload workload =
      GenerateWorkload(eval, Bounds::Unit(1), params);
  EXPECT_LT(workload.size(), 200u);
  for (double t : workload.targets) EXPECT_FALSE(std::isnan(t));
}

TEST(WorkloadTest, RegionFeaturesEncoding) {
  const Region r({0.3, 0.6}, {0.1, 0.2});
  const auto feats = RegionFeatures(r);
  EXPECT_EQ(feats, (std::vector<double>{0.3, 0.6, 0.1, 0.2}));
}

// ------------------------------------------------------------- Surrogate

class SurrogateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = DensityData(2, 1);
    evaluator_ = std::make_unique<ScanEvaluator>(
        &data_.data, Statistic::Count({0, 1}));
    WorkloadParams params;
    params.num_queries = 4000;
    workload_ = GenerateWorkload(*evaluator_,
                                 data_.data.ComputeBounds({0, 1}), params);
  }

  SyntheticDataset data_;
  std::unique_ptr<ScanEvaluator> evaluator_;
  RegionWorkload workload_;
};

TEST_F(SurrogateTest, TrainsAndTracksError) {
  SurrogateTrainOptions options;
  auto surrogate = Surrogate::Train(workload_, options);
  ASSERT_TRUE(surrogate.ok());
  EXPECT_TRUE(surrogate->trained());
  EXPECT_GT(surrogate->metrics().train_seconds, 0.0);
  EXPECT_GT(surrogate->metrics().test_rmse, 0.0);
  // A count surrogate over ~10k points should be well under 100 RMSE.
  EXPECT_LT(surrogate->metrics().test_rmse, 120.0);
}

TEST_F(SurrogateTest, PredictionsTrackTruth) {
  SurrogateTrainOptions options;
  auto surrogate = Surrogate::Train(workload_, options);
  ASSERT_TRUE(surrogate.ok());
  Rng rng(9);
  double err = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const Region r = workload_.space.Sample(&rng);
    err += std::fabs(surrogate->Predict(r) - evaluator_->Evaluate(r));
  }
  EXPECT_LT(err / n, 100.0);
}

TEST_F(SurrogateTest, EmptyWorkloadRejected) {
  RegionWorkload empty;
  empty.features = FeatureMatrix(4);
  SurrogateTrainOptions options;
  EXPECT_FALSE(Surrogate::Train(empty, options).ok());
}

TEST_F(SurrogateTest, HypertuneSelectsParams) {
  SurrogateTrainOptions options;
  options.hypertune = true;
  options.grid = GridSearchSpace::Small();
  options.cv_folds = 2;
  options.gbrt.n_estimators = 40;
  auto surrogate = Surrogate::Train(workload_, options);
  ASSERT_TRUE(surrogate.ok());
  EXPECT_TRUE(surrogate->metrics().hypertuned);
  // The chosen params must come from the grid.
  const auto& p = surrogate->metrics().chosen_params;
  EXPECT_TRUE(p.learning_rate == 0.1 || p.learning_rate == 0.05);
  EXPECT_TRUE(p.max_depth == 4 || p.max_depth == 7);
}

TEST_F(SurrogateTest, SaveLoadPredictsIdentically) {
  SurrogateTrainOptions options;
  auto surrogate = Surrogate::Train(workload_, options);
  ASSERT_TRUE(surrogate.ok());
  const std::string path = "/tmp/surf_surrogate_test.txt";
  ASSERT_TRUE(surrogate->Save(path).ok());

  auto loaded = Surrogate::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dims(), 2u);
  EXPECT_EQ(loaded->statistic().kind, StatisticKind::kCount);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const Region r = workload_.space.Sample(&rng);
    EXPECT_DOUBLE_EQ(surrogate->Predict(r), loaded->Predict(r));
  }
  std::remove(path.c_str());
}

TEST_F(SurrogateTest, AlternativeModelsTrainToo) {
  auto ridge = Surrogate::TrainWithModel(
      std::make_unique<RidgeRegression>(1.0), workload_, 0.2, 3);
  ASSERT_TRUE(ridge.ok());
  EXPECT_EQ(ridge->model().Name(), "ridge");

  auto knn = Surrogate::TrainWithModel(std::make_unique<KnnRegressor>(8),
                                       workload_, 0.2, 3);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->model().Name(), "knn");
  // The GBRT should beat plain ridge on this non-linear target.
  SurrogateTrainOptions options;
  auto gbrt = Surrogate::Train(workload_, options);
  ASSERT_TRUE(gbrt.ok());
  EXPECT_LT(gbrt->metrics().test_rmse, ridge->metrics().test_rmse);
}

TEST_F(SurrogateTest, NonGbrtPersistenceRejected) {
  auto ridge = Surrogate::TrainWithModel(
      std::make_unique<RidgeRegression>(1.0), workload_, 0.2, 3);
  ASSERT_TRUE(ridge.ok());
  EXPECT_EQ(ridge->Save("/tmp/x.txt").code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------- Finder

TEST(FinderTest, MinesPlantedRegions1d) {
  const SyntheticDataset ds = DensityData(1, 1, 7);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 3000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());

  FinderConfig config;
  config.gso.num_glowworms = 100;
  config.gso.max_iterations = 100;
  SurfFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  finder.SetValidator(&eval);

  const FindResult result =
      finder.Find(1000.0, ThresholdDirection::kAbove);
  ASSERT_FALSE(result.regions.empty());
  // The best region must overlap the planted one.
  double best_iou = 0.0;
  for (const auto& r : result.regions) {
    best_iou = std::max(best_iou, r.region.IoU(ds.gt_regions[0]));
  }
  EXPECT_GT(best_iou, 0.4);
  EXPECT_GT(result.report.true_compliance, 0.5);
  EXPECT_GT(result.report.particle_valid_fraction, 0.3);
}

TEST(FinderTest, BelowDirectionFindsSparseRegions) {
  const SyntheticDataset ds = DensityData(1, 1, 8);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 3000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());

  FinderConfig config;
  config.gso.num_glowworms = 80;
  config.gso.max_iterations = 80;
  SurfFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  finder.SetValidator(&eval);
  // Sparse request: fewer than 600 points. With ~8k background points per
  // unit, boxes under half-length ~0.037 qualify, so a healthy slice of
  // the initial swarm starts valid.
  const FindResult result = finder.Find(600.0, ThresholdDirection::kBelow);
  ASSERT_FALSE(result.regions.empty());
  for (const auto& r : result.regions) {
    EXPECT_LT(r.estimate, 600.0);
  }
  EXPECT_GT(result.report.true_compliance, 0.5);
}

TEST(FinderTest, ValidatorOffLeavesNaNTruth) {
  const SyntheticDataset ds = DensityData(1, 1, 9);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 2000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());
  FinderConfig config;
  config.gso.num_glowworms = 60;
  config.gso.max_iterations = 60;
  SurfFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  const FindResult result =
      finder.Find(1000.0, ThresholdDirection::kAbove);
  for (const auto& r : result.regions) {
    EXPECT_TRUE(std::isnan(r.true_value));
    EXPECT_FALSE(r.complies_true);
  }
}

TEST(FinderTest, NmsLimitsRegionCount) {
  const SyntheticDataset ds = DensityData(1, 3, 10);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 2500;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());
  FinderConfig config;
  config.max_regions = 2;
  config.gso.num_glowworms = 80;
  config.gso.max_iterations = 60;
  SurfFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  const FindResult result =
      finder.Find(1000.0, ThresholdDirection::kAbove);
  EXPECT_LE(result.regions.size(), 2u);
}

// ------------------------------------------------------------------ Surf

TEST(SurfTest, BuildValidatesInput) {
  SurfOptions options;
  EXPECT_FALSE(Surf::Build(nullptr, Statistic::Count({0}), options).ok());

  Dataset empty({"x"});
  EXPECT_FALSE(Surf::Build(&empty, Statistic::Count({0}), options).ok());

  Dataset one_col({"x"});
  one_col.AddRow({0.5});
  EXPECT_FALSE(
      Surf::Build(&one_col, Statistic::Count({0, 5}), options).ok());
  EXPECT_FALSE(
      Surf::Build(&one_col, Statistic::Average({0}, 9), options).ok());
  EXPECT_FALSE(Surf::Build(&one_col, Statistic{}, options).ok());
}

TEST(SurfTest, EndToEndDensityMining) {
  const SyntheticDataset ds = DensityData(2, 1, 11);
  SurfOptions options;
  options.workload.num_queries = 4000;
  options.finder.gso.num_glowworms = 120;
  options.finder.gso.max_iterations = 100;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0, 1}), options);
  ASSERT_TRUE(surf.ok());

  const FindResult result =
      surf->FindRegions(1000.0, ThresholdDirection::kAbove);
  ASSERT_FALSE(result.regions.empty());
  double best_iou = 0.0;
  for (const auto& r : result.regions) {
    best_iou = std::max(best_iou, r.region.IoU(ds.gt_regions[0]));
  }
  EXPECT_GT(best_iou, 0.3);
  EXPECT_GT(result.report.true_compliance, 0.6);
}

TEST(SurfTest, BackendsProduceSameWorkloadTargets) {
  const SyntheticDataset ds = DensityData(2, 1, 12);
  for (BackendKind kind :
       {BackendKind::kScan, BackendKind::kGridIndex, BackendKind::kKdTree}) {
    auto eval = MakeEvaluator(kind, &ds.data, Statistic::Count({0, 1}));
    // Same seed → same queries → identical targets across back-ends.
    WorkloadParams params;
    params.num_queries = 100;
    params.seed = 55;
    const RegionWorkload workload =
        GenerateWorkload(*eval, ds.data.ComputeBounds({0, 1}), params);
    ASSERT_EQ(workload.size(), 100u);
    ScanEvaluator ref(&ds.data, Statistic::Count({0, 1}));
    for (size_t i = 0; i < 20; ++i) {
      EXPECT_DOUBLE_EQ(workload.targets[i],
                       ref.Evaluate(workload.RegionAt(i)));
    }
  }
}

TEST(SurfTest, EcdfSamplingWorks) {
  const SyntheticDataset ds = DensityData(2, 1, 13);
  SurfOptions options;
  options.workload.num_queries = 1500;
  options.finder.gso.max_iterations = 30;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0, 1}), options);
  ASSERT_TRUE(surf.ok());
  const Ecdf ecdf = surf->SampleStatisticEcdf(500, 3);
  EXPECT_EQ(ecdf.num_samples(), 500u);
  EXPECT_GT(ecdf.Quantile(0.75), ecdf.Quantile(0.25));
}

TEST(SurfTest, KdeCanBeDisabled) {
  const SyntheticDataset ds = DensityData(1, 1, 14);
  SurfOptions options;
  options.fit_kde = false;
  options.workload.num_queries = 1500;
  options.finder.gso.num_glowworms = 60;
  options.finder.gso.max_iterations = 50;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0}), options);
  ASSERT_TRUE(surf.ok());
  const FindResult result =
      surf->FindRegions(1000.0, ThresholdDirection::kAbove);
  // Still functional without the Eq. 8 prior.
  EXPECT_FALSE(result.regions.empty());
}

TEST(SurfTest, AggregateStatisticEndToEnd) {
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kAggregate;
  spec.seed = 15;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  SurfOptions options;
  options.workload.num_queries = 3000;
  options.finder.gso.num_glowworms = 100;
  options.finder.gso.max_iterations = 100;
  // Aggregates are flat inside the planted region, so recovering its
  // extent needs the size-rewarding end of the c knob (see bench_common
  // CFor for the full argument).
  options.finder.c = -1.0;
  ASSERT_EQ(ds.value_col, 1);
  auto surf = Surf::Build(
      &ds.data, Statistic::Average({0}, static_cast<size_t>(ds.value_col)),
      options);
  ASSERT_TRUE(surf.ok());
  const FindResult result =
      surf->FindRegions(2.0, ThresholdDirection::kAbove);
  ASSERT_FALSE(result.regions.empty());
  double best_iou = 0.0;
  for (const auto& r : result.regions) {
    best_iou = std::max(best_iou, r.region.IoU(ds.gt_regions[0]));
  }
  EXPECT_GT(best_iou, 0.3);
}

}  // namespace
}  // namespace surf
