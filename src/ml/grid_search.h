#ifndef SURF_ML_GRID_SEARCH_H_
#define SURF_ML_GRID_SEARCH_H_

#include <cstdint>
#include <vector>

#include "ml/gbrt.h"
#include "ml/matrix.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief Hyper-parameter grid for GBRT surrogates. Defaults reproduce the
/// exact grid the paper hypertunes in §V-E: 3 learning rates × 4 depths ×
/// 3 ensemble sizes × 4 lambdas = 144 combinations.
struct GridSearchSpace {
  std::vector<double> learning_rates{0.1, 0.01, 0.001};
  std::vector<size_t> max_depths{3, 5, 7, 9};
  std::vector<size_t> n_estimators{100, 200, 300};
  std::vector<double> reg_lambdas{1.0, 0.1, 0.01, 0.001};

  size_t NumCombinations() const {
    return learning_rates.size() * max_depths.size() * n_estimators.size() *
           reg_lambdas.size();
  }

  /// Enumerates every parameter combination (base carries the non-swept
  /// fields such as subsample and seed).
  std::vector<GbrtParams> Enumerate(const GbrtParams& base) const;

  /// A reduced 2×2×1×2 grid for quick experiments and tests.
  static GridSearchSpace Small();
};

/// \brief One evaluated grid point.
struct GridSearchEntry {
  GbrtParams params;
  double mean_rmse = 0.0;
  double std_rmse = 0.0;
};

/// \brief Grid-search outcome: the winning parameters and the full table.
struct GridSearchResult {
  GbrtParams best_params;
  double best_rmse = 0.0;
  std::vector<GridSearchEntry> entries;
};

/// K-fold cross-validated grid search over GBRT hyper-parameters
/// (scikit-learn's GridSearchCV, §V-E). Parameter combinations are
/// evaluated in parallel when a pool is supplied. `k_folds` >= 2.
GridSearchResult GridSearchCV(const FeatureMatrix& x,
                              const std::vector<double>& y,
                              const GridSearchSpace& space,
                              const GbrtParams& base, size_t k_folds,
                              uint64_t seed, ThreadPool* pool = nullptr);

/// Convenience: cross-validated RMSE of one parameter set.
double CrossValidatedRmse(const FeatureMatrix& x, const std::vector<double>& y,
                          const GbrtParams& params, size_t k_folds,
                          uint64_t seed, double* std_out = nullptr);

}  // namespace surf

#endif  // SURF_ML_GRID_SEARCH_H_
