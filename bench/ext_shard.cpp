// Extension: sharded exact-backend scaling.
//
// Workload generation — labelling thousands of random boxes with the
// true statistic — is the dominant cost of a cold surrogate train, and
// before this bench it was a single contiguous O(N·d) scan per query.
// This bench measures the sharded backend on a 4M-row synthetic
// dataset: GenerateWorkload through the legacy ScanEvaluator versus
// ShardedScanEvaluator at 1/2/4/8 shards (range-partitioned on the
// first region column), and verifies the acceptance contract:
//
//  - shards=1 (natural row order) labels bit-identically to the
//    pre-sharding scan path for count/sum/mean/variance;
//  - the count workload stays bit-identical at EVERY shard count
//    (integer statistics are order-independent);
//  - 8 shards deliver >= 3x workload-generation speedup, driven by
//    summary pruning + O(1) fully-covered shards + branchless boundary
//    scans (single-core algorithmic wins; threads stack on top where
//    cores exist).
//
// Writes BENCH_shard.json (override with SURF_BENCH_SHARD_JSON).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "accel/accel.h"
#include "core/workload.h"
#include "data/sharded.h"
#include "stats/evaluator.h"
#include "stats/sharded_evaluator.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace surf;

namespace {

Dataset MakeData(size_t rows, uint64_t seed) {
  Dataset ds({"x", "y", "v"});
  ds.Reserve(rows);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    // Two uniform box dimensions plus a clustered hot spot (so queries
    // see realistic density variation), and a Gaussian value column.
    double x = rng.Uniform(0.0, 10.0);
    double y = rng.Uniform(0.0, 10.0);
    if (rng.Bernoulli(0.2)) {
      x = rng.Gaussian(7.0, 0.5);
      y = rng.Gaussian(3.0, 0.5);
    }
    ds.AddRow({x, y, rng.Gaussian(1.0, 2.0)});
  }
  return ds;
}

bool BitIdentical(const std::vector<double>& a,
                  const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool nan_a = std::isnan(a[i]), nan_b = std::isnan(b[i]);
    if (nan_a != nan_b) return false;
    if (!nan_a && a[i] != b[i]) return false;
  }
  return true;
}

struct ShardArm {
  size_t shards = 0;
  double seconds = 0.0;
  double speedup = 0.0;
  bool count_bit_identical = false;
  uint64_t pruned = 0;
  uint64_t block_merged = 0;
  uint64_t scanned = 0;
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t rows =
      static_cast<size_t>(flags.GetInt("rows", 4000000));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 64));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 0));

  std::printf("== sharded exact-backend scaling (%zu rows, %zu queries) ==\n",
              rows, queries);

  // Accel backend feeding the mask scans. A SURF_ACCEL override naming an
  // unavailable backend is a hard error, not a silent fallback.
  const AccelSelection selection = CurrentAccelSelection();
  std::printf("accel backend: %s%s\n", AccelBackendName(selection.active),
              selection.override_requested ? " (SURF_ACCEL override)" : "");
  if (selection.override_requested && !selection.override_honored) {
    std::fprintf(stderr,
                 "error: SURF_ACCEL=%s requested but unavailable on this "
                 "host/build\n",
                 selection.requested.c_str());
    return 1;
  }

  const Dataset ds = MakeData(rows, 2026);

  // --- kernel-level mask-scan timing: the accel layer's membership mask
  // over one real data column, generic versus the active backend.
  double mask_generic_ms = 0.0, mask_active_ms = 0.0;
  {
    const std::vector<double>& col = ds.column(0);
    std::vector<uint8_t> mask(col.size());
    const auto time_ms = [&](const AccelOps& ops) {
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        std::fill(mask.begin(), mask.end(), 1);
        Stopwatch timer;
        ops.mask_range_and(col.data(), col.size(), 2.0, 8.0, mask.data());
        if (ops.mask_count(mask.data(), mask.size()) > col.size()) {
          std::abort();  // keeps the kernel calls observable
        }
        best = std::min(best, 1e3 * timer.ElapsedSeconds());
      }
      return best;
    };
    mask_generic_ms = time_ms(AccelOpsFor(AccelBackend::kGeneric));
    mask_active_ms = time_ms(Accel());
    std::printf("mask scan : generic %.2f ms | %s %.2f ms (%.2fx)\n",
                mask_generic_ms, AccelBackendName(selection.active),
                mask_active_ms, mask_generic_ms / mask_active_ms);
  }
  const Statistic count_stat = Statistic::Count({0, 1});
  const Bounds domain = ds.ComputeBounds(count_stat.region_cols);
  WorkloadParams params;
  params.num_queries = queries;
  params.seed = 11;

  // --- baseline arm: the pre-sharding contiguous scan.
  double baseline_seconds = 0.0;
  std::vector<double> baseline_targets;
  {
    ScanEvaluator scan(&ds, count_stat);
    Stopwatch timer;
    baseline_targets =
        GenerateWorkload(scan, domain, params).targets;
    baseline_seconds = timer.ElapsedSeconds();
  }
  std::printf("scan      : %.3fs (%.1f labels/s)\n", baseline_seconds,
              queries / baseline_seconds);

  // --- single-shard identity arm: natural row order, every exact kind
  // must reproduce the scan bit-for-bit (count/sum/mean/variance).
  bool one_shard_identical = true;
  {
    WorkloadParams small = params;
    small.num_queries = std::min<size_t>(queries, 16);
    const std::vector<Statistic> kinds = {
        count_stat, Statistic::Sum({0, 1}, 2), Statistic::Average({0, 1}, 2),
        Statistic::VarianceOf({0, 1}, 2)};
    for (const Statistic& stat : kinds) {
      ScanEvaluator scan(&ds, stat);
      ShardingOptions options;  // num_shards = 1, natural order
      ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                                   stat, threads);
      const auto want = GenerateWorkload(scan, domain, small).targets;
      const auto got = GenerateWorkload(sharded, domain, small).targets;
      if (!BitIdentical(want, got)) {
        one_shard_identical = false;
        std::fprintf(stderr, "FAIL: shards=1 diverges from scan for %s\n",
                     StatisticKindName(stat.kind).c_str());
      }
    }
  }
  std::printf("shards=1  : count/sum/mean/variance bit-identical to "
              "pre-sharding scan: %s\n",
              one_shard_identical ? "yes" : "NO");

  // --- scaling arms: range-partitioned shards, count workload.
  std::vector<ShardArm> arms;
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    ShardingOptions options;
    options.num_shards = shards;
    options.order_by = 0;
    options.columns = {0, 1};
    ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                                 count_stat, threads);
    Stopwatch timer;
    const auto targets = GenerateWorkload(sharded, domain, params).targets;
    ShardArm arm;
    arm.shards = shards;
    arm.seconds = timer.ElapsedSeconds();
    arm.speedup = baseline_seconds / arm.seconds;
    arm.count_bit_identical = BitIdentical(baseline_targets, targets);
    arm.pruned = sharded.shards_pruned();
    arm.block_merged = sharded.shards_block_merged();
    arm.scanned = sharded.shards_scanned();
    std::printf("shards=%zu  : %.3fs (%.2fx) | per query: %.1f pruned, "
                "%.1f summary-answered, %.1f scanned | identical: %s\n",
                shards, arm.seconds, arm.speedup,
                double(arm.pruned) / queries,
                double(arm.block_merged) / queries,
                double(arm.scanned) / queries,
                arm.count_bit_identical ? "yes" : "NO");
    arms.push_back(arm);
  }
  const ShardArm& best = arms.back();

  const char* json_env = std::getenv("SURF_BENCH_SHARD_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_shard.json";
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"rows\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"accel_backend\": \"%s\",\n"
                 "  \"mask_scan_generic_ms\": %.4f,\n"
                 "  \"mask_scan_active_ms\": %.4f,\n"
                 "  \"mask_scan_speedup\": %.2f,\n"
                 "  \"scan_seconds\": %.4f,\n"
                 "  \"one_shard_bit_identical\": %s,\n"
                 "  \"arms\": [\n",
                 rows, queries, AccelBackendName(selection.active),
                 mask_generic_ms, mask_active_ms,
                 mask_generic_ms / mask_active_ms, baseline_seconds,
                 one_shard_identical ? "true" : "false");
    for (size_t i = 0; i < arms.size(); ++i) {
      const ShardArm& a = arms[i];
      std::fprintf(f,
                   "    {\"shards\": %zu, \"seconds\": %.4f, "
                   "\"speedup\": %.2f, \"count_bit_identical\": %s, "
                   "\"shards_pruned\": %llu, \"shards_block_merged\": %llu, "
                   "\"shards_scanned\": %llu}%s\n",
                   a.shards, a.seconds, a.speedup,
                   a.count_bit_identical ? "true" : "false",
                   static_cast<unsigned long long>(a.pruned),
                   static_cast<unsigned long long>(a.block_merged),
                   static_cast<unsigned long long>(a.scanned),
                   i + 1 < arms.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"speedup_8_shards\": %.2f\n"
                 "}\n",
                 best.speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }

  // Acceptance contract: red CI instead of a silently regressed report.
  bool ok = one_shard_identical;
  for (const ShardArm& a : arms) ok = ok && a.count_bit_identical;
  if (!ok) {
    std::fprintf(stderr, "FAIL: sharded labelling diverged from scan\n");
    return 1;
  }
  constexpr double kMinSpeedup = 3.0;
  if (best.speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: 8-shard workload-generation speedup %.2fx below "
                 "%.1fx floor\n",
                 best.speedup, kMinSpeedup);
    return 1;
  }
  return 0;
}
