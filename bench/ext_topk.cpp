// Extension: the top-k formulation vs the threshold formulation.
//
// The paper argues (§VI) that the threshold interface is often more
// natural: if the top-k regions all concentrate where one mode slightly
// dominates, a top-k query surfaces only that mode, while a threshold
// query returns every qualifying region. This bench constructs exactly
// that adversarial scenario — three planted regions, one marginally
// denser — and compares what each formulation reports.

#include <cstdio>

#include "bench_common.h"
#include "core/topk.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);

  // Three GT regions with one dominant mode: plant k = 3, then boost the
  // first region with extra points.
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 77;
  SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  {
    Rng rng(5);
    const Region& dominant = ds.gt_regions[0];
    for (int i = 0; i < 800; ++i) {
      ds.data.AddRow({rng.Uniform(dominant.lo(0), dominant.hi(0))});
    }
  }
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  std::printf("planted region counts:");
  for (const auto& gt : ds.gt_regions) {
    std::printf(" %.0f", eval.Evaluate(gt));
  }
  std::printf(" (first region dominates)\n\n");

  WorkloadParams wparams;
  wparams.num_queries = 6000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  if (!surrogate.ok()) return 1;

  auto gt_hits = [&](const std::vector<Region>& found) {
    std::string hits;
    for (size_t g = 0; g < ds.gt_regions.size(); ++g) {
      bool hit = false;
      for (const auto& region : found) {
        if (region.IoU(ds.gt_regions[g]) > 0.2) hit = true;
      }
      hits += hit ? ("  GT" + std::to_string(g + 1) + ":yes") : ("  GT" +
                     std::to_string(g + 1) + ":no");
    }
    return hits;
  };

  // Top-k with k = 3, but a tight NMS would be needed to spread across
  // modes; with the paper's argument we use moderate separation.
  TopKConfig tk_config;
  tk_config.k = 3;
  tk_config.gso.num_glowworms = 150;
  tk_config.gso.max_iterations = 120;
  TopKFinder topk(surrogate->AsStatisticFn(), workload.space, tk_config);
  topk.SetBatchEstimate(surrogate->AsBatchStatisticFn());
  const TopKResult topk_result = topk.Find();
  std::vector<Region> topk_regions;
  for (const auto& r : topk_result.regions) {
    topk_regions.push_back(r.region);
  }

  // Threshold query at y_R = 1000 (all three regions qualify).
  FinderConfig th_config;
  th_config.gso.num_glowworms = 150;
  th_config.gso.max_iterations = 120;
  SurfFinder threshold_finder(surrogate->AsStatisticFn(), workload.space,
                              th_config);
  threshold_finder.SetBatchEstimate(surrogate->AsBatchStatisticFn());
  const FindResult th_result =
      threshold_finder.Find(1000.0, ThresholdDirection::kAbove);
  std::vector<Region> th_regions;
  for (const auto& r : th_result.regions) th_regions.push_back(r.region);

  TablePrinter table({"formulation", "regions", "GT coverage"});
  table.AddRow({"top-k (k=3)", std::to_string(topk_regions.size()),
                gt_hits(topk_regions)});
  table.AddRow({"threshold y_R=1000", std::to_string(th_regions.size()),
                gt_hits(th_regions)});
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected (paper §VI): the threshold query covers every "
              "qualifying region; top-k results gravitate toward the "
              "dominant mode and depend on k being guessed right.\n");
  return 0;
}
