// Chaos suite (ISSUE 6): drives every compiled failpoint site through
// the HTTP front-end and asserts the failure contract — mapped status
// codes (408/429/500/503), Retry-After hints, degraded-but-labelled
// stale serves, a coherent cache afterwards, an intact graceful drain
// under injected faults, and zero crashes. The test at the bottom
// asserts the suite exercised every site in
// FailpointRegistry::KnownSites(), so adding a failpoint without chaos
// coverage fails CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "dist/cluster_evaluator.h"
#include "dist/worker_pool.h"
#include "net/http_server.h"
#include "net/json_codec.h"
#include "net/metrics.h"
#include "net/surf_handler.h"
#include "serve/mining_service.h"
#include "util/failpoint.h"
#include "util/json.h"

namespace surf {
namespace {

// ------------------------------------------------------- test HTTP client

struct ChaosResponse {
  /// 0 = the connection died before a full response arrived (e.g. the
  /// net.write failpoint dropped it).
  int status = 0;
  std::string body;
  /// Lower-cased header name -> value (first occurrence).
  std::vector<std::pair<std::string, std::string>> headers;

  const std::string* FindHeader(const std::string& name) const {
    for (const auto& [key, value] : headers) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

/// Minimal blocking HTTP/1.1 client. Unlike net_test's, it parses the
/// response headers — the chaos contract includes Retry-After.
class ChaosClient {
 public:
  ~ChaosClient() { Close(); }

  bool Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval timeout{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  ChaosResponse Request(const std::string& method, const std::string& path,
                        const std::string& body = "") {
    std::string out = method + " " + path + " HTTP/1.1\r\n";
    out += "Host: 127.0.0.1\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    out += body;
    size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return {};
      sent += static_cast<size_t>(n);
    }
    return ReadResponse();
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  ChaosResponse ReadResponse() {
    std::string buffer;
    size_t head_end = std::string::npos;
    while (true) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) break;
      if (!Fill(&buffer)) return {};
    }
    ChaosResponse response;
    const std::string head = buffer.substr(0, head_end);
    if (head.size() >= 12) {
      response.status = std::atoi(head.substr(9, 3).c_str());
    }
    size_t content_length = 0;
    size_t line_start = head.find("\r\n");
    while (line_start != std::string::npos && line_start + 2 < head.size()) {
      line_start += 2;
      size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        size_t vs = colon + 1;
        while (vs < line.size() && line[vs] == ' ') ++vs;
        response.headers.emplace_back(name, line.substr(vs));
        if (name == "content-length") {
          content_length =
              static_cast<size_t>(std::atoll(line.c_str() + vs));
        }
      }
      line_start = line_end;
    }
    std::string body = buffer.substr(head_end + 4);
    while (body.size() < content_length) {
      if (!Fill(&body)) return {};
    }
    response.body = body.substr(0, content_length);
    return response;
  }

  bool Fill(std::string* buffer) {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
};

// ------------------------------------------------------------- fixtures

SyntheticDataset MakeChaosData() {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 4000;
  spec.seed = 17;
  return SyntheticGenerator::Generate(spec);
}

std::string InlineDatasetBody(const std::string& name, const Dataset& data) {
  JsonValue body = JsonValue::Object();
  body.Set("name", JsonValue(name));
  JsonValue columns = JsonValue::Array();
  for (const std::string& c : data.column_names()) {
    columns.Append(JsonValue(c));
  }
  body.Set("columns", std::move(columns));
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < data.num_rows(); ++i) {
    JsonValue row = JsonValue::Array();
    for (size_t j = 0; j < data.num_cols(); ++j) {
      row.Append(JsonValue(data.Get(i, j)));
    }
    rows.Append(std::move(row));
  }
  body.Set("rows", std::move(rows));
  return WriteJson(body);
}

/// A fast /v1/mine body. `num_queries` varies the workload recipe and
/// therefore the cache key, so each chaos phase trains a fresh entry;
/// `shards` > 1 routes exact evaluation through the sharded scan (the
/// shard.evaluate site).
std::string MineBody(int num_queries, int shards = 1) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      R"({"api_version": 2, "dataset": "synth",
          "query": {"kind": "threshold",
                    "statistic": {"kind": "count", "region_cols": [0, 1]},
                    "threshold": 800.0},
          "search": {"finder": {"gso": {"max_iterations": 25},
                                "use_kde_guidance": false}},
          "training": {"workload": {"num_queries": %d},
                       "surrogate": {"gbrt": {"n_estimators": 40}}},
          "execution": {"shards": %d, "use_kde": false}})",
      num_queries, shards);
  return buf;
}

/// MiningService + SurfHandler (failpoint admin on) + HttpServer on an
/// ephemeral loopback port. Clears the failpoint registry on teardown
/// so no injected fault leaks out of a test.
struct ChaosServer {
  explicit ChaosServer(MiningService::Options service_options = {},
                       HttpServer::Options http_options = {}) {
    service = std::make_unique<MiningService>(service_options);
    metrics = std::make_unique<ServerMetrics>();
    SurfHandler::Options handler_options;
    handler_options.enable_failpoint_admin = true;
    handler = std::make_unique<SurfHandler>(service.get(), metrics.get(),
                                            handler_options);
    http_options.port = 0;
    server =
        std::make_unique<HttpServer>(http_options, handler->AsHttpHandler());
    handler->set_transport_stats_provider(
        [this] { return server->stats(); });
    start_status = server->Start();
  }

  ~ChaosServer() { FailpointRegistry::Global().ClearAll(); }

  bool RegisterData(ChaosClient* client, const Dataset& data) {
    return client->Request("POST", "/v1/datasets",
                           InlineDatasetBody("synth", data))
               .status == 201;
  }

  /// Arms failpoints through the admin API (the suite exercises the
  /// admin surface itself this way).
  bool Arm(ChaosClient* client, const std::string& spec, uint64_t seed = 1) {
    JsonValue body = JsonValue::Object();
    body.Set("spec", JsonValue(spec));
    body.Set("seed", JsonValue(static_cast<double>(seed)));
    return client->Request("POST", "/v1/failpoints", WriteJson(body))
               .status == 200;
  }

  bool Disarm(ChaosClient* client) {
    return client->Request("DELETE", "/v1/failpoints").status == 200;
  }

  std::unique_ptr<MiningService> service;
  std::unique_ptr<ServerMetrics> metrics;
  std::unique_ptr<SurfHandler> handler;
  std::unique_ptr<HttpServer> server;
  Status start_status = Status::OK();
};

/// Sites the suite has driven end-to-end; the final test asserts this
/// covers the compiled catalogue.
std::set<std::string>& CoveredSites() {
  static std::set<std::string> covered;
  return covered;
}

// ----------------------------------------------------------------- tests

TEST(ChaosAdminTest, FailpointRoutesExistOnlyWhenEnabled) {
  // Disabled (default) handler: the admin surface genuinely 404s.
  {
    MiningService service;
    ServerMetrics metrics;
    SurfHandler handler(&service, &metrics);
    HttpServer::Options options;
    options.port = 0;
    HttpServer server(options, handler.AsHttpHandler());
    ASSERT_TRUE(server.Start().ok());
    ChaosClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    EXPECT_EQ(client.Request("GET", "/v1/failpoints").status, 404);
    EXPECT_EQ(client
                  .Request("POST", "/v1/failpoints",
                           R"({"spec": "serve.train=error"})")
                  .status,
              404);
    server.Shutdown();
    EXPECT_FALSE(FailpointRegistry::active());
  }

  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok()) << cs.start_status.ToString();
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));

  // Empty registry, full catalogue.
  ChaosResponse list = client.Request("GET", "/v1/failpoints");
  ASSERT_EQ(list.status, 200);
  auto parsed = ParseJson(list.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("failpoints")->size(), 0u);
  EXPECT_EQ(parsed->Find("known_sites")->size(),
            FailpointRegistry::KnownSites().size());

  // Arm + echo, then clear one site, then clear all.
  ASSERT_TRUE(cs.Arm(&client, "serve.train=error,cache.insert=prob:0.5",
                     /*seed=*/42));
  list = client.Request("GET", "/v1/failpoints");
  parsed = ParseJson(list.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("failpoints")->size(), 2u);
  EXPECT_EQ(parsed->Find("seed")->number_value(), 42.0);

  EXPECT_EQ(client.Request("DELETE", "/v1/failpoints/serve.train").status,
            200);
  EXPECT_EQ(client.Request("DELETE", "/v1/failpoints/serve.train").status,
            404);
  // Malformed specs are rejected whole.
  EXPECT_EQ(client
                .Request("POST", "/v1/failpoints",
                         R"({"spec": "serve.train=prob:2.0"})")
                .status,
            400);
  EXPECT_EQ(client.Request("POST", "/v1/failpoints", "{}").status, 400);
  ASSERT_TRUE(cs.Disarm(&client));
  EXPECT_FALSE(FailpointRegistry::active());
}

TEST(ChaosSiteTest, DataLoadCsvFailureAnswers500AndRecovers) {
  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));

  // A real CSV on disk, so only the injected fault can fail the load.
  const std::string csv_path = ::testing::TempDir() + "chaos_data.csv";
  {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("x,y\n1,2\n3,4\n5,6\n", f);
    std::fclose(f);
  }
  const std::string body =
      R"({"name": "fromcsv", "path": ")" + csv_path + R"("})";

  ASSERT_TRUE(cs.Arm(&client, "data.load_csv=error"));
  ChaosResponse failed = client.Request("POST", "/v1/datasets", body);
  EXPECT_EQ(failed.status, 500);
  EXPECT_NE(failed.body.find("data.load_csv"), std::string::npos);

  ASSERT_TRUE(cs.Disarm(&client));
  EXPECT_EQ(client.Request("POST", "/v1/datasets", body).status, 201);
  CoveredSites().insert("data.load_csv");
  std::remove(csv_path.c_str());
}

TEST(ChaosSiteTest, TrainingFailureAnswers500ThenRetrainsCleanly) {
  const SyntheticDataset ds = MakeChaosData();
  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  ASSERT_TRUE(cs.Arm(&client, "serve.train=error"));
  ChaosResponse failed = client.Request("POST", "/v1/mine", MineBody(800));
  EXPECT_EQ(failed.status, 500);
  EXPECT_NE(failed.body.find("internal"), std::string::npos);
  // No stranded entry: the failed training left the cache empty.
  EXPECT_EQ(cs.service->cache().size(), 0u);

  ASSERT_TRUE(cs.Disarm(&client));
  ChaosResponse ok = client.Request("POST", "/v1/mine", MineBody(800));
  EXPECT_EQ(ok.status, 200);
  auto parsed = ParseJson(ok.body);
  ASSERT_TRUE(parsed.ok());
  // The recovered answer is a fresh fit, not a degraded leftover.
  EXPECT_EQ(parsed->Find("provenance")->Find("degraded"), nullptr);
  CoveredSites().insert("serve.train");
}

TEST(ChaosSiteTest, CacheInsertFailureAnswers500AndLeavesCacheCoherent) {
  const SyntheticDataset ds = MakeChaosData();
  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  ASSERT_TRUE(cs.Arm(&client, "cache.insert=error"));
  EXPECT_EQ(client.Request("POST", "/v1/mine", MineBody(801)).status, 500);
  EXPECT_EQ(cs.service->cache().size(), 0u);

  ASSERT_TRUE(cs.Disarm(&client));
  EXPECT_EQ(client.Request("POST", "/v1/mine", MineBody(801)).status, 200);
  EXPECT_EQ(cs.service->cache().size(), 1u);
  // And the recovered entry is a genuine cache entry: a replay hits.
  ChaosResponse replay = client.Request("POST", "/v1/mine", MineBody(801));
  EXPECT_EQ(replay.status, 200);
  EXPECT_NE(replay.body.find("\"cache_hit\":true"), std::string::npos);
  CoveredSites().insert("cache.insert");
}

TEST(ChaosSiteTest, ShardEvaluateFailureDegradesResultsNotTheServer) {
  const SyntheticDataset ds = MakeChaosData();
  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  // shard.evaluate has no status channel: a fired hit yields an
  // undefined statistic (NaN) for that evaluation. Training labels
  // and validations carry NaNs, threshold comparisons go false — the
  // request must still complete (200), never crash or hang.
  ASSERT_TRUE(cs.Arm(&client, "shard.evaluate=prob:0.3", /*seed=*/9));
  ChaosResponse noisy =
      client.Request("POST", "/v1/mine", MineBody(802, /*shards=*/4));
  EXPECT_EQ(noisy.status, 200);
  ASSERT_TRUE(ParseJson(noisy.body).ok());

  ASSERT_TRUE(cs.Disarm(&client));
  EXPECT_EQ(client
                .Request("POST", "/v1/mine", MineBody(803, /*shards=*/4))
                .status,
            200);
  CoveredSites().insert("shard.evaluate");
}

TEST(ChaosSiteTest, NetWriteFailureDropsConnectionNotServer) {
  const SyntheticDataset ds = MakeChaosData();
  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  // Armed directly (not via HTTP): the admin response's own socket
  // write would hit the failpoint too.
  ASSERT_TRUE(FailpointRegistry::Global().Set("net.write", "error").ok());
  ChaosResponse dropped = client.Request("GET", "/healthz");
  EXPECT_EQ(dropped.status, 0);  // connection died, no response bytes

  FailpointRegistry::Global().ClearAll();
  EXPECT_GE(cs.server->stats().write_failures, 1u);
  // The server survives: a fresh connection serves normally.
  ChaosClient fresh;
  ASSERT_TRUE(fresh.Connect(cs.server->port()));
  EXPECT_EQ(fresh.Request("GET", "/healthz").status, 200);
  CoveredSites().insert("net.write");
}

TEST(ChaosContractTest, DelayActionSlowsButServes) {
  ChaosServer cs;
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));

  ASSERT_TRUE(
      FailpointRegistry::Global().Set("net.write", "delay:120").ok());
  const auto started = std::chrono::steady_clock::now();
  ChaosResponse slow = client.Request("GET", "/healthz");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  EXPECT_EQ(slow.status, 200);
  EXPECT_GE(elapsed, 0.1);
  FailpointRegistry::Global().ClearAll();
}

TEST(ChaosContractTest, BreakerAnswers503WithRetryAfterOverHttp) {
  const SyntheticDataset ds = MakeChaosData();
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.breaker_failure_threshold = 2;
  options.cache.breaker_open_seconds = 60.0;
  ChaosServer cs(options);
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  ASSERT_TRUE(cs.Arm(&client, "serve.train=error"));
  EXPECT_EQ(client.Request("POST", "/v1/mine", MineBody(810)).status, 500);
  EXPECT_EQ(client.Request("POST", "/v1/mine", MineBody(810)).status, 500);

  ChaosResponse refused = client.Request("POST", "/v1/mine", MineBody(810));
  EXPECT_EQ(refused.status, 503);
  EXPECT_NE(refused.body.find("unavailable"), std::string::npos);
  const std::string* retry_after = refused.FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_GE(std::atoi(retry_after->c_str()), 1);
  EXPECT_LE(std::atoi(retry_after->c_str()), 60);
  EXPECT_EQ(cs.service->cache().stats().breaker_rejections, 1u);
  ASSERT_TRUE(cs.Disarm(&client));
}

TEST(ChaosContractTest, StaleServeIsLabelledDegradedOverHttp) {
  const SyntheticDataset ds = MakeChaosData();
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.max_age_seconds = 0.0;  // stale immediately
  ChaosServer cs(options);
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  ChaosResponse first = client.Request("POST", "/v1/mine", MineBody(820));
  ASSERT_EQ(first.status, 200);
  // No failpoints: the envelope carries no degraded marker at all (the
  // byte-compat contract for healthy serving).
  EXPECT_EQ(first.body.find("degraded"), std::string::npos);

  ASSERT_TRUE(cs.Arm(&client, "serve.train=error"));
  ChaosResponse degraded = client.Request("POST", "/v1/mine", MineBody(820));
  ASSERT_EQ(degraded.status, 200);
  auto parsed = ParseJson(degraded.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* provenance = parsed->Find("provenance");
  ASSERT_NE(provenance, nullptr);
  ASSERT_NE(provenance->Find("degraded"), nullptr);
  EXPECT_TRUE(provenance->Find("degraded")->bool_value());
  EXPECT_NE(provenance->Find("degraded_reason"), nullptr);
  EXPECT_GE(cs.service->cache().stats().degraded_serves, 1u);
  ASSERT_TRUE(cs.Disarm(&client));

  // /metrics exports the degradation counters.
  ChaosResponse metrics = client.Request("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(
      metrics.body.find("surf_cache_requests_total{outcome=\"degraded\"}"),
      std::string::npos);
  EXPECT_NE(metrics.body.find("surf_cache_training_failures_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surf_http_worker_exceptions_total"),
            std::string::npos);
}

TEST(ChaosContractTest, NegativeCacheFailsFastOverHttp) {
  const SyntheticDataset ds = MakeChaosData();
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.negative_ttl_seconds = 60.0;
  ChaosServer cs(options);
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  ASSERT_TRUE(cs.Arm(&client, "serve.train=error"));
  EXPECT_EQ(client.Request("POST", "/v1/mine", MineBody(830)).status, 500);
  ASSERT_TRUE(cs.Disarm(&client));

  // The fault is gone, but inside the TTL the remembered failure is
  // replayed without paying for another training.
  const auto started = std::chrono::steady_clock::now();
  ChaosResponse replayed = client.Request("POST", "/v1/mine", MineBody(830));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  EXPECT_EQ(replayed.status, 500);
  EXPECT_LT(elapsed, 1.0);  // fail-fast, no retrain
  EXPECT_EQ(cs.service->cache().stats().negative_hits, 1u);
  EXPECT_EQ(cs.service->cache().stats().training_failures, 1u);
}

TEST(ChaosContractTest, DrainStaysIntactUnderInjectedFaults) {
  const SyntheticDataset ds = MakeChaosData();
  MiningService::Options service_options;
  service_options.num_threads = 4;
  HttpServer::Options http_options;
  http_options.max_inflight = 32;
  ChaosServer cs(service_options, http_options);
  ASSERT_TRUE(cs.start_status.ok());
  {
    ChaosClient setup;
    ASSERT_TRUE(setup.Connect(cs.server->port()));
    ASSERT_TRUE(cs.RegisterData(&setup, ds.data));
    ASSERT_TRUE(
        cs.Arm(&setup, "serve.train=prob:0.4,shard.evaluate=prob:0.2",
               /*seed=*/3));
  }

  // Concurrent mining under injected faults, then a graceful drain.
  // Every request must get a complete, validly-coded response; the
  // server must survive to its Shutdown with coherent counters.
  constexpr int kClients = 8;
  std::atomic<int> completed{0};
  std::atomic<int> invalid{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ChaosClient c;
      if (!c.Connect(cs.server->port())) return;
      for (int r = 0; r < 3; ++r) {
        const ChaosResponse response =
            c.Request("POST", "/v1/mine", MineBody(840 + i, /*shards=*/2));
        if (response.status == 200 || response.status == 500 ||
            response.status == 503 || response.status == 429) {
          ++completed;
        } else {
          ++invalid;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(invalid.load(), 0);
  EXPECT_EQ(completed.load(), kClients * 3);

  cs.server->Shutdown();
  const HttpServer::Stats stats = cs.server->stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GE(stats.requests_served,
            static_cast<uint64_t>(kClients * 3));
  EXPECT_EQ(stats.worker_exceptions, 0u);  // failures map to statuses
  // The cache came out coherent: every request was accounted a hit or
  // a miss, and no slot is stuck mid-training (size() takes the cache
  // lock — it would deadlock or crash on a corrupted table).
  FailpointRegistry::Global().ClearAll();
  const SurrogateCache::Stats cache_stats = cs.service->cache().stats();
  EXPECT_GE(cache_stats.hits + cache_stats.misses, 1u);
  EXPECT_LE(cs.service->cache().size(),
            static_cast<size_t>(kClients));
}

// ------------------------------------------------- distributed scatter

/// One in-process worker surfd for the cluster chaos tests: service +
/// handler + server on an ephemeral loopback port, dataset pre-registered.
struct ChaosWorker {
  explicit ChaosWorker(const Dataset& data) {
    service = std::make_unique<MiningService>();
    EXPECT_TRUE(service->RegisterDataset("synth", data).ok());
    metrics = std::make_unique<ServerMetrics>();
    handler = std::make_unique<SurfHandler>(service.get(), metrics.get());
    HttpServer::Options options;
    options.port = 0;
    server = std::make_unique<HttpServer>(options, handler->AsHttpHandler());
    EXPECT_TRUE(server->Start().ok());
  }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  std::unique_ptr<MiningService> service;
  std::unique_ptr<ServerMetrics> metrics;
  std::unique_ptr<SurfHandler> handler;
  std::unique_ptr<HttpServer> server;
};

TEST(ChaosSiteTest, DistShardRpcFailureReHomesOntoAnotherWorker) {
  // The dist.shard_rpc site fires inside the coordinator's per-attempt
  // RPC loop. Pick a seed (deterministically, by probing the registry's
  // reproducible fire sequence) where exactly one of the two first-
  // attempt hits fires and the next several do not: one shard group then
  // fails its first worker, re-homes onto the other, and succeeds — all
  // over real worker HTTP.
  const SyntheticDataset ds = MakeChaosData();
  ChaosWorker w0(ds.data);
  ChaosWorker w1(ds.data);
  dist::WorkerPool pool({w0.endpoint(), w1.endpoint()},
                        /*rpc_timeout_seconds=*/30.0);
  ASSERT_TRUE(pool.status().ok());

  ASSERT_TRUE(
      FailpointRegistry::Global().Set("dist.shard_rpc", "prob:0.35").ok());
  uint64_t chosen = 0;
  for (uint64_t seed = 1; seed < 20000 && chosen == 0; ++seed) {
    FailpointRegistry::Global().SetSeed(seed);  // resets the hit counter
    bool fired[12];
    for (bool& f : fired) f = !MaybeFailpoint("dist.shard_rpc").ok();
    const int early = (fired[0] ? 1 : 0) + (fired[1] ? 1 : 0);
    bool later = false;
    for (int i = 2; i < 12; ++i) later = later || fired[i];
    if (early == 1 && !later) chosen = seed;
  }
  ASSERT_NE(chosen, 0u) << "no seed gives the fail-once pattern";
  FailpointRegistry::Global().SetSeed(chosen);  // rewind for the real run

  const Statistic stat = Statistic::Count({0, 1});
  dist::ClusterEvaluator::Options options;
  options.dataset = "synth";
  options.num_shards = 2;
  dist::ClusterEvaluator cluster(&pool, stat, options);
  std::vector<Region> queries;
  queries.emplace_back(std::vector<double>{0.5, 0.5},
                       std::vector<double>{0.3, 0.3});
  queries.emplace_back(std::vector<double>{0.25, 0.75},
                       std::vector<double>{0.2, 0.1});
  const std::vector<double> labels =
      cluster.EvaluateBatch(queries, CancelToken());
  FailpointRegistry::Global().ClearAll();

  // The failed group re-homed and the batch still labelled everything —
  // degraded, but with real values, not NaN.
  ASSERT_EQ(labels.size(), queries.size());
  for (double label : labels) EXPECT_FALSE(std::isnan(label));
  EXPECT_TRUE(cluster.degraded());
  EXPECT_NE(cluster.degraded_reason().find("re-homed"), std::string::npos)
      << cluster.degraded_reason();
  EXPECT_EQ(pool.shard_retries(), 1u);
  CoveredSites().insert("dist.shard_rpc");
}

TEST(ChaosContractTest, ClusterSurvivesWorkerDeathWithOneWorkerLeft) {
  // Full-stack single-worker-left path: a coordinator surfd configured
  // with two workers loses one mid-deployment. A cluster-mode /v1/mine
  // over real HTTP must still answer 200, labelled from the surviving
  // worker, with degraded provenance and the dist metrics exported.
  const SyntheticDataset ds = MakeChaosData();
  ChaosWorker w0(ds.data);
  ChaosWorker w1(ds.data);

  MiningService::Options coordinator_options;
  coordinator_options.num_threads = 2;
  coordinator_options.cluster_workers = {w0.endpoint(), w1.endpoint()};
  ChaosServer cs(coordinator_options);
  ASSERT_TRUE(cs.start_status.ok());
  ChaosClient client;
  ASSERT_TRUE(client.Connect(cs.server->port()));
  ASSERT_TRUE(cs.RegisterData(&client, ds.data));

  // Kill worker 1: its port now refuses connections.
  w1.server->Shutdown();

  const std::string body =
      R"({"api_version": 2, "dataset": "synth",
          "query": {"kind": "threshold",
                    "statistic": {"kind": "count", "region_cols": [0, 1]},
                    "threshold": 800.0},
          "search": {"finder": {"gso": {"max_iterations": 15},
                                "use_kde_guidance": false}},
          "training": {"workload": {"num_queries": 200},
                       "surrogate": {"gbrt": {"n_estimators": 20}}},
          "execution": {"shards": 2, "cluster": true, "use_kde": false}})";
  ChaosResponse response = client.Request("POST", "/v1/mine", body);
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* provenance = parsed->Find("provenance");
  ASSERT_NE(provenance, nullptr);
  ASSERT_NE(provenance->Find("degraded"), nullptr);
  EXPECT_TRUE(provenance->Find("degraded")->bool_value());
  EXPECT_NE(provenance->Find("degraded_reason")->string_value().find(
                "re-homed"),
            std::string::npos)
      << provenance->Find("degraded_reason")->string_value();

  // The coordinator's /metrics carries the cluster series: the re-home
  // counter moved and the dead worker reads unhealthy.
  ChaosResponse metrics = client.Request("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("surf_dist_shard_retries_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surf_dist_worker_unhealthy{worker=\"" +
                              w1.endpoint() + "\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surf_dist_worker_unhealthy{worker=\"" +
                              w0.endpoint() + "\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surf_dist_worker_request_seconds_bucket"),
            std::string::npos);
}

// Must run last in file order (gtest runs tests in declaration order
// within a translation unit): the catalogue-coverage gate.
TEST(ChaosCoverageTest, EveryCompiledFailpointSiteWasExercised) {
  for (const std::string& site : FailpointRegistry::KnownSites()) {
    EXPECT_TRUE(CoveredSites().count(site))
        << "failpoint site '" << site
        << "' is compiled in but the chaos suite never drove it; add a "
           "ChaosSiteTest for it";
  }
}

}  // namespace
}  // namespace surf
