// Extension: multi-query serving throughput.
//
// SuRF's premise is amortization — past evaluations train a surrogate
// that answers many future region queries cheaply (§IV, §V-D). This
// bench quantifies the serving layer built on that premise: N mining
// requests with the same (dataset, statistic, workload, model) key run
// once through the one-shot path (Surf::Build per request, retraining
// every time) and once through MiningService (train once, share the
// cached surrogate, mine per request). Writes BENCH_service.json
// (override the path with SURF_BENCH_SERVICE_JSON).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/surf.h"
#include "data/synthetic.h"
#include "serve/mining_service.h"
#include "util/cli.h"
#include "util/stopwatch.h"

using namespace surf;

namespace {

struct ServiceBenchReport {
  size_t requests = 0;
  double oneshot_seconds = 0.0;
  double service_seconds = 0.0;
  double service_train_seconds = 0.0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  bool results_identical = false;

  double oneshot_qps() const { return requests / oneshot_seconds; }
  double service_qps() const { return requests / service_seconds; }
  double speedup() const { return oneshot_seconds / service_seconds; }
};

void WriteJson(const ServiceBenchReport& r, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"requests\": %zu,\n"
               "  \"oneshot_seconds\": %.4f,\n"
               "  \"oneshot_qps\": %.3f,\n"
               "  \"service_seconds\": %.4f,\n"
               "  \"service_qps\": %.3f,\n"
               "  \"amortized_speedup\": %.2f,\n"
               "  \"service_train_seconds\": %.4f,\n"
               "  \"cache_hits\": %zu,\n"
               "  \"cache_misses\": %zu,\n"
               "  \"results_identical\": %s\n"
               "}\n",
               r.requests, r.oneshot_seconds, r.oneshot_qps(),
               r.service_seconds, r.service_qps(), r.speedup(),
               r.service_train_seconds, r.cache_hits, r.cache_misses,
               r.results_identical ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 32));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 8000));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 0));

  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 2;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 20000;
  spec.seed = 31;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  // One request recipe shared by both arms: same workload, same model,
  // same finder, same validation — the only difference is whether the
  // surrogate is retrained per request or served from the cache.
  MineRequest request;
  request.dataset = "bench";
  request.statistic = Statistic::Count(ds.region_cols);
  request.threshold = 1000.0;
  request.workload.num_queries = queries;
  request.surrogate.gbrt.n_estimators = 200;
  request.surrogate.gbrt.max_depth = 6;
  request.finder.gso.max_iterations = 50;
  // Serving recipe: keep the one-off KDE-seeded initialization, drop the
  // per-iteration Eq. 8 mass guidance — the latter costs one KDE
  // integral per particle per iteration and dwarfs every surrogate
  // evaluation, which would mask the training amortization this bench
  // measures. Both arms use the identical recipe.
  request.finder.use_kde_guidance = false;

  SurfOptions oneshot_options;
  oneshot_options.workload = request.workload;
  oneshot_options.surrogate = request.surrogate;
  oneshot_options.finder = request.finder;
  oneshot_options.backend = BackendKind::kGridIndex;

  std::printf("== amortized serving vs one-shot mining (%zu same-key "
              "requests) ==\n",
              requests);

  ServiceBenchReport report;
  report.requests = requests;

  // --- one-shot arm: Surf::Build per request (trains every time).
  std::vector<Region> oneshot_first;
  {
    Stopwatch timer;
    for (size_t i = 0; i < requests; ++i) {
      auto surf = Surf::Build(&ds.data, request.statistic, oneshot_options);
      if (!surf.ok()) {
        std::fprintf(stderr, "one-shot build failed: %s\n",
                     surf.status().ToString().c_str());
        return 1;
      }
      const FindResult result =
          surf->FindRegions(request.threshold, request.direction);
      if (i == 0) {
        for (const auto& r : result.regions) oneshot_first.push_back(r.region);
      }
    }
    report.oneshot_seconds = timer.ElapsedSeconds();
  }
  std::printf("one-shot : %zu requests in %.2fs (%.2f req/s)\n", requests,
              report.oneshot_seconds, report.oneshot_qps());

  // --- service arm: one shared cache entry, per-request mining.
  {
    MiningService::Options options;
    options.num_threads = threads;
    MiningService service(options);
    if (auto st = service.RegisterDataset("bench", ds.data); !st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Stopwatch timer;
    const std::vector<MineResponse> responses =
        service.MineBatch(std::vector<MineRequest>(requests, request));
    report.service_seconds = timer.ElapsedSeconds();
    for (const auto& response : responses) {
      if (!response.status.ok()) {
        std::fprintf(stderr, "service request failed: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
    }
    report.service_train_seconds = responses[0].provenance.train_seconds;
    report.cache_hits = service.cache().stats().hits;
    report.cache_misses = service.cache().stats().misses;

    // Same recipe + deterministic engine => the shared-surrogate results
    // must equal the one-shot results region-for-region.
    report.results_identical =
        responses[0].result.regions.size() == oneshot_first.size();
    if (report.results_identical) {
      for (size_t i = 0; i < oneshot_first.size(); ++i) {
        const Region& a = responses[0].result.regions[i].region;
        const Region& b = oneshot_first[i];
        for (size_t j = 0; j < a.dims(); ++j) {
          if (a.lo(j) != b.lo(j) || a.hi(j) != b.hi(j)) {
            report.results_identical = false;
          }
        }
      }
    }
  }
  std::printf("service  : %zu requests in %.2fs (%.2f req/s), train share "
              "%.2fs, %zu hits / %zu misses\n",
              requests, report.service_seconds, report.service_qps(),
              report.service_train_seconds, report.cache_hits,
              report.cache_misses);
  std::printf("amortized speedup: %.2fx | results identical to one-shot: "
              "%s\n",
              report.speedup(), report.results_identical ? "yes" : "NO");

  const char* json_env = std::getenv("SURF_BENCH_SERVICE_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_service.json";
  WriteJson(report, json_path);
  std::printf("wrote %s\n", json_path.c_str());

  // Enforce the acceptance contract so CI goes red on regressions
  // instead of silently uploading a broken report.
  if (!report.results_identical) {
    std::fprintf(stderr, "FAIL: service results diverge from one-shot\n");
    return 1;
  }
  constexpr double kMinSpeedup = 5.0;
  if (report.speedup() < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: amortized speedup %.2fx below %.1fx floor\n",
                 report.speedup(), kMinSpeedup);
    return 1;
  }
  return 0;
}
