#include "opt/solution_space.h"

#include <cassert>
#include <cmath>

namespace surf {

RegionSolutionSpace RegionSolutionSpace::ForBounds(const Bounds& bounds,
                                                   double min_frac,
                                                   double max_frac) {
  assert(min_frac > 0.0 && min_frac < max_frac);
  RegionSolutionSpace space;
  space.bounds = bounds;
  const double extent = bounds.MaxExtent();
  space.min_half_length = min_frac * extent;
  space.max_half_length = max_frac * extent;
  return space;
}

Region RegionSolutionSpace::Sample(Rng* rng) const {
  const size_t d = dims();
  std::vector<double> center(d), half(d);
  for (size_t i = 0; i < d; ++i) {
    center[i] = rng->Uniform(bounds.lo(i), bounds.hi(i));
    half[i] = rng->Uniform(min_half_length, max_half_length);
  }
  return Region(std::move(center), std::move(half));
}

void RegionSolutionSpace::Clamp(Region* region) const {
  assert(region->dims() == dims());
  region->ClampTo(bounds.lo(), bounds.hi(), min_half_length,
                  max_half_length);
}

double RegionSolutionSpace::FlatDiagonal() const {
  double s = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    s += bounds.Extent(i) * bounds.Extent(i);
  }
  const double len_extent = max_half_length - min_half_length;
  s += static_cast<double>(dims()) * len_extent * len_extent;
  return std::sqrt(s);
}

}  // namespace surf
