#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace surf {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kQuiet:
      return "QUIET";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[surf %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace surf
