#include "net/metrics.h"

#include <cstdio>

namespace surf {

namespace {

void AppendMetric(std::string* out, const std::string& line) {
  out->append(line);
  out->push_back('\n');
}

std::string FormatSeconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void ServerMetrics::RecordRequest(const std::string& route, int status_code,
                                  double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_[{route, status_code}];
  size_t bucket = kLatencyBucketsSeconds.size();  // +Inf slot
  for (size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
    if (seconds <= kLatencyBucketsSeconds[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
  latency_sum_seconds_ += seconds;
  ++latency_count_;
}

uint64_t ServerMetrics::total_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_count_;
}

double ServerMetrics::LatencyQuantileSeconds(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (latency_count_ == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(latency_count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i < kLatencyBucketsSeconds.size() ? kLatencyBucketsSeconds[i]
                                               : kLatencyBucketsSeconds.back();
    }
  }
  return kLatencyBucketsSeconds.back();
}

std::string ServerMetrics::RenderPrometheus(const CacheFigures& cache,
                                            const ServiceFigures& service)
    const {
  std::string out;
  out.reserve(2048);

  {
    std::lock_guard<std::mutex> lock(mu_);
    AppendMetric(&out,
                 "# HELP surf_http_requests_total Requests served, by route "
                 "and status code.");
    AppendMetric(&out, "# TYPE surf_http_requests_total counter");
    for (const auto& [key, count] : requests_) {
      AppendMetric(&out, "surf_http_requests_total{route=\"" + key.first +
                             "\",code=\"" + std::to_string(key.second) +
                             "\"} " + std::to_string(count));
    }

    AppendMetric(&out,
                 "# HELP surf_http_request_duration_seconds End-to-end "
                 "handler latency.");
    AppendMetric(&out, "# TYPE surf_http_request_duration_seconds histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
      cumulative += buckets_[i];
      AppendMetric(&out, "surf_http_request_duration_seconds_bucket{le=\"" +
                             FormatSeconds(kLatencyBucketsSeconds[i]) +
                             "\"} " + std::to_string(cumulative));
    }
    cumulative += buckets_.back();
    AppendMetric(&out,
                 "surf_http_request_duration_seconds_bucket{le=\"+Inf\"} " +
                     std::to_string(cumulative));
    AppendMetric(&out, "surf_http_request_duration_seconds_sum " +
                           FormatSeconds(latency_sum_seconds_));
    AppendMetric(&out, "surf_http_request_duration_seconds_count " +
                           std::to_string(latency_count_));
  }

  AppendMetric(&out,
               "# HELP surf_http_inflight_requests Requests currently "
               "inside a handler.");
  AppendMetric(&out, "# TYPE surf_http_inflight_requests gauge");
  AppendMetric(&out, "surf_http_inflight_requests " +
                         std::to_string(inflight_.load()));

  AppendMetric(&out,
               "# HELP surf_cache_requests_total Surrogate-cache lookups, "
               "by outcome.");
  AppendMetric(&out, "# TYPE surf_cache_requests_total counter");
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"hit\"} " +
                         std::to_string(cache.hits));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"miss\"} " +
                         std::to_string(cache.misses));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"degraded\"} " +
                         std::to_string(cache.degraded_serves));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"negative\"} " +
                         std::to_string(cache.negative_hits));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"rejected\"} " +
                         std::to_string(cache.breaker_rejections));

  AppendMetric(&out,
               "# HELP surf_cache_training_failures_total Surrogate "
               "training attempts that failed (before any fallback).");
  AppendMetric(&out, "# TYPE surf_cache_training_failures_total counter");
  AppendMetric(&out, "surf_cache_training_failures_total " +
                         std::to_string(cache.training_failures));

  AppendMetric(&out,
               "# HELP surf_cache_evictions_total Surrogate-cache "
               "evictions, by reason.");
  AppendMetric(&out, "# TYPE surf_cache_evictions_total counter");
  AppendMetric(&out, "surf_cache_evictions_total{reason=\"capacity\"} " +
                         std::to_string(cache.evictions));
  AppendMetric(&out, "surf_cache_evictions_total{reason=\"stale\"} " +
                         std::to_string(cache.stale_evictions));

  AppendMetric(&out, "# HELP surf_cache_entries Resident cache entries.");
  AppendMetric(&out, "# TYPE surf_cache_entries gauge");
  AppendMetric(&out, "surf_cache_entries " + std::to_string(cache.entries));

  const uint64_t lookups = cache.hits + cache.misses;
  AppendMetric(&out,
               "# HELP surf_cache_hit_ratio Fraction of lookups served by "
               "a resident surrogate.");
  AppendMetric(&out, "# TYPE surf_cache_hit_ratio gauge");
  AppendMetric(
      &out, "surf_cache_hit_ratio " +
                FormatSeconds(lookups == 0 ? 0.0
                                           : static_cast<double>(cache.hits) /
                                                 static_cast<double>(lookups)));

  AppendMetric(&out,
               "# HELP surf_jobs_tracked Jobs registered in the job table "
               "(live + retained finished).");
  AppendMetric(&out, "# TYPE surf_jobs_tracked gauge");
  AppendMetric(&out,
               "surf_jobs_tracked " + std::to_string(service.jobs_tracked));

  AppendMetric(&out,
               "# HELP surf_jobs_evicted_total Finished jobs evicted from "
               "the job table by retention (count or age cap).");
  AppendMetric(&out, "# TYPE surf_jobs_evicted_total counter");
  AppendMetric(&out, "surf_jobs_evicted_total " +
                         std::to_string(service.jobs_evicted));

  if (service.has_transport) {
    AppendMetric(&out,
                 "# HELP surf_http_worker_exceptions_total Handler "
                 "invocations that threw (answered 500).");
    AppendMetric(&out, "# TYPE surf_http_worker_exceptions_total counter");
    AppendMetric(&out, "surf_http_worker_exceptions_total " +
                           std::to_string(service.worker_exceptions));

    AppendMetric(&out,
                 "# HELP surf_http_write_failures_total Responses whose "
                 "socket write failed (peer gone or write deadline).");
    AppendMetric(&out, "# TYPE surf_http_write_failures_total counter");
    AppendMetric(&out, "surf_http_write_failures_total " +
                           std::to_string(service.write_failures));
  }
  return out;
}

}  // namespace surf
