#include "data/activity_sim.h"

#include <cassert>

namespace surf {

std::string ActivityName(Activity a) {
  switch (a) {
    case Activity::kWalking:
      return "walk";
    case Activity::kWalkingUpstairs:
      return "walk_up";
    case Activity::kWalkingDownstairs:
      return "walk_down";
    case Activity::kSitting:
      return "sit";
    case Activity::kStanding:
      return "stand";
    case Activity::kLaying:
      return "lay";
  }
  return "?";
}

ActivityDataset SimulateActivity(const ActivitySimSpec& spec) {
  Rng rng(spec.seed);
  ActivityDataset out;

  // Class-conditional accelerometer signatures, loosely following the UCI
  // data's structure: dynamic activities (walking variants) are diffuse and
  // overlap heavily; static postures are compact; gravity dominates one
  // axis depending on posture. Units are normalized g in [0,1]-ish range.
  struct ClassModel {
    std::array<double, 3> mean;
    std::array<double, 3> sd;
  };
  const std::vector<ClassModel> models = {
      /* walk       */ {{0.45, 0.40, 0.50}, {0.16, 0.17, 0.16}},
      /* walk_up    */ {{0.52, 0.46, 0.44}, {0.17, 0.16, 0.18}},
      /* walk_down  */ {{0.38, 0.36, 0.55}, {0.18, 0.17, 0.17}},
      /* sit        */ {{0.68, 0.22, 0.30}, {0.05, 0.05, 0.06}},
      /* stand      */ {{0.80, 0.72, 0.18}, {0.035, 0.035, 0.04}},
      /* lay        */ {{0.20, 0.78, 0.72}, {0.05, 0.05, 0.05}},
  };
  for (const auto& m : models) out.class_means.push_back(m.mean);

  std::vector<double> weights(spec.class_weights.begin(),
                              spec.class_weights.end());

  Dataset data({"accel_x", "accel_y", "accel_z", "activity"});
  data.Reserve(spec.num_points);
  std::vector<double> row(4);
  for (size_t n = 0; n < spec.num_points; ++n) {
    const size_t cls = rng.Categorical(weights);
    assert(cls < models.size());
    const ClassModel& m = models[cls];
    for (int i = 0; i < 3; ++i) {
      row[static_cast<size_t>(i)] = rng.Gaussian(m.mean[static_cast<size_t>(i)],
                                                 m.sd[static_cast<size_t>(i)]);
    }
    row[3] = static_cast<double>(cls);
    data.AddRow(row);
  }
  out.data = std::move(data);
  return out;
}

}  // namespace surf
