#ifndef SURF_DIST_WIRE_H_
#define SURF_DIST_WIRE_H_

/// \file
/// \brief Wire types of the coordinator/worker scatter-gather protocol.
///
/// One scatter ships a `ShardEvaluateRequest` per worker: the dataset
/// reference (name + optional content fingerprint), the statistic, the
/// full partition spec (so both ends construct byte-identical
/// `ShardedDataset::Partition` layouts), the ascending list of shard
/// indices assigned to that worker, and the query batch. The worker
/// answers with a `ShardEvaluateResponse` carrying one UNMERGED
/// `StatisticAccumulator` per (query, assigned shard) — merging happens
/// only on the coordinator, in ascending shard order, so the fold (and
/// therefore every floating-point rounding) is identical to the
/// in-process `ShardedScanEvaluator` fold regardless of how shards were
/// spread across workers. The JSON codecs live in net/json_codec.h; the
/// structs themselves stay transport-free so the stats and serve layers
/// can use them without a net dependency.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/region.h"
#include "stats/statistic.h"

namespace surf {
namespace dist {

/// \brief One worker's share of a scatter: evaluate `queries` over the
/// assigned `shards` of the named dataset's partition.
struct ShardEvaluateRequest {
  /// Name the dataset is registered under on the worker.
  std::string dataset;
  /// Whether `fingerprint` is set (guards against a worker holding a
  /// same-named but different dataset).
  bool has_fingerprint = false;
  /// Content fingerprint the coordinator expects (FingerprintDataset).
  uint64_t fingerprint = 0;
  /// The statistic whose per-shard partials are requested.
  Statistic statistic;
  /// Total shard count of the partition (not just this worker's share).
  size_t num_shards = 1;
  /// Range-partition column (-1 = natural row order) — mirrors
  /// ShardingOptions::order_by.
  int order_by = -1;
  /// Columns to materialize — mirrors ShardingOptions::columns.
  std::vector<size_t> columns;
  /// Shard indices assigned to this worker, ascending.
  std::vector<size_t> shards;
  /// The query batch (every query is evaluated over every assigned
  /// shard).
  std::vector<Region> queries;
  /// Cooperative deadline for the whole call, seconds; 0 = none.
  double deadline_seconds = 0.0;
};

/// \brief The worker's answer: `partials[q][s]` is the accumulator of
/// `queries[q]` over `shards[s]` (request index order — ascending).
struct ShardEvaluateResponse {
  std::vector<std::vector<StatisticAccumulator>> partials;
};

}  // namespace dist
}  // namespace surf

#endif  // SURF_DIST_WIRE_H_
