#include "core/topk.h"

#include <cassert>
#include <cmath>

namespace surf {

TopKFinder::TopKFinder(StatisticFn estimate, RegionSolutionSpace space,
                       TopKConfig config)
    : estimate_(std::move(estimate)),
      space_(std::move(space)),
      config_(config) {
  assert(estimate_ != nullptr);
  assert(config_.k > 0);
}

TopKResult TopKFinder::Find() const {
  // Threshold-free fitness: maximize the statistic itself, size-penalized
  // exactly like Eq. 4 (log form keeps the scale-free regularization).
  const double c = config_.c;
  const StatisticFn estimate = estimate_;
  const FitnessFn fitness = [estimate, c](const Region& region) {
    FitnessValue out;
    if (region.Degenerate()) return out;
    const double y = estimate(region);
    if (std::isnan(y) || !std::isfinite(y) || y <= 0.0) return out;
    double size_penalty = 0.0;
    for (size_t i = 0; i < region.dims(); ++i) {
      const double l = region.half_length(i);
      if (l <= 0.0) return out;
      size_penalty += std::log(l);
    }
    out.value = std::log(y) - c * size_penalty;
    out.valid = true;
    return out;
  };

  const GlowwormSwarmOptimizer gso(config_.gso);
  const GsoResult swarm = gso.Optimize(fitness, space_, kde_);

  std::vector<ScoredRegion> candidates;
  for (size_t i = 0; i < swarm.particles.size(); ++i) {
    if (!swarm.valid[i]) continue;
    ScoredRegion cand;
    cand.region = swarm.particles[i];
    cand.fitness = swarm.fitness[i];
    cand.statistic = estimate_(cand.region);
    candidates.push_back(std::move(cand));
  }

  TopKResult result;
  result.regions = SelectDistinctRegions(std::move(candidates),
                                         config_.nms_max_iou, config_.k);
  result.iterations = swarm.iterations_run;
  result.objective_evaluations = swarm.objective_evaluations;
  return result;
}

}  // namespace surf
