#ifndef SURF_OPT_SOLUTION_SPACE_H_
#define SURF_OPT_SOLUTION_SPACE_H_

#include "geom/bounds.h"
#include "geom/region.h"
#include "util/rng.h"

namespace surf {

/// \brief The R^{2d} region solution space optimizers roam (paper §III-A:
/// "a candidate solution particle p = [x, l] ∈ R^2d").
///
/// Centers live inside the data domain's bounding box; half side-lengths
/// are clamped to [min_half_length, max_half_length]. The defaults derive
/// the length range from the domain extent the way the paper's workload
/// generator does (regions covering roughly 1–15 % of the domain, §V-A,
/// with head-room up to half the domain for exploration).
struct RegionSolutionSpace {
  Bounds bounds;
  double min_half_length = 0.005;
  double max_half_length = 0.5;

  /// Builds a space over a data bounding box, scaling the length limits by
  /// the largest domain extent.
  static RegionSolutionSpace ForBounds(const Bounds& bounds,
                                       double min_frac = 0.005,
                                       double max_frac = 0.5);

  size_t dims() const { return bounds.dims(); }

  /// Flat dimensionality 2d of the particle space.
  size_t flat_dims() const { return 2 * bounds.dims(); }

  /// Uniform random region (centers uniform in the domain, half-lengths
  /// uniform in the admissible range).
  Region Sample(Rng* rng) const;

  /// Clamps a particle into the space.
  void Clamp(Region* region) const;

  /// Diagonal length of the flat particle space (normalizing constant for
  /// GSO radii and step sizes).
  double FlatDiagonal() const;
};

}  // namespace surf

#endif  // SURF_OPT_SOLUTION_SPACE_H_
