#ifndef SURF_STATS_KD_TREE_H_
#define SURF_STATS_KD_TREE_H_

#include <vector>

#include "geom/bounds.h"
#include "stats/evaluator.h"

namespace surf {

/// \brief k-d-tree range evaluator.
///
/// A median-split k-d tree over the region columns with per-subtree
/// aggregates (count / sum / sum² / label matches). Queries prune whole
/// subtrees: nodes fully inside the box contribute their aggregate in
/// O(1), disjoint nodes are skipped, straddling nodes recurse down to leaf
/// scans. Exact for every statistic kind below the quantile sketch's
/// buffer capacity; the median kind scans intersecting leaves so every
/// raw value reaches the accumulator's sketch.
class KdTreeEvaluator : public RegionEvaluator {
 public:
  /// Builds the tree over `data` (must outlive the evaluator).
  /// `leaf_size` controls when recursion stops.
  KdTreeEvaluator(const Dataset* data, Statistic stat, size_t leaf_size = 32);

  const Statistic& statistic() const override { return stat_; }

  size_t num_nodes() const { return nodes_.size(); }

 protected:
  double EvaluateImpl(const Region& region,
                      const CancelToken& cancel) const override;

 private:
  struct Node {
    // Range [begin, end) into rows_.
    uint32_t begin = 0;
    uint32_t end = 0;
    int32_t left = -1;
    int32_t right = -1;
    uint16_t split_dim = 0;
    double split_value = 0.0;
    // Node bounding box over region dims (lo/hi interleaved compactly).
    std::vector<double> lo, hi;
    // Subtree aggregates.
    double sum = 0.0;
    double sum_sq = 0.0;
    uint32_t matches = 0;
  };

  int32_t Build(uint32_t begin, uint32_t end, size_t depth);
  void Query(int32_t node_idx, const Region& region,
             StatisticAccumulator* acc) const;
  void ScanRange(uint32_t begin, uint32_t end, const Region& region,
                 StatisticAccumulator* acc) const;

  const Dataset* data_;
  Statistic stat_;
  size_t leaf_size_;
  std::vector<uint32_t> rows_;
  std::vector<Node> nodes_;
};

}  // namespace surf

#endif  // SURF_STATS_KD_TREE_H_
