#ifndef SURF_UTIL_JSON_H_
#define SURF_UTIL_JSON_H_

/// \file
/// \brief Minimal dependency-free JSON: a value type, a strict parser, and
/// a deterministic writer.
///
/// Scope is exactly what the network front-end needs — objects, arrays,
/// finite numbers, strings, booleans, and null. The parser is a
/// depth-limited recursive descent over UTF-8 text that returns
/// InvalidArgument (never crashes, never throws) on malformed input,
/// including the non-JSON `NaN`/`Infinity` tokens. The writer emits
/// doubles with round-trip precision (`%.17g`), so a value that survives
/// Write → Parse is bit-identical — the property the HTTP parity tests
/// rely on. Non-finite doubles have no JSON encoding and are written as
/// `null`.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace surf {

/// \brief One JSON value: null, bool, number, string, array, or object.
///
/// Objects preserve insertion order (the writer is therefore
/// deterministic for codec-generated values) and are scanned linearly on
/// lookup — our payload objects are small, so no hash map is warranted.
class JsonValue {
 public:
  /// JSON type tag.
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// One "key": value object member.
  using Member = std::pair<std::string, JsonValue>;

  /// Constructs null.
  JsonValue() : type_(Type::kNull) {}
  /// Constructs a boolean.
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  /// Constructs a number.
  JsonValue(double v) : type_(Type::kNumber), number_(v) {}
  /// Constructs a number from an integer (exact for |v| < 2^53).
  JsonValue(int v) : type_(Type::kNumber), number_(v) {}
  /// Constructs a string.
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  /// Constructs a string from a literal.
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  /// An empty JSON object.
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  /// An empty JSON array.
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  /// The value's type tag.
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// The boolean payload (requires is_bool()).
  bool bool_value() const { return bool_; }
  /// The numeric payload (requires is_number()).
  double number_value() const { return number_; }
  /// The string payload (requires is_string()).
  const std::string& string_value() const { return string_; }

  /// Array elements (requires is_array(); empty otherwise).
  const std::vector<JsonValue>& array() const { return array_; }
  /// Mutable array elements.
  std::vector<JsonValue>& array() { return array_; }
  /// Appends an array element.
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  /// Object members in insertion order (requires is_object()).
  const std::vector<Member>& members() const { return members_; }

  /// Pointer to the member named `key`, or null when absent (or when this
  /// value is not an object). With duplicate keys the *last* one wins
  /// (RFC 8259 leaves this open; last-wins matches the common parsers).
  const JsonValue* Find(const std::string& key) const;

  /// Sets (or overwrites) the member named `key`. Linear in the member
  /// count — use AppendMember when keys are known to be fresh.
  void Set(std::string key, JsonValue v);

  /// Appends a member without the duplicate-key scan. O(1); used by the
  /// parser, where a per-member scan would make object parsing quadratic
  /// in the member count (a DoS vector on network input). Duplicates are
  /// resolved by Find's last-wins rule.
  void AppendMember(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// Number of array elements or object members.
  size_t size() const {
    return type_ == Type::kArray ? array_.size() : members_.size();
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

/// \brief Parser limits: guard rails against adversarial network input.
struct JsonParseLimits {
  /// Maximum nesting depth of arrays/objects.
  size_t max_depth = 96;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// non-whitespace is an error). Returns InvalidArgument with a
/// position-annotated message on malformed input.
StatusOr<JsonValue> ParseJson(const std::string& text,
                              const JsonParseLimits& limits = {});

/// Serializes a value to compact JSON. Doubles are written with `%.17g`
/// (exact round trip); integral values within the double-exact range are
/// written without a fractional part; non-finite numbers become `null`.
std::string WriteJson(const JsonValue& value);

/// Serializes with two-space indentation (docs/tools output).
std::string WriteJsonPretty(const JsonValue& value);

/// Escapes one string body per RFC 8259 (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace surf

#endif  // SURF_UTIL_JSON_H_
