#ifndef SURF_BENCH_LEGACY_GBRT_H_
#define SURF_BENCH_LEGACY_GBRT_H_

// Reference single-thread GBRT implementation — a faithful port of the
// original (pre-engine-rework) trainer and predictor. It exists solely as
// the baseline of bench/micro_core's speedup report: nested-vector bin
// storage, a full histogram rebuild (gradients, hessians and counts) at
// every node, per-round prediction updates that copy each row into a
// scratch buffer and walk the fresh tree, and a batch predictor that
// gathers every row before walking every tree. Not used by the library.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <numeric>
#include <vector>

#include "ml/binning.h"
#include "ml/matrix.h"
#include "ml/tree.h"

namespace surf {
namespace bench {

class LegacyTree {
 public:
  struct Node {
    int32_t left = -1;  // -1 for leaf
    int32_t right = -1;
    uint32_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;
  };

  void Fit(const std::vector<std::vector<uint16_t>>& binned,
           const FeatureBinner& binner, const std::vector<double>& grad,
           const std::vector<double>& hess, const std::vector<size_t>& rows,
           const TreeParams& params) {
    nodes_.clear();
    std::vector<size_t> features(binner.num_features());
    std::iota(features.begin(), features.end(), 0);
    std::vector<size_t> mutable_rows = rows;
    BuildNode(binned, binner, grad, hess, &mutable_rows, 0,
              mutable_rows.size(), 0, params, features);
  }

  double Predict(const double* x) const {
    assert(!nodes_.empty());
    int32_t idx = 0;
    for (;;) {
      const Node& node = nodes_[static_cast<size_t>(idx)];
      if (node.left < 0) return node.value;
      idx = x[node.feature] <= node.threshold ? node.left : node.right;
    }
  }

  /// Parses one tree from the library's serialized text format, so the
  /// prediction benchmark walks the exact same model through both
  /// engines.
  static LegacyTree Parse(std::istream& is) {
    LegacyTree tree;
    size_t n = 0;
    is >> n;
    tree.nodes_.resize(n);
    for (auto& node : tree.nodes_) {
      long long left, right;
      is >> left >> right >> node.feature >> node.threshold >> node.value;
      node.left = static_cast<int32_t>(left);
      node.right = static_cast<int32_t>(right);
    }
    return tree;
  }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct SplitDecision {
    bool found = false;
    size_t feature = 0;
    uint16_t bin = 0;
    double threshold = 0.0;
    double gain = 0.0;
  };

  static double NodeScore(double g, double h, double lambda) {
    return (g * g) / (h + lambda);
  }

  int32_t BuildNode(const std::vector<std::vector<uint16_t>>& binned,
                    const FeatureBinner& binner,
                    const std::vector<double>& grad,
                    const std::vector<double>& hess,
                    std::vector<size_t>* rows, size_t begin, size_t end,
                    size_t depth, const TreeParams& params,
                    const std::vector<size_t>& features) {
    const int32_t idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();

    double g_sum = 0.0, h_sum = 0.0;
    for (size_t i = begin; i < end; ++i) {
      g_sum += grad[(*rows)[i]];
      h_sum += hess[(*rows)[i]];
    }

    auto make_leaf = [&]() {
      nodes_[static_cast<size_t>(idx)].value =
          -g_sum / (h_sum + params.reg_lambda);
      return idx;
    };

    if (depth >= params.max_depth ||
        end - begin < 2 * params.min_samples_leaf ||
        h_sum < 2.0 * params.min_child_weight) {
      return make_leaf();
    }

    const SplitDecision split = FindBestSplit(
        binned, binner, grad, hess, *rows, begin, end, params, features);
    if (!split.found) return make_leaf();

    const auto& fcol = binned[split.feature];
    const auto pivot = std::partition(
        rows->begin() + static_cast<long>(begin),
        rows->begin() + static_cast<long>(end),
        [&](size_t r) { return fcol[r] <= split.bin; });
    const size_t mid = static_cast<size_t>(pivot - rows->begin());
    if (mid == begin || mid == end) return make_leaf();

    const int32_t left = BuildNode(binned, binner, grad, hess, rows, begin,
                                   mid, depth + 1, params, features);
    const int32_t right = BuildNode(binned, binner, grad, hess, rows, mid,
                                    end, depth + 1, params, features);
    Node& node = nodes_[static_cast<size_t>(idx)];
    node.left = left;
    node.right = right;
    node.feature = static_cast<uint32_t>(split.feature);
    node.threshold = split.threshold;
    return idx;
  }

  SplitDecision FindBestSplit(
      const std::vector<std::vector<uint16_t>>& binned,
      const FeatureBinner& binner, const std::vector<double>& grad,
      const std::vector<double>& hess, const std::vector<size_t>& rows,
      size_t begin, size_t end, const TreeParams& params,
      const std::vector<size_t>& features) const {
    SplitDecision best;
    double g_total = 0.0, h_total = 0.0;
    size_t n_total = 0;
    for (size_t i = begin; i < end; ++i) {
      g_total += grad[rows[i]];
      h_total += hess[rows[i]];
      ++n_total;
    }
    const double parent_score =
        NodeScore(g_total, h_total, params.reg_lambda);

    std::vector<double> bin_g, bin_h;
    std::vector<size_t> bin_n;
    for (size_t f : features) {
      const size_t n_bins = binner.num_bins(f);
      if (n_bins < 2) continue;
      bin_g.assign(n_bins, 0.0);
      bin_h.assign(n_bins, 0.0);
      bin_n.assign(n_bins, 0);
      const auto& fcol = binned[f];
      for (size_t i = begin; i < end; ++i) {
        const size_t r = rows[i];
        const uint16_t b = fcol[r];
        bin_g[b] += grad[r];
        bin_h[b] += hess[r];
        bin_n[b] += 1;
      }

      double g_left = 0.0, h_left = 0.0;
      size_t n_left = 0;
      for (size_t b = 0; b + 1 < n_bins; ++b) {
        g_left += bin_g[b];
        h_left += bin_h[b];
        n_left += bin_n[b];
        const double g_right = g_total - g_left;
        const double h_right = h_total - h_left;
        const size_t n_right = n_total - n_left;
        if (n_left < params.min_samples_leaf ||
            n_right < params.min_samples_leaf) {
          continue;
        }
        if (h_left < params.min_child_weight ||
            h_right < params.min_child_weight) {
          continue;
        }
        const double gain =
            0.5 * (NodeScore(g_left, h_left, params.reg_lambda) +
                   NodeScore(g_right, h_right, params.reg_lambda) -
                   parent_score);
        if (gain > best.gain + 1e-12 && gain > params.min_split_gain) {
          best.found = true;
          best.feature = f;
          best.bin = static_cast<uint16_t>(b);
          best.threshold = binner.BinUpperEdge(f, b);
          best.gain = gain;
        }
      }
    }
    return best;
  }

  std::vector<Node> nodes_;
};

/// The original boosting loop: nested-vector bins, per-round prediction
/// refresh that copies every row into a scratch buffer before walking the
/// new tree.
class LegacyGbrt {
 public:
  double learning_rate = 0.1;
  size_t n_estimators = 100;
  TreeParams tree_params;
  size_t max_bins = 256;

  void Fit(const FeatureMatrix& x, const std::vector<double>& y) {
    trees_.clear();
    num_features_ = x.num_features();
    base_score_ = 0.0;
    for (double v : y) base_score_ += v;
    base_score_ /= static_cast<double>(y.size());

    const FeatureBinner binner(x, max_bins);
    const auto binned = binner.BinMatrix(x);

    std::vector<double> pred(x.num_rows(), base_score_);
    std::vector<double> grad(x.num_rows()), hess(x.num_rows(), 1.0);
    std::vector<size_t> rows(x.num_rows());
    std::iota(rows.begin(), rows.end(), 0);

    std::vector<size_t> tree_rows;
    for (size_t round = 0; round < n_estimators; ++round) {
      for (size_t r : rows) grad[r] = pred[r] - y[r];
      tree_rows = rows;
      LegacyTree tree;
      tree.Fit(binned, binner, grad, hess, tree_rows, tree_params);

      std::vector<double> row_buf(num_features_);
      for (size_t r = 0; r < x.num_rows(); ++r) {
        for (size_t j = 0; j < num_features_; ++j) row_buf[j] = x.Get(r, j);
        pred[r] += learning_rate * tree.Predict(row_buf.data());
      }
      trees_.push_back(std::move(tree));
    }
  }

  /// The original batch predictor: gather each row, then walk every tree.
  std::vector<double> PredictBatch(const FeatureMatrix& x) const {
    std::vector<double> out(x.num_rows(), base_score_);
    std::vector<double> row(num_features_);
    for (size_t r = 0; r < x.num_rows(); ++r) {
      for (size_t j = 0; j < num_features_; ++j) row[j] = x.Get(r, j);
      double acc = base_score_;
      for (const auto& tree : trees_) {
        acc += learning_rate * tree.Predict(row.data());
      }
      out[r] = acc;
    }
    return out;
  }

  /// Loads the tree set of an already-fitted library model (via its text
  /// serialization), so both predictors walk the identical ensemble.
  void LoadTrees(std::istream& is, size_t n_trees, double base_score,
                 double lr, size_t num_features) {
    trees_.clear();
    trees_.reserve(n_trees);
    for (size_t t = 0; t < n_trees; ++t) {
      trees_.push_back(LegacyTree::Parse(is));
    }
    base_score_ = base_score;
    learning_rate = lr;
    num_features_ = num_features;
  }

  size_t num_trees() const { return trees_.size(); }

 private:
  double base_score_ = 0.0;
  size_t num_features_ = 0;
  std::vector<LegacyTree> trees_;
};

// ------------------------------------------------------------------
// Legacy scalar forms of the three accel-layer hot loops, exactly as
// they appeared inline before the dispatch layer existed. They are the
// baselines of micro_core's kernel-level speedup section: the accel
// generic backend must match them in time (it IS the same loop), and
// the native backends must beat them.

/// The pre-accel histogram accumulation from tree.cc's build_feature.
inline void LegacyHistU8Unit(const uint8_t* bins, const uint32_t* row_ids,
                             const double* grad, size_t n, double* g,
                             uint32_t* cnt) {
  if (row_ids == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const uint8_t b = bins[i];
      g[b] += grad[i];
      ++cnt[b];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint8_t b = bins[row_ids[i]];
      g[b] += grad[i];
      ++cnt[b];
    }
  }
}

/// The pre-accel branchless membership scan from EvalShard.
inline void LegacyMaskScan(const double* col, size_t n, double lo, double hi,
                           uint8_t* mask) {
  for (size_t r = 0; r < n; ++r) {
    mask[r] &= static_cast<uint8_t>(!(col[r] < lo)) &
               static_cast<uint8_t>(!(col[r] > hi));
  }
}

/// The pre-accel mask popcount (plain byte sum).
inline uint64_t LegacyMaskCount(const uint8_t* mask, size_t n) {
  uint64_t sum = 0;
  for (size_t r = 0; r < n; ++r) sum += mask[r];
  return sum;
}

}  // namespace bench
}  // namespace surf

#endif  // SURF_BENCH_LEGACY_GBRT_H_
