// Tests for the versioned API surface (src/api): v2 <-> legacy request
// conversions, the shared validation path, version/build info, and the
// v2 JSON codec.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "api/api.h"
#include "api/api_v2.h"
#include "net/json_codec.h"
#include "serve/fingerprint.h"
#include "util/json.h"

namespace surf {
namespace {

v2::MineRequest SampleV2() {
  v2::MineRequest request;
  request.dataset = "d";
  request.query.statistic = Statistic::Average({0, 1}, 2);
  request.query.kind = v2::QueryKind::kThreshold;
  request.query.threshold = 42.5;
  request.query.direction = ThresholdDirection::kBelow;
  request.search.finder.c = 2.5;
  request.search.finder.gso.max_iterations = 77;
  request.search.topk.k = 5;
  request.training.workload.num_queries = 1234;
  request.training.surrogate.gbrt.n_estimators = 55;
  request.execution.backend = BackendKind::kKdTree;
  request.execution.use_kde = false;
  request.execution.validate = true;
  request.execution.record_evaluations = true;
  request.execution.deadline_seconds = 3.5;
  return request;
}

// ------------------------------------------------------------ conversions

TEST(ApiV2Test, LegacyRoundTripIsLossless) {
  const v2::MineRequest original = SampleV2();
  const MineRequest legacy = v2::ToLegacy(original);
  const v2::MineRequest back = v2::FromLegacy(legacy);

  // Compare through the legacy JSON encoder: it writes every field, so
  // equal documents mean equal requests (the deadline intentionally
  // lives outside the legacy form).
  EXPECT_EQ(WriteJson(MineRequestToJson(legacy)),
            WriteJson(MineRequestToJson(v2::ToLegacy(back))));
  EXPECT_EQ(back.api_version, kApiMinVersion);
  EXPECT_EQ(back.dataset, original.dataset);
  EXPECT_EQ(back.query.threshold, original.query.threshold);
  EXPECT_EQ(back.execution.record_evaluations,
            original.execution.record_evaluations);
}

TEST(ApiV2Test, ConversionPreservesCacheKeyRecipes) {
  const v2::MineRequest request = SampleV2();
  const MineRequest legacy = v2::ToLegacy(request);
  EXPECT_EQ(FingerprintWorkloadParams(request.training.workload),
            FingerprintWorkloadParams(legacy.workload));
  EXPECT_EQ(FingerprintTrainOptions(request.training.surrogate),
            FingerprintTrainOptions(legacy.surrogate));
  EXPECT_EQ(FingerprintStatistic(request.query.statistic),
            FingerprintStatistic(legacy.statistic));
}

// ------------------------------------------------------------- validation

TEST(ApiV2Test, ValidationAcceptsDefaults) {
  v2::MineRequest request;
  request.dataset = "d";
  request.query.statistic = Statistic::Count({0});
  EXPECT_TRUE(v2::ValidateAndNormalize(&request).ok());
}

TEST(ApiV2Test, ValidationRejectsRecordEvaluationsWithoutValidate) {
  v2::MineRequest request;
  request.dataset = "d";
  request.query.statistic = Statistic::Count({0});
  request.execution.record_evaluations = true;
  request.execution.validate = false;
  const Status status = v2::ValidateAndNormalize(&request);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // The same combination through the legacy lift is rejected too (the
  // v1 service silently ignored it).
  MineRequest legacy = v2::ToLegacy(request);
  EXPECT_EQ(v2::ValidateLegacy(legacy).code(),
            StatusCode::kInvalidArgument);
}

TEST(ApiV2Test, ValidationRejectsMalformedRequests) {
  v2::MineRequest ok;
  ok.dataset = "d";
  ok.query.statistic = Statistic::Count({0});

  v2::MineRequest bad = ok;
  bad.api_version = 3;
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);

  bad = ok;
  bad.dataset.clear();
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);

  bad = ok;
  bad.query.statistic.region_cols.clear();
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);

  bad = ok;
  bad.query.threshold = std::nan("");
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);

  bad = ok;
  bad.query.kind = v2::QueryKind::kTopK;
  bad.search.topk.k = 0;
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);

  bad = ok;
  bad.training.workload.num_queries = 0;
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);

  bad = ok;
  bad.execution.deadline_seconds = -1.0;
  EXPECT_EQ(v2::ValidateAndNormalize(&bad).code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- version info

TEST(ApiVersionTest, BuildInfoIsCoherent) {
  const BuildInfo info = GetBuildInfo();
  EXPECT_EQ(info.api_version, kApiVersion);
  EXPECT_EQ(info.api_min_version, kApiMinVersion);
  EXPECT_LE(info.api_min_version, info.api_version);
  EXPECT_EQ(info.library_version, std::string(kLibraryVersion));
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_NE(VersionString().find("surf"), std::string::npos);
  EXPECT_NE(VersionString().find(info.library_version), std::string::npos);
}

// ------------------------------------------------------------- v2 codec

TEST(ApiV2CodecTest, V2JsonRoundTrips) {
  const v2::MineRequest original = SampleV2();
  const JsonValue encoded = MineRequestV2ToJson(original);
  auto decoded = MineRequestV2FromJson(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->api_version, 2);
  EXPECT_EQ(WriteJson(MineRequestV2ToJson(*decoded)), WriteJson(encoded));
}

TEST(ApiV2CodecTest, LegacyDocumentsDecodeThroughV2EntryPoint) {
  MineRequest legacy;
  legacy.dataset = "d";
  legacy.statistic = Statistic::Count({0, 1});
  legacy.threshold = 9.0;
  legacy.workload.num_queries = 500;

  // A v1 flat document (no api_version) decodes identically through the
  // v2 entry point and the legacy decoder.
  const JsonValue doc = MineRequestToJson(legacy);
  auto via_v2 = MineRequestV2FromJson(doc);
  ASSERT_TRUE(via_v2.ok()) << via_v2.status().ToString();
  EXPECT_EQ(via_v2->api_version, 1);
  auto via_v1 = MineRequestFromJson(doc);
  ASSERT_TRUE(via_v1.ok());
  EXPECT_EQ(WriteJson(MineRequestToJson(v2::ToLegacy(*via_v2))),
            WriteJson(MineRequestToJson(*via_v1)));
}

TEST(ApiV2CodecTest, UnsupportedApiVersionRejected) {
  JsonValue doc = JsonValue::Object();
  doc.Set("api_version", JsonValue(7.0));
  doc.Set("dataset", JsonValue("d"));
  auto decoded = MineRequestV2FromJson(doc);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiV2CodecTest, V2DocumentRejectsInvalidCombination) {
  v2::MineRequest request = SampleV2();
  request.execution.record_evaluations = true;
  request.execution.validate = false;
  // Encoding is mechanical; the decode-side shared validation rejects.
  auto decoded = MineRequestV2FromJson(MineRequestV2ToJson(request));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // The same combination in a v1 flat document is rejected at decode
  // time too — both schemas share the validation path.
  MineRequest legacy;
  legacy.dataset = "d";
  legacy.statistic = Statistic::Count({0});
  legacy.record_evaluations = true;
  legacy.validate = false;
  auto decoded_v1 = MineRequestV2FromJson(MineRequestToJson(legacy));
  EXPECT_FALSE(decoded_v1.ok());
  EXPECT_EQ(decoded_v1.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ cancelled status

TEST(CancelledStatusTest, MapsToHttp408AndRoundTrips) {
  const Status cancelled = Status::Cancelled("deadline hit");
  EXPECT_EQ(HttpStatusFromStatus(cancelled), 408);
  EXPECT_EQ(StatusCodeName(cancelled.code()), "cancelled");
  EXPECT_EQ(cancelled.ToString(), "Cancelled: deadline hit");

  Status decoded;
  ASSERT_TRUE(StatusFromJson(StatusToJson(cancelled), &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kCancelled);
  EXPECT_EQ(decoded.message(), "deadline hit");
}

}  // namespace
}  // namespace surf
