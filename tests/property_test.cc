// Property-based suites: randomized invariants swept over seeds and
// dimensionalities with parameterized gtest. These complement the
// example-based unit tests by checking that the *laws* each module
// promises hold over broad random inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/surf.h"
#include "data/sharded.h"
#include "data/synthetic.h"
#include "ml/gbrt.h"
#include "ml/kde.h"
#include "ml/metrics.h"
#include "opt/naive_search.h"
#include "opt/objective.h"
#include "stats/grid_index.h"
#include "stats/kd_tree.h"
#include "stats/quantile_sketch.h"
#include "stats/rtree.h"
#include "stats/sharded_evaluator.h"
#include "util/rng.h"
#include "util/summary.h"

namespace surf {
namespace {

// ------------------------------------------------ Statistic/evaluator laws

class StatisticLawsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

/// Random dataset with value + label columns over [0,1]^d.
Dataset RandomDataset(size_t n, size_t d, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t j = 0; j < d; ++j) names.push_back("a" + std::to_string(j));
  names.push_back("v");
  Dataset ds(names);
  Rng rng(seed);
  std::vector<double> row(d + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
    row[d] = rng.Gaussian(0.0, 3.0);
    ds.AddRow(row);
  }
  return ds;
}

std::vector<size_t> RegionCols(size_t d) {
  std::vector<size_t> cols(d);
  std::iota(cols.begin(), cols.end(), 0);
  return cols;
}

TEST_P(StatisticLawsTest, CountIsMonotoneInBoxSize) {
  const auto [seed, dims] = GetParam();
  const size_t d = static_cast<size_t>(dims);
  const Dataset ds = RandomDataset(2000, d, static_cast<uint64_t>(seed));
  GridIndexEvaluator eval(&ds, Statistic::Count(RegionCols(d)));
  Rng rng(static_cast<uint64_t>(seed) * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> center(d), half(d), bigger(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Uniform();
      half[j] = rng.Uniform(0.02, 0.2);
      bigger[j] = half[j] + rng.Uniform(0.0, 0.2);
    }
    EXPECT_LE(eval.Evaluate(Region(center, half)),
              eval.Evaluate(Region(center, bigger)));
  }
}

TEST_P(StatisticLawsTest, CountIsAdditiveUnderDisjointSplit) {
  const auto [seed, dims] = GetParam();
  const size_t d = static_cast<size_t>(dims);
  const Dataset ds = RandomDataset(1500, d, static_cast<uint64_t>(seed));
  ScanEvaluator eval(&ds, Statistic::Count(RegionCols(d)));
  Rng rng(static_cast<uint64_t>(seed) * 13 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    // Split a box into two halves along dimension 0 at an off-grid point
    // strictly between data values (measure-zero overlap).
    std::vector<double> lo(d), hi(d);
    for (size_t j = 0; j < d; ++j) {
      lo[j] = rng.Uniform(0.0, 0.4);
      hi[j] = lo[j] + rng.Uniform(0.2, 0.5);
    }
    const double cut = 0.5 * (lo[0] + hi[0]) + 1e-7;
    std::vector<double> mid_hi = hi, mid_lo = lo;
    mid_hi[0] = cut;
    mid_lo[0] = std::nextafter(cut, 1.0);
    const double whole =
        eval.Evaluate(Region::FromCorners(lo, hi));
    const double left =
        eval.Evaluate(Region::FromCorners(lo, mid_hi));
    const double right =
        eval.Evaluate(Region::FromCorners(mid_lo, hi));
    EXPECT_DOUBLE_EQ(whole, left + right);
  }
}

TEST_P(StatisticLawsTest, AverageIsBoundedByExtremes) {
  const auto [seed, dims] = GetParam();
  const size_t d = static_cast<size_t>(dims);
  const Dataset ds = RandomDataset(1200, d, static_cast<uint64_t>(seed));
  KdTreeEvaluator eval(&ds, Statistic::Average(RegionCols(d), d));
  const auto& values = ds.column(d);
  const double vmin = *std::min_element(values.begin(), values.end());
  const double vmax = *std::max_element(values.begin(), values.end());
  Rng rng(static_cast<uint64_t>(seed) * 3 + 11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> center(d), half(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Uniform();
      half[j] = rng.Uniform(0.05, 0.4);
    }
    const double avg = eval.Evaluate(Region(center, half));
    if (std::isnan(avg)) continue;  // empty region
    EXPECT_GE(avg, vmin - 1e-9);
    EXPECT_LE(avg, vmax + 1e-9);
  }
}

TEST_P(StatisticLawsTest, VarianceIsNonNegative) {
  const auto [seed, dims] = GetParam();
  const size_t d = static_cast<size_t>(dims);
  const Dataset ds = RandomDataset(1000, d, static_cast<uint64_t>(seed));
  RTreeEvaluator eval(&ds, Statistic::VarianceOf(RegionCols(d), d));
  Rng rng(static_cast<uint64_t>(seed) + 17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> center(d), half(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Uniform();
      half[j] = rng.Uniform(0.05, 0.4);
    }
    const double var = eval.Evaluate(Region(center, half));
    if (std::isnan(var)) continue;
    EXPECT_GE(var, 0.0);
  }
}

TEST_P(StatisticLawsTest, RatioIsAProbability) {
  const auto [seed, dims] = GetParam();
  const size_t d = static_cast<size_t>(dims);
  Dataset ds = RandomDataset(800, d, static_cast<uint64_t>(seed));
  // Re-purpose the value column as a binary label.
  for (size_t r = 0; r < ds.num_rows(); ++r) {
    ds.Set(r, d, ds.Get(r, d) > 0.0 ? 1.0 : 0.0);
  }
  GridIndexEvaluator eval(&ds,
                          Statistic::LabelRatio(RegionCols(d), d, 1.0));
  Rng rng(static_cast<uint64_t>(seed) + 23);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> center(d), half(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Uniform();
      half[j] = rng.Uniform(0.05, 0.4);
    }
    const double ratio = eval.Evaluate(Region(center, half));
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDims, StatisticLawsTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------- Quantile-sketch laws

class QuantileSketchLawsTest : public ::testing::TestWithParam<int> {};

/// Fraction of `sorted` strictly below `v` — the empirical rank the
/// sketch's median estimate lands at.
double EmpiricalRank(const std::vector<double>& sorted, double v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

TEST_P(QuantileSketchLawsTest, ExactBelowBufferCapacity) {
  // Until the buffer capacity is exceeded no compaction runs and the
  // median must equal the historical raw-buffer convention bit-for-bit
  // (odd: middle element; even: mean of the two middle elements).
  Rng rng(static_cast<uint64_t>(GetParam()) + 900);
  for (size_t n : {1u, 2u, 7u, 100u, 1001u}) {
    QuantileSketch sketch;
    std::vector<double> values;
    for (size_t i = 0; i < n; ++i) {
      const double v = rng.Gaussian(0.0, 10.0);
      sketch.Add(v);
      values.push_back(v);
    }
    ASSERT_TRUE(sketch.exact());
    std::sort(values.begin(), values.end());
    const size_t mid = n / 2;
    const double expected =
        (n % 2 == 1) ? values[mid] : 0.5 * (values[mid - 1] + values[mid]);
    EXPECT_EQ(sketch.Median(), expected) << "n=" << n;
    EXPECT_EQ(sketch.Quantile(0.0), values.front());
    EXPECT_EQ(sketch.Quantile(1.0), values.back());
  }
}

TEST_P(QuantileSketchLawsTest, MedianRankErrorBoundAcrossDistributions) {
  // Past the buffer capacity the sketch compacts; the reported median
  // must stay within 2% rank error of the true median for benign and
  // adversarial (sorted) input orders alike.
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 1000;
  const size_t n = 60000;
  for (int dist = 0; dist < 5; ++dist) {
    Rng rng(seed * 13 + static_cast<uint64_t>(dist));
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      switch (dist) {
        case 0: values.push_back(rng.Uniform()); break;
        case 1: values.push_back(rng.Gaussian(5.0, 2.0)); break;
        case 2:  // heavy-tailed: exponential via inverse transform
          values.push_back(-std::log(1.0 - rng.Uniform(0.0, 0.999999)));
          break;
        case 3:  // bimodal
          values.push_back(rng.Bernoulli(0.5) ? rng.Gaussian(-10.0, 1.0)
                                              : rng.Gaussian(10.0, 1.0));
          break;
        default:  // sorted ascending (adversarial insert order)
          values.push_back(static_cast<double>(i));
      }
    }
    QuantileSketch sketch;
    for (double v : values) sketch.Add(v);
    EXPECT_FALSE(sketch.exact());
    EXPECT_LT(sketch.num_retained(), n / 4);  // actually sketching
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const double rank = EmpiricalRank(sorted, sketch.Median());
    EXPECT_NEAR(rank, 0.5, 0.02) << "distribution " << dist;
    for (double q : {0.1, 0.25, 0.75, 0.9}) {
      EXPECT_NEAR(EmpiricalRank(sorted, sketch.Quantile(q)), q, 0.03)
          << "distribution " << dist << " q=" << q;
    }
  }
}

TEST_P(QuantileSketchLawsTest, MergeIsDeterministicAndBounded) {
  // Merging shard-local sketches in fixed order is deterministic
  // (bit-identical across runs) and stays within the rank bound.
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 1100;
  const size_t n = 40000, chunks = 8;
  auto build_merged = [&] {
    Rng rng(seed);
    std::vector<double> values;
    for (size_t i = 0; i < n; ++i) values.push_back(rng.Gaussian(0.0, 3.0));
    QuantileSketch merged;
    for (size_t c = 0; c < chunks; ++c) {
      QuantileSketch part;
      for (size_t i = c * (n / chunks); i < (c + 1) * (n / chunks); ++i) {
        part.Add(values[i]);
      }
      merged.Merge(part);
    }
    std::sort(values.begin(), values.end());
    return std::make_pair(merged.Median(), EmpiricalRank(values,
                                                         merged.Median()));
  };
  const auto [median_a, rank_a] = build_merged();
  const auto [median_b, rank_b] = build_merged();
  EXPECT_EQ(median_a, median_b);  // deterministic, no RNG inside
  EXPECT_EQ(rank_a, rank_b);
  EXPECT_NEAR(rank_a, 0.5, 0.02);
}

TEST_P(QuantileSketchLawsTest, ShardedMedianWorkloadIsSeedStable) {
  // End to end: labelling a median workload through the sharded backend
  // twice with the same seed must produce identical targets — the
  // sketch is deterministic, the merge order is fixed, and the query
  // draw is seeded.
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const Dataset ds = RandomDataset(8000, 2, seed + 1200);
  auto label = [&] {
    ShardingOptions options;
    options.num_shards = 8;
    options.order_by = 0;
    ShardedScanEvaluator sharded(ShardedDataset::Partition(ds, options),
                                 Statistic::MedianOf({0, 1}, 2), 2);
    WorkloadParams params;
    params.num_queries = 300;
    params.seed = seed;
    return GenerateWorkload(sharded, ds.ComputeBounds({0, 1}), params)
        .targets;
  };
  const std::vector<double> first = label();
  const std::vector<double> second = label();
  ASSERT_EQ(first.size(), second.size());
  ASSERT_GT(first.size(), 0u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "target " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileSketchLawsTest,
                         ::testing::Values(1, 2, 3));

// ----------------------------------------------------- Objective laws

class ObjectiveLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(ObjectiveLawsTest, ValidIffConstraintHolds) {
  // Under the log form, validity must coincide exactly with the
  // constraint on the underlying statistic (paper §II, Eq. 4).
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const double y = rng.Uniform(-50.0, 50.0);
    const double threshold = rng.Uniform(-30.0, 30.0);
    const ThresholdDirection dir = rng.Bernoulli(0.5)
                                       ? ThresholdDirection::kAbove
                                       : ThresholdDirection::kBelow;
    ObjectiveConfig config;
    config.threshold = threshold;
    config.direction = dir;
    config.c = rng.Uniform(-2.0, 5.0);
    const RegionObjective obj([y](const Region&) { return y; }, config);
    const Region region({rng.Uniform()}, {rng.Uniform(0.01, 0.5)});
    EXPECT_EQ(obj.Evaluate(region).valid,
              SatisfiesThreshold(y, threshold, dir));
  }
}

TEST_P(ObjectiveLawsTest, LogObjectiveMonotoneInStatistic) {
  // For the kAbove direction and a fixed region, J must increase with y.
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  ObjectiveConfig config;
  config.threshold = 10.0;
  config.direction = ThresholdDirection::kAbove;
  const Region region({0.5}, {0.1});
  double prev = -1e300;
  for (double y = 11.0; y < 100.0; y += rng.Uniform(1.0, 5.0)) {
    const RegionObjective obj([y](const Region&) { return y; }, config);
    const FitnessValue fv = obj.Evaluate(region);
    ASSERT_TRUE(fv.valid);
    EXPECT_GT(fv.value, prev);
    prev = fv.value;
  }
}

TEST_P(ObjectiveLawsTest, NmsOutputsAreMutuallyDistinct) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  std::vector<ScoredRegion> candidates;
  for (int i = 0; i < 100; ++i) {
    ScoredRegion s;
    s.region = Region({rng.Uniform(), rng.Uniform()},
                      {rng.Uniform(0.02, 0.2), rng.Uniform(0.02, 0.2)});
    s.fitness = rng.Uniform(0.0, 10.0);
    candidates.push_back(s);
  }
  const double max_iou = 0.3;
  const auto kept = SelectDistinctRegions(candidates, max_iou, 50);
  for (size_t i = 0; i < kept.size(); ++i) {
    for (size_t j = i + 1; j < kept.size(); ++j) {
      EXPECT_LE(kept[i].region.IoU(kept[j].region), max_iou + 1e-12);
    }
    if (i + 1 < kept.size()) {
      EXPECT_GE(kept[i].fitness, kept[i + 1].fitness);  // ordered
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectiveLawsTest,
                         ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------- ML laws

class MlLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(MlLawsTest, GbrtTrainErrorDecreasesWithCapacity) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  FeatureMatrix x(2);
  std::vector<double> y;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.Uniform(), b = rng.Uniform();
    x.AddRow({a, b});
    y.push_back(std::sin(5.0 * a) * b + rng.Gaussian(0.0, 0.05));
  }
  double prev_rmse = 1e300;
  for (size_t trees : {5u, 25u, 100u}) {
    GbrtParams params;
    params.n_estimators = trees;
    params.seed = 7;
    GradientBoostedTrees model(params);
    ASSERT_TRUE(model.Fit(x, y).ok());
    const double rmse = Rmse(model.PredictBatch(x), y);
    EXPECT_LE(rmse, prev_rmse + 1e-9);
    prev_rmse = rmse;
  }
}

TEST_P(MlLawsTest, GbrtPredictionsWithinTargetHull) {
  // Squared-loss GBRT predictions are convex combinations of targets
  // (plus the base score), so they cannot leave the target range by more
  // than the learning dynamics allow; with enough regularization they
  // stay inside the hull.
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  FeatureMatrix x(1);
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Uniform();
    x.AddRow({a});
    y.push_back(a > 0.5 ? 10.0 : -10.0);
  }
  GradientBoostedTrees model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  for (int i = 0; i < 100; ++i) {
    const double pred = model.Predict({rng.Uniform()});
    EXPECT_GE(pred, -10.5);
    EXPECT_LE(pred, 10.5);
  }
}

TEST_P(MlLawsTest, KdeMassOfDisjointBoxesIsSubadditive) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform()});
  }
  const Kde kde = Kde::Fit(points);
  for (int trial = 0; trial < 20; ++trial) {
    // Two disjoint boxes split along x.
    const double split = rng.Uniform(0.3, 0.7);
    const Region left = Region::FromCorners({0.0, 0.0}, {split, 1.0});
    const Region right = Region::FromCorners({split, 0.0}, {1.0, 1.0});
    const Region whole = Region::FromCorners({0.0, 0.0}, {1.0, 1.0});
    const double sum = kde.RegionMass(left) + kde.RegionMass(right);
    EXPECT_NEAR(sum, kde.RegionMass(whole), 1e-9);
    EXPECT_LE(kde.RegionMass(whole), 1.0 + 1e-9);
  }
}

TEST_P(MlLawsTest, RmseIsAMetricOnPredictions) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 600);
  std::vector<double> a, b, c;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.Gaussian());
    b.push_back(rng.Gaussian());
    c.push_back(rng.Gaussian());
  }
  EXPECT_DOUBLE_EQ(Rmse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Rmse(a, b), Rmse(b, a));
  // Triangle inequality (RMSE is the L2 metric scaled by 1/sqrt(n)).
  EXPECT_LE(Rmse(a, c), Rmse(a, b) + Rmse(b, c) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlLawsTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------- Pipeline laws

class PipelineLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineLawsTest, ReportedRegionsSatisfySurrogateConstraint) {
  // Every region SuRF reports must satisfy the constraint under f̂ —
  // that is the definition of a valid particle (Eq. 4's domain).
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 600 + static_cast<uint64_t>(GetParam());
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  SurfOptions options;
  options.workload.num_queries = 3000;
  options.workload.seed = static_cast<uint64_t>(GetParam());
  options.finder.gso.max_iterations = 80;
  options.validate_results = false;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0, 1}), options);
  ASSERT_TRUE(surf.ok());
  const double threshold = 1000.0;
  const FindResult result =
      surf->FindRegions(threshold, ThresholdDirection::kAbove);
  for (const auto& r : result.regions) {
    EXPECT_GT(surf->surrogate().Predict(r.region), threshold);
    EXPECT_GT(r.estimate, threshold);
  }
}

TEST_P(PipelineLawsTest, WorkloadRoundTripPreservesData) {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 700 + static_cast<uint64_t>(GetParam());
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  GridIndexEvaluator eval(&ds.data, Statistic::Count({0, 1}));
  WorkloadParams params;
  params.num_queries = 200;
  params.seed = static_cast<uint64_t>(GetParam());
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0, 1}), params);

  const std::string path = "/tmp/surf_workload_prop_" +
                           std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(SaveWorkload(workload, path).ok());
  auto loaded = LoadWorkload(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), workload.size());
  EXPECT_EQ(loaded->features.num_features(),
            workload.features.num_features());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->targets[i], workload.targets[i]);
    EXPECT_EQ(loaded->features.Row(i), workload.features.Row(i));
  }
  EXPECT_DOUBLE_EQ(loaded->space.min_half_length,
                   workload.space.min_half_length);
  EXPECT_DOUBLE_EQ(loaded->space.bounds.lo(0), workload.space.bounds.lo(0));
  std::remove(path.c_str());
}

TEST_P(PipelineLawsTest, MergedWorkloadTrainsLikeConcatenation) {
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 800 + static_cast<uint64_t>(GetParam());
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  GridIndexEvaluator eval(&ds.data, Statistic::Count({0}));
  const Bounds domain = ds.data.ComputeBounds({0});

  WorkloadParams pa;
  pa.num_queries = 400;
  pa.seed = 1;
  WorkloadParams pb = pa;
  pb.seed = 2;
  RegionWorkload a = GenerateWorkload(eval, domain, pa);
  const RegionWorkload b = GenerateWorkload(eval, domain, pb);
  const size_t na = a.size();
  ASSERT_TRUE(MergeWorkloads(&a, b).ok());
  EXPECT_EQ(a.size(), na + b.size());
  // Mismatched widths are rejected.
  RegionWorkload wrong;
  wrong.features = FeatureMatrix(6);
  EXPECT_FALSE(MergeWorkloads(&a, wrong).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineLawsTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace surf
