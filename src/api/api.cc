#include "api/api.h"

namespace surf {

namespace {

std::string CompilerId() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

std::string CxxStandard() {
#if __cplusplus >= 202302L
  return "c++23";
#elif __cplusplus >= 202002L
  return "c++20";
#elif __cplusplus >= 201703L
  return "c++17";
#else
  return "pre-c++17";
#endif
}

}  // namespace

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.library_version = kLibraryVersion;
  info.compiler = CompilerId();
  info.cxx_standard = CxxStandard();
  return info;
}

std::string VersionString() {
  const BuildInfo info = GetBuildInfo();
  return "surf " + info.library_version + " (api v" +
         std::to_string(info.api_version) + ", min v" +
         std::to_string(info.api_min_version) + "; " + info.compiler + ", " +
         info.cxx_standard + ")";
}

}  // namespace surf
