// Figure 1: final GSO particle positions in the 2-dim region solution
// space (center x1, half-length l1) over a d=1 density dataset, with the
// fraction of particles that converged to constraint-satisfying regions
// (the paper reports 84 % at y_R = 1080).
//
// Emits an ASCII density plot of the final particle positions plus an
// optional CSV (--csv) with one row per particle for re-plotting.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const double threshold = flags.GetDouble("threshold", 1080.0);

  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.gt_target_count = 2400;
  spec.seed = 4;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  SurfOptions options;
  options.workload.num_queries = 4000;
  options.finder.gso.num_glowworms = 200;
  options.finder.gso.max_iterations = 150;
  options.validate_results = true;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0}), options);
  if (!surf.ok()) {
    std::fprintf(stderr, "%s\n", surf.status().ToString().c_str());
    return 1;
  }
  const FindResult result =
      surf->FindRegions(threshold, ThresholdDirection::kAbove);

  // ASCII scatter of the final particles over (x1, l1).
  const int W = 64, H = 20;
  std::vector<std::string> canvas(H, std::string(W, '.'));
  const RegionSolutionSpace& space = surf->space();
  for (size_t i = 0; i < result.gso.particles.size(); ++i) {
    const Region& p = result.gso.particles[i];
    const int cx = std::min(
        W - 1, static_cast<int>(p.center(0) * W));
    const double l_frac = (p.half_length(0) - space.min_half_length) /
                          (space.max_half_length - space.min_half_length);
    const int cy =
        std::min(H - 1, std::max(0, static_cast<int>((1.0 - l_frac) * H)));
    canvas[static_cast<size_t>(cy)][static_cast<size_t>(cx)] =
        result.gso.valid[i] ? 'x' : 'o';
  }
  std::printf("Figure 1 — final particle positions (x = valid region, "
              "o = undefined objective); y_R = %.0f\n\n",
              threshold);
  std::printf("  l1 (high)\n");
  for (const auto& line : canvas) std::printf("  |%s|\n", line.c_str());
  std::printf("  l1 (low)    x1: 0 %*s 1\n\n", W - 8, "");

  std::printf("ground-truth region centers:");
  for (const auto& gt : ds.gt_regions) {
    std::printf(" %.2f", gt.center(0));
  }
  std::printf("\nconverged-to-valid fraction: %.1f%% (paper: 84%%)\n",
              100.0 * result.gso.ValidFraction());
  std::printf("true-compliance of reported regions: %.0f%%\n",
              100.0 * result.report.true_compliance);

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    CsvWriter csv({"x1", "l1", "fitness", "valid"});
    for (size_t i = 0; i < result.gso.particles.size(); ++i) {
      const Region& p = result.gso.particles[i];
      csv.AddRow({p.center(0), p.half_length(0), result.gso.fitness[i],
                  result.gso.valid[i] ? 1.0 : 0.0});
    }
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("particles written to %s\n", csv_path.c_str());
  }
  return 0;
}
