#include "dist/cluster_evaluator.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "dist/wire.h"
#include "net/json_codec.h"
#include "util/failpoint.h"
#include "util/json.h"

namespace surf {
namespace dist {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

ClusterEvaluator::ClusterEvaluator(WorkerPool* pool, Statistic stat,
                                   Options options)
    : pool_(pool), stat_(std::move(stat)), options_(std::move(options)) {
  num_shards_ = options_.num_shards != 0 ? options_.num_shards
                                         : std::max<size_t>(1, pool_->size());
  // Same partition derivation as MakeEvaluator's sharded branch: range-
  // partition on the first box dimension, materialize only the touched
  // columns. Workers construct their ShardedDataset from exactly this
  // spec, so shard boundaries — and therefore every partial — match the
  // single-node shards=N evaluator bit for bit.
  order_by_ = static_cast<int>(stat_.region_cols.front());
  columns_ = stat_.region_cols;
  if (stat_.needs_value_column()) {
    columns_.push_back(static_cast<size_t>(stat_.value_col));
  }
}

std::string ClusterEvaluator::degraded_reason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return degraded_reason_;
}

void ClusterEvaluator::MarkDegraded(const std::string& reason) const {
  {
    std::lock_guard<std::mutex> lock(reason_mu_);
    if (degraded_reason_.empty()) degraded_reason_ = reason;
  }
  degraded_.store(true, std::memory_order_release);
}

double ClusterEvaluator::EvaluateImpl(const Region& region,
                                      const CancelToken& cancel) const {
  const std::vector<double> labels =
      EvaluateBatchImpl(std::vector<Region>{region}, cancel);
  return labels.empty() ? kNaN : labels[0];
}

Status ClusterEvaluator::EvaluateGroup(
    const std::vector<size_t>& shards, const std::vector<Region>& regions,
    size_t first_worker, const CancelToken& cancel,
    std::vector<std::vector<StatisticAccumulator>>* partials) const {
  ShardEvaluateRequest request;
  request.dataset = options_.dataset;
  request.has_fingerprint = options_.fingerprint != 0;
  request.fingerprint = options_.fingerprint;
  request.statistic = stat_;
  request.num_shards = num_shards_;
  request.order_by = order_by_;
  request.columns = columns_;
  request.shards = shards;
  request.queries = regions;
  request.deadline_seconds = options_.rpc_timeout_seconds;
  const std::string body = WriteJson(ShardEvaluateRequestToJson(request));

  size_t attempt = 0;
  size_t current = first_worker;
  const Status final_status = RunWithRetry(
      options_.retry,
      [&]() -> Status {
        if (attempt > 0) {
          // Re-home: the previous worker failed (and was marked
          // unhealthy by the pool on transport faults) — move the whole
          // group to the next healthy worker in pool order, giving
          // downed members one /healthz chance when none are left.
          pool_->RecordRetry();
          std::vector<size_t> healthy = pool_->HealthyWorkers();
          if (healthy.empty()) {
            pool_->ProbeUnhealthy(cancel);
            healthy = pool_->HealthyWorkers();
          }
          if (healthy.empty()) {
            return Status::Unavailable(
                "no healthy workers left for shard group");
          }
          size_t pick = healthy.front();
          for (size_t h : healthy) {
            if (h > current) {
              pick = h;
              break;
            }
          }
          current = pick;
        }
        ++attempt;
        // The injection point of the dist.shard_rpc failpoint: a fired
        // hit fails this attempt exactly like a transport fault, so the
        // chaos suite exercises the re-home path without real sockets
        // going down.
        if (Status injected = MaybeFailpoint("dist.shard_rpc");
            !injected.ok()) {
          return injected;
        }
        auto reply = pool_->Post(current, "/v1/shards:evaluate", body,
                                 cancel);
        if (!reply.ok()) return reply.status();
        auto doc = ParseJson(*reply);
        if (!doc.ok()) {
          return Status::Internal("unparseable worker response: " +
                                  doc.status().message());
        }
        auto response = ShardEvaluateResponseFromJson(*doc, stat_);
        if (!response.ok()) {
          return Status::Internal("bad worker response: " +
                                  response.status().message());
        }
        if (response->partials.size() != regions.size()) {
          return Status::Internal("worker answered wrong query count");
        }
        for (const auto& per_query : response->partials) {
          if (per_query.size() != shards.size()) {
            return Status::Internal("worker answered wrong shard count");
          }
        }
        *partials = std::move(response->partials);
        return Status::OK();
      },
      cancel);

  if (final_status.ok() && current != first_worker) {
    MarkDegraded("shard group [" + std::to_string(shards.front()) + ".." +
                 std::to_string(shards.back()) + "] re-homed from " +
                 pool_->endpoint(first_worker) + " to " +
                 pool_->endpoint(current));
  }
  return final_status;
}

std::vector<double> ClusterEvaluator::EvaluateBatchImpl(
    const std::vector<Region>& regions, const CancelToken& cancel) const {
  if (regions.empty() || cancel.cancelled()) return {};

  pool_->ProbeUnhealthy(cancel);
  const std::vector<size_t> healthy = pool_->HealthyWorkers();
  std::vector<double> labels(regions.size(), kNaN);
  if (healthy.empty()) {
    MarkDegraded("no healthy workers configured or reachable");
    return labels;
  }

  // Contiguous ascending shard groups, one per healthy worker (fewer
  // when there are more workers than shards). Contiguity matters for
  // the gather below: concatenating the groups in group order walks the
  // shards in ascending index.
  const size_t num_groups = std::min(healthy.size(), num_shards_);
  const size_t base = num_shards_ / num_groups;
  const size_t rem = num_shards_ % num_groups;
  struct Group {
    std::vector<size_t> shards;
    size_t worker = 0;
    Status status = Status::OK();
    std::vector<std::vector<StatisticAccumulator>> partials;
  };
  std::vector<Group> groups(num_groups);
  size_t next_shard = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t group_size = base + (g < rem ? 1 : 0);
    groups[g].shards.reserve(group_size);
    for (size_t k = 0; k < group_size; ++k) {
      groups[g].shards.push_back(next_shard++);
    }
    groups[g].worker = healthy[g];
  }

  // Scatter: one thread per group, so every worker's RPC (and any
  // re-home retries) overlaps with the others. Each thread writes only
  // its own Group slot; the join below is the only synchronization
  // needed.
  std::vector<std::thread> threads;
  threads.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    threads.emplace_back([this, &groups, &regions, &cancel, g] {
      Group& group = groups[g];
      group.status = EvaluateGroup(group.shards, regions, group.worker,
                                   cancel, &group.partials);
    });
  }
  for (std::thread& t : threads) t.join();

  // A fired token yields the empty prefix — no label was completed from
  // the caller's perspective (partial gathers are discarded).
  if (cancel.cancelled()) return {};

  for (const Group& group : groups) {
    if (!group.status.ok()) {
      MarkDegraded("shard group [" + std::to_string(group.shards.front()) +
                   ".." + std::to_string(group.shards.back()) +
                   "] failed: " + group.status.message());
      return labels;  // all NaN — the statistic could not be computed
    }
  }

  // Gather: per query, replay the in-process fold — seed with shard 0's
  // partial (a bitwise copy), then Merge shards 1..N-1 in ascending
  // order. Group contiguity + within-group ascending order make the
  // concatenated walk exactly 0, 1, ..., N-1.
  for (size_t q = 0; q < regions.size(); ++q) {
    StatisticAccumulator result = groups[0].partials[q][0];
    for (size_t g = 0; g < num_groups; ++g) {
      for (size_t s = (g == 0 ? 1 : 0); s < groups[g].shards.size(); ++s) {
        result.Merge(groups[g].partials[q][s]);
      }
    }
    labels[q] = result.Finalize();
  }
  return labels;
}

}  // namespace dist
}  // namespace surf
