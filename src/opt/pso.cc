#include "opt/pso.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace surf {

PsoResult ParticleSwarmOptimizer::Optimize(const FitnessFn& fitness,
                                           const RegionSolutionSpace& space,
                                           CancelToken cancel) const {
  assert(fitness != nullptr);
  return Optimize(ToBatchFitness(fitness), space, std::move(cancel));
}

PsoResult ParticleSwarmOptimizer::Optimize(const BatchFitnessFn& fitness,
                                           const RegionSolutionSpace& space,
                                           CancelToken cancel) const {
  assert(fitness != nullptr);
  const size_t L = std::max<size_t>(2, params_.num_particles);
  const size_t flat_d = space.flat_dims();
  const double vmax = params_.max_velocity_frac * space.FlatDiagonal();

  Rng rng(params_.seed);
  std::vector<std::vector<double>> pos(L), vel(L), pbest(L);
  std::vector<double> pbest_fit(L, -std::numeric_limits<double>::infinity());
  std::vector<bool> pbest_valid(L, false);

  PsoResult result;
  double gbest_fit = -std::numeric_limits<double>::infinity();
  std::vector<double> gbest;

  for (size_t i = 0; i < L; ++i) {
    pos[i] = space.Sample(&rng).ToFlat();
    vel[i].assign(flat_d, 0.0);
    pbest[i] = pos[i];
  }

  std::vector<Region> regions;
  regions.reserve(L);
  for (size_t t = 0; t < params_.max_iterations; ++t) {
    if (cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    // Clamp every particle, then score the whole swarm in one call.
    regions.clear();
    for (size_t i = 0; i < L; ++i) {
      Region region = Region::FromFlat(pos[i]);
      space.Clamp(&region);
      pos[i] = region.ToFlat();
      regions.push_back(std::move(region));
    }
    const std::vector<FitnessValue> evals = fitness(regions);
    result.objective_evaluations += L;
    for (size_t i = 0; i < L; ++i) {
      const FitnessValue& fv = evals[i];
      if (fv.valid && fv.value > pbest_fit[i]) {
        pbest_fit[i] = fv.value;
        pbest[i] = pos[i];
        pbest_valid[i] = true;
        if (fv.value > gbest_fit) {
          gbest_fit = fv.value;
          gbest = pos[i];
          result.found_valid = true;
        }
      }
    }
    if (gbest.empty()) {
      // No valid particle yet: re-seed a fraction of the swarm.
      for (size_t i = 0; i < L / 4; ++i) {
        pos[rng.UniformInt(L)] = space.Sample(&rng).ToFlat();
      }
      result.iterations_run = t + 1;
      continue;
    }
    for (size_t i = 0; i < L; ++i) {
      for (size_t k = 0; k < flat_d; ++k) {
        const double r1 = rng.Uniform(), r2 = rng.Uniform();
        vel[i][k] = params_.inertia * vel[i][k] +
                    params_.cognitive * r1 * (pbest[i][k] - pos[i][k]) +
                    params_.social * r2 * (gbest[k] - pos[i][k]);
        vel[i][k] = std::clamp(vel[i][k], -vmax, vmax);
        pos[i][k] += vel[i][k];
      }
    }
    result.iterations_run = t + 1;
  }

  if (result.found_valid) {
    result.best = Region::FromFlat(gbest);
    result.best_fitness = gbest_fit;
  }
  return result;
}

}  // namespace surf
