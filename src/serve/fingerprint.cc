#include "serve/fingerprint.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace surf {

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

void Fingerprinter::AddByte(unsigned char b) {
  state_ ^= b;
  state_ *= kFnvPrime;
}

void Fingerprinter::Add(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    AddByte(static_cast<unsigned char>(v & 0xff));
    v >>= 8;
  }
}

void Fingerprinter::Add(double v) { Add(std::bit_cast<uint64_t>(v)); }

void Fingerprinter::Add(const std::string& s) {
  Add(static_cast<uint64_t>(s.size()));
  for (char c : s) AddByte(static_cast<unsigned char>(c));
}

uint64_t FingerprintDataset(const Dataset& data) {
  Fingerprinter fp;
  fp.Add(static_cast<uint64_t>(data.num_rows()));
  fp.Add(static_cast<uint64_t>(data.num_cols()));
  for (const auto& name : data.column_names()) fp.Add(name);
  // Per-column full-pass aggregates (sum, min, max) plus a stride sample
  // of up to 64 cells: any single-cell edit moves the sum, and the
  // samples anchor positions. O(N·d) — MiningService computes this once
  // at registration, not per request.
  constexpr size_t kSamplesPerColumn = 64;
  const size_t rows = data.num_rows();
  const size_t stride = rows <= kSamplesPerColumn
                            ? 1
                            : (rows + kSamplesPerColumn - 1) / kSamplesPerColumn;
  for (size_t c = 0; c < data.num_cols(); ++c) {
    const std::vector<double>& column = data.column(c);
    double sum = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double v : column) {
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    fp.Add(sum);
    fp.Add(lo);
    fp.Add(hi);
    for (size_t r = 0; r < rows; r += stride) fp.Add(column[r]);
    if (rows > 0) fp.Add(column[rows - 1]);
  }
  return fp.digest();
}

uint64_t FingerprintStatistic(const Statistic& statistic) {
  Fingerprinter fp;
  fp.Add(static_cast<uint64_t>(statistic.kind));
  fp.Add(static_cast<uint64_t>(statistic.region_cols.size()));
  for (size_t c : statistic.region_cols) fp.Add(static_cast<uint64_t>(c));
  fp.Add(static_cast<uint64_t>(statistic.value_col + 1));
  fp.Add(statistic.label_value);
  return fp.digest();
}

uint64_t FingerprintWorkloadParams(const WorkloadParams& params) {
  Fingerprinter fp;
  fp.Add(static_cast<uint64_t>(params.num_queries));
  fp.Add(params.min_length_frac);
  fp.Add(params.max_length_frac);
  fp.Add(static_cast<uint64_t>(params.drop_undefined ? 1 : 0));
  fp.Add(params.seed);
  return fp.digest();
}

uint64_t FingerprintTrainOptions(const SurrogateTrainOptions& options) {
  Fingerprinter fp;
  fp.Add(options.gbrt.CanonicalString());
  fp.Add(static_cast<uint64_t>(options.hypertune ? 1 : 0));
  if (options.hypertune) {
    // The grid defines the search space, so it is part of the recipe.
    for (double v : options.grid.learning_rates) fp.Add(v);
    for (size_t v : options.grid.max_depths) fp.Add(static_cast<uint64_t>(v));
    for (size_t v : options.grid.n_estimators) {
      fp.Add(static_cast<uint64_t>(v));
    }
    for (double v : options.grid.reg_lambdas) fp.Add(v);
    fp.Add(static_cast<uint64_t>(options.cv_folds));
  }
  fp.Add(options.test_fraction);
  fp.Add(options.seed);
  return fp.digest();
}

uint64_t SurrogateKey::Hash() const {
  Fingerprinter fp;
  fp.Add(dataset);
  fp.Add(statistic);
  fp.Add(workload);
  fp.Add(model);
  return fp.digest();
}

std::string SurrogateKey::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "d=%016llx s=%016llx w=%016llx m=%016llx",
                static_cast<unsigned long long>(dataset),
                static_cast<unsigned long long>(statistic),
                static_cast<unsigned long long>(workload),
                static_cast<unsigned long long>(model));
  return buf;
}

SurrogateKey MakeSurrogateKey(const Dataset& data, const Statistic& statistic,
                              const WorkloadParams& workload,
                              const SurrogateTrainOptions& options) {
  SurrogateKey key;
  key.dataset = FingerprintDataset(data);
  key.statistic = FingerprintStatistic(statistic);
  key.workload = FingerprintWorkloadParams(workload);
  key.model = FingerprintTrainOptions(options);
  return key;
}

}  // namespace surf
