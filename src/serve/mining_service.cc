#include "serve/mining_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "api/api_v2.h"
#include "dist/cluster_evaluator.h"
#include "dist/worker_pool.h"
#include "ml/grid_search.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/stopwatch.h"

namespace surf {

MiningService::MiningService(Options options)
    : options_(options),
      pool_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : options.num_threads),
      scheduler_(&pool_),
      cache_(options.cache),
      traces_(options.trace_ring_capacity) {
  if (!options_.cluster_workers.empty()) {
    cluster_pool_ =
        std::make_unique<dist::WorkerPool>(options_.cluster_workers);
  }
}

MiningService::~MiningService() {
  // Submitted jobs reference the cache and dataset registry; those
  // members are destroyed before pool_, so the queue must drain first —
  // and abandoned jobs are cancelled so the drain takes one iteration
  // per running search, not their full remaining runtime.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const auto& weak : live_jobs_) {
      if (auto job = weak.lock()) job->Cancel();
    }
  }
  pool_.Wait();
}

Status MiningService::RegisterDataset(const std::string& name, Dataset data) {
  if (name.empty()) return Status::InvalidArgument("empty dataset name");
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty dataset '" + name + "'");
  }
  NamedDataset named;
  named.fingerprint = FingerprintDataset(data);
  named.data = std::make_unique<Dataset>(std::move(data));
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto [it, inserted] = datasets_.emplace(name, std::move(named));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + name + "' already registered");
  }
  return Status::OK();
}

Status MiningService::RegisterCsvDataset(const std::string& name,
                                         const std::string& path) {
  auto data = Dataset::LoadCsv(path);
  if (!data.ok()) return data.status();
  return RegisterDataset(name, std::move(data).value());
}

const Dataset* MiningService::dataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.data.get();
}

uint64_t MiningService::dataset_fingerprint(const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? 0 : it->second.fingerprint;
}

std::vector<std::string> MiningService::dataset_names() const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, named] : datasets_) names.push_back(name);
  return names;
}

StatusOr<const MiningService::NamedDataset*> MiningService::ResolveRequest(
    const MineRequest& request) const {
  const NamedDataset* named = nullptr;
  {
    std::lock_guard<std::mutex> lock(datasets_mu_);
    auto it = datasets_.find(request.dataset);
    if (it != datasets_.end()) named = &it->second;
  }
  if (named == nullptr) {
    return Status::NotFound("dataset '" + request.dataset +
                            "' not registered");
  }
  const Dataset* data = named->data.get();
  if (request.statistic.region_cols.empty()) {
    return Status::InvalidArgument("statistic has no region columns");
  }
  for (size_t c : request.statistic.region_cols) {
    if (c >= data->num_cols()) {
      return Status::InvalidArgument("region column out of range");
    }
  }
  if (request.statistic.needs_value_column() &&
      (request.statistic.value_col < 0 ||
       static_cast<size_t>(request.statistic.value_col) >=
           data->num_cols())) {
    return Status::InvalidArgument("value column out of range");
  }
  return named;
}

StatusOr<SurrogateKey> MiningService::KeyFor(
    const MineRequest& request) const {
  auto named = ResolveRequest(request);
  if (!named.ok()) return named.status();
  SurrogateKey key;
  key.dataset = (*named)->fingerprint;  // cached at registration
  key.statistic = FingerprintStatistic(request.statistic);
  key.workload = FingerprintWorkloadParams(request.workload);
  key.model = FingerprintTrainOptions(request.surrogate);
  return key;
}

StatusOr<TrainedSurrogate> MiningService::TrainEntry(
    const MineRequest& request, const Dataset* data, CancelToken cancel,
    TraceContext* trace) {
  SURF_FAILPOINT("serve.train");
  std::shared_ptr<const RegionEvaluator> evaluator;
  if (request.cluster) {
    // Cluster mode swaps only the exact back-end: labelling and
    // validation scatter to the remote workers, everything downstream
    // (training, cache, search) is byte-for-byte the in-process path.
    if (cluster_pool_ == nullptr) {
      return Status::FailedPrecondition(
          "cluster execution requested but no workers configured");
    }
    dist::ClusterEvaluator::Options cluster_options;
    cluster_options.dataset = request.dataset;
    cluster_options.fingerprint = dataset_fingerprint(request.dataset);
    cluster_options.num_shards = request.shards >= 2 ? request.shards : 0;
    evaluator = std::make_shared<const dist::ClusterEvaluator>(
        cluster_pool_.get(), request.statistic, std::move(cluster_options));
  } else {
    evaluator = MakeEvaluator(request.backend, data, request.statistic,
                              request.shards);
  }
  const Bounds domain = data->ComputeBounds(request.statistic.region_cols);
  const RegionWorkload workload =
      GenerateWorkload(*evaluator, domain, request.workload, cancel, trace);
  if (cancel.cancelled()) return cancel.ToStatus();
  if (workload.size() == 0) {
    return Status::FailedPrecondition(
        "workload generation produced no defined statistics");
  }

  // No shared-pool parallelism here: TrainEntry may itself be running on a
  // pool worker (MineBatch), and ThreadPool::Wait drains the *whole* pool
  // — nesting would deadlock. GBRT-internal threading (params.num_threads)
  // is independent of the service pool and stays available.
  // Surrogate::Train records its own kTraining stage span, so the
  // service adds none here (nesting two would double-count the stage).
  auto surrogate =
      Surrogate::Train(workload, request.surrogate, nullptr, cancel, trace);
  if (!surrogate.ok()) return surrogate.status();

  TrainedSurrogate trained;
  trained.surrogate = std::move(surrogate).value();
  trained.evaluator = std::move(evaluator);

  // The KDE prior is always fitted with the entry (cheap — a bounded
  // subsample) so every later request can opt into Eq. 8 guidance
  // regardless of what the entry-creating request asked for.
  trained.kde = [&] {
    TraceSpan span(trace, "kde_fit", TraceStage::kTraining);
    return std::make_shared<const Kde>(FitDataKde(
        *data, request.statistic.region_cols, options_.kde_max_samples,
        request.workload.seed + 1, cancel));
  }();
  if (cancel.cancelled()) return cancel.ToStatus();

  if (options_.provenance_cv_folds >= 2) {
    TraceSpan span(trace, "cross_validation", TraceStage::kTraining);
    trained.cv_rmse = CrossValidatedRmse(
        workload.features, workload.targets,
        trained.surrogate.metrics().chosen_params,
        options_.provenance_cv_folds, request.surrogate.seed);
  }
  return trained;
}

StatusOr<std::shared_ptr<CachedSurrogate>> MiningService::EntryFor(
    const MineRequest& request, CancelToken cancel, bool* was_hit,
    TraceContext* trace) {
  auto key = KeyFor(request);
  if (!key.ok()) return key.status();
  const Dataset* data = dataset(request.dataset);
  return cache_.GetOrTrain(
      *key,
      [&]() -> StatusOr<TrainedSurrogate> {
        // The single-flight leader absorbs transient training failures
        // under the configured retry policy (off by default); waiters
        // keep waiting on the in-flight entry across retries.
        StatusOr<TrainedSurrogate> trained =
            Status::Internal("training not attempted");
        const Status status = RunWithRetry(
            options_.training_retry,
            [&] {
              trained = TrainEntry(request, data, cancel, trace);
              return trained.status();
            },
            cancel);
        if (!status.ok()) return status;
        return trained;
      },
      was_hit, cancel);
}

std::shared_ptr<MineJob> MiningService::MakeJob(const MineRequest& request,
                                                double deadline_seconds) {
  return std::shared_ptr<MineJob>(new MineJob(request, deadline_seconds));
}

void MiningService::RunJob(const std::shared_ptr<MineJob>& job) {
  MineResponse response;
  TraceContext* trace = job->trace_.get();
  {
    // The root span must close on every return path before the trace is
    // published, so the body lives in ExecuteJob.
    TraceSpan root(trace, "request");
    ExecuteJob(job, trace, &response);
  }
  if (job->trace_ != nullptr) {
    response.trace = job->trace_;
    traces_.Add(job->trace_);
  }
  job->Complete(std::move(response));
}

void MiningService::ExecuteJob(const std::shared_ptr<MineJob>& job,
                               TraceContext* trace, MineResponse* out) {
  Stopwatch timer;
  const MineRequest& request = job->request();
  const CancelToken cancel = job->cancel_token();
  MineResponse& response = *out;

  // The shared v2 validation path (also rejects record_evaluations
  // without validate — satellite of the v2 redesign).
  if (Status valid = v2::ValidateLegacy(request); !valid.ok()) {
    response.status = std::move(valid);
    return;
  }

  job->SetPhase(MineJob::Phase::kTraining);
  bool hit = false;
  auto entry = EntryFor(request, cancel, &hit, trace);
  if (!entry.ok()) {
    response.status = entry.status();
    return;
  }
  response.cache_hit = hit;
  const SurrogateSnapshot snap = (*entry)->Snapshot();
  response.provenance = snap.provenance;
  const size_t dims = snap.surrogate->dims();
  job->SetPhase(MineJob::Phase::kSearching);

  if (request.mode == MineRequest::Mode::kTopK) {
    TopKConfig config = request.topk;
    // Same §V-G swarm-size floor as the threshold path, gated by the
    // same opt-out (request.finder.auto_scale_gso).
    if (request.finder.auto_scale_gso) {
      config.gso.num_glowworms =
          std::max(config.gso.num_glowworms,
                   GsoParams::PaperScaled(dims).num_glowworms);
    }
    TopKFinder finder(snap.surrogate->AsStatisticFn(), snap.space, config);
    finder.SetBatchEstimate(snap.surrogate->AsBatchStatisticFn());
    if (request.use_kde && snap.kde != nullptr) finder.SetKde(snap.kde.get());
    finder.SetCancelToken(cancel);
    finder.SetProgress(&job->search_progress_);
    finder.SetTrace(trace);
    response.topk = finder.Find();
    if (response.topk.cancelled) {
      response.status = Status::Cancelled("mining cancelled mid-search");
    }
  } else {
    FinderConfig config = request.finder;
    if (config.auto_scale_gso) {
      config.gso.num_glowworms =
          std::max(config.gso.num_glowworms,
                   GsoParams::PaperScaled(dims).num_glowworms);
    }
    SurfFinder finder(snap.surrogate->AsStatisticFn(), snap.space, config);
    finder.SetBatchEstimate(snap.surrogate->AsBatchStatisticFn());
    if (request.use_kde && snap.kde != nullptr) finder.SetKde(snap.kde.get());
    if (request.validate && snap.evaluator != nullptr) {
      finder.SetValidator(snap.evaluator.get());
    }
    finder.SetCancelToken(cancel);
    finder.SetProgress(&job->search_progress_);
    finder.SetTrace(trace);
    response.result = finder.Find(request.threshold, request.direction);
    if (response.result.report.cancelled) {
      // Partial results and provenance ride along with the Cancelled
      // status; feedback recording is skipped for cancelled searches.
      response.status = Status::Cancelled("mining cancelled mid-search");
    } else if (request.record_evaluations && request.validate) {
      RegionWorkload fresh;
      fresh.space = snap.space;
      fresh.statistic = snap.surrogate->statistic();
      fresh.features = FeatureMatrix(2 * dims);
      for (const auto& found : response.result.regions) {
        if (std::isnan(found.true_value)) continue;
        fresh.features.AddRow(RegionFeatures(found.region));
        fresh.targets.push_back(found.true_value);
      }
      if (fresh.size() > 0) {
        // Best-effort: a failed warm start must not fail the mining
        // response that triggered it.
        (void)(*entry)->Append(fresh);
        response.provenance = (*entry)->provenance();
      }
    }
  }
  // Cluster-mode degradation (a shard group re-homed after a worker
  // failure, or a batch abandoned) is declared pedigree: overlay it on
  // whatever provenance the paths above settled on.
  if (const auto* cluster = dynamic_cast<const dist::ClusterEvaluator*>(
          snap.evaluator.get());
      cluster != nullptr && cluster->degraded()) {
    response.provenance.degraded = true;
    response.provenance.degraded_reason = cluster->degraded_reason();
  }
  response.total_seconds = timer.ElapsedSeconds();
}

MineResponse MiningService::Mine(const MineRequest& request) {
  // Blocking form: the same job core, run inline on the calling thread
  // (never re-queued onto the pool — MineBatch workers call Mine, and a
  // worker blocking on a job queued behind itself would deadlock).
  auto job = MakeJob(request, /*deadline_seconds=*/0.0);
  RunJob(job);
  return job->TakeResponse();
}

v2::MineResponse MiningService::Mine(const v2::MineRequest& request) {
  auto job = MakeJob(v2::ToLegacy(request),
                     request.execution.deadline_seconds);
  RunJob(job);
  return v2::FromLegacyResponse(job->TakeResponse());
}

std::shared_ptr<MineJob> MiningService::Submit(const MineRequest& request) {
  return Schedule(MakeJob(request, /*deadline_seconds=*/0.0));
}

std::shared_ptr<MineJob> MiningService::Submit(const v2::MineRequest& request) {
  return Schedule(
      MakeJob(v2::ToLegacy(request), request.execution.deadline_seconds));
}

std::shared_ptr<MineJob> MiningService::Schedule(
    std::shared_ptr<MineJob> job) {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    // Prune handles whose jobs finished and were dropped everywhere.
    live_jobs_.erase(
        std::remove_if(live_jobs_.begin(), live_jobs_.end(),
                       [](const std::weak_ptr<MineJob>& weak) {
                         return weak.expired();
                       }),
        live_jobs_.end());
    live_jobs_.push_back(job);
  }
  pool_.Submit([this, job] { RunJob(job); });
  return job;
}

std::vector<MineResponse> MiningService::MineBatch(
    const std::vector<MineRequest>& requests) {
  std::vector<std::function<MineResponse()>> jobs;
  jobs.reserve(requests.size());
  for (const MineRequest& request : requests) {
    jobs.push_back([this, request] { return Mine(request); });
  }
  return scheduler_.RunAll<MineResponse>(std::move(jobs));
}

std::vector<v2::MineResponse> MiningService::MineBatch(
    const std::vector<v2::MineRequest>& requests) {
  std::vector<std::shared_ptr<MineJob>> jobs;
  jobs.reserve(requests.size());
  for (const v2::MineRequest& request : requests) {
    jobs.push_back(Submit(request));
  }
  std::vector<v2::MineResponse> responses;
  responses.reserve(jobs.size());
  for (auto& job : jobs) {
    job->Wait();
    responses.push_back(v2::FromLegacyResponse(job->TakeResponse()));
  }
  return responses;
}

Status MiningService::AppendEvaluations(const MineRequest& request,
                                        const RegionWorkload& fresh) {
  // Same shared validation the mining entry points run: this path can
  // train a cache entry too, so an unvalidated request (bad shard
  // count, empty workload recipe, ...) must be rejected here as well.
  if (Status valid = v2::ValidateLegacy(request); !valid.ok()) return valid;
  bool hit = false;
  auto entry = EntryFor(request, CancelToken(), &hit, /*trace=*/nullptr);
  if (!entry.ok()) return entry.status();
  return (*entry)->Append(fresh);
}

}  // namespace surf
