#ifndef SURF_ACCEL_KERNELS_H_
#define SURF_ACCEL_KERNELS_H_

/// \file
/// \brief The per-backend kernel table and the kernel contracts.
///
/// One `AccelOps` table exists per backend (generic / AVX2 / AVX-512);
/// `accel.h` owns selection. Every kernel is specified to produce
/// bitwise-identical output on every backend:
///
///  - `hist_u8_unit` accumulates in plain ascending row order. Every
///    backend shares the one scalar routine compiled in the generic TU:
///    measurement killed the vector variants (an AVX-512 lane-private
///    gather-add-scatter scheme ran 2–4× SLOWER than the scalar loop —
///    8-byte gathers/scatters cost ~1 element per cycle and the
///    scatter→gather dependence on repeated bins serializes through
///    memory; see docs/perf.md). Sharing one compiled routine makes
///    bit-identity trivial, NaN payloads included. Future vector
///    attempts must keep ascending-row accumulation order per bin — and
///    beware that a two-NaN add is not bitwise commutative (x86
///    propagates the FIRST source operand), so any reordering scheme
///    must also pin operand order.
///  - `tree_predict` is exact per row (compares and selects only; the
///    final update is an unfused multiply-then-add). All backends share
///    the generic 8-row-interleaved scalar walk: gather-based vector
///    walks measured 2.6–5× slower (traversal is a latency-bound
///    pointer chase; four dependent gathers per level lose to scalar L1
///    loads overlapped across eight independent rows).
///  - `mask_range_and` / `mask_count` are integer-valued and therefore
///    order-independent — these ARE profitably vectorized (dense
///    streaming compares: measured ~2.8× / ~6.8× on AVX-512).

#include <cstddef>
#include <cstdint>

namespace surf {

/// Packed 16-byte tree node, layout-compatible with
/// `RegressionTree::Node` (asserted in ml/tree.cc). Internal node: `tv`
/// is the split threshold (go to `index+1` if x[feature] <= tv, else to
/// `right`). Leaf: `tv` is NaN and `right` self-loops.
struct AccelTreeNode {
  double tv;
  int32_t right;
  uint32_t feature;
};
static_assert(sizeof(AccelTreeNode) == 16, "packed-node layout");

/// \brief Function-pointer table of the vectorized hot-loop kernels.
///
/// Modeled on the classic per-backend dispatch pattern: each backend
/// fills one table; a runtime selector publishes the active one.
struct AccelOps {
  /// Backend this table implements (value of `AccelBackend`; an int to
  /// keep this header free of accel.h).
  int backend;
  /// Canonical backend name ("generic", "avx2", "avx512").
  const char* name;

  /// Unit-hessian uint8-binned histogram accumulation:
  ///   for each row i in [0, n): b = bins[row(i)]; g[b] += grad[i]; ++cnt[b]
  /// where row(i) = i when `row_ids == nullptr` (the sequential
  /// identity-root fast path) and row_ids[i] otherwise, in the canonical
  /// order described above. `bins` values must be < num_bins <= 256.
  /// `g` and `cnt` are accumulated into (not cleared).
  void (*hist_u8_unit)(const uint8_t* bins, const uint32_t* row_ids,
                       const double* grad, size_t n, uint32_t num_bins,
                       double* g, uint32_t* cnt);

  /// Blocked batch tree traversal: adds `scale * leaf(r)` to
  /// `out[r - begin]` for each row r in [begin, end), reading features
  /// from column-major storage (`cols[j][r]`). `levels` is the number of
  /// interleaved branch-free levels to run (depth-1; 0 means walk each
  /// row with the early-exit scalar loop). Leaves self-loop via the
  /// always-false NaN compare, exactly as in the reference walk.
  void (*tree_predict)(const AccelTreeNode* nodes, const double* values,
                       size_t levels, const double* const* cols,
                       size_t begin, size_t end, double scale, double* out);

  /// Branchless membership mask:
  ///   mask[r] &= !(col[r] < lo) & !(col[r] > hi)   for r in [0, n)
  /// — the legacy inclusion test, NaN-keeps-the-row included.
  void (*mask_range_and)(const double* col, size_t n, double lo, double hi,
                         uint8_t* mask);

  /// Sum of the (0/1) mask bytes.
  uint64_t (*mask_count)(const uint8_t* mask, size_t n);
};

/// Backend tables. The generic table is always real scalar code
/// (compiled with baseline flags — no wide ISA, no FP contraction). The
/// AVX2/AVX-512 tables contain vector code only when the corresponding
/// `kAccel*Compiled` flag is true; otherwise they alias the generic
/// kernels and must never be selected.
extern const AccelOps kAccelGenericOps;
extern const AccelOps kAccelAvx2Ops;
extern const bool kAccelAvx2Compiled;
extern const AccelOps kAccelAvx512Ops;
extern const bool kAccelAvx512Compiled;

}  // namespace surf

#endif  // SURF_ACCEL_KERNELS_H_
