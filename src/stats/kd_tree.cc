#include "stats/kd_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace surf {

KdTreeEvaluator::KdTreeEvaluator(const Dataset* data, Statistic stat,
                                 size_t leaf_size)
    : data_(data), stat_(std::move(stat)), leaf_size_(std::max<size_t>(1, leaf_size)) {
  assert(data_ != nullptr);
  assert(data_->num_rows() > 0);
  rows_.resize(data_->num_rows());
  std::iota(rows_.begin(), rows_.end(), 0);
  nodes_.reserve(2 * data_->num_rows() / leaf_size_ + 4);
  Build(0, static_cast<uint32_t>(rows_.size()), 0);
}

int32_t KdTreeEvaluator::Build(uint32_t begin, uint32_t end, size_t depth) {
  const size_t d = stat_.dims();
  const int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  // Compute bounding box and aggregates over [begin, end).
  std::vector<double> lo(d, 0.0), hi(d, 0.0);
  double sum = 0.0, sum_sq = 0.0;
  uint32_t matches = 0;
  const std::vector<double>* values =
      stat_.needs_value_column()
          ? &data_->column(static_cast<size_t>(stat_.value_col))
          : nullptr;
  for (uint32_t i = begin; i < end; ++i) {
    const uint32_t r = rows_[i];
    for (size_t j = 0; j < d; ++j) {
      const double v = data_->column(stat_.region_cols[j])[r];
      if (i == begin) {
        lo[j] = hi[j] = v;
      } else {
        lo[j] = std::min(lo[j], v);
        hi[j] = std::max(hi[j], v);
      }
    }
    if (values) {
      const double v = (*values)[r];
      sum += v;
      sum_sq += v * v;
      if (stat_.kind == StatisticKind::kLabelRatio &&
          v == stat_.label_value) {
        ++matches;
      }
    }
  }

  {
    Node& node = nodes_[static_cast<size_t>(idx)];
    node.begin = begin;
    node.end = end;
    node.lo = lo;
    node.hi = hi;
    node.sum = sum;
    node.sum_sq = sum_sq;
    node.matches = matches;
  }

  if (end - begin <= leaf_size_) return idx;

  // Split on the widest dimension at the median.
  size_t split_dim = 0;
  double widest = -1.0;
  for (size_t j = 0; j < d; ++j) {
    const double w = hi[j] - lo[j];
    if (w > widest) {
      widest = w;
      split_dim = j;
    }
  }
  if (widest <= 0.0) return idx;  // all points identical: stay a leaf

  const uint32_t mid = begin + (end - begin) / 2;
  const auto& col = data_->column(stat_.region_cols[split_dim]);
  std::nth_element(rows_.begin() + begin, rows_.begin() + mid,
                   rows_.begin() + end,
                   [&](uint32_t a, uint32_t b) { return col[a] < col[b]; });
  const double split_value = col[rows_[mid]];

  const int32_t left = Build(begin, mid, depth + 1);
  const int32_t right = Build(mid, end, depth + 1);
  Node& node = nodes_[static_cast<size_t>(idx)];
  node.left = left;
  node.right = right;
  node.split_dim = static_cast<uint16_t>(split_dim);
  node.split_value = split_value;
  return idx;
}

void KdTreeEvaluator::ScanRange(uint32_t begin, uint32_t end,
                                const Region& region,
                                StatisticAccumulator* acc) const {
  const size_t d = stat_.dims();
  const std::vector<double>* values =
      stat_.needs_value_column()
          ? &data_->column(static_cast<size_t>(stat_.value_col))
          : nullptr;
  for (uint32_t i = begin; i < end; ++i) {
    const uint32_t r = rows_[i];
    bool inside = true;
    for (size_t j = 0; j < d; ++j) {
      const double v = data_->column(stat_.region_cols[j])[r];
      if (v < region.lo(j) || v > region.hi(j)) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    acc->Add(values ? (*values)[r] : 0.0);
  }
}

void KdTreeEvaluator::Query(int32_t node_idx, const Region& region,
                            StatisticAccumulator* acc) const {
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  const size_t d = stat_.dims();

  // Disjoint / contained tests against the node's bounding box.
  bool disjoint = false;
  bool contained = true;
  for (size_t j = 0; j < d; ++j) {
    if (node.hi[j] < region.lo(j) || node.lo[j] > region.hi(j)) {
      disjoint = true;
      break;
    }
    if (node.lo[j] < region.lo(j) || node.hi[j] > region.hi(j)) {
      contained = false;
    }
  }
  if (disjoint) return;

  // Contained subtrees contribute their pre-aggregated block; the median
  // kind instead descends so the sketch sees each raw value.
  if (contained && stat_.kind != StatisticKind::kMedian) {
    acc->AddBlock(node.end - node.begin, node.sum, node.sum_sq,
                  node.matches);
    return;
  }
  if (node.left < 0) {  // leaf (or raw-value collection over a full node)
    ScanRange(node.begin, node.end, region, acc);
    return;
  }
  Query(node.left, region, acc);
  Query(node.right, region, acc);
}

double KdTreeEvaluator::EvaluateImpl(const Region& region,
                                     const CancelToken& /*cancel*/) const {
  assert(region.dims() == stat_.dims());
  StatisticAccumulator acc(stat_);
  if (!nodes_.empty()) Query(0, region, &acc);
  return acc.Finalize();
}

}  // namespace surf
