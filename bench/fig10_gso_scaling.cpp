// Figure 10: SuRF-GSO mining wall-time vs region dimensionality for
// (left) glowworm counts L ∈ {100..500} at T = 100, and (right) iteration
// budgets T ∈ {100..400} at L = 100.
//
// Paper: no more than ~15 s even at the largest setting, with near-linear
// growth in both parameters — the surrogate's prediction cost dominates.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

namespace {

/// Builds a surrogate once per dimensionality, then times pure mining.
struct PreparedPipeline {
  std::unique_ptr<Surf> surf;
};

double TimeMining(const Surf& surf, const SyntheticDataset& ds,
                  size_t glowworms, size_t iterations) {
  FinderConfig config;
  config.gso = GsoParams::PaperScaled(ds.spec.dims);
  config.gso.num_glowworms = glowworms;
  config.gso.max_iterations = iterations;
  config.gso.convergence_tol_frac = 0.0;  // run the full budget
  SurfFinder finder(surf.surrogate().AsStatisticFn(), surf.space(),
                    config);
  Stopwatch timer;
  finder.Find(bench::ThresholdFor(ds), ThresholdDirection::kAbove);
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t max_dim = static_cast<size_t>(
      flags.GetInt("max-dim", full ? 5 : 3));
  const std::vector<size_t> glowworm_sweep =
      full ? std::vector<size_t>{100, 200, 300, 400, 500}
           : std::vector<size_t>{100, 200, 300};
  const std::vector<size_t> iteration_sweep =
      full ? std::vector<size_t>{100, 200, 300, 400}
           : std::vector<size_t>{100, 200};

  std::printf("Figure 10 — GSO mining time scaling "
              "(%s configuration)\n\n",
              full ? "paper" : "quick");

  CsvWriter csv({"dims2", "glowworms", "iterations", "seconds"});
  for (size_t d = 1; d <= max_dim; ++d) {
    SyntheticSpec spec;
    spec.dims = d;
    spec.num_gt_regions = 1;
    spec.statistic = SyntheticStatistic::kDensity;
    spec.seed = 70 + d;
    const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
    SurfOptions options;
    options.workload.num_queries = 1500 * d + 1500;
    options.validate_results = false;
    auto surf = Surf::Build(&ds.data, bench::StatisticFor(ds), options);
    if (!surf.ok()) continue;

    std::printf("dims 2d = %zu\n", 2 * d);
    TablePrinter left({"L (T=100)", "seconds"});
    for (size_t L : glowworm_sweep) {
      const double secs = TimeMining(*surf, ds, L, 100);
      left.AddRow({std::to_string(L), FormatDouble(secs, 2)});
      csv.AddRow({static_cast<double>(2 * d), static_cast<double>(L),
                  100.0, secs});
    }
    std::printf("%s", left.ToString().c_str());

    TablePrinter right({"T (L=100)", "seconds"});
    for (size_t T : iteration_sweep) {
      const double secs = TimeMining(*surf, ds, 100, T);
      right.AddRow({std::to_string(T), FormatDouble(secs, 2)});
      csv.AddRow({static_cast<double>(2 * d), 100.0,
                  static_cast<double>(T), secs});
    }
    std::printf("%s\n", right.ToString().c_str());
  }

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("Expected shape (paper Fig. 10): near-linear growth in "
              "both L and T; seconds overall (surrogate prediction time "
              "dominates), nowhere near the data-bound methods.\n");
  return 0;
}
