// Tests for the data substrate: Dataset storage, CSV persistence, the
// synthetic ground-truth generator (the paper's 20 datasets), and the two
// simulated real-world datasets.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "data/activity_sim.h"
#include "data/crimes_sim.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace surf {
namespace {

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, AddAndGet) {
  Dataset ds({"x", "y"});
  ds.AddRow({1.0, 2.0});
  ds.AddRow({3.0, 4.0});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_cols(), 2u);
  EXPECT_DOUBLE_EQ(ds.Get(1, 0), 3.0);
  ds.Set(1, 0, 5.0);
  EXPECT_DOUBLE_EQ(ds.Get(1, 0), 5.0);
}

TEST(DatasetTest, ColumnIndexByName) {
  Dataset ds({"a", "b", "c"});
  EXPECT_EQ(ds.ColumnIndex("b"), 1);
  EXPECT_EQ(ds.ColumnIndex("zz"), -1);
}

TEST(DatasetTest, RowGather) {
  Dataset ds({"x", "y", "z"});
  ds.AddRow({1.0, 2.0, 3.0});
  const auto row = ds.Row(0);
  EXPECT_EQ(row, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(DatasetTest, ComputeBoundsSelectedColumns) {
  Dataset ds({"x", "y"});
  ds.AddRow({0.0, 10.0});
  ds.AddRow({2.0, -5.0});
  ds.AddRow({1.0, 3.0});
  const Bounds b = ds.ComputeBounds({1});
  EXPECT_EQ(b.dims(), 1u);
  EXPECT_DOUBLE_EQ(b.lo(0), -5.0);
  EXPECT_DOUBLE_EQ(b.hi(0), 10.0);
}

TEST(DatasetTest, SampleWithoutReplacement) {
  Dataset ds({"x"});
  for (int i = 0; i < 100; ++i) ds.AddRow({static_cast<double>(i)});
  Rng rng(3);
  const Dataset s = ds.Sample(10, &rng);
  EXPECT_EQ(s.num_rows(), 10u);
  std::set<double> seen;
  for (size_t r = 0; r < s.num_rows(); ++r) seen.insert(s.Get(r, 0));
  EXPECT_EQ(seen.size(), 10u);  // distinct rows
}

TEST(DatasetTest, SampleLargerThanDataReturnsAll) {
  Dataset ds({"x"});
  ds.AddRow({1.0});
  Rng rng(3);
  EXPECT_EQ(ds.Sample(10, &rng).num_rows(), 1u);
}

TEST(DatasetTest, InflateToReachesTarget) {
  Dataset ds({"x"});
  ds.AddRow({1.0});
  ds.AddRow({2.0});
  Rng rng(4);
  const Dataset big = ds.InflateTo(100, 0.0, &rng);
  EXPECT_EQ(big.num_rows(), 100u);
  // With zero jitter every inflated value replicates an original.
  for (size_t r = 0; r < big.num_rows(); ++r) {
    const double v = big.Get(r, 0);
    EXPECT_TRUE(v == 1.0 || v == 2.0);
  }
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset ds({"x", "y"});
  ds.AddRow({0.5, -1.25});
  ds.AddRow({3.0, 4.0});
  const std::string path = "/tmp/surf_dataset_test.csv";
  ASSERT_TRUE(ds.SaveCsv(path).ok());
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(loaded->Get(0, 1), -1.25);
  EXPECT_EQ(loaded->column_names()[1], "y");
  std::remove(path.c_str());
}

// ------------------------------------------------------------- Synthetic

TEST(SyntheticTest, SpecNameEncodesSettings) {
  SyntheticSpec spec;
  spec.dims = 3;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  EXPECT_EQ(spec.Name(), "den_d3_k1");
  spec.statistic = SyntheticStatistic::kAggregate;
  spec.num_gt_regions = 3;
  EXPECT_EQ(spec.Name(), "agg_d3_k3");
}

TEST(SyntheticTest, DensityDatasetShape) {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 5000;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  EXPECT_EQ(ds.data.num_cols(), 2u);
  EXPECT_GT(ds.data.num_rows(), 5000u);  // background + injections
  EXPECT_EQ(ds.gt_regions.size(), 3u);
  EXPECT_EQ(ds.gt_statistics.size(), 3u);
  EXPECT_EQ(ds.value_col, -1);
}

TEST(SyntheticTest, DensityGtRegionsAreDense) {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  // GT region count must dominate the uniform-background expectation over
  // the same volume...
  const double volume = ds.gt_regions[0].Volume();
  const double background_expect =
      volume * static_cast<double>(spec.num_background);
  EXPECT_GT(ds.gt_statistics[0], 1.2 * background_expect);
  // ...must exceed the paper's density threshold y_R = 1000...
  EXPECT_GT(ds.gt_statistics[0], 1000.0);
  // ...and must land near the configured target so the objective's
  // optimum coincides with the GT box (see SyntheticSpec docs).
  const double target =
      static_cast<double>(spec.EffectiveGtTargetCount());
  EXPECT_NEAR(ds.gt_statistics[0], target, 0.25 * target);
}

TEST(SyntheticTest, AggregateGtRegionsHaveHighMean) {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kAggregate;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ASSERT_EQ(ds.value_col, 2);
  EXPECT_EQ(ds.data.num_cols(), 3u);
  for (double y : ds.gt_statistics) {
    EXPECT_GT(y, 2.0);  // the paper's aggregate threshold
    EXPECT_LT(y, 4.0);  // ~N(3, 1) mean
  }
}

TEST(SyntheticTest, PointsInsideUnitCube) {
  SyntheticSpec spec;
  spec.dims = 4;
  spec.statistic = SyntheticStatistic::kDensity;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  for (size_t r = 0; r < ds.data.num_rows(); ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_GE(ds.data.Get(r, c), 0.0);
      EXPECT_LE(ds.data.Get(r, c), 1.0);
    }
  }
}

TEST(SyntheticTest, GtRegionsDoNotOverlap) {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 3;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  for (size_t i = 0; i < ds.gt_regions.size(); ++i) {
    for (size_t j = i + 1; j < ds.gt_regions.size(); ++j) {
      EXPECT_DOUBLE_EQ(ds.gt_regions[i].OverlapVolume(ds.gt_regions[j]),
                       0.0);
    }
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.seed = 77;
  const SyntheticDataset a = SyntheticGenerator::Generate(spec);
  const SyntheticDataset b = SyntheticGenerator::Generate(spec);
  ASSERT_EQ(a.data.num_rows(), b.data.num_rows());
  EXPECT_DOUBLE_EQ(a.data.Get(100, 0), b.data.Get(100, 0));
  EXPECT_EQ(a.gt_regions[0], b.gt_regions[0]);
}

TEST(SyntheticTest, PaperGridIsTwentyDatasets) {
  const auto grid = SyntheticGenerator::PaperGrid();
  EXPECT_EQ(grid.size(), 20u);
  // 2 statistics × 2 k-values × 5 dims, sizes in the paper's range.
  std::set<std::string> names;
  for (const auto& spec : grid) {
    names.insert(spec.Name());
    EXPECT_GE(spec.num_background, 7500u);
    EXPECT_LE(spec.num_background, 12500u);
    EXPECT_GE(spec.dims, 1u);
    EXPECT_LE(spec.dims, 5u);
  }
  EXPECT_EQ(names.size(), 20u);  // all distinct settings
}

// ---------------------------------------------------------------- Crimes

TEST(CrimesSimTest, ShapeAndDomain) {
  CrimesSimSpec spec;
  spec.num_points = 5000;
  const CrimesDataset crimes = SimulateCrimes(spec);
  EXPECT_EQ(crimes.data.num_rows(), 5000u);
  EXPECT_EQ(crimes.data.num_cols(), 2u);
  EXPECT_EQ(crimes.hotspots.size(), spec.num_hotspots);
  for (size_t r = 0; r < crimes.data.num_rows(); ++r) {
    EXPECT_GE(crimes.data.Get(r, 0), 0.0);
    EXPECT_LE(crimes.data.Get(r, 0), 1.0);
    EXPECT_GE(crimes.data.Get(r, 1), 0.0);
    EXPECT_LE(crimes.data.Get(r, 1), 1.0);
  }
}

TEST(CrimesSimTest, HotspotsAreDenserThanBackground) {
  CrimesSimSpec spec;
  spec.num_points = 30000;
  spec.seed = 5;
  const CrimesDataset crimes = SimulateCrimes(spec);
  // Count points near the first hot-spot vs an equal-size box in a
  // (likely) empty corner.
  const Hotspot& hs = crimes.hotspots[0];
  auto count_in = [&](double cx, double cy, double half) {
    size_t n = 0;
    for (size_t r = 0; r < crimes.data.num_rows(); ++r) {
      if (std::abs(crimes.data.Get(r, 0) - cx) <= half &&
          std::abs(crimes.data.Get(r, 1) - cy) <= half) {
        ++n;
      }
    }
    return n;
  };
  const size_t hot = count_in(hs.cx, hs.cy, 0.05);
  const size_t corner = count_in(0.02, 0.02, 0.05);
  EXPECT_GT(hot, 2 * corner + 10);
}

TEST(CrimesSimTest, DeterministicForSeed) {
  CrimesSimSpec spec;
  spec.num_points = 100;
  const CrimesDataset a = SimulateCrimes(spec);
  const CrimesDataset b = SimulateCrimes(spec);
  EXPECT_DOUBLE_EQ(a.data.Get(50, 0), b.data.Get(50, 0));
}

// -------------------------------------------------------------- Activity

TEST(ActivitySimTest, ShapeAndLabels) {
  ActivitySimSpec spec;
  spec.num_points = 6000;
  const ActivityDataset activity = SimulateActivity(spec);
  EXPECT_EQ(activity.data.num_rows(), 6000u);
  EXPECT_EQ(activity.data.num_cols(), 4u);
  EXPECT_EQ(activity.class_means.size(), 6u);
  // Labels are integral 0..5; all six classes appear.
  std::set<int> seen;
  for (size_t r = 0; r < activity.data.num_rows(); ++r) {
    const double label = activity.data.Get(r, 3);
    EXPECT_DOUBLE_EQ(label, std::floor(label));
    EXPECT_GE(label, 0.0);
    EXPECT_LE(label, 5.0);
    seen.insert(static_cast<int>(label));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ActivitySimTest, StandClassIsCompact) {
  ActivitySimSpec spec;
  spec.num_points = 20000;
  const ActivityDataset activity = SimulateActivity(spec);
  const int stand = static_cast<int>(Activity::kStanding);
  const auto& mean = activity.class_means[static_cast<size_t>(stand)];
  // Inside a tight box around the stand signature, the stand ratio is
  // high; globally it is ~its class weight.
  size_t in_box = 0, in_box_stand = 0, total_stand = 0;
  for (size_t r = 0; r < activity.data.num_rows(); ++r) {
    const bool is_stand =
        static_cast<int>(activity.data.Get(r, 3)) == stand;
    total_stand += is_stand ? 1 : 0;
    bool inside = true;
    for (size_t j = 0; j < 3; ++j) {
      if (std::abs(activity.data.Get(r, j) - mean[j]) > 0.08) {
        inside = false;
        break;
      }
    }
    if (inside) {
      ++in_box;
      in_box_stand += is_stand ? 1 : 0;
    }
  }
  ASSERT_GT(in_box, 50u);
  const double box_ratio =
      static_cast<double>(in_box_stand) / static_cast<double>(in_box);
  const double global_ratio = static_cast<double>(total_stand) /
                              static_cast<double>(activity.data.num_rows());
  EXPECT_GT(box_ratio, 0.8);
  EXPECT_LT(global_ratio, 0.3);
}

TEST(ActivitySimTest, ActivityNames) {
  EXPECT_EQ(ActivityName(Activity::kStanding), "stand");
  EXPECT_EQ(ActivityName(Activity::kWalking), "walk");
  EXPECT_EQ(ActivityName(Activity::kLaying), "lay");
}

}  // namespace
}  // namespace surf
