// Edge-case and failure-injection tests: degenerate datasets, corrupt
// persisted artifacts, extreme parameters, and boundary geometries —
// the inputs a production deployment actually encounters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/surf.h"
#include "core/topk.h"
#include "data/synthetic.h"
#include "ml/gbrt.h"
#include "ml/kde.h"
#include "stats/grid_index.h"
#include "stats/kd_tree.h"
#include "stats/rtree.h"

namespace surf {
namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
}

// ----------------------------------------------------- Degenerate data

TEST(EdgeDataTest, AllPointsIdentical) {
  Dataset ds({"x", "y"});
  for (int i = 0; i < 100; ++i) ds.AddRow({0.5, 0.5});
  // Every back-end must handle a zero-extent bounding box.
  for (int backend = 0; backend < 4; ++backend) {
    std::unique_ptr<RegionEvaluator> eval;
    const Statistic stat = Statistic::Count({0, 1});
    switch (backend) {
      case 0: eval = std::make_unique<ScanEvaluator>(&ds, stat); break;
      case 1:
        eval = std::make_unique<GridIndexEvaluator>(&ds, stat);
        break;
      case 2: eval = std::make_unique<KdTreeEvaluator>(&ds, stat); break;
      default: eval = std::make_unique<RTreeEvaluator>(&ds, stat); break;
    }
    EXPECT_DOUBLE_EQ(eval->Evaluate(Region({0.5, 0.5}, {0.1, 0.1})),
                     100.0)
        << "backend " << backend;
    EXPECT_DOUBLE_EQ(eval->Evaluate(Region({0.9, 0.9}, {0.1, 0.1})), 0.0)
        << "backend " << backend;
  }
}

TEST(EdgeDataTest, SingleRowDataset) {
  Dataset ds({"x"});
  ds.AddRow({0.3});
  KdTreeEvaluator eval(&ds, Statistic::Count({0}));
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({0.3}, {0.01})), 1.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({0.7}, {0.01})), 0.0);
}

TEST(EdgeDataTest, ZeroWidthQueryBox) {
  Dataset ds({"x"});
  ds.AddRow({0.5});
  ds.AddRow({0.6});
  ScanEvaluator eval(&ds, Statistic::Count({0}));
  // A zero-half-length box is a point probe: inclusive edges catch an
  // exactly-coincident point.
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({0.5}, {0.0})), 1.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({0.55}, {0.0})), 0.0);
}

TEST(EdgeDataTest, NegativeCoordinatesSupported) {
  Dataset ds({"x", "y"});
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    ds.AddRow({rng.Uniform(-10.0, -5.0), rng.Uniform(100.0, 200.0)});
  }
  GridIndexEvaluator grid(&ds, Statistic::Count({0, 1}));
  ScanEvaluator scan(&ds, Statistic::Count({0, 1}));
  const Region probe({-7.5, 150.0}, {1.0, 25.0});
  EXPECT_DOUBLE_EQ(grid.Evaluate(probe), scan.Evaluate(probe));
  EXPECT_GT(grid.Evaluate(probe), 0.0);
}

// ------------------------------------------------- Corrupt persistence

TEST(EdgePersistenceTest, TruncatedModelFileRejected) {
  // Train and save a real model, then truncate it mid-body.
  FeatureMatrix x(1);
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform();
    x.AddRow({v});
    y.push_back(v * 2.0);
  }
  GradientBoostedTrees model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const std::string path = "/tmp/surf_trunc.model";
  ASSERT_TRUE(model.Save(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  WriteFile(path, content.substr(0, content.size() / 2));
  EXPECT_FALSE(GradientBoostedTrees::Load(path).ok());
  std::remove(path.c_str());
}

TEST(EdgePersistenceTest, WorkloadBadHeaderRejected) {
  const std::string path = "/tmp/surf_badwl.csv";
  WriteFile(path, "# not-a-workload dims=2\n0.1,0.2,0.3,0.4,5\n");
  EXPECT_FALSE(LoadWorkload(path).ok());
  std::remove(path.c_str());
}

TEST(EdgePersistenceTest, WorkloadRaggedRowRejected) {
  const std::string path = "/tmp/surf_ragged_wl.csv";
  WriteFile(path,
            "# surf-workload-v1 dims=1 min_len=0.01 max_len=0.15 "
            "b0=0:1\n0.5,0.1,7\n0.5,0.1\n");
  EXPECT_FALSE(LoadWorkload(path).ok());
  std::remove(path.c_str());
}

TEST(EdgePersistenceTest, SurrogateBadMagicRejected) {
  const std::string path = "/tmp/surf_badmagic.surf";
  WriteFile(path, "wrong-header\n1 2 3\n");
  EXPECT_FALSE(Surrogate::Load(path).ok());
  std::remove(path.c_str());
}

// ------------------------------------------------- Extreme parameters

TEST(EdgeParamTest, GsoWithTwoParticles) {
  // The minimum swarm: no crash, sane outputs.
  GsoParams params;
  params.num_glowworms = 2;
  params.max_iterations = 10;
  RegionSolutionSpace space;
  space.bounds = Bounds::Unit(1);
  space.min_half_length = 0.01;
  space.max_half_length = 0.5;
  const FitnessFn fn = [](const Region& r) {
    FitnessValue fv;
    fv.value = -r.center(0);
    fv.valid = true;
    return fv;
  };
  const GsoResult result =
      GlowwormSwarmOptimizer(params).Optimize(fn, space);
  EXPECT_EQ(result.particles.size(), 2u);
  EXPECT_DOUBLE_EQ(result.ValidFraction(), 1.0);
}

TEST(EdgeParamTest, GsoZeroIterations) {
  GsoParams params;
  params.num_glowworms = 10;
  params.max_iterations = 0;
  RegionSolutionSpace space;
  space.bounds = Bounds::Unit(1);
  space.min_half_length = 0.01;
  space.max_half_length = 0.5;
  const FitnessFn fn = [](const Region&) {
    FitnessValue fv;
    fv.value = 1.0;
    fv.valid = true;
    return fv;
  };
  const GsoResult result =
      GlowwormSwarmOptimizer(params).Optimize(fn, space);
  // Final refresh still scores the initial particles.
  EXPECT_EQ(result.iterations_run, 0u);
  EXPECT_DOUBLE_EQ(result.ValidFraction(), 1.0);
}

TEST(EdgeParamTest, NaiveSearchSingleCell) {
  ObjectiveConfig config;
  config.threshold = -1.0;
  const RegionObjective obj([](const Region&) { return 0.0; }, config);
  NaiveSearchParams params;
  params.centers_per_dim = 1;
  params.sizes_per_dim = 1;
  RegionSolutionSpace space;
  space.bounds = Bounds::Unit(2);
  space.min_half_length = 0.1;
  space.max_half_length = 0.1;
  const NaiveSearchResult result = NaiveSearch(params).Run(obj, space);
  EXPECT_EQ(result.total_candidates, 1u);
  EXPECT_EQ(result.examined, 1u);
}

TEST(EdgeParamTest, GbrtSingleSample) {
  GradientBoostedTrees model;
  FeatureMatrix x(1);
  x.AddRow({0.5});
  ASSERT_TRUE(model.Fit(x, {7.0}).ok());
  EXPECT_NEAR(model.Predict({0.5}), 7.0, 1e-6);
  EXPECT_NEAR(model.Predict({99.0}), 7.0, 1e-6);  // clamps to the leaf
}

TEST(EdgeParamTest, KdeSingleSample) {
  const Kde kde = Kde::Fit({{0.5, 0.5}});
  EXPECT_GT(kde.Density({0.5, 0.5}), 0.0);
  EXPECT_NEAR(kde.RegionMass(Region({0.5, 0.5}, {50.0, 50.0})), 1.0,
              1e-9);
}

TEST(EdgeParamTest, TopKLargerThanSwarmModes) {
  // k far larger than the number of actual modes: returns what exists.
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 9;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  GridIndexEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wp;
  wp.num_queries = 1500;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wp);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());
  TopKConfig config;
  config.k = 50;
  config.gso.num_glowworms = 60;
  config.gso.max_iterations = 60;
  TopKFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  const TopKResult result = finder.Find();
  EXPECT_LE(result.regions.size(), 50u);
  EXPECT_GE(result.regions.size(), 1u);
}

// -------------------------------------------------- Boundary geometry

TEST(EdgeGeomTest, RegionSpanningWholeDomain) {
  const SyntheticDataset ds = [] {
    SyntheticSpec spec;
    spec.dims = 2;
    spec.seed = 2;
    return SyntheticGenerator::Generate(spec);
  }();
  ScanEvaluator eval(&ds.data, Statistic::Count({0, 1}));
  const Region whole({0.5, 0.5}, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(eval.Evaluate(whole),
                   static_cast<double>(ds.data.num_rows()));
}

TEST(EdgeGeomTest, IoUWithWildlyDifferentScales) {
  const Region tiny({0.5}, {1e-6});
  const Region huge({0.5}, {1e6});
  const double iou = tiny.IoU(huge);
  EXPECT_GT(iou, 0.0);
  EXPECT_LT(iou, 1e-10);
  EXPECT_TRUE(tiny.Within(huge));
}

TEST(EdgeGeomTest, ObjectiveAtThresholdBoundaryIsInvalid) {
  // diff == 0 exactly: log(0) undefined → invalid, no crash.
  ObjectiveConfig config;
  config.threshold = 5.0;
  config.direction = ThresholdDirection::kAbove;
  const RegionObjective obj([](const Region&) { return 5.0; }, config);
  EXPECT_FALSE(obj.Evaluate(Region({0.5}, {0.1})).valid);
}

TEST(EdgeGeomTest, EcdfQuantileAtSingleSample) {
  const Ecdf ecdf(std::vector<double>{42.0});
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(41.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(42.0), 1.0);
}

// ------------------------------------------- Statistic NaN propagation

TEST(EdgeNanTest, SurrogateTrainingSurvivesSparseAggregates) {
  // An aggregate statistic over sparse data yields many NaN targets; the
  // workload must drop them and training must succeed on the remainder.
  Dataset ds({"x", "v"});
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    ds.AddRow({rng.Uniform(0.4, 0.6), rng.Gaussian(3.0, 0.1)});
  }
  ScanEvaluator eval(&ds, Statistic::Average({0}, 1));
  WorkloadParams params;
  params.num_queries = 500;
  const RegionWorkload workload =
      GenerateWorkload(eval, Bounds::Unit(1), params);
  ASSERT_GT(workload.size(), 0u);
  ASSERT_LT(workload.size(), 500u);  // some were dropped
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  EXPECT_TRUE(surrogate.ok());
}

TEST(EdgeNanTest, FitnessOnNanStatisticNeverValid) {
  ObjectiveConfig config;
  config.threshold = 0.0;
  for (bool use_log : {true, false}) {
    config.use_log = use_log;
    const RegionObjective obj(
        [](const Region&) { return std::nan(""); }, config);
    EXPECT_FALSE(obj.Evaluate(Region({0.5}, {0.1})).valid);
  }
}

}  // namespace
}  // namespace surf
