#include "ml/tree.h"

#include "accel/accel.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

namespace surf {

namespace {

/// XGBoost structure score: -1/2 * G² / (H + λ) per node; gain is the
/// score reduction of a split. Leaf weight is -G / (H + λ).
inline double NodeScore(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}

/// Nodes with fewer rows than this build their histograms serially — per
/// task the accumulation must outweigh the submit/wake cost, so only
/// large (shallow) nodes fan out per feature.
constexpr size_t kMinParallelHistRows = 1u << 14;

constexpr size_t kMaxSerializedNodes = 1u << 26;
constexpr size_t kMaxSerializedFeature = 1u << 20;

}  // namespace

/// Shared training context: the binned matrix, gradient arrays, selected
/// features, and a small pool of reusable flat histograms. Histograms are
/// addressed by id so ownership can hop between parent and children along
/// the sibling-subtraction chain without allocation churn.
struct RegressionTree::TrainState {
  const BinnedMatrix* binned = nullptr;
  const FeatureBinner* binner = nullptr;
  const double* grad = nullptr;
  const double* hess = nullptr;  // null => unit hessians
  uint32_t* rows = nullptr;
  const TreeParams* params = nullptr;
  std::vector<uint32_t> features;  // selected, ascending
  ThreadPool* pool = nullptr;
  uint32_t total_bins = 0;
  bool unit_hess = false;

  struct Histogram {
    std::vector<double> g;
    std::vector<double> h;  // unused when unit_hess
    std::vector<uint32_t> cnt;
    /// Occupied-bin bitmask (bit i ↔ flat bin i, 64-bin words). Drives
    /// the split scan (only occupied bins are visited, with no
    /// mispredicting cnt==0 branch) and clear-on-release (only dirty
    /// 64-bin slabs are zeroed).
    std::vector<uint64_t> mask;
    bool in_use = false;
  };
  std::vector<Histogram> hists;

  /// Unit-hessian fast path: hessian sums are row counts, so every
  /// 1/(H + λ) the split scan needs comes from this table instead of a
  /// hardware divide (two per candidate bin otherwise).
  std::vector<double> recip;

  /// Gradients/hessians carried alongside the row array and partitioned
  /// with it, so histogram builds read them sequentially — the random
  /// grad[row] gather happens once per tree (at setup), not once per
  /// node.
  std::vector<double> row_grad;
  std::vector<double> row_hess;

  /// Scratch for the branchless stable partition (row ids + carried
  /// gradients/hessians).
  std::vector<uint32_t> partition_scratch;
  std::vector<double> partition_scratch_g;
  std::vector<double> partition_scratch_h;

  /// True when the caller's row array is the identity permutation: the
  /// root histogram then streams bins and gradients sequentially with no
  /// row indirection at all.
  bool identity_root = false;
  size_t root_rows = 0;

  uint32_t padded_bins() const { return (total_bins + 63) & ~63u; }
  uint32_t mask_words() const { return padded_bins() / 64; }

  int AcquireHist() {
    // Buffers are kept clean on release, so acquisition is free.
    for (size_t i = 0; i < hists.size(); ++i) {
      if (!hists[i].in_use) {
        hists[i].in_use = true;
        return static_cast<int>(i);
      }
    }
    hists.emplace_back();
    Histogram& hist = hists.back();
    hist.in_use = true;
    hist.g.assign(padded_bins(), 0.0);
    hist.cnt.assign(padded_bins(), 0);
    hist.mask.assign(mask_words(), 0);
    if (!unit_hess) hist.h.assign(padded_bins(), 0.0);
    return static_cast<int>(hists.size() - 1);
  }

  /// Rebuilds the occupied mask from the counts: one branch-free pass
  /// (4 counts per compare+movemask on x86).
  void RebuildMask(Histogram* hist) {
    const uint32_t* cnt = hist->cnt.data();
    for (uint32_t w = 0; w < mask_words(); ++w) {
      uint64_t m = 0;
#if defined(__SSE2__)
      const __m128i zero = _mm_setzero_si128();
      for (uint32_t j = 0; j < 64; j += 4) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(cnt + w * 64 + j));
        const int is_zero = _mm_movemask_ps(
            _mm_castsi128_ps(_mm_cmpeq_epi32(v, zero)));
        m |= static_cast<uint64_t>(~is_zero & 0xF) << j;
      }
#else
      for (uint32_t j = 0; j < 64; ++j) {
        m |= static_cast<uint64_t>(cnt[w * 64 + j] != 0) << j;
      }
#endif
      hist->mask[w] = m;
    }
  }

  /// Zeroes only the 64-bin slabs the mask marks dirty, then returns the
  /// buffer to the pool clean.
  void ReleaseHist(int id) {
    Histogram& hist = hists[static_cast<size_t>(id)];
    for (uint32_t w = 0; w < mask_words(); ++w) {
      if (hist.mask[w] == 0) continue;
      std::fill_n(hist.g.data() + w * 64, 64, 0.0);
      std::fill_n(hist.cnt.data() + w * 64, 64, 0u);
      if (!unit_hess) std::fill_n(hist.h.data() + w * 64, 64, 0.0);
      hist.mask[w] = 0;
    }
    hist.in_use = false;
  }

  /// Accumulates the histogram for rows [begin, end). Each feature is
  /// filled by exactly one task in row order, so the result is
  /// bit-identical regardless of thread count.
  void BuildHistogram(int id, size_t begin, size_t end) {
    Histogram& hist = hists[static_cast<size_t>(id)];
    const size_t n = end - begin;
    // Root fast path: the identity row array needs no indirection — bins
    // stream sequentially.
    const bool sequential = identity_root && begin == 0 && end == root_rows;
    const double* gsrc = row_grad.data() + begin;
    const double* hsrc = unit_hess ? nullptr : row_hess.data() + begin;
    const uint32_t* row_ids = rows + begin;

    auto build_feature = [&](size_t fi) {
      const uint32_t f = features[fi];
      const uint32_t nb = binned->num_bins(f);
      if (nb < 2) return;
      const uint32_t base = binned->bin_offset(f);
      double* g = hist.g.data() + base;
      uint32_t* cnt = hist.cnt.data() + base;
      // The GBRT training path (unit hessians + byte-wide bins) runs
      // through the dispatched kernel table; wide-bin and weighted-
      // hessian builds keep the scalar loop below.
      if (unit_hess && binned->has_packed8()) {
        Accel().hist_u8_unit(binned->col8(f),
                             sequential ? nullptr : row_ids, gsrc, n, nb, g,
                             cnt);
        return;
      }
      auto accumulate = [&](const auto* col) {
        if (unit_hess) {
          for (size_t i = 0; i < n; ++i) {
            const uint16_t b = sequential ? col[i] : col[row_ids[i]];
            g[b] += gsrc[i];
            ++cnt[b];
          }
        } else {
          double* h = hist.h.data() + base;
          for (size_t i = 0; i < n; ++i) {
            const uint16_t b = sequential ? col[i] : col[row_ids[i]];
            g[b] += gsrc[i];
            h[b] += hsrc[i];
            ++cnt[b];
          }
        }
      };
      // Byte-wide bins halve the gather footprint when available.
      if (binned->has_packed8()) {
        accumulate(binned->col8(f));
      } else {
        accumulate(binned->col(f));
      }
    };

    // Serial unit-hessian builds process feature pairs per row pass so
    // the row-id load amortizes over two histograms (the parallel path
    // keeps one feature per task — same per-feature accumulation order,
    // bit-identical result). The accel histogram kernel shares that
    // exact per-feature order, so the two paths stay interchangeable.
    auto build_feature_pair = [&](size_t fa, size_t fb) {
      const uint32_t f0 = features[fa];
      const uint32_t f1 = features[fb];
      if (binned->num_bins(f0) < 2 || binned->num_bins(f1) < 2 ||
          !binned->has_packed8() || !unit_hess) {
        build_feature(fa);
        build_feature(fb);
        return;
      }
      const uint8_t* c0 = binned->col8(f0);
      const uint8_t* c1 = binned->col8(f1);
      double* g0 = hist.g.data() + binned->bin_offset(f0);
      double* g1 = hist.g.data() + binned->bin_offset(f1);
      uint32_t* n0 = hist.cnt.data() + binned->bin_offset(f0);
      uint32_t* n1 = hist.cnt.data() + binned->bin_offset(f1);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = sequential ? static_cast<uint32_t>(i) : row_ids[i];
        const double gi = gsrc[i];
        const uint16_t b0 = c0[r];
        const uint16_t b1 = c1[r];
        g0[b0] += gi;
        ++n0[b0];
        g1[b1] += gi;
        ++n1[b1];
      }
    };

    if (pool != nullptr && features.size() > 1 &&
        n >= kMinParallelHistRows) {
      ParallelFor(pool, features.size(), build_feature);
    } else {
      size_t fi = 0;
      for (; fi + 1 < features.size(); fi += 2) {
        build_feature_pair(fi, fi + 1);
      }
      if (fi < features.size()) build_feature(fi);
    }
    RebuildMask(&hist);
  }

  /// parent -= small: after this the parent histogram holds the larger
  /// sibling's sums. One contiguous pass over the flat arrays.
  void SubtractHistogram(int parent_id, int small_id) {
    Histogram& p = hists[static_cast<size_t>(parent_id)];
    const Histogram& s = hists[static_cast<size_t>(small_id)];
    const uint32_t padded = padded_bins();
    for (uint32_t b = 0; b < padded; ++b) p.cnt[b] -= s.cnt[b];
    // Bins fully drained into the small child keep a last-ulp residual
    // from the different summation order; force them to exactly zero so
    // the clean-on-release invariant (and the empty-bin skip) hold.
    for (uint32_t b = 0; b < padded; ++b) {
      p.g[b] = (p.g[b] - s.g[b]) * static_cast<double>(p.cnt[b] != 0);
    }
    if (!unit_hess) {
      for (uint32_t b = 0; b < padded; ++b) {
        p.h[b] = (p.h[b] - s.h[b]) * static_cast<double>(p.cnt[b] != 0);
      }
    }
    RebuildMask(&p);
  }
};

void RegressionTree::Fit(const BinnedMatrix& binned,
                         const FeatureBinner& binner,
                         const std::vector<double>& grad,
                         const std::vector<double>& hess,
                         std::vector<uint32_t>* rows,
                         const TreeParams& params, Rng* rng,
                         ThreadPool* pool) {
  nodes_.clear();
  values_.clear();
  leaf_ranges_.clear();
  assert(rows != nullptr && !rows->empty());
  assert(hess.empty() || grad.size() == hess.size());

  TrainState st;
  st.binned = &binned;
  st.binner = &binner;
  st.grad = grad.data();
  st.unit_hess = hess.empty();
  st.hess = st.unit_hess ? nullptr : hess.data();
  st.rows = rows->data();
  st.params = &params;
  st.pool = pool;
  st.total_bins = binned.total_bins();
  if (st.unit_hess) {
    st.recip.resize(rows->size() + 1);
    for (size_t k = 0; k <= rows->size(); ++k) {
      st.recip[k] = 1.0 / (static_cast<double>(k) + params.reg_lambda);
    }
  }
  st.partition_scratch.resize(rows->size() + 2);
  st.partition_scratch_g.resize(rows->size() + 2);
  if (!st.unit_hess) st.partition_scratch_h.resize(rows->size() + 2);
  st.root_rows = rows->size();
  st.identity_root = true;
  for (size_t i = 0; i < rows->size(); ++i) {
    if ((*rows)[i] != i) {
      st.identity_root = false;
      break;
    }
  }
  // One gather at setup; partitions keep these aligned with the rows.
  st.row_grad.resize(rows->size());
  if (st.identity_root) {
    std::memcpy(st.row_grad.data(), grad.data(),
                rows->size() * sizeof(double));
  } else {
    for (size_t i = 0; i < rows->size(); ++i) {
      st.row_grad[i] = grad[(*rows)[i]];
    }
  }
  if (!st.unit_hess) {
    st.row_hess.resize(rows->size());
    if (st.identity_root) {
      std::memcpy(st.row_hess.data(), hess.data(),
                  rows->size() * sizeof(double));
    } else {
      for (size_t i = 0; i < rows->size(); ++i) {
        st.row_hess[i] = hess[(*rows)[i]];
      }
    }
  }

  // Column subsampling (colsample_bytree).
  std::vector<size_t> features(binner.num_features());
  std::iota(features.begin(), features.end(), 0);
  if (params.colsample < 1.0 && rng != nullptr) {
    rng->Shuffle(&features);
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(params.colsample *
                               static_cast<double>(features.size())));
    features.resize(keep);
    std::sort(features.begin(), features.end());
  }
  st.features.assign(features.begin(), features.end());

  double g_sum = 0.0, h_sum = 0.0;
  if (st.unit_hess) {
    for (size_t i = 0; i < rows->size(); ++i) g_sum += grad[(*rows)[i]];
    h_sum = static_cast<double>(rows->size());
  } else {
    for (size_t i = 0; i < rows->size(); ++i) {
      g_sum += grad[(*rows)[i]];
      h_sum += hess[(*rows)[i]];
    }
  }

  nodes_.reserve(std::min<size_t>(2 * rows->size(),
                                  size_t{2} << std::min<size_t>(
                                      params.max_depth, 24)));
  BuildNode(st, /*hist_id=*/-1, 0, rows->size(), 0, g_sum, h_sum);
  depth_ = Depth();
}

int32_t RegressionTree::BuildNode(TrainState& st, int hist_id, size_t begin,
                                  size_t end, size_t depth, double g_sum,
                                  double h_sum) {
  const TreeParams& params = *st.params;
  const int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  values_.push_back(0.0);

  auto make_leaf = [&]() {
    const double value = -g_sum / (h_sum + params.reg_lambda);
    Node& node = nodes_[static_cast<size_t>(idx)];
    node.tv = std::numeric_limits<double>::quiet_NaN();
    node.right = idx;  // self-loop: the traversal select parks here
    node.feature = 0;
    values_[static_cast<size_t>(idx)] = value;
    leaf_ranges_.push_back({static_cast<uint32_t>(begin),
                            static_cast<uint32_t>(end), value});
    if (hist_id >= 0) st.ReleaseHist(hist_id);
    return idx;
  };

  if (depth >= params.max_depth ||
      end - begin < 2 * params.min_samples_leaf ||
      h_sum < 2.0 * params.min_child_weight) {
    return make_leaf();
  }

  if (hist_id < 0) {
    hist_id = st.AcquireHist();
    st.BuildHistogram(hist_id, begin, end);
  }

  const SplitDecision split =
      FindBestSplit(st, hist_id, g_sum, h_sum, end - begin);
  if (!split.found) return make_leaf();

  // Stable branchless partition around the split bin: the left count is
  // already known exactly from the histogram, so each row is written to
  // both candidate slots and the matching cursor advances (no
  // data-dependent branch to mispredict).
  const uint16_t split_bin = split.bin;
  const size_t mid = begin + split.n_left;
  if (mid == begin || mid == end) return make_leaf();  // degenerate split
  {
    // Disjoint scratch regions with one slack slot each: every row is
    // written to both cursors and only the matching cursor advances, so
    // the stray write lands in the slack/next slot of its own region.
    // The carried gradient (and hessian) arrays partition along with the
    // row ids, keeping them sequentially readable per node.
    uint32_t* const scratch = st.partition_scratch.data();
    double* const scratch_g = st.partition_scratch_g.data();
    double* const scratch_h =
        st.unit_hess ? nullptr : st.partition_scratch_h.data();
    auto partition_rows = [&](const auto* fcol) {
      uint32_t* left_out = scratch;
      uint32_t* right_out = scratch + split.n_left + 1;
      double* left_g = scratch_g;
      double* right_g = scratch_g + split.n_left + 1;
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = st.rows[i];
        const double gv = st.row_grad[i];
        const int go_left = fcol[r] <= split_bin;
        *left_out = r;
        *right_out = r;
        *left_g = gv;
        *right_g = gv;
        left_out += go_left;
        right_out += 1 - go_left;
        left_g += go_left;
        right_g += 1 - go_left;
      }
      assert(left_out == scratch + split.n_left);
      if (!st.unit_hess) {
        double* left_h = scratch_h;
        double* right_h = scratch_h + split.n_left + 1;
        for (size_t i = begin; i < end; ++i) {
          const uint32_t r = st.rows[i];
          const double hv = st.row_hess[i];
          const int go_left = fcol[r] <= split_bin;
          *left_h = hv;
          *right_h = hv;
          left_h += go_left;
          right_h += 1 - go_left;
        }
      }
    };
    if (st.binned->has_packed8()) {
      partition_rows(st.binned->col8(split.feature));
    } else {
      partition_rows(st.binned->col(split.feature));
    }
    std::memcpy(st.rows + begin, scratch,
                split.n_left * sizeof(uint32_t));
    std::memcpy(st.rows + mid, scratch + split.n_left + 1,
                (end - mid) * sizeof(uint32_t));
    std::memcpy(st.row_grad.data() + begin, scratch_g,
                split.n_left * sizeof(double));
    std::memcpy(st.row_grad.data() + mid, scratch_g + split.n_left + 1,
                (end - mid) * sizeof(double));
    if (!st.unit_hess) {
      std::memcpy(st.row_hess.data() + begin, scratch_h,
                  split.n_left * sizeof(double));
      std::memcpy(st.row_hess.data() + mid, scratch_h + split.n_left + 1,
                  (end - mid) * sizeof(double));
    }
  }

  const size_t n_left = mid - begin;
  const size_t n_right = end - mid;
  const double h_left = split.h_left;
  const double g_right = g_sum - split.g_left;
  const double h_right = h_sum - split.h_left;

  // A child only needs a histogram if it can itself split (mirrors the
  // leaf guards at child entry) — the deepest level never builds one.
  auto will_split = [&](size_t n, double h) {
    return depth + 1 < params.max_depth && n >= 2 * params.min_samples_leaf &&
           h >= 2.0 * params.min_child_weight;
  };
  const bool left_splits = will_split(n_left, h_left);
  const bool right_splits = will_split(n_right, h_right);

  int left_hist = -1, right_hist = -1;
  // Subtraction replaces the large child's direct build (n_large × F
  // histogram updates) with whole-array subtract + mask-rebuild passes
  // (O(total_bins)); for small deep nodes the passes cost more than they
  // save, so fall back to direct builds there.
  const bool subtraction_pays =
      std::max(n_left, n_right) * st.features.size() >
      3 * static_cast<size_t>(st.total_bins);
  if (params.use_sibling_subtraction && subtraction_pays) {
    const bool left_is_small = n_left <= n_right;
    const bool large_splits = left_is_small ? right_splits : left_splits;
    const bool small_splits = left_is_small ? left_splits : right_splits;
    if (large_splits) {
      // Build only the smaller side; the larger sibling's histogram is
      // the parent's minus the smaller's.
      const int small_id = st.AcquireHist();
      if (left_is_small) {
        st.BuildHistogram(small_id, begin, mid);
      } else {
        st.BuildHistogram(small_id, mid, end);
      }
      st.SubtractHistogram(hist_id, small_id);
      const int large_id = hist_id;
      hist_id = -1;  // ownership moved to the large child
      int small_for_child = small_id;
      if (!small_splits) {
        st.ReleaseHist(small_id);
        small_for_child = -1;
      }
      left_hist = left_is_small ? small_for_child : large_id;
      right_hist = left_is_small ? large_id : small_for_child;
    }
  }
  if (hist_id >= 0) {
    st.ReleaseHist(hist_id);
    hist_id = -1;
  }

  // Children with hist id -1 build their own lazily (direct mode, or a
  // small child whose large sibling is a leaf).
  const int32_t left =
      BuildNode(st, left_hist, begin, mid, depth + 1, split.g_left, h_left);
  const int32_t right =
      BuildNode(st, right_hist, mid, end, depth + 1, g_right, h_right);
  assert(left == idx + 1);
  (void)left;

  Node& node = nodes_[static_cast<size_t>(idx)];
  node.tv = split.threshold;
  node.right = right;
  node.feature = static_cast<uint32_t>(split.feature);
  return idx;
}

RegressionTree::SplitDecision RegressionTree::FindBestSplit(
    const TrainState& st, int hist_id, double g_total, double h_total,
    size_t n_total) const {
  const TreeParams& params = *st.params;
  const TrainState::Histogram& hist =
      st.hists[static_cast<size_t>(hist_id)];
  const double parent_score = NodeScore(g_total, h_total, params.reg_lambda);

  SplitDecision best;
  // Features scan in ascending index order, so equal gains resolve to the
  // lowest feature/bin — a fixed tie-break independent of thread count.
  //
  // Only occupied bins are visited, driven by the histogram's bitmask
  // (countr_zero walk — no mispredicting cnt==0 branch). Skipping an
  // empty bin never changes the chosen split: it partitions the rows
  // exactly like the previous boundary, its gain ties that candidate,
  // and ties already resolve to the earlier bin.
  const uint64_t* mask = hist.mask.data();
  for (uint32_t f : st.features) {
    const uint32_t n_bins = st.binned->num_bins(f);
    if (n_bins < 2) continue;
    const uint32_t base = st.binned->bin_offset(f);
    const double* bin_g = hist.g.data() + base;
    const uint32_t* bin_n = hist.cnt.data() + base;
    const double* bin_h = st.unit_hess ? nullptr : hist.h.data() + base;
    const double* recip = st.unit_hess ? st.recip.data() : nullptr;
    const double parent_score_t =
        st.unit_hess ? (g_total * g_total) * recip[n_total] : parent_score;

    // Flat-bit range [base, last): the last bin is never a candidate.
    const uint32_t last = base + n_bins - 1;
    double g_left = 0.0, h_left = 0.0;
    size_t n_left = 0;
    for (uint32_t w = base >> 6; w < (last + 63) >> 6; ++w) {
      uint64_t bits = mask[w];
      if (w == base >> 6 && (base & 63) != 0) {
        bits &= ~uint64_t{0} << (base & 63);
      }
      if (((w + 1) << 6) > last) {
        bits &= (uint64_t{1} << (last & 63)) - 1;
      }
      while (bits != 0) {
        const uint32_t b = (w << 6) + std::countr_zero(bits) - base;
        bits &= bits - 1;
        g_left += bin_g[b];
        n_left += bin_n[b];
        h_left += st.unit_hess ? static_cast<double>(bin_n[b]) : bin_h[b];
        const double g_right = g_total - g_left;
        const double h_right = h_total - h_left;
        const size_t n_right = n_total - n_left;
        if (n_left < params.min_samples_leaf ||
            n_right < params.min_samples_leaf) {
          continue;
        }
        if (h_left < params.min_child_weight ||
            h_right < params.min_child_weight) {
          continue;
        }
        // Unit-hessian scan is multiply-add bound: 1/(H + λ) comes from
        // the per-fit reciprocal table instead of two hardware divides.
        const double gain =
            st.unit_hess
                ? 0.5 * ((g_left * g_left) * recip[n_left] +
                         (g_right * g_right) * recip[n_right] -
                         parent_score_t)
                : 0.5 * (NodeScore(g_left, h_left, params.reg_lambda) +
                         NodeScore(g_right, h_right, params.reg_lambda) -
                         parent_score_t);
        if (gain > best.gain + 1e-12 && gain > params.min_split_gain) {
          best.found = true;
          best.feature = f;
          best.bin = static_cast<uint16_t>(b);
          best.threshold = st.binner->BinUpperEdge(f, b);
          best.gain = gain;
          best.g_left = g_left;
          best.h_left = h_left;
          best.n_left = n_left;
        }
      }
    }
  }
  return best;
}

double RegressionTree::Predict(const std::vector<double>& x) const {
  return Predict(x.data());
}

double RegressionTree::Predict(const double* x) const {
  assert(!nodes_.empty());
  const Node* nodes = nodes_.data();
  int32_t idx = 0;
  for (;;) {
    const Node& node = nodes[static_cast<size_t>(idx)];
    // Leaves self-select (x <= NaN is false and right == idx).
    const int32_t next = x[node.feature] <= node.tv ? idx + 1 : node.right;
    if (next == idx) return values_[static_cast<size_t>(idx)];
    idx = next;
  }
}

void RegressionTree::AddPredictions(const double* const* cols, size_t begin,
                                    size_t end, double scale,
                                    double* out) const {
  assert(!nodes_.empty());
  // The packed node is the kernel layer's AccelTreeNode by construction;
  // the asserts pin the reinterpret below to the actual layout.
  static_assert(sizeof(Node) == sizeof(AccelTreeNode));
  static_assert(offsetof(Node, tv) == offsetof(AccelTreeNode, tv));
  static_assert(offsetof(Node, right) == offsetof(AccelTreeNode, right));
  static_assert(offsetof(Node, feature) == offsetof(AccelTreeNode, feature));
  const size_t levels = depth_ > 1 ? depth_ - 1 : 0;
  Accel().tree_predict(reinterpret_cast<const AccelTreeNode*>(nodes_.data()),
                       values_.data(), levels, cols, begin, end, scale, out);
}

size_t RegressionTree::num_leaves() const {
  size_t leaves = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (IsLeaf(i)) ++leaves;
  }
  return leaves;
}

size_t RegressionTree::Depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<int32_t, size_t>> stack{{0, 1}};
  size_t depth = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    if (!IsLeaf(static_cast<size_t>(idx))) {
      stack.push_back({idx + 1, d + 1});
      stack.push_back({nodes_[static_cast<size_t>(idx)].right, d + 1});
    }
  }
  return depth;
}

size_t RegressionTree::MaxFeatureIndex() const {
  size_t max_feature = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!IsLeaf(i)) {
      max_feature = std::max<size_t>(max_feature, nodes_[i].feature);
    }
  }
  return max_feature;
}

void RegressionTree::Serialize(std::ostream& os) const {
  // Legacy five-field record (left right feature threshold value); the
  // packed self-looping layout stays an implementation detail.
  os << nodes_.size() << "\n";
  os.precision(17);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (IsLeaf(i)) {
      os << -1 << " " << -1 << " " << n.feature << " " << 0.0 << " "
         << values_[i] << "\n";
    } else {
      os << i + 1 << " " << n.right << " " << n.feature << " " << n.tv
         << " " << 0.0 << "\n";
    }
  }
}

StatusOr<RegressionTree> RegressionTree::Deserialize(std::istream& is) {
  long long n = 0;
  if (!(is >> n)) return Status::IOError("unreadable tree node count");
  if (n <= 0 || static_cast<size_t>(n) > kMaxSerializedNodes) {
    return Status::IOError("tree node count out of range");
  }
  const size_t num_nodes = static_cast<size_t>(n);

  struct RawNode {
    long long left = 0;
    long long right = 0;
    unsigned long long feature = 0;
    double threshold = 0.0;
    double value = 0.0;
  };
  std::vector<RawNode> raw(num_nodes);
  for (auto& node : raw) {
    if (!(is >> node.left >> node.right >> node.feature >> node.threshold >>
          node.value)) {
      return Status::IOError("truncated or malformed tree node record");
    }
    const bool leaf = node.left < 0 || node.right < 0;
    if (leaf) {
      if (node.left != -1 || node.right != -1) {
        return Status::IOError("malformed leaf node record");
      }
    } else if (node.left >= n || node.right >= n) {
      return Status::IOError("tree child index out of range");
    }
    if (node.feature > kMaxSerializedFeature) {
      return Status::IOError("tree feature index out of range");
    }
    if (!std::isfinite(node.threshold) || !std::isfinite(node.value)) {
      return Status::IOError("non-finite tree node field");
    }
  }

  // Rebuild in depth-first order so the packed left-child-at-idx+1
  // invariant holds for any (valid) input ordering; reference counting
  // via `visited` rejects cycles, shared children, and orphan nodes.
  RegressionTree tree;
  tree.nodes_.reserve(num_nodes);
  tree.values_.reserve(num_nodes);
  std::vector<uint8_t> visited(num_nodes, 0);
  struct Item {
    int32_t old_idx;
    int32_t parent_new;
    bool is_right;
  };
  std::vector<Item> stack{{0, -1, false}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(item.old_idx)]) {
      return Status::IOError("tree node referenced more than once");
    }
    visited[static_cast<size_t>(item.old_idx)] = 1;
    const RawNode& src = raw[static_cast<size_t>(item.old_idx)];
    const int32_t new_idx = static_cast<int32_t>(tree.nodes_.size());
    if (item.parent_new >= 0 && item.is_right) {
      tree.nodes_[static_cast<size_t>(item.parent_new)].right = new_idx;
    }
    Node node;
    node.feature = static_cast<uint32_t>(src.feature);
    double value = 0.0;
    if (src.left < 0) {
      node.tv = std::numeric_limits<double>::quiet_NaN();
      node.right = new_idx;  // leaf self-loop
      // The traversal reads x[feature] even at leaves (result discarded
      // by the NaN compare), so a leaf record carrying a junk feature
      // index must not survive into the packed node.
      node.feature = 0;
      value = src.value;
    } else {
      node.tv = src.threshold;
      node.right = 0;  // patched when the right child is emitted
    }
    tree.nodes_.push_back(node);
    tree.values_.push_back(value);
    if (src.left >= 0) {
      stack.push_back({static_cast<int32_t>(src.right), new_idx, true});
      stack.push_back({static_cast<int32_t>(src.left), new_idx, false});
    }
  }
  if (tree.nodes_.size() != num_nodes) {
    return Status::IOError("tree has unreachable nodes");
  }
  tree.depth_ = tree.Depth();
  return tree;
}

}  // namespace surf
