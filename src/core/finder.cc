#include "core/finder.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "util/stopwatch.h"

namespace surf {

SurfFinder::SurfFinder(StatisticFn estimate, RegionSolutionSpace space,
                       FinderConfig config)
    : estimate_(std::move(estimate)),
      space_(std::move(space)),
      config_(config) {
  assert(estimate_ != nullptr);
}

FindResult SurfFinder::Find(double threshold,
                            ThresholdDirection direction) const {
  Stopwatch timer;

  ObjectiveConfig obj_config;
  obj_config.threshold = threshold;
  obj_config.direction = direction;
  obj_config.c = config_.c;
  obj_config.use_log = config_.use_log_objective;
  const RegionObjective objective(estimate_, batch_estimate_, obj_config);

  GsoParams gso_params = config_.gso;
  if (!config_.use_kde_guidance) gso_params.kde_mass_guidance = false;
  if (!config_.use_kde_seeding) gso_params.kde_seeded_fraction = 0.0;
  const GlowwormSwarmOptimizer gso(gso_params);
  const Kde* kde =
      (config_.use_kde_guidance || config_.use_kde_seeding) ? kde_ : nullptr;

  FindResult result;
  {
    // The batched fitness scores each swarm iteration with a single
    // surrogate PredictBatch call (EvaluateMany) instead of L tree walks.
    TraceSpan span(trace_, "search", TraceStage::kSearch);
    result.gso =
        gso.Optimize(objective.AsBatchFitnessFn(), space_, kde, cancel_,
                     progress_, trace_);
    span.Attr("iterations",
              static_cast<uint64_t>(result.gso.iterations_run));
  }
  TraceSpan extraction_span(trace_, "extraction", TraceStage::kExtraction);

  // Collect valid particles and reduce to distinct regions; their
  // statistic estimates come from one batched call.
  std::vector<ScoredRegion> candidates;
  std::vector<Region> valid_regions;
  for (size_t i = 0; i < result.gso.particles.size(); ++i) {
    if (result.gso.valid[i]) valid_regions.push_back(result.gso.particles[i]);
  }
  const std::vector<double> estimates =
      EvaluateStatistics(valid_regions, estimate_, batch_estimate_);
  for (size_t i = 0, v = 0; i < result.gso.particles.size(); ++i) {
    if (!result.gso.valid[i]) continue;
    ScoredRegion cand;
    cand.region = result.gso.particles[i];
    cand.fitness = result.gso.fitness[i];
    cand.statistic = estimates[v++];
    candidates.push_back(std::move(cand));
  }
  const auto distinct = SelectDistinctRegions(
      std::move(candidates), config_.nms_max_iou, config_.max_regions);

  size_t complying = 0;
  for (const auto& cand : distinct) {
    FoundRegion found;
    found.region = cand.region;
    found.fitness = cand.fitness;
    found.estimate = cand.statistic;
    if (validator_ != nullptr) {
      found.true_value = validator_->Evaluate(found.region);
      found.complies_true =
          SatisfiesThreshold(found.true_value, threshold, direction);
      complying += found.complies_true ? 1 : 0;
    } else {
      found.true_value = std::numeric_limits<double>::quiet_NaN();
    }
    result.regions.push_back(std::move(found));
  }

  result.report.seconds = timer.ElapsedSeconds();
  result.report.iterations = result.gso.iterations_run;
  result.report.objective_evaluations = result.gso.objective_evaluations;
  result.report.particle_valid_fraction = result.gso.ValidFraction();
  result.report.converged = result.gso.converged;
  result.report.cancelled = result.gso.cancelled;
  result.report.true_compliance =
      (validator_ != nullptr && !result.regions.empty())
          ? static_cast<double>(complying) /
                static_cast<double>(result.regions.size())
          : 0.0;
  extraction_span.Attr("regions",
                       static_cast<uint64_t>(result.regions.size()));
  return result;
}

}  // namespace surf
