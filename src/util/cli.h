#ifndef SURF_UTIL_CLI_H_
#define SURF_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace surf {

/// \brief Tiny command-line flag parser shared by the bench/example binaries.
///
/// Accepts `--name=value`, `--name value`, and bare boolean `--name`.
/// Unknown flags are collected so binaries can warn instead of aborting.
class CliFlags {
 public:
  CliFlags(int argc, char** argv);

  /// True if the flag was present at all.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  double GetDouble(const std::string& name, double def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace surf

#endif  // SURF_UTIL_CLI_H_
