#ifndef SURF_UTIL_STRING_UTIL_H_
#define SURF_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace surf {

/// Splits `s` on `delim` (keeps empty fields).
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// Formats a double with `precision` significant-looking decimals,
/// trimming trailing zeros ("1.30" -> "1.3", "2.00" -> "2").
std::string FormatDouble(double v, int precision = 4);

/// Joins strings with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Encodes a double as its IEEE-754 bit pattern in fixed-width lowercase
/// hex ("0x3ff0000000000000"). Total (NaN/Inf included) and exact — the
/// distributed wire format uses this where JSON numbers would lose
/// non-finite values or round.
std::string DoubleToHex(double v);

/// Inverse of DoubleToHex. Returns false on anything but a
/// "0x" + 16-hex-digit string.
bool DoubleFromHex(const std::string& s, double* out);

}  // namespace surf

#endif  // SURF_UTIL_STRING_UTIL_H_
