// Figure 12: surrogate model complexity (GBRT max_depth) vs training /
// cross-validation RMSE (left) and vs IoU (right), on the density d=3
// k=1 dataset.
//
// Paper: RMSE drops as depth grows; IoU tends upward with complexity but
// plateaus — "a good enough approximation with relatively less complex
// models".

#include <cstdio>

#include "bench_common.h"
#include "ml/grid_search.h"
#include "ml/metrics.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);

  SyntheticSpec spec;
  spec.dims = full ? 3 : 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 95;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
  const Bounds domain = ds.data.ComputeBounds(ds.region_cols);

  WorkloadParams wparams;
  wparams.num_queries = full ? 20000 : 6000;
  const RegionWorkload workload =
      GenerateWorkload(evaluator, domain, wparams);

  std::printf("Figure 12 — GBRT depth vs error and IoU "
              "(%s configuration)\n\n",
              full ? "paper" : "quick");
  TablePrinter table(
      {"max_depth", "train RMSE", "CV RMSE", "IoU", "leaves/tree"});
  CsvWriter csv({"max_depth", "train_rmse", "cv_rmse", "iou"});

  const std::vector<size_t> depths =
      full ? std::vector<size_t>{1, 2, 3, 5, 7, 9, 11, 13, 15}
           : std::vector<size_t>{1, 2, 4, 6, 9, 12};
  for (size_t depth : depths) {
    GbrtParams params;
    params.max_depth = depth;
    params.n_estimators = 80;

    const double cv_rmse = CrossValidatedRmse(
        workload.features, workload.targets, params, 3, 7, nullptr);

    SurrogateTrainOptions options;
    options.gbrt = params;
    auto surrogate = Surrogate::Train(workload, options);
    if (!surrogate.ok()) continue;

    FinderConfig config = bench::MakeFinderConfig(ds.spec.dims, 0, 120);
    SurfFinder finder(surrogate->AsStatisticFn(), workload.space, config);
    const FindResult result = finder.Find(bench::ThresholdFor(ds),
                                          ThresholdDirection::kAbove);
    std::vector<Region> regions;
    for (const auto& r : result.regions) regions.push_back(r.region);
    const double iou = bench::AverageIoU(regions, ds.gt_regions);

    table.AddRow({std::to_string(depth),
                  FormatDouble(surrogate->metrics().train_rmse, 1),
                  FormatDouble(cv_rmse, 1), FormatDouble(iou, 3),
                  "≤" + std::to_string(size_t{1} << depth)});
    csv.AddRow({static_cast<double>(depth),
                surrogate->metrics().train_rmse, cv_rmse, iou});
  }
  std::printf("%s", table.ToString().c_str());

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nExpected shape (paper Fig. 12): train RMSE falls "
              "monotonically with depth; CV RMSE falls then flattens "
              "(mild overfit at the tail); IoU improves with complexity "
              "but saturates early.\n");
  return 0;
}
