#include "ml/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

namespace surf {

namespace {

/// XGBoost structure score: -1/2 * G² / (H + λ) per node; gain is the
/// score reduction of a split. Leaf weight is -G / (H + λ).
inline double NodeScore(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}

}  // namespace

void RegressionTree::Fit(const std::vector<std::vector<uint16_t>>& binned,
                         const FeatureBinner& binner,
                         const std::vector<double>& grad,
                         const std::vector<double>& hess,
                         const std::vector<size_t>& rows,
                         const TreeParams& params, Rng* rng) {
  nodes_.clear();
  assert(!rows.empty());
  assert(grad.size() == hess.size());

  // Column subsampling (colsample_bytree).
  std::vector<size_t> features(binner.num_features());
  std::iota(features.begin(), features.end(), 0);
  if (params.colsample < 1.0 && rng != nullptr) {
    rng->Shuffle(&features);
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(params.colsample *
                               static_cast<double>(features.size())));
    features.resize(keep);
    std::sort(features.begin(), features.end());
  }

  std::vector<size_t> mutable_rows = rows;
  BuildNode(binned, binner, grad, hess, &mutable_rows, 0,
            mutable_rows.size(), 0, params, features);
}

int32_t RegressionTree::BuildNode(
    const std::vector<std::vector<uint16_t>>& binned,
    const FeatureBinner& binner, const std::vector<double>& grad,
    const std::vector<double>& hess, std::vector<size_t>* rows, size_t begin,
    size_t end, size_t depth, const TreeParams& params,
    const std::vector<size_t>& features) {
  const int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  double g_sum = 0.0, h_sum = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_sum += grad[(*rows)[i]];
    h_sum += hess[(*rows)[i]];
  }

  auto make_leaf = [&]() {
    nodes_[static_cast<size_t>(idx)].value =
        -g_sum / (h_sum + params.reg_lambda);
    return idx;
  };

  if (depth >= params.max_depth ||
      end - begin < 2 * params.min_samples_leaf ||
      h_sum < 2.0 * params.min_child_weight) {
    return make_leaf();
  }

  const SplitDecision split = FindBestSplit(binned, binner, grad, hess,
                                            *rows, begin, end, params,
                                            features);
  if (!split.found) return make_leaf();

  // Partition rows in place around the split bin.
  const auto& fcol = binned[split.feature];
  const auto pivot = std::partition(
      rows->begin() + static_cast<long>(begin),
      rows->begin() + static_cast<long>(end),
      [&](size_t r) { return fcol[r] <= split.bin; });
  const size_t mid = static_cast<size_t>(pivot - rows->begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  const int32_t left =
      BuildNode(binned, binner, grad, hess, rows, begin, mid, depth + 1,
                params, features);
  const int32_t right =
      BuildNode(binned, binner, grad, hess, rows, mid, end, depth + 1,
                params, features);

  Node& node = nodes_[static_cast<size_t>(idx)];
  node.left = left;
  node.right = right;
  node.feature = static_cast<uint32_t>(split.feature);
  node.threshold = split.threshold;
  return idx;
}

RegressionTree::SplitDecision RegressionTree::FindBestSplit(
    const std::vector<std::vector<uint16_t>>& binned,
    const FeatureBinner& binner, const std::vector<double>& grad,
    const std::vector<double>& hess, const std::vector<size_t>& rows,
    size_t begin, size_t end, const TreeParams& params,
    const std::vector<size_t>& features) const {
  SplitDecision best;

  double g_total = 0.0, h_total = 0.0;
  size_t n_total = 0;
  for (size_t i = begin; i < end; ++i) {
    g_total += grad[rows[i]];
    h_total += hess[rows[i]];
    ++n_total;
  }
  const double parent_score = NodeScore(g_total, h_total, params.reg_lambda);

  // Histogram accumulation per candidate feature.
  std::vector<double> bin_g, bin_h;
  std::vector<size_t> bin_n;
  for (size_t f : features) {
    const size_t n_bins = binner.num_bins(f);
    if (n_bins < 2) continue;
    bin_g.assign(n_bins, 0.0);
    bin_h.assign(n_bins, 0.0);
    bin_n.assign(n_bins, 0);
    const auto& fcol = binned[f];
    for (size_t i = begin; i < end; ++i) {
      const size_t r = rows[i];
      const uint16_t b = fcol[r];
      bin_g[b] += grad[r];
      bin_h[b] += hess[r];
      bin_n[b] += 1;
    }

    double g_left = 0.0, h_left = 0.0;
    size_t n_left = 0;
    for (size_t b = 0; b + 1 < n_bins; ++b) {
      g_left += bin_g[b];
      h_left += bin_h[b];
      n_left += bin_n[b];
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      const size_t n_right = n_total - n_left;
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      if (h_left < params.min_child_weight ||
          h_right < params.min_child_weight) {
        continue;
      }
      const double gain =
          0.5 * (NodeScore(g_left, h_left, params.reg_lambda) +
                 NodeScore(g_right, h_right, params.reg_lambda) -
                 parent_score);
      if (gain > best.gain + 1e-12 && gain > params.min_split_gain) {
        best.found = true;
        best.feature = f;
        best.bin = static_cast<uint16_t>(b);
        best.threshold = binner.BinUpperEdge(f, b);
        best.gain = gain;
      }
    }
  }
  return best;
}

double RegressionTree::Predict(const std::vector<double>& x) const {
  return Predict(x.data());
}

double RegressionTree::Predict(const double* x) const {
  assert(!nodes_.empty());
  int32_t idx = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.left < 0) return node.value;
    idx = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

size_t RegressionTree::num_leaves() const {
  size_t leaves = 0;
  for (const auto& n : nodes_) {
    if (n.left < 0) ++leaves;
  }
  return leaves;
}

size_t RegressionTree::Depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<int32_t, size_t>> stack{{0, 1}};
  size_t depth = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.left >= 0) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return depth;
}

void RegressionTree::Serialize(std::ostream& os) const {
  os << nodes_.size() << "\n";
  os.precision(17);
  for (const auto& n : nodes_) {
    os << n.left << " " << n.right << " " << n.feature << " " << n.threshold
       << " " << n.value << "\n";
  }
}

RegressionTree RegressionTree::Deserialize(std::istream& is) {
  RegressionTree tree;
  size_t n = 0;
  is >> n;
  tree.nodes_.resize(n);
  for (auto& node : tree.nodes_) {
    is >> node.left >> node.right >> node.feature >> node.threshold >>
        node.value;
  }
  return tree;
}

}  // namespace surf
