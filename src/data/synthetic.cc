#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace surf {

size_t SyntheticSpec::EffectiveGtTargetCount() const {
  if (gt_target_count > 0) return gt_target_count;
  return 2000 * std::max<size_t>(1, dims - 1);
}

std::string SyntheticSpec::Name() const {
  std::string type =
      statistic == SyntheticStatistic::kDensity ? "den" : "agg";
  return type + "_d" + std::to_string(dims) + "_k" +
         std::to_string(num_gt_regions);
}

namespace {

/// Places `k` non-overlapping GT boxes in the unit cube by rejection,
/// preferring extra separation so the multimodal peaks stay resolvable.
/// Low-dimensional spaces can make the preferred separation infeasible
/// (e.g. three 0.3-wide boxes in [0,1]), so the requirement decays with
/// failed attempts and a deterministic evenly-spaced layout serves as the
/// final fallback.
std::vector<Region> PlaceGtRegions(size_t dims, size_t k, double half_side,
                                   Rng* rng) {
  std::vector<Region> regions;
  const double margin = half_side + 0.02;
  int attempts = 0;
  double separation = 2.2 * half_side;
  while (regions.size() < k) {
    if (++attempts > 20000) {
      // Deterministic fallback: spread centers along the main diagonal.
      regions.clear();
      for (size_t i = 0; i < k; ++i) {
        const double t = k == 1 ? 0.5
                                : static_cast<double>(i) /
                                      static_cast<double>(k - 1);
        std::vector<double> center(
            dims, margin + t * (1.0 - 2.0 * margin));
        regions.emplace_back(std::move(center),
                             std::vector<double>(dims, half_side));
      }
      break;
    }
    if (attempts % 2000 == 0) separation *= 0.9;  // relax gradually
    std::vector<double> center(dims);
    for (auto& c : center) c = rng->Uniform(margin, 1.0 - margin);
    Region candidate(center, std::vector<double>(dims, half_side));
    bool ok = true;
    for (const auto& placed : regions) {
      if (candidate.OverlapVolume(placed) > 0.0 ||
          candidate.FlatDistance(placed) < separation) {
        ok = false;
        break;
      }
    }
    if (ok) regions.push_back(std::move(candidate));
  }
  return regions;
}

}  // namespace

SyntheticDataset SyntheticGenerator::Generate(const SyntheticSpec& spec) {
  assert(spec.dims >= 1);
  assert(spec.num_gt_regions >= 1);
  Rng rng(spec.seed);

  SyntheticDataset out;
  out.spec = spec;
  out.gt_regions =
      PlaceGtRegions(spec.dims, spec.num_gt_regions, spec.gt_half_side, &rng);

  const bool aggregate = spec.statistic == SyntheticStatistic::kAggregate;
  std::vector<std::string> names;
  for (size_t i = 0; i < spec.dims; ++i) {
    names.push_back("a" + std::to_string(i + 1));
    out.region_cols.push_back(i);
  }
  if (aggregate) {
    names.push_back("value");
    out.value_col = static_cast<int>(spec.dims);
  }
  // Injected points per GT region: enough to reach the target count on
  // top of the expected uniform background mass.
  size_t injected_per_region = spec.min_injected_points;
  if (!aggregate && !out.gt_regions.empty()) {
    const double target =
        static_cast<double>(spec.EffectiveGtTargetCount());
    const double bg_expected = out.gt_regions[0].Volume() *
                               static_cast<double>(spec.num_background);
    if (target > bg_expected) {
      injected_per_region = std::max<size_t>(
          spec.min_injected_points,
          static_cast<size_t>(target - bg_expected));
    }
  }

  Dataset data(names);
  data.Reserve(spec.num_background +
               spec.num_gt_regions * injected_per_region);

  auto in_any_gt = [&](const std::vector<double>& p) {
    for (const auto& r : out.gt_regions) {
      if (r.Contains(p)) return true;
    }
    return false;
  };

  // Background points: uniform over the unit cube. For aggregate datasets
  // the attribute follows N(mean_out, sd) unless the point falls inside a
  // GT box, where it follows N(mean_in, sd).
  std::vector<double> row(names.size());
  for (size_t n = 0; n < spec.num_background; ++n) {
    for (size_t i = 0; i < spec.dims; ++i) row[i] = rng.Uniform();
    if (aggregate) {
      const bool inside = in_any_gt(row);
      row[spec.dims] = rng.Gaussian(
          inside ? spec.value_mean_in : spec.value_mean_out, spec.value_sd);
    }
    data.AddRow(row);
  }

  // Density datasets additionally inject points uniformly inside each GT
  // box so its count dominates the background (the paper's "purposely more
  // dense" regions).
  if (!aggregate) {
    for (const auto& r : out.gt_regions) {
      for (size_t n = 0; n < injected_per_region; ++n) {
        for (size_t i = 0; i < spec.dims; ++i) {
          row[i] = rng.Uniform(r.lo(i), r.hi(i));
        }
        data.AddRow(row);
      }
    }
  }

  // Record the true statistic of each GT region.
  for (const auto& r : out.gt_regions) {
    if (aggregate) {
      double sum = 0.0;
      size_t count = 0;
      for (size_t n = 0; n < data.num_rows(); ++n) {
        bool inside = true;
        for (size_t i = 0; i < spec.dims; ++i) {
          const double v = data.Get(n, i);
          if (v < r.lo(i) || v > r.hi(i)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          sum += data.Get(n, spec.dims);
          ++count;
        }
      }
      out.gt_statistics.push_back(count > 0 ? sum / count : 0.0);
    } else {
      size_t count = 0;
      for (size_t n = 0; n < data.num_rows(); ++n) {
        bool inside = true;
        for (size_t i = 0; i < spec.dims; ++i) {
          const double v = data.Get(n, i);
          if (v < r.lo(i) || v > r.hi(i)) {
            inside = false;
            break;
          }
        }
        if (inside) ++count;
      }
      out.gt_statistics.push_back(static_cast<double>(count));
    }
  }

  out.data = std::move(data);
  return out;
}

std::vector<SyntheticSpec> SyntheticGenerator::PaperGrid(uint64_t base_seed) {
  std::vector<SyntheticSpec> specs;
  uint64_t seed = base_seed;
  for (SyntheticStatistic stat :
       {SyntheticStatistic::kDensity, SyntheticStatistic::kAggregate}) {
    for (size_t k : {1u, 3u}) {
      for (size_t d = 1; d <= 5; ++d) {
        SyntheticSpec spec;
        spec.dims = d;
        spec.num_gt_regions = k;
        spec.statistic = stat;
        spec.seed = seed++;
        // Paper: dataset sizes 7,500–12,500; deterministic spread here.
        spec.num_background = 7500 + 500 * ((seed * 2654435761u) % 11);
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

}  // namespace surf
