#ifndef SURF_API_API_V2_H_
#define SURF_API_API_V2_H_

/// \file
/// \brief The v2 public request surface: one versioned, validated
/// MineRequest/MineResponse pair shared by every front-end.
///
/// v1 exposed the service through a flat `surf::MineRequest` whose four
/// loose config structs (finder, topk, workload, surrogate) were
/// re-declared ad hoc by each front-end: the in-process structs, the JSON
/// codec, and the CLI query-file parser each validated (or failed to
/// validate) their own copy. v2 declares the surface once:
///
///  - an explicit `api_version` field, so clients can negotiate schemas
///    (see api.h and `GET /v1/version`);
///  - named, defaultable sub-recipes — QuerySpec (what to mine),
///    SearchRecipe (how to search), TrainingRecipe (the cache-keyed
///    model recipe), ExecutionPolicy (per-request runtime policy,
///    including the cancellation deadline);
///  - one `ValidateAndNormalize` pass every front-end routes through
///    before a request reaches the mining core.
///
/// The legacy flat struct remains the in-memory execution form;
/// `ToLegacy`/`FromLegacy` convert losslessly, so v1 callers keep working
/// bit-identically.

#include <memory>
#include <string>

#include "data/sharded.h"
#include "serve/mining_service.h"
#include "util/status.h"
#include "util/trace.h"

namespace surf {
namespace v2 {

/// Upper bound on ExecutionPolicy::shards (beyond this, per-shard
/// pruning metadata outweighs any realistic scan win). Identical to
/// the clamp ShardedDataset::Partition enforces at the allocation
/// site: validation rejects loudly, the data layer stays bounded even
/// for callers that bypass validation.
inline constexpr size_t kMaxExecutionShards = ShardingOptions::kMaxShards;

/// \brief Query formulation of the v2 surface.
enum class QueryKind {
  /// Regions whose statistic crosses a threshold (paper Problem 1).
  kThreshold,
  /// The k highest-statistic regions (§VI's alternative formulation).
  kTopK,
};

/// \brief What to mine: the statistic and the question asked of it.
struct QuerySpec {
  /// The statistic f whose interesting regions are sought.
  Statistic statistic;
  /// Threshold query (default) vs. k-highest-statistic query.
  QueryKind kind = QueryKind::kThreshold;
  /// The user's cut-off value y_R (threshold queries).
  double threshold = 0.0;
  /// Which side of the threshold is interesting.
  ThresholdDirection direction = ThresholdDirection::kAbove;
};

/// \brief How to search: the per-request GSO/extraction knobs. Not part
/// of the surrogate-cache key.
struct SearchRecipe {
  /// Threshold-mode finder configuration (GSO engine + extraction).
  FinderConfig finder;
  /// Top-k-mode configuration (used when kind == kTopK).
  TopKConfig topk;
};

/// \brief The model recipe: what the surrogate is trained on and how.
/// Together with the dataset and statistic this forms the cache key.
struct TrainingRecipe {
  /// Training-workload recipe.
  WorkloadParams workload;
  /// Surrogate training recipe.
  SurrogateTrainOptions surrogate;
};

/// \brief Per-request runtime policy: backend, validation, feedback, and
/// the cancellation deadline.
struct ExecutionPolicy {
  /// Which exact back-end labels the workload and validates results.
  BackendKind backend = BackendKind::kGridIndex;
  /// Row-range shards for the exact back-end. The default 1 — which is
  /// also what every v1 request implies — keeps the single `backend`
  /// evaluator and its bit-exact legacy behaviour; 2..4096 switches
  /// workload labelling and validation to the shard-parallel scan
  /// backend (ShardedScanEvaluator), with per-shard partial statistics
  /// merged in fixed shard order. 0 normalizes to 1. Like `backend`,
  /// this is execution policy, not part of the surrogate-cache key.
  size_t shards = 1;
  /// Distributed scatter-gather execution: workload labelling and
  /// validation run on the coordinator's configured remote workers
  /// (dist::ClusterEvaluator) instead of in process. The effective
  /// shard count is `shards` when >= 2, else one shard per worker.
  /// Rejected with FailedPrecondition when the service has no
  /// `--workers` configured. Execution policy, like `backend`/`shards`
  /// — not part of the surrogate-cache key.
  bool cluster = false;
  /// Fit/use the KDE data prior (Eq. 8 guidance).
  bool use_kde = true;
  /// Validate reported regions against the true statistic.
  bool validate = true;
  /// Feed validated (region, true value) pairs back into the cache
  /// entry's pending workload. Requires `validate` — the shared
  /// validation path rejects the combination otherwise.
  bool record_evaluations = false;
  /// Cooperative deadline for the whole request (training + search),
  /// seconds; 0 = none. An exceeded deadline cancels the request within
  /// one GSO iteration / boosting round and returns Cancelled with
  /// whatever partial results the search had.
  double deadline_seconds = 0.0;
  /// Record a hierarchical span trace of this request's pipeline stages
  /// and return it in the response (and via `GET /v1/trace/{id}` as
  /// Chrome trace-event JSON). Off by default; tracing never changes
  /// mining results, only observability output.
  bool trace = false;
};

/// \brief One v2 mining request.
struct MineRequest {
  /// Schema version of this request (kApiMinVersion..kApiVersion).
  int api_version = 2;
  /// Name the dataset was registered under.
  std::string dataset;
  /// What to mine.
  QuerySpec query;
  /// How to search.
  SearchRecipe search;
  /// The cache-keyed model recipe.
  TrainingRecipe training;
  /// Runtime policy.
  ExecutionPolicy execution;
};

/// \brief One v2 mining response.
struct MineResponse {
  /// Schema version of this response.
  int api_version = 2;
  /// Request outcome; Cancelled carries partial results + provenance.
  Status status = Status::OK();
  /// Threshold-mode result.
  FindResult result;
  /// Top-k-mode result.
  TopKResult topk;
  /// Whether an already-resident surrogate served this request.
  bool cache_hit = false;
  /// Declared pedigree of the model that served the request.
  SurrogateProvenance provenance;
  /// End-to-end request wall-time (training share included on misses).
  double total_seconds = 0.0;
  /// Span trace of the request's pipeline stages; non-null only when the
  /// request asked for tracing (ExecutionPolicy::trace).
  std::shared_ptr<const TraceContext> trace;
};

/// \brief The one validation/normalization pass every front-end routes a
/// request through before it reaches the mining core.
///
/// Rejects with InvalidArgument: unsupported `api_version`, empty
/// dataset, a statistic without region columns, non-finite threshold,
/// `record_evaluations` without `validate`, k = 0 top-k queries, an
/// empty training workload, and negative/non-finite deadlines.
Status ValidateAndNormalize(MineRequest* request);

/// Converts a v2 request to the legacy flat execution form (lossless;
/// the deadline lives in ExecutionPolicy only and is applied by the job
/// layer, not the legacy struct).
surf::MineRequest ToLegacy(const MineRequest& request);

/// Lifts a legacy flat request into the v2 surface (api_version = 1).
MineRequest FromLegacy(const surf::MineRequest& request);

/// Validates a legacy request through the same v2 path (the conversion
/// is lossless, so this is exactly `ValidateAndNormalize` on the lifted
/// form).
Status ValidateLegacy(const surf::MineRequest& request);

/// Wraps a legacy response in the v2 envelope.
MineResponse FromLegacyResponse(surf::MineResponse response);

}  // namespace v2
}  // namespace surf

#endif  // SURF_API_API_V2_H_
