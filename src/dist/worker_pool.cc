#include "dist/worker_pool.h"

#include <chrono>

#include "dist/http_client.h"
#include "util/retry.h"

namespace surf {
namespace dist {

namespace {

/// Health probes answer within milliseconds on a live worker; a short
/// budget keeps a dead member from stalling the scatter it precedes.
constexpr double kProbeTimeoutSeconds = 1.0;

Status StatusFromHttpCode(int code, const std::string& body) {
  const std::string detail = "worker answered " + std::to_string(code) +
                             (body.empty() ? "" : ": " + body);
  if (code >= 500) return Status::Internal(detail);
  switch (code) {
    case 404:
      return Status::NotFound(detail);
    case 408:
      return Status::TimedOut(detail);
    case 412:
      return Status::FailedPrecondition(detail);
    case 429:
      return Status::Unavailable(detail);
    default:
      return Status::InvalidArgument(detail);
  }
}

}  // namespace

WorkerPool::WorkerPool(const std::vector<std::string>& endpoints,
                       double rpc_timeout_seconds)
    : rpc_timeout_seconds_(rpc_timeout_seconds) {
  for (const std::string& endpoint : endpoints) {
    auto worker = std::make_unique<Worker>();
    worker->endpoint = endpoint;
    const Status parsed =
        ParseEndpoint(endpoint, &worker->host, &worker->port);
    if (!parsed.ok() && status_.ok()) status_ = parsed;
    workers_.push_back(std::move(worker));
  }
}

size_t WorkerPool::ProbeUnhealthy(const CancelToken& cancel) {
  size_t healthy = 0;
  for (auto& worker : workers_) {
    if (worker->healthy.load(std::memory_order_relaxed)) {
      ++healthy;
      continue;
    }
    auto reply = HttpGet(worker->host, worker->port, "/healthz",
                         kProbeTimeoutSeconds, cancel);
    if (reply.ok() && reply->status_code == 200) {
      worker->healthy.store(true, std::memory_order_relaxed);
      ++healthy;
    }
  }
  return healthy;
}

std::vector<size_t> WorkerPool::HealthyWorkers() const {
  std::vector<size_t> healthy;
  healthy.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->healthy.load(std::memory_order_relaxed)) {
      healthy.push_back(i);
    }
  }
  return healthy;
}

StatusOr<std::string> WorkerPool::Post(size_t i, const std::string& target,
                                       const std::string& body,
                                       const CancelToken& cancel) {
  Worker* worker = workers_[i].get();
  const auto started = std::chrono::steady_clock::now();
  auto reply = HttpPost(worker->host, worker->port, target, body,
                        rpc_timeout_seconds_, cancel);
  if (!reply.ok()) {
    // Transport-level failure (refused, reset, timed out): the member is
    // suspect. A *cancelled* call says nothing about the worker.
    if (reply.status().code() != StatusCode::kCancelled) MarkUnhealthy(i);
    return reply.status();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  RecordLatency(worker, seconds);
  if (reply->status_code != 200) {
    const Status mapped = StatusFromHttpCode(reply->status_code, reply->body);
    // An HTTP-level transient (overload, internal error) also counts
    // against health; request-shaped rejections (400/404/412) do not —
    // the worker is fine, the request is not.
    if (IsRetriableStatus(mapped)) MarkUnhealthy(i);
    return mapped;
  }
  return std::move(reply->body);
}

void WorkerPool::RecordLatency(Worker* worker, double seconds) {
  size_t bucket = kWorkerLatencyBucketBounds.size();
  for (size_t b = 0; b < kWorkerLatencyBucketBounds.size(); ++b) {
    if (seconds <= kWorkerLatencyBucketBounds[b]) {
      bucket = b;
      break;
    }
  }
  worker->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  worker->latency_sum_ns.fetch_add(
      static_cast<uint64_t>(seconds * 1e9), std::memory_order_relaxed);
  worker->latency_count.fetch_add(1, std::memory_order_relaxed);
}

WorkerPool::Figures WorkerPool::Snapshot() const {
  Figures figures;
  figures.shard_retries = shard_retries_.load(std::memory_order_relaxed);
  figures.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerFigures w;
    w.endpoint = worker->endpoint;
    w.healthy = worker->healthy.load(std::memory_order_relaxed);
    for (size_t b = 0; b < w.buckets.size(); ++b) {
      w.buckets[b] = worker->buckets[b].load(std::memory_order_relaxed);
    }
    w.latency_sum_seconds =
        static_cast<double>(
            worker->latency_sum_ns.load(std::memory_order_relaxed)) /
        1e9;
    w.latency_count = worker->latency_count.load(std::memory_order_relaxed);
    figures.workers.push_back(std::move(w));
  }
  return figures;
}

}  // namespace dist
}  // namespace surf
