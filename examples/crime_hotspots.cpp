// Crime hot-spots: the paper's §V-C qualitative experiment over a
// (simulated) Chicago-crimes spatial dataset.
//
// SuRF is asked for regions whose incident count exceeds the 3rd quartile
// of the region-count distribution (y_R = Q3, estimated by sampling random
// regions — paper Fig. 5). The example prints the mined regions, checks
// them against the true counts, and reports the compliance rate the paper
// quotes (100 % of proposed regions satisfied f > y_R).
//
// Run:  ./build/examples/crime_hotspots [--points N] [--csv out.csv]

#include <cstdio>

#include "core/surf.h"
#include "data/crimes_sim.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  surf::CliFlags flags(argc, argv);

  // 1. Simulated crimes data: Gaussian hot-spots over a uniform city.
  surf::CrimesSimSpec spec;
  spec.num_points = static_cast<size_t>(flags.GetInt("points", 40000));
  const surf::CrimesDataset crimes = surf::SimulateCrimes(spec);
  std::printf("crimes: %zu incidents, %zu hot-spots planted\n",
              crimes.data.num_rows(), crimes.hotspots.size());

  // 2. SuRF over the COUNT statistic on (x, y).
  surf::SurfOptions options;
  options.workload.num_queries = 10000;
  options.finder.gso.num_glowworms = 150;
  options.finder.gso.max_iterations = 120;
  auto surf_or = surf::Surf::Build(&crimes.data,
                                   surf::Statistic::Count({0, 1}), options);
  if (!surf_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 surf_or.status().ToString().c_str());
    return 1;
  }
  const surf::Surf& pipeline = *surf_or;

  // 3. Threshold = Q3 of the statistic over random regions (paper: y_R =
  //    the 3rd quartile of a random set of regions).
  const surf::Ecdf ecdf = pipeline.SampleStatisticEcdf(2000, 77);
  const double q3 = ecdf.Quantile(0.75);
  std::printf("region-count quartiles: Q1=%.0f  median=%.0f  Q3=%.0f\n",
              ecdf.Quantile(0.25), ecdf.Quantile(0.5), q3);

  const surf::FindResult result =
      pipeline.FindRegions(q3, surf::ThresholdDirection::kAbove);

  surf::TablePrinter table({"region", "center", "half-size", "estimate",
                            "true count", "complies f>Q3"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& r = result.regions[i];
    table.AddRow({"#" + std::to_string(i + 1),
                  "(" + surf::FormatDouble(r.region.center(0), 2) + "," +
                      surf::FormatDouble(r.region.center(1), 2) + ")",
                  "(" + surf::FormatDouble(r.region.half_length(0), 2) +
                      "," + surf::FormatDouble(r.region.half_length(1), 2) +
                      ")",
                  surf::FormatDouble(r.estimate, 0),
                  surf::FormatDouble(r.true_value, 0),
                  r.complies_true ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("compliance with the true f: %.0f%% of %zu regions "
              "(mined in %.2fs)\n",
              100.0 * result.report.true_compliance, result.regions.size(),
              result.report.seconds);

  // 4. Optional heat-map dump (Fig. 5's surrogate-vs-true panels).
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    surf::CsvWriter csv({"x", "y", "surrogate", "true"});
    const double half = 0.05;
    for (int gx = 0; gx < 20; ++gx) {
      for (int gy = 0; gy < 20; ++gy) {
        const double cx = (gx + 0.5) / 20.0, cy = (gy + 0.5) / 20.0;
        const surf::Region cell({cx, cy}, {half, half});
        csv.AddRow({cx, cy, pipeline.surrogate().Predict(cell),
                    pipeline.evaluator().Evaluate(cell)});
      }
    }
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("heat-map written to %s\n", csv_path.c_str());
  }
  return 0;
}
