#ifndef SURF_CORE_SURROGATE_H_
#define SURF_CORE_SURROGATE_H_

/// \file
/// \brief Surrogate models f̂ ≈ f: training, batched evaluation, warm starts, persistence.

#include <memory>
#include <string>

#include "core/workload.h"
#include "ml/gbrt.h"
#include "ml/grid_search.h"
#include "ml/regressor.h"
#include "opt/objective.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief How to train a surrogate (paper §IV, §V-E).
struct SurrogateTrainOptions {
  /// Base GBRT parameters (used directly when hypertune == false, and as
  /// the non-swept defaults of the grid search otherwise).
  GbrtParams gbrt;
  /// Run GridSearchCV over `grid` before the final fit (§V-E's 144-combo
  /// sweep; expensive — the paper's Fig. 6 quantifies by how much).
  bool hypertune = false;
  /// Hyper-parameter grid swept when `hypertune` is on.
  GridSearchSpace grid;
  /// Cross-validation folds of the hypertune sweep.
  size_t cv_folds = 3;
  /// Fraction of the workload held out to report the out-of-sample RMSE
  /// (the error Fig. 11 correlates with IoU).
  double test_fraction = 0.2;
  /// Seed of the train/test split (and the grid search's folds).
  uint64_t seed = 21;
};

/// \brief Quality/cost record of a trained surrogate.
struct SurrogateMetrics {
  /// RMSE on the training split.
  double train_rmse = 0.0;
  /// RMSE on the held-out test split (out-of-sample fidelity).
  double test_rmse = 0.0;
  /// Training wall-time in seconds (cumulative across warm starts).
  double train_seconds = 0.0;
  /// Labelled examples the model has been fitted on.
  size_t num_train_examples = 0;
  /// Winning hyper-parameters (== the requested ones when not hypertuned).
  GbrtParams chosen_params;
  /// Whether a GridSearchCV sweep preceded the final fit.
  bool hypertuned = false;
};

/// \brief A trained surrogate model f̂ ≈ f (paper Def. 3 / §IV).
///
/// Wraps any `Regressor` over the [x, l] feature encoding. The default
/// training path fits the GBRT (the paper's XGBoost stand-in); the generic
/// path accepts ridge/k-NN models for the surrogate-class ablation.
class Surrogate {
 public:
  /// An untrained placeholder; call Train/TrainWithModel/Load to fit.
  Surrogate() = default;

  /// Trains the default GBRT surrogate on a workload. When
  /// `options.hypertune` is set, runs GridSearchCV first (parallelized
  /// over `pool` if provided). `cancel` is polled between boosting
  /// rounds: a fired token aborts the fit and returns Cancelled within
  /// one round. A non-null `trace` records hypertune/boosting spans;
  /// tracing never changes the fitted model.
  static StatusOr<Surrogate> Train(const RegionWorkload& workload,
                                   const SurrogateTrainOptions& options,
                                   ThreadPool* pool = nullptr,
                                   CancelToken cancel = {},
                                   TraceContext* trace = nullptr);

  /// Trains a caller-supplied regressor instead (ablation path). The
  /// model must be unfitted; ownership transfers.
  static StatusOr<Surrogate> TrainWithModel(
      std::unique_ptr<Regressor> model, const RegionWorkload& workload,
      double test_fraction, uint64_t seed);

  /// ŷ = f̂(x, l).
  double Predict(const Region& region) const;

  /// Batched ŷ for a whole population of regions: one feature-matrix fill
  /// plus one blocked PredictBatch instead of per-region feature vectors
  /// and tree walks. Element i corresponds to regions[i].
  std::vector<double> EvaluateMany(const std::vector<Region>& regions) const;

  /// Folds freshly observed region evaluations into the deployed model by
  /// warm-start boosting (`extra_trees` additional rounds fitted to the
  /// current residuals on the new batch). This is the "models will be
  /// trained once and successively used" deployment story (§V-D) extended
  /// with cheap periodic refreshes — no full retrain. GBRT models only.
  Status Update(const RegionWorkload& fresh_workload, size_t extra_trees);

  /// Copy-on-write variant of Update for the serving layer: deep-copies
  /// the GBRT ensemble, warm-start-boosts the copy on `fresh_workload`
  /// (`extra_trees` rounds against the current residuals), and returns the
  /// refreshed surrogate. `*this` is untouched, so readers holding the old
  /// model keep serving consistent results until the caller swaps the new
  /// one in. A 20 % slice of the fresh batch is held out to re-measure
  /// `metrics().test_rmse` for the refreshed model (batches smaller than
  /// 5 train whole and keep the previous figure). GBRT models only.
  StatusOr<Surrogate> WarmStarted(const RegionWorkload& fresh_workload,
                                  size_t extra_trees) const;

  /// Adapter feeding the optimization objective.
  StatisticFn AsStatisticFn() const;

  /// Batched adapter: lets optimizers score an entire swarm per call.
  BatchStatisticFn AsBatchStatisticFn() const;

  /// Quality/cost record of the training run.
  const SurrogateMetrics& metrics() const { return metrics_; }
  /// The solution space the surrogate was trained over.
  const RegionSolutionSpace& space() const { return space_; }
  /// The statistic the surrogate approximates.
  const Statistic& statistic() const { return statistic_; }
  /// Data dimensionality d (feature width is 2d).
  size_t dims() const { return space_.dims(); }
  /// Whether a fitted model is attached.
  bool trained() const { return model_ != nullptr && model_->trained(); }
  /// The underlying regressor.
  const Regressor& model() const { return *model_; }

  /// Persists the surrogate (GBRT models only; other regressors return
  /// FailedPrecondition).
  Status Save(const std::string& path) const;
  /// Loads a surrogate saved by Save.
  static StatusOr<Surrogate> Load(const std::string& path);

 private:
  std::shared_ptr<Regressor> model_;
  RegionSolutionSpace space_;
  Statistic statistic_;
  SurrogateMetrics metrics_;
};

}  // namespace surf

#endif  // SURF_CORE_SURROGATE_H_
