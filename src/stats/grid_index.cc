#include "stats/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace surf {

GridIndexEvaluator::GridIndexEvaluator(const Dataset* data, Statistic stat,
                                       size_t cells_per_dim)
    : data_(data), stat_(std::move(stat)) {
  assert(data_ != nullptr);
  assert(data_->num_rows() > 0);
  cells_per_dim_ = std::clamp<size_t>(cells_per_dim, 1, 64);

  // Guard against combinatorial cell explosion in high dimensions: cap the
  // total cell count at ~2^20 by shrinking the per-dimension resolution.
  const size_t d = stat_.dims();
  while (cells_per_dim_ > 1 &&
         std::pow(static_cast<double>(cells_per_dim_),
                  static_cast<double>(d)) > double(1 << 20)) {
    cells_per_dim_ /= 2;
  }

  bounds_ = data_->ComputeBounds(stat_.region_cols);

  size_t total = 1;
  for (size_t i = 0; i < d; ++i) total *= cells_per_dim_;
  cells_.resize(total);

  const std::vector<double>* values =
      stat_.needs_value_column()
          ? &data_->column(static_cast<size_t>(stat_.value_col))
          : nullptr;

  std::vector<size_t> coords(d);
  for (size_t r = 0; r < data_->num_rows(); ++r) {
    for (size_t j = 0; j < d; ++j) {
      coords[j] = CoordOf(data_->column(stat_.region_cols[j])[r], j);
    }
    Cell& cell = cells_[CellIndex(coords)];
    cell.rows.push_back(static_cast<uint32_t>(r));
    cell.count += 1;
    if (values) {
      const double v = (*values)[r];
      cell.sum += v;
      cell.sum_sq += v * v;
      if (stat_.kind == StatisticKind::kLabelRatio &&
          v == stat_.label_value) {
        cell.matches += 1;
      }
    }
  }
}

size_t GridIndexEvaluator::CoordOf(double v, size_t dim) const {
  const double extent = bounds_.Extent(dim);
  if (extent <= 0.0) return 0;
  double t = (v - bounds_.lo(dim)) / extent;
  t = std::clamp(t, 0.0, 1.0);
  size_t c = static_cast<size_t>(t * static_cast<double>(cells_per_dim_));
  return std::min(c, cells_per_dim_ - 1);
}

size_t GridIndexEvaluator::CellIndex(const std::vector<size_t>& coords) const {
  size_t idx = 0;
  for (size_t j = 0; j < coords.size(); ++j) {
    idx = idx * cells_per_dim_ + coords[j];
  }
  return idx;
}

double GridIndexEvaluator::EvaluateImpl(const Region& region,
                                        const CancelToken& /*cancel*/) const {
  const size_t d = stat_.dims();
  assert(region.dims() == d);

  // Cell coordinate range intersecting the query on each dimension, and
  // whether a coordinate slab is fully covered.
  std::vector<size_t> lo_c(d), hi_c(d);
  for (size_t j = 0; j < d; ++j) {
    if (region.hi(j) < bounds_.lo(j) || region.lo(j) > bounds_.hi(j)) {
      // Disjoint from the data's bounding box: empty result.
      StatisticAccumulator acc(stat_);
      return acc.Finalize();
    }
    lo_c[j] = CoordOf(region.lo(j), j);
    hi_c[j] = CoordOf(region.hi(j), j);
  }

  StatisticAccumulator acc(stat_);
  // The median cannot use pre-aggregated cell blocks; every intersecting
  // cell is scanned so the quantile sketch sees each raw value.
  const bool block_mergeable = stat_.kind != StatisticKind::kMedian;
  const std::vector<double>* values =
      stat_.needs_value_column()
          ? &data_->column(static_cast<size_t>(stat_.value_col))
          : nullptr;

  auto cell_fully_covered = [&](const std::vector<size_t>& coords) {
    for (size_t j = 0; j < d; ++j) {
      const double w = bounds_.Extent(j) / static_cast<double>(cells_per_dim_);
      const double cell_lo =
          bounds_.lo(j) + w * static_cast<double>(coords[j]);
      const double cell_hi = cell_lo + w;
      if (cell_lo < region.lo(j) || cell_hi > region.hi(j)) return false;
    }
    return true;
  };

  auto scan_cell = [&](const Cell& cell) {
    for (uint32_t r : cell.rows) {
      bool inside = true;
      for (size_t j = 0; j < d; ++j) {
        const double v = data_->column(stat_.region_cols[j])[r];
        if (v < region.lo(j) || v > region.hi(j)) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      acc.Add(values ? (*values)[r] : 0.0);
    }
  };

  // Odometer over the intersecting cell ranges.
  std::vector<size_t> coords = lo_c;
  for (;;) {
    const Cell& cell = cells_[CellIndex(coords)];
    if (!cell.rows.empty()) {
      if (block_mergeable && cell_fully_covered(coords)) {
        acc.AddBlock(cell.count, cell.sum, cell.sum_sq, cell.matches);
      } else {
        scan_cell(cell);
      }
    }
    // Advance odometer.
    size_t j = d;
    while (j > 0) {
      --j;
      if (coords[j] < hi_c[j]) {
        ++coords[j];
        for (size_t k = j + 1; k < d; ++k) coords[k] = lo_c[k];
        break;
      }
      if (j == 0) return acc.Finalize();
    }
    if (d == 0) break;
  }
  return acc.Finalize();
}

}  // namespace surf
