#ifndef SURF_BENCH_BENCH_COMMON_H_
#define SURF_BENCH_BENCH_COMMON_H_

// Shared harness pieces for the paper-reproduction benches: the four
// comparison methods (SuRF / Naive / PRIM / f+GlowWorm) wired exactly as
// §V-A describes, plus the IoU scoring protocol of §V-B.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/surf.h"
#include "data/synthetic.h"
#include "opt/naive_search.h"
#include "prim/prim.h"
#include "util/stopwatch.h"

namespace surf {
namespace bench {

/// Output of one mining method on one dataset.
struct MinerOutput {
  std::vector<Region> regions;
  /// Mining wall-time (excludes one-off surrogate training, per the
  /// paper's Table I protocol: models are trained once, up front).
  double mine_seconds = 0.0;
  /// Surrogate training time where applicable.
  double train_seconds = 0.0;
  bool timed_out = false;
  double fraction_examined = 1.0;
};

/// The statistic a synthetic dataset is evaluated with.
inline Statistic StatisticFor(const SyntheticDataset& ds) {
  if (ds.spec.statistic == SyntheticStatistic::kAggregate) {
    return Statistic::Average(ds.region_cols,
                              static_cast<size_t>(ds.value_col));
  }
  return Statistic::Count(ds.region_cols);
}

/// The paper's thresholds: y_R = 1000 for density, 2 for aggregates.
inline double ThresholdFor(const SyntheticDataset& ds) {
  return ds.spec.statistic == SyntheticStatistic::kAggregate ? 2.0
                                                             : 1000.0;
}

/// The size regularizer per statistic family. Density uses the paper's
/// c = 4 (favouring fine-grained boxes). Aggregate statistics are flat
/// inside a planted region — the mean stays ~3 no matter how far a box
/// shrinks — so any c > 0 drives the optimum to the minimum box size;
/// recovering the *extent* of the region requires rewarding size, i.e.
/// the c < 0 end of the paper's "focus on larger/smaller areas" knob.
inline double CFor(const SyntheticDataset& ds) {
  return ds.spec.statistic == SyntheticStatistic::kAggregate ? -1.0 : 4.0;
}

/// §V-B scoring: per GT region, the best-matching proposal's IoU,
/// averaged over GT regions.
inline double AverageIoU(const std::vector<Region>& found,
                         const std::vector<Region>& gt) {
  if (found.empty() || gt.empty()) return 0.0;
  double total = 0.0;
  for (const auto& g : gt) {
    double best = 0.0;
    for (const auto& f : found) best = std::max(best, f.IoU(g));
    total += best;
  }
  return total / static_cast<double>(gt.size());
}

/// Common tuning for the GSO arms.
inline FinderConfig MakeFinderConfig(size_t dims, size_t glowworms,
                                     size_t iterations) {
  FinderConfig config;
  config.gso = GsoParams::PaperScaled(dims);
  if (glowworms > 0) config.gso.num_glowworms = glowworms;
  config.gso.max_iterations = iterations;
  return config;
}

/// SuRF: workload → surrogate → GSO (the full pipeline).
inline MinerOutput RunSurf(const SyntheticDataset& ds, size_t num_queries,
                           size_t glowworms, size_t iterations,
                           uint64_t seed = 1) {
  MinerOutput out;
  SurfOptions options;
  options.workload.num_queries = num_queries;
  options.workload.seed = seed;
  options.finder = MakeFinderConfig(ds.spec.dims, glowworms, iterations);
  options.finder.c = CFor(ds);
  options.validate_results = false;
  auto surf = Surf::Build(&ds.data, StatisticFor(ds), options);
  if (!surf.ok()) {
    std::fprintf(stderr, "RunSurf build failed: %s\n",
                 surf.status().ToString().c_str());
    return out;
  }
  out.train_seconds = surf->surrogate().metrics().train_seconds;
  const FindResult result =
      surf->FindRegions(ThresholdFor(ds), ThresholdDirection::kAbove);
  out.mine_seconds = result.report.seconds;
  for (const auto& r : result.regions) out.regions.push_back(r.region);
  return out;
}

/// f+GlowWorm: the same GSO engine (including the §III-B KDE guidance,
/// which belongs to the optimizer, not the surrogate) fed by the true
/// function instead of f̂.
inline MinerOutput RunFGso(const SyntheticDataset& ds,
                           const RegionEvaluator& evaluator,
                           size_t glowworms, size_t iterations) {
  MinerOutput out;
  const RegionSolutionSpace space = RegionSolutionSpace::ForBounds(
      ds.data.ComputeBounds(ds.region_cols), 0.01, 0.15);
  FinderConfig config =
      MakeFinderConfig(ds.spec.dims, glowworms, iterations);
  config.c = CFor(ds);
  SurfFinder finder(
      [&evaluator](const Region& r) { return evaluator.Evaluate(r); },
      space, config);

  // Same KDE prior SuRF's finder gets from Surf::Build.
  const Kde kde = FitDataKde(ds.data, ds.region_cols, 2000, 3);
  finder.SetKde(&kde);

  Stopwatch timer;
  const FindResult result =
      finder.Find(ThresholdFor(ds), ThresholdDirection::kAbove);
  out.mine_seconds = timer.ElapsedSeconds();
  for (const auto& r : result.regions) out.regions.push_back(r.region);
  return out;
}

/// Naive: exhaustive (n·m)^d grid against the true function.
inline MinerOutput RunNaive(const SyntheticDataset& ds,
                            const RegionEvaluator& evaluator,
                            size_t centers, size_t sizes,
                            double budget_seconds) {
  MinerOutput out;
  const RegionSolutionSpace space = RegionSolutionSpace::ForBounds(
      ds.data.ComputeBounds(ds.region_cols), 0.01, 0.15);
  ObjectiveConfig oconfig;
  oconfig.threshold = ThresholdFor(ds);
  oconfig.direction = ThresholdDirection::kAbove;
  oconfig.c = CFor(ds);
  const RegionObjective objective(
      [&evaluator](const Region& r) { return evaluator.Evaluate(r); },
      oconfig);
  NaiveSearchParams params;
  params.centers_per_dim = centers;
  params.sizes_per_dim = sizes;
  params.time_budget_seconds = budget_seconds;
  const NaiveSearch naive(params);
  const NaiveSearchResult result = naive.Run(objective, space);
  out.mine_seconds = result.elapsed_seconds;
  out.timed_out = result.timed_out;
  out.fraction_examined = result.FractionExamined();
  for (const auto& kept : SelectDistinctRegions(result.viable, 0.25, 16)) {
    out.regions.push_back(kept.region);
  }
  return out;
}

/// PRIM with the paper's §V-B settings (min support 0.01, threshold 2 for
/// aggregates; density gets a constant target, which is PRIM's documented
/// blind spot).
inline MinerOutput RunPrim(const SyntheticDataset& ds) {
  MinerOutput out;
  FeatureMatrix x(ds.region_cols.size());
  x.Reserve(ds.data.num_rows());
  std::vector<double> y;
  y.reserve(ds.data.num_rows());
  std::vector<double> row(ds.region_cols.size());
  const bool aggregate =
      ds.spec.statistic == SyntheticStatistic::kAggregate;
  for (size_t r = 0; r < ds.data.num_rows(); ++r) {
    for (size_t j = 0; j < ds.region_cols.size(); ++j) {
      row[j] = ds.data.Get(r, ds.region_cols[j]);
    }
    x.AddRow(row);
    y.push_back(aggregate
                    ? ds.data.Get(r, static_cast<size_t>(ds.value_col))
                    : 1.0);
  }
  PrimParams params;
  params.min_support = 0.01;
  params.max_boxes = std::max<size_t>(2, ds.spec.num_gt_regions);
  if (aggregate) params.target_threshold = 2.0;
  Stopwatch timer;
  const PrimResult result = Prim(params).Run(x, y);
  out.mine_seconds = timer.ElapsedSeconds();
  for (const auto& box : result.boxes) out.regions.push_back(box.region);
  return out;
}

}  // namespace bench
}  // namespace surf

#endif  // SURF_BENCH_BENCH_COMMON_H_
