#ifndef SURF_UTIL_THREAD_POOL_H_
#define SURF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace surf {

/// \brief Fixed-size worker pool used for parallel grid search and
/// cross-validation folds.
///
/// Tasks are plain `std::function<void()>`; callers coordinate results
/// through their own synchronization (typically a pre-sized output vector
/// indexed by task id, which needs no locking).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace surf

#endif  // SURF_UTIL_THREAD_POOL_H_
