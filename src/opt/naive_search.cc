#include "opt/naive_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stopwatch.h"

namespace surf {

NaiveSearchResult NaiveSearch::Run(const RegionObjective& objective,
                                   const RegionSolutionSpace& space) const {
  const size_t d = space.dims();
  const size_t n = std::max<size_t>(1, params_.centers_per_dim);
  const size_t m = std::max<size_t>(1, params_.sizes_per_dim);
  const size_t per_dim = n * m;

  NaiveSearchResult result;
  result.total_candidates = 1;
  for (size_t i = 0; i < d; ++i) {
    // Guard against overflow for large d.
    if (result.total_candidates > (UINT64_MAX / per_dim)) {
      result.total_candidates = UINT64_MAX;
      break;
    }
    result.total_candidates *= per_dim;
  }

  // Pre-compute the per-dimension candidate centers and half-lengths.
  std::vector<std::vector<double>> centers(d), lengths(d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t a = 0; a < n; ++a) {
      const double t = n == 1 ? 0.5
                              : static_cast<double>(a) /
                                    static_cast<double>(n - 1);
      centers[i].push_back(space.bounds.lo(i) + t * space.bounds.Extent(i));
    }
    for (size_t b = 0; b < m; ++b) {
      const double t = m == 1 ? 0.5
                              : static_cast<double>(b) /
                                    static_cast<double>(m - 1);
      lengths[i].push_back(space.min_half_length +
                           t * (space.max_half_length -
                                space.min_half_length));
    }
  }

  Stopwatch timer;
  std::vector<size_t> odo(d, 0);  // per-dim combined (center, size) index
  std::vector<double> center(d), half(d);
  for (;;) {
    // Decode the odometer into a region.
    for (size_t i = 0; i < d; ++i) {
      center[i] = centers[i][odo[i] / m];
      half[i] = lengths[i][odo[i] % m];
    }
    Region region(center, half);
    const FitnessValue fv = objective.Evaluate(region);
    ++result.examined;
    if (fv.valid) {
      ScoredRegion scored;
      scored.region = region;
      scored.fitness = fv.value;
      scored.statistic = objective.Statistic(region);
      result.viable.push_back(std::move(scored));
    }

    if (params_.time_budget_seconds > 0.0 &&
        timer.ElapsedSeconds() > params_.time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    if (params_.max_evaluations > 0 &&
        result.examined >= params_.max_evaluations) {
      result.timed_out = result.examined < result.total_candidates;
      break;
    }

    // Advance the odometer.
    size_t i = d;
    bool done = true;
    while (i > 0) {
      --i;
      if (odo[i] + 1 < per_dim) {
        ++odo[i];
        for (size_t k = i + 1; k < d; ++k) odo[k] = 0;
        done = false;
        break;
      }
    }
    if (done) break;
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<ScoredRegion> SelectDistinctRegions(
    std::vector<ScoredRegion> candidates, double max_iou,
    size_t max_regions) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ScoredRegion& a, const ScoredRegion& b) {
              return a.fitness > b.fitness;
            });
  std::vector<ScoredRegion> kept;
  for (auto& cand : candidates) {
    if (kept.size() >= max_regions) break;
    bool overlaps = false;
    for (const auto& k : kept) {
      if (cand.region.IoU(k.region) > max_iou) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(std::move(cand));
  }
  return kept;
}

}  // namespace surf
