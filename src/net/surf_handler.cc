#include "net/surf_handler.h"

#include <cmath>

#include "core/workload.h"
#include "util/stopwatch.h"

namespace surf {

namespace {

HttpResponse JsonResponse(int status_code, const JsonValue& body) {
  HttpResponse response;
  response.status_code = status_code;
  response.body = WriteJson(body) + "\n";
  return response;
}

HttpResponse StatusResponse(const Status& status) {
  return JsonErrorResponse(HttpStatusFromStatus(status),
                           StatusCodeName(status.code()), status.message());
}

}  // namespace

SurfHandler::SurfHandler(MiningService* service, ServerMetrics* metrics)
    : service_(service), metrics_(metrics) {
  routes_ = {
      {"GET", "/healthz", &SurfHandler::HandleHealthz},
      {"GET", "/metrics", &SurfHandler::HandleMetrics},
      {"GET", "/v1/cache/stats", &SurfHandler::HandleCacheStats},
      {"POST", "/v1/datasets", &SurfHandler::HandleRegisterDataset},
      {"POST", "/v1/mine", &SurfHandler::HandleMine},
      {"POST", "/v1/mine:batch", &SurfHandler::HandleMineBatch},
      {"POST", "/v1/evaluations", &SurfHandler::HandleEvaluations},
  };
}

HttpResponse SurfHandler::Handle(const HttpRequest& request) {
  // Strip any query string before matching; the API carries every
  // parameter in JSON bodies.
  std::string path = request.target;
  const size_t query = path.find('?');
  if (query != std::string::npos) path = path.substr(0, query);

  const Route* match = nullptr;
  bool path_known = false;
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    path_known = true;
    if (route.method == request.method) {
      match = &route;
      break;
    }
  }

  Stopwatch timer;
  metrics_->BeginRequest();
  HttpResponse response;
  if (match != nullptr) {
    response = (this->*(match->fn))(request);
  } else if (path_known) {
    response = JsonErrorResponse(405, "method_not_allowed",
                                 request.method + " not supported on " + path);
  } else {
    response = JsonErrorResponse(404, "unknown_route",
                                 "no handler for " + path);
  }
  metrics_->EndRequest();
  metrics_->RecordRequest(match != nullptr ? match->path : "unmatched",
                          response.status_code, timer.ElapsedSeconds());
  return response;
}

ColumnResolver SurfHandler::MakeResolver() const {
  MiningService* service = service_;
  return [service](const std::string& dataset, const std::string& column) {
    const Dataset* data = service->dataset(dataset);
    return data == nullptr ? -1 : data->ColumnIndex(column);
  };
}

HttpResponse SurfHandler::HandleHealthz(const HttpRequest&) {
  JsonValue body = JsonValue::Object();
  body.Set("status", JsonValue("ok"));
  body.Set("datasets",
           JsonValue(static_cast<double>(service_->dataset_names().size())));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleMetrics(const HttpRequest&) {
  const SurrogateCache::Stats stats = service_->cache().stats();
  ServerMetrics::CacheFigures cache;
  cache.hits = stats.hits;
  cache.misses = stats.misses;
  cache.evictions = stats.evictions;
  cache.stale_evictions = stats.stale_evictions;
  cache.entries = service_->cache().size();
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = metrics_->RenderPrometheus(cache);
  return response;
}

HttpResponse SurfHandler::HandleCacheStats(const HttpRequest&) {
  const SurrogateCache::Stats stats = service_->cache().stats();
  const uint64_t lookups = stats.hits + stats.misses;
  JsonValue body = JsonValue::Object();
  body.Set("hits", JsonValue(static_cast<double>(stats.hits)));
  body.Set("misses", JsonValue(static_cast<double>(stats.misses)));
  body.Set("evictions", JsonValue(static_cast<double>(stats.evictions)));
  body.Set("stale_evictions",
           JsonValue(static_cast<double>(stats.stale_evictions)));
  body.Set("entries", JsonValue(static_cast<double>(service_->cache().size())));
  body.Set("capacity",
           JsonValue(static_cast<double>(service_->cache().options().capacity)));
  body.Set("hit_ratio",
           JsonValue(lookups == 0 ? 0.0
                                  : static_cast<double>(stats.hits) /
                                        static_cast<double>(lookups)));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleRegisterDataset(const HttpRequest& request) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "dataset registration must be a JSON object");
  }
  const JsonValue* name = json->Find("name");
  if (name == nullptr || !name->is_string() ||
      name->string_value().empty()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "field 'name' (non-empty string) is required");
  }
  const JsonValue* path = json->Find("path");
  const JsonValue* rows = json->Find("rows");
  if ((path != nullptr) == (rows != nullptr)) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "provide exactly one of 'path' (CSV file) or 'rows' (inline data)");
  }

  Status registered = Status::OK();
  if (path != nullptr) {
    if (!path->is_string()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "field 'path' must be a string");
    }
    registered =
        service_->RegisterCsvDataset(name->string_value(), path->string_value());
  } else {
    const JsonValue* columns = json->Find("columns");
    if (columns == nullptr || !columns->is_array() || columns->size() == 0) {
      return JsonErrorResponse(
          400, "invalid_argument",
          "inline registration needs 'columns' (array of names)");
    }
    std::vector<std::string> column_names;
    for (const JsonValue& c : columns->array()) {
      if (!c.is_string()) {
        return JsonErrorResponse(400, "invalid_argument",
                                 "'columns' entries must be strings");
      }
      column_names.push_back(c.string_value());
    }
    if (!rows->is_array()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "field 'rows' must be an array of rows");
    }
    Dataset data(column_names);
    data.Reserve(rows->size());
    std::vector<double> row(column_names.size());
    for (const JsonValue& r : rows->array()) {
      if (!r.is_array() || r.size() != column_names.size()) {
        return JsonErrorResponse(
            400, "invalid_argument",
            "every row must be an array of " +
                std::to_string(column_names.size()) + " numbers");
      }
      for (size_t j = 0; j < row.size(); ++j) {
        const JsonValue& cell = r.array()[j];
        if (!cell.is_number()) {
          return JsonErrorResponse(400, "invalid_argument",
                                   "row cells must be numbers");
        }
        row[j] = cell.number_value();
      }
      data.AddRow(row);
    }
    registered = service_->RegisterDataset(name->string_value(), std::move(data));
  }
  if (!registered.ok()) return StatusResponse(registered);

  const Dataset* data = service_->dataset(name->string_value());
  JsonValue body = JsonValue::Object();
  body.Set("name", *name);
  body.Set("rows", JsonValue(static_cast<double>(data->num_rows())));
  body.Set("columns", JsonValue(static_cast<double>(data->num_cols())));
  return JsonResponse(201, body);
}

HttpResponse SurfHandler::HandleMine(const HttpRequest& request) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  const ColumnResolver resolver = MakeResolver();
  auto decoded = MineRequestFromJson(*json, &resolver);
  if (!decoded.ok()) return StatusResponse(decoded.status());

  const MineResponse response = service_->Mine(*decoded);
  if (!response.status.ok()) return StatusResponse(response.status);
  return JsonResponse(200, MineResponseToJson(response, decoded->mode));
}

HttpResponse SurfHandler::HandleMineBatch(const HttpRequest& request) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "batch body must be a JSON object");
  }
  const JsonValue* list = json->Find("requests");
  if (list == nullptr || !list->is_array() || list->size() == 0) {
    return JsonErrorResponse(400, "invalid_argument",
                             "field 'requests' (non-empty array) is required");
  }
  const ColumnResolver resolver = MakeResolver();
  std::vector<MineRequest> requests;
  requests.reserve(list->size());
  for (size_t i = 0; i < list->array().size(); ++i) {
    auto decoded = MineRequestFromJson(list->array()[i], &resolver);
    if (!decoded.ok()) {
      return JsonErrorResponse(
          400, "invalid_argument",
          "requests[" + std::to_string(i) +
              "]: " + decoded.status().message());
    }
    requests.push_back(std::move(decoded).value());
  }

  const std::vector<MineResponse> responses = service_->MineBatch(requests);
  size_t failed = 0;
  JsonValue encoded = JsonValue::Array();
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].status.ok()) ++failed;
    encoded.Append(MineResponseToJson(responses[i], requests[i].mode));
  }
  JsonValue body = JsonValue::Object();
  body.Set("responses", std::move(encoded));
  body.Set("total", JsonValue(static_cast<double>(responses.size())));
  body.Set("failed", JsonValue(static_cast<double>(failed)));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleEvaluations(const HttpRequest& request) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "evaluations body must be a JSON object");
  }
  const JsonValue* keyed = json->Find("request");
  if (keyed == nullptr) {
    return JsonErrorResponse(400, "invalid_argument",
                             "field 'request' (cache-keying MineRequest) is "
                             "required");
  }
  const ColumnResolver resolver = MakeResolver();
  auto decoded = MineRequestFromJson(*keyed, &resolver);
  if (!decoded.ok()) return StatusResponse(decoded.status());

  const JsonValue* evaluations = json->Find("evaluations");
  if (evaluations == nullptr || !evaluations->is_array() ||
      evaluations->size() == 0) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "field 'evaluations' (non-empty array of {region, value}) is "
        "required");
  }

  const size_t dims = decoded->statistic.region_cols.size();
  RegionWorkload fresh;
  fresh.features = FeatureMatrix(2 * dims);
  fresh.statistic = decoded->statistic;
  for (size_t i = 0; i < evaluations->array().size(); ++i) {
    const JsonValue& entry = evaluations->array()[i];
    const std::string at = "evaluations[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return JsonErrorResponse(400, "invalid_argument",
                               at + " must be an object");
    }
    const JsonValue* region_json = entry.Find("region");
    const JsonValue* value = entry.Find("value");
    if (region_json == nullptr || value == nullptr || !value->is_number()) {
      return JsonErrorResponse(
          400, "invalid_argument",
          at + " needs 'region' and a numeric 'value'");
    }
    auto region = RegionFromJson(*region_json);
    if (!region.ok()) {
      return JsonErrorResponse(400, "invalid_argument",
                               at + ": " + region.status().message());
    }
    if (region->dims() != dims) {
      return JsonErrorResponse(
          400, "invalid_argument",
          at + ": region has " + std::to_string(region->dims()) +
              " dims but the statistic spans " + std::to_string(dims));
    }
    fresh.features.AddRow(RegionFeatures(*region));
    fresh.targets.push_back(value->number_value());
  }

  const Status appended = service_->AppendEvaluations(*decoded, fresh);
  if (!appended.ok()) return StatusResponse(appended);

  JsonValue body = JsonValue::Object();
  body.Set("appended", JsonValue(static_cast<double>(fresh.size())));
  // Report the entry's declared pedigree after the append, so clients
  // see pending counts and warm-start folds move.
  auto key = service_->KeyFor(*decoded);
  if (key.ok()) {
    if (auto entry = service_->cache().Peek(*key)) {
      body.Set("provenance", ProvenanceToJson(entry->provenance()));
    }
  }
  return JsonResponse(200, body);
}

}  // namespace surf
