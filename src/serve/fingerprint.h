#ifndef SURF_SERVE_FINGERPRINT_H_
#define SURF_SERVE_FINGERPRINT_H_

/// \file
/// \brief Content fingerprints and cache keys for the serving layer.

#include <cstdint>
#include <string>

#include "core/surrogate.h"
#include "core/workload.h"
#include "data/dataset.h"
#include "stats/statistic.h"

namespace surf {

/// \brief Streaming 64-bit FNV-1a hasher used to fingerprint cache-key
/// components. Deterministic across platforms (doubles are hashed by bit
/// pattern, sizes as fixed-width integers).
class Fingerprinter {
 public:
  /// Feeds one unsigned integer into the hash.
  void Add(uint64_t v);
  /// Feeds one double by bit pattern (so -0.0 != 0.0 is preserved and no
  /// locale/formatting ambiguity sneaks in).
  void Add(double v);
  /// Feeds a string (length-prefixed, so "ab"+"c" != "a"+"bc").
  void Add(const std::string& s);

  /// The accumulated 64-bit digest.
  uint64_t digest() const { return state_; }

 private:
  void AddByte(unsigned char b);

  uint64_t state_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

/// Content fingerprint of a dataset: dimensions, column names,
/// per-column full-pass aggregates (sum/min/max — any single-cell edit
/// moves the hash), and a deterministic stride-sample of every column.
/// One O(N·d) pass; MiningService computes it once at registration and
/// reuses the cached value per request.
uint64_t FingerprintDataset(const Dataset& data);

/// Fingerprint of a statistic task (kind + region columns + value column
/// + label).
uint64_t FingerprintStatistic(const Statistic& statistic);

/// Fingerprint of the workload recipe that determines both the training
/// set and the solution space the surrogate is valid over (query count,
/// length fractions, seed, undefined-drop policy).
uint64_t FingerprintWorkloadParams(const WorkloadParams& params);

/// Fingerprint of the surrogate training configuration: every
/// model-relevant GBRT hyper-parameter plus the hypertune/CV/test-split
/// settings. Runtime-only knobs (`num_threads`) are deliberately
/// excluded — the engine is bit-identical for any thread count.
uint64_t FingerprintTrainOptions(const SurrogateTrainOptions& options);

/// \brief Cache key of one servable surrogate: which data, which
/// statistic, which solution space / training workload, which model
/// recipe. Two requests with equal keys are guaranteed (up to hash
/// collision) to want the same trained model.
struct SurrogateKey {
  /// FingerprintDataset of the registered dataset.
  uint64_t dataset = 0;
  /// FingerprintStatistic of the statistic task.
  uint64_t statistic = 0;
  /// FingerprintWorkloadParams of the training-workload recipe.
  uint64_t workload = 0;
  /// FingerprintTrainOptions of the model recipe.
  uint64_t model = 0;

  /// Component-wise equality.
  bool operator==(const SurrogateKey& other) const = default;

  /// Mixes the four components into one table-hash value.
  uint64_t Hash() const;

  /// Compact hex form for logs ("d=… s=… w=… m=…").
  std::string ToString() const;
};

/// \brief Std-container adapter for SurrogateKey.
struct SurrogateKeyHash {
  /// Forwards to SurrogateKey::Hash.
  size_t operator()(const SurrogateKey& key) const {
    return static_cast<size_t>(key.Hash());
  }
};

/// Builds the full cache key for (dataset, statistic, workload recipe,
/// training options).
SurrogateKey MakeSurrogateKey(const Dataset& data, const Statistic& statistic,
                              const WorkloadParams& workload,
                              const SurrogateTrainOptions& options);

}  // namespace surf

#endif  // SURF_SERVE_FINGERPRINT_H_
