#ifndef SURF_CORE_WORKLOAD_H_
#define SURF_CORE_WORKLOAD_H_

/// \file
/// \brief Past-region-evaluation workloads: generation, persistence, merging.

#include <cstdint>

#include "geom/bounds.h"
#include "ml/matrix.h"
#include "opt/solution_space.h"
#include "stats/evaluator.h"
#include "util/cancel.h"
#include "util/trace.h"

namespace surf {

/// \brief Past-region-evaluation workload parameters (paper §V-A: centers
/// uniform at random across the data space, side lengths covering 1–15 %
/// of the data domain).
struct WorkloadParams {
  /// Number of past evaluations to draw and label.
  size_t num_queries = 10000;
  /// Smallest half side-length, as a fraction of the per-dimension extent.
  double min_length_frac = 0.01;
  /// Largest half side-length, as a fraction of the per-dimension extent.
  double max_length_frac = 0.15;
  /// Drop queries whose statistic is undefined (NaN — e.g. the mean of an
  /// empty region). The surviving count can therefore be slightly lower
  /// than num_queries.
  bool drop_undefined = true;
  /// Seed of the random region draw.
  uint64_t seed = 5;
};

/// \brief A set of past function evaluations Q = {[x_m, l_m] → y_m}
/// (paper §IV) in ML-ready form: one feature row [x_1..x_d, l_1..l_d] per
/// region, with the statistic value as the target.
struct RegionWorkload {
  /// One [x_1..x_d, l_1..l_d] row per past evaluation.
  FeatureMatrix features;
  /// The statistic value y_m of each row.
  std::vector<double> targets;
  /// The solution space the queries were drawn from.
  RegionSolutionSpace space;
  /// The statistic that produced the targets.
  Statistic statistic;

  /// Number of past evaluations.
  size_t size() const { return features.num_rows(); }

  /// Region form of row i.
  Region RegionAt(size_t i) const;
};

/// Flattens a region into the surrogate's feature encoding [x, l].
std::vector<double> RegionFeatures(const Region& region);

/// Draws `params.num_queries` random regions over the evaluator's data
/// domain and labels each with the true statistic. This simulates the
/// "past queries issued by analysts/applications" SuRF learns from.
/// `cancel` is polled periodically during labelling; a fired token stops
/// the draw early and returns the (incomplete) workload so far — callers
/// that care check the token afterwards. A non-null `trace` records a
/// workload_gen span with per-batch labelling children (and, on the
/// sharded backend, per-batch prune/block/scan counter attributes);
/// tracing never changes the generated workload.
RegionWorkload GenerateWorkload(const RegionEvaluator& evaluator,
                                const Bounds& domain,
                                const WorkloadParams& params,
                                CancelToken cancel = {},
                                TraceContext* trace = nullptr);

/// Persists a workload as CSV (columns x1..xd, l1..ld, y) so real past
/// query logs can be replayed into surrogate training. The solution-space
/// metadata is stored in a sidecar header line.
Status SaveWorkload(const RegionWorkload& workload,
                    const std::string& path);

/// Loads a workload saved by SaveWorkload. The statistic description is
/// not persisted (a query log knows its shape, not its provenance);
/// callers re-attach it if needed.
StatusOr<RegionWorkload> LoadWorkload(const std::string& path);

/// Merges `extra` into `base` (same feature width required).
Status MergeWorkloads(RegionWorkload* base, const RegionWorkload& extra);

}  // namespace surf

#endif  // SURF_CORE_WORKLOAD_H_
