#ifndef SURF_SCHED_PRIORITY_SCHEDULER_H_
#define SURF_SCHED_PRIORITY_SCHEDULER_H_

/// \file
/// \brief Deadline-aware two-class job scheduler for the HTTP server.
///
/// Replaces FIFO job execution on the serving path. Jobs carry a class
/// (interactive or batch) and a deadline; each class has its own
/// heap-ordered ready queue (earliest deadline first, FIFO within a
/// tie) and its own worker threads. The split is strict by design:
///
///  - Interactive workers run only interactive jobs, so a batch flood
///    can never occupy them (no priority inversion through worker
///    starvation).
///  - Batch workers run only batch jobs and drop their OS scheduling
///    priority (nice +19 on Linux), so even a *running* batch job
///    yields the CPU to interactive work — the kernel preempts it —
///    instead of timeslicing 50/50 against latency-sensitive requests.
///    The batch worker count is therefore also the batch concurrency
///    cap.
///
/// Load shedding: when the ready backlog reaches `max_queue_depth`,
/// the scheduler abandons the cheapest work first — the not-yet-started
/// batch job with the farthest deadline (zero sunk cost, least urgent).
/// A shed job's `shed` callback runs instead of `run`, so the transport
/// can still answer the client (503) rather than time it out.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace surf::sched {

/// \brief Scheduling class of a job.
enum class JobClass {
  kInteractive = 0,  ///< Latency-sensitive; dedicated full-priority workers.
  kBatch = 1,        ///< Throughput work; capped, niced workers; shed first.
};

/// \brief One schedulable unit of work.
struct Job {
  JobClass cls = JobClass::kInteractive;
  /// Deadline used for in-class ordering (earlier runs first). Use
  /// time_point::max() for "no deadline" (runs after everything dated).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// The work itself. Exceptions must not escape (the caller's run
  /// wrapper owns error handling).
  std::function<void()> run;
  /// Invoked (on the shedding thread) instead of `run` when the job is
  /// abandoned by load shedding; may be empty.
  std::function<void()> shed;
};

/// \brief Two-class deadline scheduler with per-class worker pools.
class PriorityScheduler {
 public:
  struct Options {
    /// Interactive worker threads (clamped to >= 1).
    size_t interactive_workers = 4;
    /// Batch worker threads — also the batch concurrency cap (clamped
    /// to >= 1 so batch work always progresses).
    size_t batch_workers = 1;
    /// Ready jobs (both classes) admitted before load shedding kicks
    /// in; 0 = never shed.
    size_t max_queue_depth = 0;
    /// Drop batch workers to nice +19 (Linux; no-op elsewhere).
    bool nice_batch_workers = true;
  };

  /// \brief Monotonic counters plus a backlog gauge.
  struct Stats {
    uint64_t executed_interactive = 0;
    uint64_t executed_batch = 0;
    uint64_t shed = 0;
    size_t queued = 0;  ///< Ready jobs not yet picked up (gauge).
  };

  explicit PriorityScheduler(Options options);
  /// Drains: every queued job still runs (they are owed responses).
  ~PriorityScheduler();

  PriorityScheduler(const PriorityScheduler&) = delete;
  PriorityScheduler& operator=(const PriorityScheduler&) = delete;

  /// Enqueues `job`, possibly shedding it (or a cheaper queued batch
  /// job) when the backlog is at max_queue_depth. Returns false when
  /// `job` itself was shed (its `shed` callback has already run).
  bool Submit(Job job);

  /// Runs every queued job to completion, then joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  Stats stats() const;

  size_t interactive_workers() const { return options_.interactive_workers; }
  size_t batch_workers() const { return options_.batch_workers; }

 private:
  struct QueuedJob {
    std::chrono::steady_clock::time_point deadline;
    uint64_t seq = 0;  ///< FIFO tie-break within equal deadlines.
    std::function<void()> run;
    std::function<void()> shed;
  };

  /// Min-heap-on-deadline comparator (std::push_heap builds a max-heap,
  /// so "greater" deadline sorts toward the bottom).
  static bool Later(const QueuedJob& a, const QueuedJob& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  }

  void WorkerLoop(JobClass cls);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable interactive_cv_;
  std::condition_variable batch_cv_;
  std::vector<QueuedJob> interactive_queue_;  // heap (Later)
  std::vector<QueuedJob> batch_queue_;        // heap (Later)
  uint64_t next_seq_ = 0;
  bool shutting_down_ = false;
  Stats stats_;
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace surf::sched

#endif  // SURF_SCHED_PRIORITY_SCHEDULER_H_
