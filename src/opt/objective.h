#ifndef SURF_OPT_OBJECTIVE_H_
#define SURF_OPT_OBJECTIVE_H_

#include <functional>

#include "geom/region.h"

namespace surf {

/// \brief Which side of the threshold is "interesting" (paper Problem 1:
/// statistics less than or greater than y_R).
enum class ThresholdDirection {
  /// Seek regions with f(x,l) > y_R.
  kAbove,
  /// Seek regions with f(x,l) < y_R.
  kBelow,
};

/// \brief Objective configuration shared by both functional forms.
struct ObjectiveConfig {
  /// The user's cut-off value y_R.
  double threshold = 0.0;
  ThresholdDirection direction = ThresholdDirection::kAbove;
  /// Region-size regularizer c (paper Eq. 2/4; §V uses c = 4).
  double c = 4.0;
  /// true → log objective J (Eq. 4); false → raw ratio objective (Eq. 2).
  /// The log form leaves constraint-violating regions *undefined*, which
  /// is what isolates invalid glowworms (paper §V-F / Fig. 7).
  bool use_log = true;
};

/// \brief A fitness evaluation: the objective value plus a validity flag.
///
/// `valid == false` encodes the paper's "logarithm undefined" semantics —
/// the region violates the threshold constraint (or f itself is undefined
/// because the region is empty). Optimizers must not treat the value as
/// meaningful in that case.
struct FitnessValue {
  double value = 0.0;
  bool valid = false;
};

/// Statistic provider: region -> y (possibly NaN where f is undefined).
using StatisticFn = std::function<double(const Region&)>;

/// Generic fitness: region -> FitnessValue (used directly by optimizers).
using FitnessFn = std::function<FitnessValue(const Region&)>;

/// \brief The SuRF objective over a statistic function (true f or a
/// surrogate f̂).
///
/// Log form (Eq. 4):  J = log(diff) − c · Σ_i log(l_i)
/// Ratio form (Eq. 2): J = diff / (Π_i l_i)^c
/// with diff = y_R − f for kBelow and f − y_R for kAbove (the paper's
/// "maximize −J" branch folded into a sign-free positive difference).
class RegionObjective {
 public:
  RegionObjective(StatisticFn statistic, ObjectiveConfig config);

  /// Evaluates the objective; invalid where the constraint is violated,
  /// where f is NaN, or where any side length is non-positive.
  FitnessValue Evaluate(const Region& region) const;

  /// Exposes the raw statistic (for validation/report paths).
  double Statistic(const Region& region) const { return statistic_(region); }

  const ObjectiveConfig& config() const { return config_; }

  /// Adapter for optimizer APIs.
  FitnessFn AsFitnessFn() const;

 private:
  StatisticFn statistic_;
  ObjectiveConfig config_;
};

/// True if the statistic value satisfies the threshold constraint.
bool SatisfiesThreshold(double y, double threshold,
                        ThresholdDirection direction);

}  // namespace surf

#endif  // SURF_OPT_OBJECTIVE_H_
