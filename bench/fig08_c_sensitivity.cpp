// Figure 8: sensitivity of the objective to the size regularizer c —
// the fraction of uniformly spread candidate solutions that land within a
// fixed radius of the global peak, as c grows from 0 to 2.
//
// Reproduces the paper's d=1, k=1 protocol: a fixed solution set spread
// uniformly across the region space, scored under Eq. 4 for each c; the
// "viable solutions" are those within radius 0.2 of the objective's peak.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);

  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 8;
  // Sparse background so small boxes away from the planted region are
  // invalid (as in Fig. 7's white areas).
  spec.num_background = 3000;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
  const StatisticFn f = [&evaluator](const Region& r) {
    return evaluator.Evaluate(r);
  };

  // Fixed uniform candidate grid over (center, half-length).
  std::vector<Region> candidates;
  for (int gx = 0; gx < 40; ++gx) {
    for (int gl = 0; gl < 25; ++gl) {
      candidates.push_back(Region({(gx + 0.5) / 40.0},
                                  {0.01 + (gl + 0.5) / 25.0 * 0.49}));
    }
  }

  std::printf("Figure 8 — viable solutions vs c (radius 0.2 around the "
              "peak)\n\n");
  TablePrinter table({"c", "viable fraction"});
  CsvWriter csv({"c", "viable_fraction"});
  for (double c = 0.0; c <= 2.01; c += 0.25) {
    ObjectiveConfig config;
    config.threshold = 1000.0;
    config.direction = ThresholdDirection::kAbove;
    config.c = c;
    const RegionObjective objective(f, config);

    // "Viable solutions within radius 0.2 of the peak": the fixed
    // candidate set is scored under the objective at this c; the peak is
    // the best-scoring (defined) candidate, and we count the *defined*
    // candidates inside the 0.2 flat-space ball around it. As c grows
    // the peak migrates to ever smaller boxes hugging the planted
    // region, where the surrounding solution space is largely undefined,
    // so the viable neighbourhood shrinks — the regularization effect
    // Fig. 8 plots.
    double best = -1e300;
    Region peak;
    std::vector<std::pair<Region, double>> defined;
    for (const auto& cand : candidates) {
      const FitnessValue fv = objective.Evaluate(cand);
      if (!fv.valid) continue;
      defined.push_back({cand, fv.value});
      if (fv.value > best) {
        best = fv.value;
        peak = cand;
      }
    }
    size_t near_peak = 0;
    for (const auto& [cand, value] : defined) {
      if (cand.FlatDistance(peak) <= 0.2) ++near_peak;
    }
    const double fraction =
        static_cast<double>(near_peak) /
        static_cast<double>(candidates.size());
    table.AddRow({FormatDouble(c, 2), FormatDouble(fraction, 4)});
    csv.AddRow({c, fraction});
  }
  std::printf("%s", table.ToString().c_str());

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nExpected shape (paper Fig. 8): the viable fraction "
              "decreases as c grows — c acts as a regularizer on the "
              "accepted region sizes.\n");
  return 0;
}
