#ifndef SURF_OPT_TEST_FUNCTIONS_H_
#define SURF_OPT_TEST_FUNCTIONS_H_

#include <vector>

#include "opt/objective.h"

namespace surf {

/// \brief Synthetic multimodal fitness landscapes over the flat particle
/// space, used to validate the optimizers independently of any dataset.
///
/// Each "peak" is an isotropic Gaussian bump centred at a flat-space
/// point; the fitness is the sum of bumps. A validity floor mimics the
/// log-objective's undefined area: fitness below the floor is reported
/// invalid, so optimizer tests can verify the isolation behaviour too.
struct GaussianBumps {
  /// Peak centres in flat coordinates (each of length 2d).
  std::vector<std::vector<double>> peaks;
  double sigma = 0.1;
  /// Values below this are flagged invalid (use a negative floor to make
  /// the whole landscape valid).
  double validity_floor = -1.0;

  FitnessValue Evaluate(const Region& region) const;

  /// Adapter for the optimizer APIs.
  FitnessFn AsFitnessFn() const;

  /// Index of the nearest peak to a region (flat L2), or -1 when empty.
  int NearestPeak(const Region& region) const;

  /// Distance from the region to its nearest peak.
  double DistanceToNearestPeak(const Region& region) const;
};

/// Inverted Rastrigin over flat space (single global optimum at the given
/// centre, many local optima): classic stress test for swarm optimizers.
FitnessFn InvertedRastrigin(std::vector<double> center, double scale);

}  // namespace surf

#endif  // SURF_OPT_TEST_FUNCTIONS_H_
