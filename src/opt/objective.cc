#include "opt/objective.h"

#include <cassert>
#include <cmath>

namespace surf {

bool SatisfiesThreshold(double y, double threshold,
                        ThresholdDirection direction) {
  if (std::isnan(y)) return false;
  return direction == ThresholdDirection::kAbove ? y > threshold
                                                 : y < threshold;
}

RegionObjective::RegionObjective(StatisticFn statistic,
                                 ObjectiveConfig config)
    : statistic_(std::move(statistic)), config_(config) {
  assert(statistic_ != nullptr);
}

FitnessValue RegionObjective::Evaluate(const Region& region) const {
  FitnessValue out;
  if (region.Degenerate()) return out;

  const double y = statistic_(region);
  if (std::isnan(y) || !std::isfinite(y)) return out;

  const double diff = config_.direction == ThresholdDirection::kBelow
                          ? config_.threshold - y
                          : y - config_.threshold;

  if (config_.use_log) {
    // Eq. 4: undefined (invalid) outside the constraint.
    if (diff <= 0.0) return out;
    double size_penalty = 0.0;
    for (size_t i = 0; i < region.dims(); ++i) {
      const double l = region.half_length(i);
      if (l <= 0.0) return out;
      size_penalty += std::log(l);
    }
    out.value = std::log(diff) - config_.c * size_penalty;
    out.valid = true;
    return out;
  }

  // Eq. 2: defined everywhere (Fig. 7 bottom row shows the negative
  // plateau), but still undefined for degenerate sizes.
  double volume_pow = 1.0;
  for (size_t i = 0; i < region.dims(); ++i) {
    const double l = region.half_length(i);
    if (l <= 0.0) return out;
    volume_pow *= std::pow(l, config_.c);
  }
  out.value = diff / volume_pow;
  out.valid = true;
  return out;
}

FitnessFn RegionObjective::AsFitnessFn() const {
  return [this](const Region& region) { return Evaluate(region); };
}

}  // namespace surf
