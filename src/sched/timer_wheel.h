#ifndef SURF_SCHED_TIMER_WHEEL_H_
#define SURF_SCHED_TIMER_WHEEL_H_

/// \file
/// \brief A hashed timer wheel for connection deadlines.
///
/// The HTTP event loop arms one deadline per connection (idle timeout,
/// request deadline, write deadline, or lingering-close budget —
/// whichever the connection's state calls for) and needs two cheap
/// operations on every loop iteration: "how long until the next timer"
/// (the epoll_wait timeout) and "which timers fired" (after the wait).
/// A hashed wheel gives O(1) arm/disarm and amortized O(1) expiry:
/// timers hash into `num_slots` buckets of `tick` granularity and the
/// wheel only inspects the buckets the clock hand actually crosses.
///
/// Single-threaded by design — the event loop owns it; there is no
/// locking. Time is passed in explicitly so tests drive the hand
/// without sleeping.

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace surf::sched {

/// \brief Hashed timer wheel keyed by caller-chosen 64-bit ids.
///
/// Re-arming an id replaces its previous deadline; disarming forgets
/// it. Stale bucket entries (from re-arms and disarms) are dropped
/// lazily when the hand crosses their slot, so arm/disarm never scan.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// A wheel of `num_slots` buckets, each `tick` wide. Deadlines
  /// farther out than `num_slots * tick` simply go around again: they
  /// are re-bucketed when the hand reaches their slot early.
  explicit TimerWheel(Clock::duration tick = std::chrono::milliseconds(20),
                      size_t num_slots = 256)
      : tick_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(tick)
                     .count()),
        slots_(num_slots) {
    if (tick_ns_ <= 0) tick_ns_ = 1;
    if (slots_.empty()) slots_.resize(1);
    hand_ = TickOf(Clock::now());
  }

  /// Arms (or re-arms) `id` to fire once `deadline` passes.
  void Arm(uint64_t id, Clock::time_point deadline) {
    // Generations are globally unique, never recycled: a bucket entry
    // from any earlier registration of this id can never collide with
    // the live one, no matter how arms/fires/disarms interleave.
    const uint64_t generation = ++last_generation_;
    generations_[id] = generation;
    const int64_t tick = TickOf(deadline);
    slots_[SlotOf(tick)].push_back(Entry{id, generation, tick});
    ++armed_;
  }

  /// Forgets `id`; a pending Arm() for it will not fire. The bucket
  /// entry is dropped lazily when the hand reaches it.
  void Disarm(uint64_t id) { generations_.erase(id); }

  /// Advances the hand to `now` and appends every fired id to `*fired`
  /// (each id at most once; its registration is consumed).
  void Advance(Clock::time_point now, std::vector<uint64_t>* fired) {
    const int64_t now_tick = TickOf(now);
    while (hand_ <= now_tick) {
      std::vector<Entry>& bucket = slots_[SlotOf(hand_)];
      size_t keep = 0;
      for (Entry& entry : bucket) {
        auto it = generations_.find(entry.id);
        if (it == generations_.end() || it->second != entry.generation) {
          --armed_;  // stale: re-armed or disarmed since
          continue;
        }
        if (entry.tick <= now_tick) {
          fired->push_back(entry.id);
          generations_.erase(it);
          --armed_;
          continue;
        }
        // Armed for a later lap of the wheel: keep it in place.
        bucket[keep++] = entry;
      }
      bucket.resize(keep);
      ++hand_;
    }
  }

  /// Milliseconds until the earliest armed deadline could fire, clamped
  /// to [0, `max_ms`]; `max_ms` when nothing is armed. This is a bound,
  /// not an exact next-deadline: the wheel answers in tick granularity,
  /// which is exactly what an epoll_wait timeout needs.
  int TimeoutMs(Clock::time_point now, int max_ms) const {
    if (armed_ == 0) return max_ms;
    // The earliest anything can fire is the hand's current bucket edge.
    const int64_t edge_ns = hand_ * tick_ns_;
    const int64_t now_ns = now.time_since_epoch().count();
    if (now_ns >= edge_ns) return 0;
    const int64_t ms = (edge_ns - now_ns) / 1000000 + 1;
    return ms < max_ms ? static_cast<int>(ms) : max_ms;
  }

  /// Timers currently armed (stale bucket entries excluded).
  size_t armed() const { return generations_.size(); }

 private:
  struct Entry {
    uint64_t id;
    uint64_t generation;
    int64_t tick;
  };

  int64_t TickOf(Clock::time_point t) const {
    return t.time_since_epoch().count() / tick_ns_;
  }
  size_t SlotOf(int64_t tick) const {
    return static_cast<size_t>(tick) % slots_.size();
  }

  int64_t tick_ns_;
  std::vector<std::vector<Entry>> slots_;
  /// Live registration generation per id; a bucket entry fires only if
  /// its generation still matches.
  std::unordered_map<uint64_t, uint64_t> generations_;
  uint64_t last_generation_ = 0;
  /// Next tick the hand will inspect (starts at construction time, so
  /// Advance only ever sweeps forward across real elapsed ticks).
  int64_t hand_ = 0;
  /// Bucket entries alive (including stale ones), for the fast
  /// nothing-armed timeout path.
  size_t armed_ = 0;
};

}  // namespace surf::sched

#endif  // SURF_SCHED_TIMER_WHEEL_H_
