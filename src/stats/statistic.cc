#include "stats/statistic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace surf {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Reads a non-negative integral JSON number (< 2^53, exact in a double).
bool ReadCountField(const JsonValue& obj, const char* key, size_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->number_value();
  if (d < 0 || d != std::floor(d) || d > 9007199254740992.0) return false;
  *out = static_cast<size_t>(d);
  return true;
}

/// Reads a hex-encoded double ("0x...") written by DoubleToHex.
bool ReadHexField(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() &&
         DoubleFromHex(v->string_value(), out);
}

}  // namespace

std::string StatisticKindName(StatisticKind kind) {
  switch (kind) {
    case StatisticKind::kCount:
      return "count";
    case StatisticKind::kAverage:
      return "avg";
    case StatisticKind::kSum:
      return "sum";
    case StatisticKind::kMedian:
      return "median";
    case StatisticKind::kVariance:
      return "variance";
    case StatisticKind::kLabelRatio:
      return "ratio";
  }
  return "?";
}

Statistic Statistic::Count(std::vector<size_t> region_cols) {
  Statistic s;
  s.kind = StatisticKind::kCount;
  s.region_cols = std::move(region_cols);
  return s;
}

Statistic Statistic::Average(std::vector<size_t> region_cols,
                             size_t value_col) {
  Statistic s;
  s.kind = StatisticKind::kAverage;
  s.region_cols = std::move(region_cols);
  s.value_col = static_cast<int>(value_col);
  return s;
}

Statistic Statistic::Sum(std::vector<size_t> region_cols, size_t value_col) {
  Statistic s;
  s.kind = StatisticKind::kSum;
  s.region_cols = std::move(region_cols);
  s.value_col = static_cast<int>(value_col);
  return s;
}

Statistic Statistic::MedianOf(std::vector<size_t> region_cols,
                              size_t value_col) {
  Statistic s;
  s.kind = StatisticKind::kMedian;
  s.region_cols = std::move(region_cols);
  s.value_col = static_cast<int>(value_col);
  return s;
}

Statistic Statistic::VarianceOf(std::vector<size_t> region_cols,
                                size_t value_col) {
  Statistic s;
  s.kind = StatisticKind::kVariance;
  s.region_cols = std::move(region_cols);
  s.value_col = static_cast<int>(value_col);
  return s;
}

Statistic Statistic::LabelRatio(std::vector<size_t> region_cols,
                                size_t value_col, double label_value) {
  Statistic s;
  s.kind = StatisticKind::kLabelRatio;
  s.region_cols = std::move(region_cols);
  s.value_col = static_cast<int>(value_col);
  s.label_value = label_value;
  return s;
}

double ReduceStatistic(const Dataset& data, const Statistic& stat,
                       const std::vector<size_t>& rows) {
  StatisticAccumulator acc(stat);
  const std::vector<double>* values = nullptr;
  if (stat.needs_value_column()) {
    assert(stat.value_col >= 0);
    values = &data.column(static_cast<size_t>(stat.value_col));
  }
  for (size_t r : rows) {
    acc.Add(values ? (*values)[r] : 0.0);
  }
  return acc.Finalize();
}

void StatisticAccumulator::Add(double value) {
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (stat_.kind == StatisticKind::kLabelRatio &&
      value == stat_.label_value) {
    ++matches_;
  }
  if (stat_.kind == StatisticKind::kMedian) sketch_.Add(value);
}

void StatisticAccumulator::AddBlock(size_t count, double sum, double sum_sq,
                                    size_t matches) {
  // The median cannot be pre-aggregated; block merges stay a
  // decomposable-kind-only fast path.
  assert(stat_.kind != StatisticKind::kMedian);
  count_ += count;
  sum_ += sum;
  sum_sq_ += sum_sq;
  matches_ += matches;
}

void StatisticAccumulator::Merge(const StatisticAccumulator& other) {
  assert(stat_.kind == other.stat_.kind);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  matches_ += other.matches_;
  if (stat_.kind == StatisticKind::kMedian) sketch_.Merge(other.sketch_);
}

JsonValue StatisticAccumulator::ToJson() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("count", JsonValue(static_cast<double>(count_)));
  obj.Set("sum", JsonValue(DoubleToHex(sum_)));
  obj.Set("sum_sq", JsonValue(DoubleToHex(sum_sq_)));
  obj.Set("matches", JsonValue(static_cast<double>(matches_)));
  if (stat_.kind == StatisticKind::kMedian) {
    obj.Set("sketch", sketch_.ToJson());
  }
  return obj;
}

StatusOr<StatisticAccumulator> StatisticAccumulator::FromJson(
    const JsonValue& json, const Statistic& stat) {
  const auto malformed = [](const char* what) {
    return Status::InvalidArgument(std::string("accumulator: ") + what);
  };
  if (!json.is_object()) return malformed("expected an object");
  StatisticAccumulator acc(stat);
  if (!ReadCountField(json, "count", &acc.count_)) {
    return malformed("bad 'count'");
  }
  if (!ReadHexField(json, "sum", &acc.sum_)) return malformed("bad 'sum'");
  if (!ReadHexField(json, "sum_sq", &acc.sum_sq_)) {
    return malformed("bad 'sum_sq'");
  }
  if (!ReadCountField(json, "matches", &acc.matches_)) {
    return malformed("bad 'matches'");
  }
  if (stat.kind == StatisticKind::kMedian) {
    const JsonValue* sketch = json.Find("sketch");
    if (sketch == nullptr) return malformed("median without 'sketch'");
    auto decoded = QuantileSketch::FromJson(*sketch);
    if (!decoded.ok()) return decoded.status();
    acc.sketch_ = std::move(decoded).value();
  }
  return acc;
}

double StatisticAccumulator::Finalize() const {
  const size_t n = count_;
  switch (stat_.kind) {
    case StatisticKind::kCount:
      return static_cast<double>(n);
    case StatisticKind::kSum:
      return sum_;
    case StatisticKind::kAverage:
      return n > 0 ? sum_ / static_cast<double>(n) : kNaN;
    case StatisticKind::kVariance: {
      if (n < 2) return n == 1 ? 0.0 : kNaN;
      const double mean = sum_ / static_cast<double>(n);
      const double ss = sum_sq_ - static_cast<double>(n) * mean * mean;
      return std::max(0.0, ss / static_cast<double>(n - 1));
    }
    case StatisticKind::kLabelRatio:
      return n > 0
                 ? static_cast<double>(matches_) / static_cast<double>(n)
                 : 0.0;
    case StatisticKind::kMedian:
      return sketch_.Median();
  }
  return kNaN;
}

}  // namespace surf
