#include "stats/evaluator.h"

#include <cassert>

namespace surf {

ScanEvaluator::ScanEvaluator(const Dataset* data, Statistic stat)
    : data_(data), stat_(std::move(stat)) {
  assert(data_ != nullptr);
  for ([[maybe_unused]] size_t c : stat_.region_cols) {
    assert(c < data_->num_cols());
  }
  if (stat_.needs_value_column()) {
    assert(stat_.value_col >= 0 &&
           static_cast<size_t>(stat_.value_col) < data_->num_cols());
  }
}

double ScanEvaluator::EvaluateImpl(const Region& region,
                                   const CancelToken& cancel) const {
  assert(region.dims() == stat_.dims());
  const size_t n = data_->num_rows();
  const size_t d = stat_.dims();

  StatisticAccumulator acc(stat_);
  const std::vector<double>* values =
      stat_.needs_value_column()
          ? &data_->column(static_cast<size_t>(stat_.value_col))
          : nullptr;

  // Column-major membership test: the first region column produces a
  // candidate mask implicitly; we simply loop rows and short-circuit per
  // dimension. With column-major storage each inner access is a
  // sequential-ish read of one column.
  for (size_t r = 0; r < n; ++r) {
    if ((r & 0xFFFF) == 0xFFFF && cancel.cancelled()) break;
    bool inside = true;
    for (size_t j = 0; j < d; ++j) {
      const double v = data_->column(stat_.region_cols[j])[r];
      if (v < region.lo(j) || v > region.hi(j)) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    acc.Add(values ? (*values)[r] : 0.0);
  }
  return acc.Finalize();
}

}  // namespace surf
