#include "net/surf_handler.h"

#include <cmath>
#include <cstdio>

#include "accel/accel.h"
#include "api/api.h"
#include "core/workload.h"
#include "dist/worker_pool.h"
#include "serve/fingerprint.h"
#include "stats/sharded_evaluator.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace surf {

namespace {

HttpResponse JsonResponse(int status_code, const JsonValue& body) {
  HttpResponse response;
  response.status_code = status_code;
  response.body = WriteJson(body) + "\n";
  return response;
}

HttpResponse StatusResponse(const Status& status) {
  return JsonErrorResponse(HttpStatusFromStatus(status),
                           StatusCodeName(status.code()), status.message());
}

const char* JobPhaseName(MineJob::Phase phase) {
  switch (phase) {
    case MineJob::Phase::kQueued: return "queued";
    case MineJob::Phase::kTraining: return "training";
    case MineJob::Phase::kSearching: return "searching";
    case MineJob::Phase::kDone: return "done";
  }
  return "unknown";
}

JsonValue JobProgressToJson(const MineJob::Progress& progress) {
  JsonValue obj = JsonValue::Object();
  obj.Set("phase", JsonValue(JobPhaseName(progress.phase)));
  obj.Set("cancel_requested", JsonValue(progress.cancel_requested));
  obj.Set("iterations",
          JsonValue(static_cast<double>(progress.iterations)));
  obj.Set("max_iterations",
          JsonValue(static_cast<double>(progress.max_iterations)));
  obj.Set("valid_particles",
          JsonValue(static_cast<double>(progress.valid_particles)));
  // Per-phase wall time (always recorded, tracing or not): a running
  // phase reads its elapsed-so-far, so pollers watch the split move.
  obj.Set("queued_seconds", JsonValue(progress.queued_seconds));
  obj.Set("training_seconds", JsonValue(progress.training_seconds));
  obj.Set("searching_seconds", JsonValue(progress.searching_seconds));
  return obj;
}

}  // namespace

SurfHandler::SurfHandler(MiningService* service, ServerMetrics* metrics,
                         Options options)
    : service_(service),
      metrics_(metrics),
      options_(options),
      jobs_(options.job_retention) {
  routes_ = {
      {"GET", "/healthz", false, &SurfHandler::HandleHealthz},
      {"GET", "/metrics", false, &SurfHandler::HandleMetrics},
      {"GET", "/v1/version", false, &SurfHandler::HandleVersion},
      {"GET", "/v1/cache/stats", false, &SurfHandler::HandleCacheStats},
      {"GET", "/v1/trace/", true, &SurfHandler::HandleGetTrace},
      {"POST", "/v1/datasets", false, &SurfHandler::HandleRegisterDataset},
      {"POST", "/v1/mine", false, &SurfHandler::HandleMine},
      {"POST", "/v1/mine:batch", false, &SurfHandler::HandleMineBatch},
      {"POST", "/v1/evaluations", false, &SurfHandler::HandleEvaluations},
      {"POST", "/v1/shards:evaluate", false,
       &SurfHandler::HandleShardEvaluate},
      {"POST", "/v1/jobs", false, &SurfHandler::HandleSubmitJob},
      {"GET", "/v1/jobs/", true, &SurfHandler::HandleGetJob},
      {"DELETE", "/v1/jobs/", true, &SurfHandler::HandleCancelJob},
  };
  // The admin surface exists only when explicitly enabled; a production
  // handler answers 404 on these paths like any other unknown route.
  if (options_.enable_failpoint_admin) {
    routes_.push_back(
        {"GET", "/v1/failpoints", false, &SurfHandler::HandleListFailpoints});
    routes_.push_back(
        {"POST", "/v1/failpoints", false, &SurfHandler::HandleArmFailpoints});
    routes_.push_back({"DELETE", "/v1/failpoints", false,
                       &SurfHandler::HandleClearFailpoints});
    routes_.push_back({"DELETE", "/v1/failpoints/", true,
                       &SurfHandler::HandleClearOneFailpoint});
  }
}

HttpResponse SurfHandler::Handle(const HttpRequest& request) {
  // Strip any query string before matching; the API carries every
  // parameter in JSON bodies.
  std::string path = request.target;
  const size_t query = path.find('?');
  if (query != std::string::npos) path = path.substr(0, query);

  const Route* match = nullptr;
  std::string param;
  bool path_known = false;
  for (const Route& route : routes_) {
    std::string candidate_param;
    if (route.prefix) {
      if (path.size() <= route.path.size() ||
          path.compare(0, route.path.size(), route.path) != 0) {
        continue;
      }
      candidate_param = path.substr(route.path.size());
    } else if (route.path != path) {
      continue;
    }
    path_known = true;
    if (route.method == request.method) {
      match = &route;
      param = std::move(candidate_param);
      break;
    }
  }

  Stopwatch timer;
  metrics_->BeginRequest();
  HttpResponse response;
  if (match != nullptr) {
    response = (this->*(match->fn))(request, param);
  } else if (path_known) {
    response = JsonErrorResponse(405, "method_not_allowed",
                                 request.method + " not supported on " + path);
  } else {
    response = JsonErrorResponse(404, "unknown_route",
                                 "no handler for " + path);
  }
  metrics_->EndRequest();
  metrics_->RecordRequest(match != nullptr ? match->path : "unmatched",
                          response.status_code, timer.ElapsedSeconds());
  return response;
}

ColumnResolver SurfHandler::MakeResolver() const {
  MiningService* service = service_;
  return [service](const std::string& dataset, const std::string& column) {
    const Dataset* data = service->dataset(dataset);
    return data == nullptr ? -1 : data->ColumnIndex(column);
  };
}

HttpResponse SurfHandler::HandleHealthz(const HttpRequest&,
                                        const std::string&) {
  JsonValue body = JsonValue::Object();
  body.Set("status", JsonValue("ok"));
  body.Set("datasets",
           JsonValue(static_cast<double>(service_->dataset_names().size())));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleMetrics(const HttpRequest&,
                                        const std::string&) {
  const SurrogateCache::Stats stats = service_->cache().stats();
  ServerMetrics::CacheFigures cache;
  cache.hits = stats.hits;
  cache.misses = stats.misses;
  cache.evictions = stats.evictions;
  cache.stale_evictions = stats.stale_evictions;
  cache.entries = service_->cache().size();
  cache.degraded_serves = stats.degraded_serves;
  cache.negative_hits = stats.negative_hits;
  cache.breaker_rejections = stats.breaker_rejections;
  cache.training_failures = stats.training_failures;

  // Scraping /metrics also runs the job table's age sweep, so evictions
  // advance even on an otherwise idle server.
  jobs_.Sweep();
  ServerMetrics::ServiceFigures service;
  service.jobs_tracked = jobs_.size();
  service.jobs_evicted = jobs_.evictions();
  const ShardedScanEvaluator::GlobalTelemetry shard_telemetry =
      ShardedScanEvaluator::global_telemetry();
  service.shard_evals_pruned = shard_telemetry.pruned;
  service.shard_evals_block_merged = shard_telemetry.block_merged;
  service.shard_evals_scanned = shard_telemetry.scanned;
  service.accel_backend = AccelBackendName(ActiveAccelBackend());
  if (const dist::WorkerPool* pool = service_->cluster_pool()) {
    const dist::WorkerPool::Figures figures = pool->Snapshot();
    service.has_dist = true;
    service.dist_shard_retries = figures.shard_retries;
    service.dist_workers.reserve(figures.workers.size());
    for (const dist::WorkerPool::WorkerFigures& worker : figures.workers) {
      ServerMetrics::ServiceFigures::DistWorkerFigures out;
      out.endpoint = worker.endpoint;
      out.healthy = worker.healthy;
      out.buckets = worker.buckets;
      out.latency_sum_seconds = worker.latency_sum_seconds;
      out.latency_count = worker.latency_count;
      service.dist_workers.push_back(std::move(out));
    }
  }
  if (transport_stats_) {
    const HttpServer::Stats transport = transport_stats_();
    service.has_transport = true;
    service.worker_exceptions = transport.worker_exceptions;
    service.write_failures = transport.write_failures;
    service.requests_shed = transport.requests_shed;
    service.tenant_throttled = transport.tenant_throttled;
    service.tenant_over_quota = transport.tenant_over_quota;
    service.batch_served = transport.batch_served;
    service.mine_coalesced =
        mine_coalesced_.load(std::memory_order_relaxed);
  }

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = metrics_->RenderPrometheus(cache, service);
  return response;
}

HttpResponse SurfHandler::HandleCacheStats(const HttpRequest&,
                                           const std::string&) {
  const SurrogateCache::Stats stats = service_->cache().stats();
  const uint64_t lookups = stats.hits + stats.misses;
  JsonValue body = JsonValue::Object();
  body.Set("hits", JsonValue(static_cast<double>(stats.hits)));
  body.Set("misses", JsonValue(static_cast<double>(stats.misses)));
  body.Set("evictions", JsonValue(static_cast<double>(stats.evictions)));
  body.Set("stale_evictions",
           JsonValue(static_cast<double>(stats.stale_evictions)));
  body.Set("entries", JsonValue(static_cast<double>(service_->cache().size())));
  body.Set("capacity",
           JsonValue(static_cast<double>(service_->cache().options().capacity)));
  body.Set("degraded_serves",
           JsonValue(static_cast<double>(stats.degraded_serves)));
  body.Set("negative_hits",
           JsonValue(static_cast<double>(stats.negative_hits)));
  body.Set("breaker_rejections",
           JsonValue(static_cast<double>(stats.breaker_rejections)));
  body.Set("training_failures",
           JsonValue(static_cast<double>(stats.training_failures)));
  body.Set("hit_ratio",
           JsonValue(lookups == 0 ? 0.0
                                  : static_cast<double>(stats.hits) /
                                        static_cast<double>(lookups)));
  // Evaluator/backend telemetry rides along so one endpoint answers
  // "why was labelling slow" without a Prometheus scrape.
  const ShardedScanEvaluator::GlobalTelemetry shard_telemetry =
      ShardedScanEvaluator::global_telemetry();
  JsonValue shards = JsonValue::Object();
  shards.Set("pruned",
             JsonValue(static_cast<double>(shard_telemetry.pruned)));
  shards.Set("block_merged",
             JsonValue(static_cast<double>(shard_telemetry.block_merged)));
  shards.Set("scanned",
             JsonValue(static_cast<double>(shard_telemetry.scanned)));
  body.Set("shard_evals", std::move(shards));
  body.Set("accel_backend", JsonValue(AccelBackendName(ActiveAccelBackend())));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleGetTrace(const HttpRequest&,
                                         const std::string& id) {
  const std::shared_ptr<const TraceContext> trace =
      service_->traces().Find(id);
  if (trace == nullptr) {
    return JsonErrorResponse(
        404, "not_found",
        "no retained trace '" + id +
            "' (traces come from requests with execution.trace "
            "set, and only the most recent are kept)");
  }
  return JsonResponse(200, TraceToChromeJson(*trace));
}

HttpResponse SurfHandler::HandleRegisterDataset(const HttpRequest& request,
                                                const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "dataset registration must be a JSON object");
  }
  const JsonValue* name = json->Find("name");
  if (name == nullptr || !name->is_string() ||
      name->string_value().empty()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "field 'name' (non-empty string) is required");
  }
  const JsonValue* path = json->Find("path");
  const JsonValue* rows = json->Find("rows");
  if ((path != nullptr) == (rows != nullptr)) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "provide exactly one of 'path' (CSV file) or 'rows' (inline data)");
  }

  Status registered = Status::OK();
  if (path != nullptr) {
    if (!path->is_string()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "field 'path' must be a string");
    }
    registered =
        service_->RegisterCsvDataset(name->string_value(), path->string_value());
  } else {
    const JsonValue* columns = json->Find("columns");
    if (columns == nullptr || !columns->is_array() || columns->size() == 0) {
      return JsonErrorResponse(
          400, "invalid_argument",
          "inline registration needs 'columns' (array of names)");
    }
    std::vector<std::string> column_names;
    for (const JsonValue& c : columns->array()) {
      if (!c.is_string()) {
        return JsonErrorResponse(400, "invalid_argument",
                                 "'columns' entries must be strings");
      }
      column_names.push_back(c.string_value());
    }
    if (!rows->is_array()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "field 'rows' must be an array of rows");
    }
    Dataset data(column_names);
    data.Reserve(rows->size());
    std::vector<double> row(column_names.size());
    for (const JsonValue& r : rows->array()) {
      if (!r.is_array() || r.size() != column_names.size()) {
        return JsonErrorResponse(
            400, "invalid_argument",
            "every row must be an array of " +
                std::to_string(column_names.size()) + " numbers");
      }
      for (size_t j = 0; j < row.size(); ++j) {
        const JsonValue& cell = r.array()[j];
        if (!cell.is_number()) {
          return JsonErrorResponse(400, "invalid_argument",
                                   "row cells must be numbers");
        }
        row[j] = cell.number_value();
      }
      data.AddRow(row);
    }
    registered = service_->RegisterDataset(name->string_value(), std::move(data));
  }
  if (!registered.ok()) return StatusResponse(registered);

  const Dataset* data = service_->dataset(name->string_value());
  JsonValue body = JsonValue::Object();
  body.Set("name", *name);
  body.Set("rows", JsonValue(static_cast<double>(data->num_rows())));
  body.Set("columns", JsonValue(static_cast<double>(data->num_cols())));
  return JsonResponse(201, body);
}

HttpResponse SurfHandler::HandleMine(const HttpRequest& request,
                                     const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  const ColumnResolver resolver = MakeResolver();
  auto decoded = MineRequestV2FromJson(*json, &resolver);
  if (!decoded.ok()) return StatusResponse(decoded.status());

  // Single-flight coalescing: concurrent requests with byte-identical
  // bodies share one computation. The engine is deterministic, so the
  // shared response is bit-identical to what each request would have
  // computed alone; sequential identical requests are untouched (the
  // flight is erased before its response is returned), so cache-stat
  // expectations and warm/cold behavior stay exactly as before.
  // Requests with per-request side effects (trace capture, evaluation
  // recording) must each run for real and never join a flight.
  const bool coalescable = options_.coalesce_identical_mines &&
                           !decoded->execution.trace &&
                           !decoded->execution.record_evaluations;
  if (!coalescable) return ExecuteMine(request, std::move(decoded).value());

  std::shared_ptr<MineFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mine_flights_mu_);
    auto it = mine_flights_.find(request.body);
    if (it == mine_flights_.end()) {
      flight = std::make_shared<MineFlight>();
      mine_flights_.emplace(request.body, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }
  if (!leader) {
    // Follower: block until the leader publishes, then share its answer.
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    mine_coalesced_.fetch_add(1, std::memory_order_relaxed);
    return flight->response;
  }

  HttpResponse response;
  try {
    response = ExecuteMine(request, std::move(decoded).value());
  } catch (...) {
    // Publish *something* before rethrowing so followers never hang.
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->response =
          JsonErrorResponse(500, "internal", "handler threw");
      flight->done = true;
    }
    flight->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(mine_flights_mu_);
      mine_flights_.erase(request.body);
    }
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->response = response;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mine_flights_mu_);
    mine_flights_.erase(request.body);
  }
  return response;
}

HttpResponse SurfHandler::ExecuteMine(const HttpRequest& request,
                                      v2::MineRequest decoded_value) {
  auto* decoded = &decoded_value;
  // Wire the transport's remaining per-request budget into the job's
  // cancel token (keeping a client-requested tighter deadline): when it
  // expires, the search stops within one iteration and the 408 below
  // carries the partial results — the worker's CPU is reclaimed rather
  // than burned on an answer nobody is waiting for.
  const double remaining = request.RemainingSeconds();
  if (std::isfinite(remaining) &&
      (decoded->execution.deadline_seconds == 0.0 ||
       remaining < decoded->execution.deadline_seconds)) {
    // An already-expired budget must cancel immediately — never collapse
    // onto the 0.0 = "no deadline" sentinel (which would erase a
    // client-supplied deadline and run the search unbounded).
    decoded->execution.deadline_seconds =
        remaining > 0.0 ? remaining : 1e-9;
  }

  const v2::MineResponse response = service_->Mine(*decoded);
  if (!response.status.ok() &&
      response.status.code() != StatusCode::kCancelled) {
    HttpResponse error = StatusResponse(response.status);
    if (response.status.code() == StatusCode::kUnavailable) {
      // Circuit-breaker refusals carry a Retry-After hint so well-behaved
      // clients back off for (at least) the remaining open window.
      auto key = service_->KeyFor(v2::ToLegacy(*decoded));
      if (key.ok()) {
        const int retry_after =
            service_->cache().RetryAfterSeconds(*key);
        if (retry_after > 0) {
          error.headers.emplace_back("Retry-After",
                                     std::to_string(retry_after));
        }
      }
    }
    return error;
  }
  // Cancelled responses keep the full envelope (partial regions +
  // provenance) under the 408 status.
  const int http_status = HttpStatusFromStatus(response.status);
  return JsonResponse(http_status,
                      MineResponseV2ToJson(response, decoded->query.kind));
}

HttpResponse SurfHandler::HandleMineBatch(const HttpRequest& request,
                                          const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "batch body must be a JSON object");
  }
  const JsonValue* list = json->Find("requests");
  if (list == nullptr || !list->is_array() || list->size() == 0) {
    return JsonErrorResponse(400, "invalid_argument",
                             "field 'requests' (non-empty array) is required");
  }
  const ColumnResolver resolver = MakeResolver();
  std::vector<v2::MineRequest> requests;
  requests.reserve(list->size());
  for (size_t i = 0; i < list->array().size(); ++i) {
    // Batch entries accept either schema version, like /v1/mine.
    auto decoded = MineRequestV2FromJson(list->array()[i], &resolver);
    if (!decoded.ok()) {
      return JsonErrorResponse(
          400, "invalid_argument",
          "requests[" + std::to_string(i) +
              "]: " + decoded.status().message());
    }
    requests.push_back(std::move(decoded).value());
  }

  // The v2 batch path honours each entry's execution.deadline_seconds.
  const std::vector<v2::MineResponse> responses =
      service_->MineBatch(requests);
  size_t failed = 0;
  JsonValue encoded = JsonValue::Array();
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].status.ok()) ++failed;
    encoded.Append(MineResponseV2ToJson(responses[i], requests[i].query.kind));
  }
  JsonValue body = JsonValue::Object();
  body.Set("responses", std::move(encoded));
  body.Set("total", JsonValue(static_cast<double>(responses.size())));
  body.Set("failed", JsonValue(static_cast<double>(failed)));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleEvaluations(const HttpRequest& request,
                                            const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "evaluations body must be a JSON object");
  }
  const JsonValue* keyed = json->Find("request");
  if (keyed == nullptr) {
    return JsonErrorResponse(400, "invalid_argument",
                             "field 'request' (cache-keying MineRequest) is "
                             "required");
  }
  const ColumnResolver resolver = MakeResolver();
  auto decoded_v2 = MineRequestV2FromJson(*keyed, &resolver);
  if (!decoded_v2.ok()) return StatusResponse(decoded_v2.status());
  const MineRequest legacy_key = v2::ToLegacy(*decoded_v2);
  const MineRequest* decoded = &legacy_key;

  const JsonValue* evaluations = json->Find("evaluations");
  if (evaluations == nullptr || !evaluations->is_array() ||
      evaluations->size() == 0) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "field 'evaluations' (non-empty array of {region, value}) is "
        "required");
  }

  const size_t dims = decoded->statistic.region_cols.size();
  RegionWorkload fresh;
  fresh.features = FeatureMatrix(2 * dims);
  fresh.statistic = decoded->statistic;
  for (size_t i = 0; i < evaluations->array().size(); ++i) {
    const JsonValue& entry = evaluations->array()[i];
    const std::string at = "evaluations[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return JsonErrorResponse(400, "invalid_argument",
                               at + " must be an object");
    }
    const JsonValue* region_json = entry.Find("region");
    const JsonValue* value = entry.Find("value");
    if (region_json == nullptr || value == nullptr || !value->is_number()) {
      return JsonErrorResponse(
          400, "invalid_argument",
          at + " needs 'region' and a numeric 'value'");
    }
    auto region = RegionFromJson(*region_json);
    if (!region.ok()) {
      return JsonErrorResponse(400, "invalid_argument",
                               at + ": " + region.status().message());
    }
    if (region->dims() != dims) {
      return JsonErrorResponse(
          400, "invalid_argument",
          at + ": region has " + std::to_string(region->dims()) +
              " dims but the statistic spans " + std::to_string(dims));
    }
    fresh.features.AddRow(RegionFeatures(*region));
    fresh.targets.push_back(value->number_value());
  }

  const Status appended = service_->AppendEvaluations(*decoded, fresh);
  if (!appended.ok()) return StatusResponse(appended);

  JsonValue body = JsonValue::Object();
  body.Set("appended", JsonValue(static_cast<double>(fresh.size())));
  // Report the entry's declared pedigree after the append, so clients
  // see pending counts and warm-start folds move.
  auto key = service_->KeyFor(*decoded);
  if (key.ok()) {
    if (auto entry = service_->cache().Peek(*key)) {
      body.Set("provenance", ProvenanceToJson(entry->provenance()));
    }
  }
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleShardEvaluate(const HttpRequest& request,
                                              const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  const ColumnResolver resolver = MakeResolver();
  auto decoded = ShardEvaluateRequestFromJson(*json, &resolver);
  if (!decoded.ok()) return StatusResponse(decoded.status());

  const Dataset* data = service_->dataset(decoded->dataset);
  if (data == nullptr) {
    return JsonErrorResponse(
        404, "not_found",
        "dataset '" + decoded->dataset + "' not registered on this worker");
  }
  // The coordinator's fingerprint pins the exact data the partials must
  // come from: a worker holding anything else must refuse, not answer
  // with bits from a different dataset.
  if (decoded->has_fingerprint &&
      service_->dataset_fingerprint(decoded->dataset) !=
          decoded->fingerprint) {
    return JsonErrorResponse(
        412, "failed_precondition",
        "dataset '" + decoded->dataset +
            "' fingerprint mismatch: this worker holds different data "
            "than the coordinator expects");
  }
  if (decoded->num_shards > ShardingOptions::kMaxShards) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "num_shards must be <= " +
            std::to_string(ShardingOptions::kMaxShards));
  }
  // order_by -1 keeps natural row order; anything else must name a
  // column.
  if (decoded->order_by < -1 ||
      (decoded->order_by >= 0 &&
       static_cast<size_t>(decoded->order_by) >= data->num_cols())) {
    return JsonErrorResponse(400, "invalid_argument",
                             "order_by column out of range");
  }
  for (size_t c : decoded->columns) {
    if (c >= data->num_cols()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "partition column out of range");
    }
  }
  for (size_t c : decoded->statistic.region_cols) {
    if (c >= data->num_cols()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "region column out of range");
    }
  }
  if (decoded->statistic.needs_value_column() &&
      (decoded->statistic.value_col < 0 ||
       static_cast<size_t>(decoded->statistic.value_col) >=
           data->num_cols())) {
    return JsonErrorResponse(400, "invalid_argument",
                             "value column out of range");
  }
  const size_t dims = decoded->statistic.region_cols.size();
  for (const Region& q : decoded->queries) {
    if (q.dims() != dims) {
      return JsonErrorResponse(
          400, "invalid_argument",
          "query region dims do not match statistic.region_cols");
    }
  }

  // One partition per (dataset, statistic, partition spec) — repeated
  // scatter batches of a workload reuse it instead of re-sharding.
  std::string key = decoded->dataset + "|";
  {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(
                      FingerprintStatistic(decoded->statistic)));
    key += hex;
  }
  key += "|" + std::to_string(decoded->num_shards) + "|" +
         std::to_string(decoded->order_by) + "|";
  for (size_t c : decoded->columns) key += std::to_string(c) + ",";
  std::shared_ptr<const ShardedScanEvaluator> evaluator;
  {
    std::lock_guard<std::mutex> lock(shard_evaluators_mu_);
    auto it = shard_evaluators_.find(key);
    if (it != shard_evaluators_.end()) evaluator = it->second;
  }
  if (evaluator == nullptr) {
    ShardingOptions options;
    options.num_shards = decoded->num_shards;
    options.order_by = decoded->order_by;
    options.columns = decoded->columns;
    auto built = std::make_shared<const ShardedScanEvaluator>(
        ShardedDataset::Partition(*data, options), decoded->statistic,
        /*num_threads=*/1);
    std::lock_guard<std::mutex> lock(shard_evaluators_mu_);
    auto [it, inserted] = shard_evaluators_.emplace(key, std::move(built));
    evaluator = it->second;  // a concurrent loser shares the winner's
    (void)inserted;
  }
  // Partition may clamp the shard count (tiny datasets); assignments
  // beyond what actually exists are a spec mismatch, not retriable.
  if (decoded->shards.back() >= evaluator->num_shards()) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "shard index " + std::to_string(decoded->shards.back()) +
            " out of range: partition has " +
            std::to_string(evaluator->num_shards()) + " shards");
  }

  // Deadline: the tighter of the transport budget and the wire field,
  // polled between every (query, shard) cell so an expired coordinator
  // deadline releases this worker within one shard evaluation.
  CancelSource cancel_source;
  double budget = decoded->deadline_seconds;
  const double remaining = request.RemainingSeconds();
  if (std::isfinite(remaining) && (budget == 0.0 || remaining < budget)) {
    budget = remaining > 0.0 ? remaining : 1e-9;
  }
  if (budget > 0.0) cancel_source.SetDeadline(budget);
  const CancelToken cancel = cancel_source.token();

  dist::ShardEvaluateResponse partials;
  partials.partials.resize(decoded->queries.size());
  for (size_t q = 0; q < decoded->queries.size(); ++q) {
    partials.partials[q].reserve(decoded->shards.size());
    for (size_t s : decoded->shards) {
      if (cancel.cancelled()) {
        return JsonErrorResponse(408, "timed_out",
                                 "shard evaluation deadline exceeded");
      }
      StatisticAccumulator acc(decoded->statistic);
      evaluator->EvalShardPartial(s, decoded->queries[q], &acc);
      partials.partials[q].push_back(std::move(acc));
    }
  }
  return JsonResponse(200, ShardEvaluateResponseToJson(partials));
}

HttpResponse SurfHandler::HandleVersion(const HttpRequest&,
                                        const std::string&) {
  const BuildInfo info = GetBuildInfo();
  JsonValue build = JsonValue::Object();
  build.Set("compiler", JsonValue(info.compiler));
  build.Set("cxx_standard", JsonValue(info.cxx_standard));
  JsonValue body = JsonValue::Object();
  body.Set("api_version", JsonValue(static_cast<double>(info.api_version)));
  body.Set("api_min_version",
           JsonValue(static_cast<double>(info.api_min_version)));
  body.Set("library_version", JsonValue(info.library_version));
  body.Set("build", std::move(build));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleSubmitJob(const HttpRequest& request,
                                          const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  const ColumnResolver resolver = MakeResolver();
  auto decoded = MineRequestV2FromJson(*json, &resolver);
  if (!decoded.ok()) return StatusResponse(decoded.status());

  // Async jobs deliberately ignore the transport deadline: the request
  // is acknowledged immediately and the mining outlives this HTTP
  // exchange. Only the client's execution.deadline_seconds applies.
  auto job = service_->Submit(*decoded);
  const std::string id = jobs_.Add(job);

  JsonValue body = JsonValue::Object();
  body.Set("job_id", JsonValue(id));
  body.Set("progress", JobProgressToJson(job->progress()));
  body.Set("poll", JsonValue("/v1/jobs/" + id));
  return JsonResponse(202, body);
}

HttpResponse SurfHandler::HandleGetJob(const HttpRequest&,
                                       const std::string& id) {
  auto job = jobs_.Find(id);
  if (job == nullptr) {
    return JsonErrorResponse(404, "not_found", "no job '" + id + "'");
  }
  JsonValue body = JsonValue::Object();
  body.Set("job_id", JsonValue(id));
  body.Set("progress", JobProgressToJson(job->progress()));
  MineResponse response;
  if (job->TryGet(&response)) {
    const v2::QueryKind kind =
        job->request().mode == MineRequest::Mode::kTopK
            ? v2::QueryKind::kTopK
            : v2::QueryKind::kThreshold;
    body.Set("response",
             MineResponseV2ToJson(v2::FromLegacyResponse(std::move(response)),
                                  kind));
  }
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleListFailpoints(const HttpRequest&,
                                               const std::string&) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  JsonValue armed = JsonValue::Array();
  for (const FailpointRegistry::Info& info : registry.List()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("site", JsonValue(info.site));
    entry.Set("action", JsonValue(info.action));
    entry.Set("hits", JsonValue(static_cast<double>(info.hits)));
    entry.Set("fires", JsonValue(static_cast<double>(info.fires)));
    armed.Append(std::move(entry));
  }
  JsonValue known = JsonValue::Array();
  for (const std::string& site : FailpointRegistry::KnownSites()) {
    known.Append(JsonValue(site));
  }
  JsonValue body = JsonValue::Object();
  body.Set("failpoints", std::move(armed));
  body.Set("seed", JsonValue(static_cast<double>(registry.seed())));
  body.Set("known_sites", std::move(known));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleArmFailpoints(const HttpRequest& request,
                                              const std::string&) {
  auto json = ParseJson(request.body);
  if (!json.ok()) return StatusResponse(json.status());
  if (!json->is_object()) {
    return JsonErrorResponse(400, "invalid_argument",
                             "failpoint body must be a JSON object");
  }
  const JsonValue* spec = json->Find("spec");
  const JsonValue* seed = json->Find("seed");
  if (spec == nullptr && seed == nullptr) {
    return JsonErrorResponse(
        400, "invalid_argument",
        "provide 'spec' (\"site=action,...\") and/or 'seed' (integer)");
  }
  FailpointRegistry& registry = FailpointRegistry::Global();
  if (seed != nullptr) {
    if (!seed->is_number() || seed->number_value() < 0) {
      return JsonErrorResponse(400, "invalid_argument",
                               "field 'seed' must be a non-negative number");
    }
    registry.SetSeed(static_cast<uint64_t>(seed->number_value()));
  }
  if (spec != nullptr) {
    if (!spec->is_string()) {
      return JsonErrorResponse(400, "invalid_argument",
                               "field 'spec' must be a string");
    }
    const Status configured = registry.Configure(spec->string_value());
    if (!configured.ok()) return StatusResponse(configured);
  }
  // Echo the post-change state so the caller sees what is armed.
  return HandleListFailpoints(request, "");
}

HttpResponse SurfHandler::HandleClearFailpoints(const HttpRequest&,
                                                const std::string&) {
  FailpointRegistry::Global().ClearAll();
  JsonValue body = JsonValue::Object();
  body.Set("cleared", JsonValue(true));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleClearOneFailpoint(const HttpRequest&,
                                                  const std::string& site) {
  const bool was_armed = FailpointRegistry::Global().Clear(site);
  if (!was_armed) {
    return JsonErrorResponse(404, "not_found",
                             "failpoint '" + site + "' is not armed");
  }
  JsonValue body = JsonValue::Object();
  body.Set("site", JsonValue(site));
  body.Set("cleared", JsonValue(true));
  return JsonResponse(200, body);
}

HttpResponse SurfHandler::HandleCancelJob(const HttpRequest&,
                                          const std::string& id) {
  auto job = jobs_.Find(id);
  if (job == nullptr) {
    return JsonErrorResponse(404, "not_found", "no job '" + id + "'");
  }
  const bool was_done = job->done();
  job->Cancel();  // harmless no-op when already terminal
  JsonValue body = JsonValue::Object();
  body.Set("job_id", JsonValue(id));
  body.Set("cancelled", JsonValue(!was_done));
  body.Set("already_done", JsonValue(was_done));
  body.Set("progress", JobProgressToJson(job->progress()));
  return JsonResponse(200, body);
}

}  // namespace surf
