#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace surf {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

QuantileSketch::QuantileSketch(size_t capacity)
    : capacity_(std::max<size_t>(8, capacity)) {}

void QuantileSketch::Add(double value) {
  if (levels_.empty()) {
    levels_.emplace_back();
    parity_.push_back(0);
    levels_[0].reserve(capacity_);
  }
  levels_[0].push_back(value);
  ++count_;
  // Strict `>` so the capacity-th insert is still exact, matching the
  // header's "exact until more than `capacity` values" contract.
  if (levels_[0].size() > capacity_) Compact(0);
}

void QuantileSketch::Compact(size_t level) {
  if (level + 1 >= levels_.size()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  std::vector<double>& items = levels_[level];
  std::sort(items.begin(), items.end());
  const size_t offset = parity_[level] & 1;
  parity_[level] ^= 1;
  std::vector<double>& up = levels_[level + 1];
  for (size_t i = offset; i < items.size(); i += 2) {
    up.push_back(items[i]);
  }
  items.clear();
  ++compactions_;
  if (up.size() > capacity_) Compact(level + 1);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  capacity_ = std::max(capacity_, other.capacity_);
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
    parity_.resize(other.levels_.size(), 0);
  }
  for (size_t i = 0; i < other.levels_.size(); ++i) {
    levels_[i].insert(levels_[i].end(), other.levels_[i].begin(),
                      other.levels_[i].end());
  }
  count_ += other.count_;
  compactions_ += other.compactions_;
  // Restore the capacity invariant bottom-up so promotions cascade in a
  // fixed order regardless of which operand overflowed.
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].size() > capacity_) Compact(i);
  }
}

size_t QuantileSketch::num_retained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

std::vector<std::pair<double, uint64_t>> QuantileSketch::GatherSorted()
    const {
  std::vector<std::pair<double, uint64_t>> weighted;
  weighted.reserve(num_retained());
  for (size_t i = 0; i < levels_.size(); ++i) {
    const uint64_t w = uint64_t{1} << i;
    for (double v : levels_[i]) weighted.emplace_back(v, w);
  }
  std::sort(weighted.begin(), weighted.end());
  return weighted;
}

double QuantileSketch::WalkRank(
    const std::vector<std::pair<double, uint64_t>>& weighted,
    uint64_t rank) {
  // Walk the cumulative weight to the target rank. Compacting an
  // even-sized level preserves total weight exactly (m items of weight
  // w become m/2 of weight 2w); odd sizes drift it by ±w, so a
  // near-maximal rank can run off the end — the final fall-through
  // answers with the largest retained value.
  uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (cumulative > rank) return value;
  }
  return weighted.empty() ? kNaN : weighted.back().first;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1) + 0.5);
  return WalkRank(GatherSorted(), rank);
}

double QuantileSketch::Median() const {
  if (count_ == 0) return kNaN;
  // Matches the historical exact-path convention: nth_element at n/2,
  // averaged with the lower middle for even n. In exact mode (weights
  // all 1) the rank walk is a plain sorted-order lookup, so the results
  // coincide bit-for-bit with the old raw-buffer implementation. One
  // gather+sort serves both middle ranks.
  const std::vector<std::pair<double, uint64_t>> weighted = GatherSorted();
  const double upper = WalkRank(weighted, count_ / 2);
  if ((count_ & 1) == 1) return upper;
  const double lower = WalkRank(weighted, (count_ - 1) / 2);
  return 0.5 * (lower + upper);
}

}  // namespace surf
