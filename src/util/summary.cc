#include "util/summary.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace surf {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Quantile(std::vector<double> xs, double q) {
  assert(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const size_t n = xs.size();
  if (n < 2) return fit;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace surf
