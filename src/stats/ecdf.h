#ifndef SURF_STATS_ECDF_H_
#define SURF_STATS_ECDF_H_

#include <cstddef>
#include <vector>

namespace surf {

/// \brief Empirical cumulative distribution function F_Y of a statistic
/// sample (paper Eq. 5: P{f(x,l) > y_R} = 1 − F_Y(y_R)).
///
/// Built from a sample of region-statistic values; used by the activity
/// experiment (§V-C) to quantify how unlikely a threshold is, and by the
/// crimes experiment to pick y_R = Q3.
class Ecdf {
 public:
  /// Builds from (unordered) samples. NaN samples are dropped.
  explicit Ecdf(std::vector<double> samples);

  /// F(y): fraction of samples <= y.
  double Cdf(double y) const;

  /// Exceedance P{Y > y} = 1 − F(y) — Eq. 5's viability probability.
  double Exceedance(double y) const { return 1.0 - Cdf(y); }

  /// Inverse CDF at q in [0, 1] (linear interpolation).
  double Quantile(double q) const;

  size_t num_samples() const { return samples_.size(); }
  double min() const;
  double max() const;

 private:
  std::vector<double> samples_;  // sorted
};

}  // namespace surf

#endif  // SURF_STATS_ECDF_H_
