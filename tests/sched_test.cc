// Tests for the src/sched scheduling layer behind the HTTP event loop:
// the hashed timer wheel (arm/advance/disarm/re-arm, lap wrapping), the
// two-class deadline scheduler (ordering, strict class separation, load
// shedding of the farthest-deadline batch job), and the per-tenant QoS
// governor (token buckets, concurrency quotas, spec parsing).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/priority_scheduler.h"
#include "sched/tenant_governor.h"
#include "sched/timer_wheel.h"

namespace surf::sched {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// TimerWheel
// ---------------------------------------------------------------------------

TEST(TimerWheelTest, FiresArmedTimerOncePastDeadline) {
  TimerWheel wheel(milliseconds(10), 16);
  const auto now = Clock::now();
  wheel.Arm(7, now + milliseconds(35));

  std::vector<uint64_t> fired;
  wheel.Advance(now + milliseconds(20), &fired);
  EXPECT_TRUE(fired.empty()) << "fired before its deadline";
  EXPECT_EQ(wheel.armed(), 1u);

  wheel.Advance(now + milliseconds(50), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_EQ(wheel.armed(), 0u);

  // A consumed registration never fires again.
  fired.clear();
  wheel.Advance(now + milliseconds(500), &fired);
  EXPECT_TRUE(fired.empty());
}

TEST(TimerWheelTest, DisarmPreventsFiring) {
  TimerWheel wheel(milliseconds(10), 16);
  const auto now = Clock::now();
  wheel.Arm(1, now + milliseconds(30));
  wheel.Disarm(1);
  EXPECT_EQ(wheel.armed(), 0u);

  std::vector<uint64_t> fired;
  wheel.Advance(now + milliseconds(100), &fired);
  EXPECT_TRUE(fired.empty());
}

TEST(TimerWheelTest, RearmReplacesEarlierDeadline) {
  TimerWheel wheel(milliseconds(10), 16);
  const auto now = Clock::now();
  wheel.Arm(3, now + milliseconds(30));
  wheel.Arm(3, now + milliseconds(200));  // push the deadline out

  std::vector<uint64_t> fired;
  wheel.Advance(now + milliseconds(100), &fired);
  EXPECT_TRUE(fired.empty()) << "stale registration fired";

  wheel.Advance(now + milliseconds(250), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(TimerWheelTest, DeadlineBeyondOneLapWaitsForItsLap) {
  // 16 slots x 10ms = 160ms per lap; a 400ms deadline wraps twice.
  TimerWheel wheel(milliseconds(10), 16);
  const auto now = Clock::now();
  wheel.Arm(9, now + milliseconds(400));

  std::vector<uint64_t> fired;
  wheel.Advance(now + milliseconds(170), &fired);  // one full lap
  EXPECT_TRUE(fired.empty()) << "fired a lap early";
  wheel.Advance(now + milliseconds(340), &fired);  // two laps
  EXPECT_TRUE(fired.empty());
  wheel.Advance(now + milliseconds(410), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
}

TEST(TimerWheelTest, TimeoutBoundsReflectArmedState) {
  TimerWheel wheel(milliseconds(10), 16);
  const auto now = Clock::now();
  EXPECT_EQ(wheel.TimeoutMs(now, 100), 100) << "idle wheel must not spin";
  wheel.Arm(1, now + milliseconds(50));
  const int timeout = wheel.TimeoutMs(now, 100);
  EXPECT_GE(timeout, 0);
  EXPECT_LE(timeout, 100);
}

// ---------------------------------------------------------------------------
// PriorityScheduler
// ---------------------------------------------------------------------------

Job MakeJob(JobClass cls, Clock::time_point deadline,
            std::function<void()> run, std::function<void()> shed = {}) {
  Job job;
  job.cls = cls;
  job.deadline = deadline;
  job.run = std::move(run);
  job.shed = std::move(shed);
  return job;
}

TEST(PrioritySchedulerTest, RunsEarlierDeadlinesFirstWithinAClass) {
  // One interactive worker, held busy while we queue three dated jobs in
  // scrambled order; they must then run earliest-deadline-first.
  PriorityScheduler::Options options;
  options.interactive_workers = 1;
  options.batch_workers = 1;
  PriorityScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;

  const auto now = Clock::now();
  scheduler.Submit(MakeJob(JobClass::kInteractive, now, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  auto record = [&](int tag) {
    return [&order, &mu, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  scheduler.Submit(MakeJob(JobClass::kInteractive,
                           now + std::chrono::seconds(30), record(3)));
  scheduler.Submit(MakeJob(JobClass::kInteractive,
                           now + std::chrono::seconds(10), record(1)));
  scheduler.Submit(MakeJob(JobClass::kInteractive,
                           now + std::chrono::seconds(20), record(2)));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Shutdown();  // drains the queue before joining

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  const PriorityScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.executed_interactive, 4u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(PrioritySchedulerTest, BatchJobsNeverOccupyInteractiveWorkers) {
  // Every batch job records which pool ran it: with the batch worker
  // blocked, queued batch work must wait rather than jump to the idle
  // interactive worker.
  PriorityScheduler::Options options;
  options.interactive_workers = 1;
  options.batch_workers = 1;
  PriorityScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> batch_ran{0};
  std::atomic<int> interactive_ran{0};

  scheduler.Submit(MakeJob(JobClass::kBatch, Clock::now(), [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  scheduler.Submit(
      MakeJob(JobClass::kBatch, Clock::now(), [&] { ++batch_ran; }));
  scheduler.Submit(MakeJob(JobClass::kInteractive, Clock::now(),
                           [&] { ++interactive_ran; }));

  // The interactive job completes while the batch queue is stuck.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (interactive_ran.load() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(interactive_ran.load(), 1);
  EXPECT_EQ(batch_ran.load(), 0) << "batch job ran on an interactive worker";

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Shutdown();
  EXPECT_EQ(batch_ran.load(), 1);
}

TEST(PrioritySchedulerTest, ShedsFarthestDeadlineBatchJobFirst) {
  // Both workers blocked, queue capped at 2. Queue two batch jobs, then
  // submit an interactive one: the scheduler must shed the batch job
  // with the *farthest* deadline (cheapest abandonment), not the
  // incoming interactive job and not the most urgent batch job.
  PriorityScheduler::Options options;
  options.interactive_workers = 1;
  options.batch_workers = 1;
  options.max_queue_depth = 2;
  PriorityScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};
  auto block = [&] {
    ++started;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  scheduler.Submit(MakeJob(JobClass::kInteractive, Clock::now(), block));
  scheduler.Submit(MakeJob(JobClass::kBatch, Clock::now(), block));
  // Wait until both workers hold their blocker, so the blockers are no
  // longer part of the queued backlog we are about to fill.
  while (started.load() < 2) std::this_thread::sleep_for(milliseconds(1));

  const auto now = Clock::now();
  std::atomic<int> near_ran{0}, far_ran{0}, far_shed{0}, inter_ran{0};
  ASSERT_TRUE(scheduler.Submit(MakeJob(
      JobClass::kBatch, now + std::chrono::seconds(5), [&] { ++near_ran; })));
  ASSERT_TRUE(scheduler.Submit(MakeJob(
      JobClass::kBatch, now + std::chrono::seconds(60), [&] { ++far_ran; },
      [&] { ++far_shed; })));
  // Queue is now full (depth 2): the interactive submit displaces the
  // far-deadline batch job.
  ASSERT_TRUE(scheduler.Submit(MakeJob(JobClass::kInteractive,
                                       now + std::chrono::seconds(1),
                                       [&] { ++inter_ran; })));
  EXPECT_EQ(far_shed.load(), 1) << "farthest-deadline batch job not shed";
  EXPECT_EQ(scheduler.stats().shed, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Shutdown();
  EXPECT_EQ(near_ran.load(), 1);
  EXPECT_EQ(far_ran.load(), 0);
  EXPECT_EQ(inter_ran.load(), 1);
}

TEST(PrioritySchedulerTest, IncomingBatchIsShedWhenItIsTheWorst) {
  // Queue full of batch work that is *more urgent* than the incoming
  // batch job: the incoming job itself is shed (Submit returns false)
  // and its shed callback runs.
  PriorityScheduler::Options options;
  options.interactive_workers = 1;
  options.batch_workers = 1;
  options.max_queue_depth = 1;
  PriorityScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};
  auto block = [&] {
    ++started;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  // Stage the blockers: with depth 1, submitting the second while the
  // first is still queued would trip the shed path on the blocker.
  scheduler.Submit(MakeJob(JobClass::kInteractive, Clock::now(), block));
  while (started.load() < 1) std::this_thread::sleep_for(milliseconds(1));
  scheduler.Submit(MakeJob(JobClass::kBatch, Clock::now(), block));
  while (started.load() < 2) std::this_thread::sleep_for(milliseconds(1));

  const auto now = Clock::now();
  std::atomic<int> urgent_ran{0}, late_shed{0};
  ASSERT_TRUE(scheduler.Submit(MakeJob(JobClass::kBatch,
                                       now + std::chrono::seconds(1),
                                       [&] { ++urgent_ran; })));
  EXPECT_FALSE(scheduler.Submit(MakeJob(
      JobClass::kBatch, now + std::chrono::seconds(90), [] {},
      [&] { ++late_shed; })));
  EXPECT_EQ(late_shed.load(), 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Shutdown();
  EXPECT_EQ(urgent_ran.load(), 1);
}

TEST(PrioritySchedulerTest, ShutdownDrainsQueuedJobs) {
  PriorityScheduler::Options options;
  options.interactive_workers = 1;
  options.batch_workers = 1;
  PriorityScheduler scheduler(options);

  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    scheduler.Submit(
        MakeJob(i % 2 == 0 ? JobClass::kInteractive : JobClass::kBatch,
                Clock::now(), [&] { ++ran; }));
  }
  scheduler.Shutdown();
  EXPECT_EQ(ran.load(), 50) << "Shutdown dropped queued jobs";
  const PriorityScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.executed_interactive + stats.executed_batch, 50u);
  EXPECT_EQ(stats.queued, 0u);
}

// ---------------------------------------------------------------------------
// TenantGovernor
// ---------------------------------------------------------------------------

TEST(TenantGovernorTest, UnlimitedTenantsAlwaysAdmit) {
  TenantGovernor governor(TenantGovernor::Options{});
  const auto now = Clock::now();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(governor.Admit("anyone", now),
              TenantGovernor::Decision::kAdmit);
  }
  EXPECT_EQ(governor.stats().admitted, 100u);
}

TEST(TenantGovernorTest, ConcurrencyQuotaBoundsInflight) {
  TenantGovernor::Options options;
  options.per_tenant["acme"].max_inflight = 2;
  TenantGovernor governor(options);
  const auto now = Clock::now();

  EXPECT_EQ(governor.Admit("acme", now), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("acme", now), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("acme", now),
            TenantGovernor::Decision::kOverQuota);
  // Unrelated tenants are untouched by acme's quota.
  EXPECT_EQ(governor.Admit("other", now), TenantGovernor::Decision::kAdmit);

  governor.Release("acme");
  EXPECT_EQ(governor.Admit("acme", now), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.stats().over_quota, 1u);
}

TEST(TenantGovernorTest, TokenBucketThrottlesAndRefills) {
  TenantGovernor::Options options;
  options.default_limits.rate = 10.0;  // 10 rps
  options.default_limits.burst = 2.0;  // two-token bucket
  TenantGovernor governor(options);
  const auto t0 = Clock::now();

  // The bucket starts full: the burst is admitted, the next is not.
  EXPECT_EQ(governor.Admit("t", t0), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("t", t0), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("t", t0), TenantGovernor::Decision::kThrottled);

  // 100ms at 10 rps refills exactly one token.
  const auto t1 = t0 + milliseconds(100);
  EXPECT_EQ(governor.Admit("t", t1), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("t", t1), TenantGovernor::Decision::kThrottled);

  // Refill is capped at the burst even after a long idle stretch.
  const auto t2 = t1 + std::chrono::seconds(60);
  EXPECT_EQ(governor.Admit("t", t2), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("t", t2), TenantGovernor::Decision::kAdmit);
  EXPECT_EQ(governor.Admit("t", t2), TenantGovernor::Decision::kThrottled);
  EXPECT_EQ(governor.stats().throttled, 3u);
}

TEST(TenantGovernorTest, ParseLimitsAcceptsTripleAndRejectsJunk) {
  TenantLimits limits;
  ASSERT_TRUE(TenantGovernor::ParseLimits("5:10:2", &limits).ok());
  EXPECT_DOUBLE_EQ(limits.rate, 5.0);
  EXPECT_DOUBLE_EQ(limits.burst, 10.0);
  EXPECT_EQ(limits.max_inflight, 2u);

  EXPECT_FALSE(TenantGovernor::ParseLimits("5:10", &limits).ok());
  EXPECT_FALSE(TenantGovernor::ParseLimits("a:b:c", &limits).ok());
  EXPECT_FALSE(TenantGovernor::ParseLimits("1:-2:3", &limits).ok());
  EXPECT_FALSE(TenantGovernor::ParseLimits("", &limits).ok());
}

TEST(TenantGovernorTest, ParseTenantSpecFillsPerTenantMap) {
  TenantGovernor::Options options;
  ASSERT_TRUE(TenantGovernor::ParseTenantSpec(
                  "acme=5:10:2, analytics=1:1:1", &options)
                  .ok());
  ASSERT_EQ(options.per_tenant.size(), 2u);
  EXPECT_DOUBLE_EQ(options.per_tenant["acme"].rate, 5.0);
  EXPECT_EQ(options.per_tenant["analytics"].max_inflight, 1u);

  EXPECT_FALSE(TenantGovernor::ParseTenantSpec("no-equals", &options).ok());
  EXPECT_FALSE(TenantGovernor::ParseTenantSpec("=1:2:3", &options).ok());
}

}  // namespace
}  // namespace surf::sched
