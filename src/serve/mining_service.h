#ifndef SURF_SERVE_MINING_SERVICE_H_
#define SURF_SERVE_MINING_SERVICE_H_

/// \file
/// \brief The persistent multi-query mining service.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/finder.h"
#include "core/surf.h"
#include "core/topk.h"
#include "serve/mine_job.h"
#include "serve/scheduler.h"
#include "serve/surrogate_cache.h"
#include "util/cancel.h"
#include "util/retry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace surf {

namespace v2 {
struct MineRequest;
struct MineResponse;
}  // namespace v2

namespace dist {
class WorkerPool;
}  // namespace dist

/// \brief One mining request against a registered dataset.
///
/// The tuple (dataset, statistic, workload, surrogate) forms the
/// surrogate-cache key; everything else — threshold, direction, finder
/// knobs, top-k settings — is per-request search configuration evaluated
/// against the shared read-only model.
struct MineRequest {
  /// Name the dataset was registered under.
  std::string dataset;
  /// The statistic f whose interesting regions are sought.
  Statistic statistic;

  /// The user's cut-off value y_R (paper Problem 1).
  double threshold = 0.0;
  /// Which side of the threshold is interesting.
  ThresholdDirection direction = ThresholdDirection::kAbove;

  /// \brief Query formulation.
  enum class Mode {
    /// Regions whose statistic crosses `threshold` (paper Problem 1).
    kThreshold,
    /// The k highest-statistic regions (§VI's alternative formulation).
    kTopK,
  };
  /// Threshold query (default) vs. k-highest-statistic query.
  Mode mode = Mode::kThreshold;
  /// Top-k settings (used when mode == kTopK).
  TopKConfig topk;

  /// Per-request GSO/extraction knobs.
  FinderConfig finder;
  /// Training-workload recipe — part of the cache key.
  WorkloadParams workload;
  /// Surrogate training recipe — part of the cache key.
  SurrogateTrainOptions surrogate;
  /// Which exact back-end labels the workload and validates results.
  BackendKind backend = BackendKind::kGridIndex;
  /// Row-range shards for the exact back-end (execution policy, like
  /// `backend` — not part of the cache key). 1 = the single `backend`
  /// evaluator; >= 2 = the shard-parallel scan backend.
  size_t shards = 1;
  /// Distributed execution: scatter workload labelling and validation
  /// to the service's configured remote workers (`shards` when >= 2
  /// sets the partition's shard count, else one shard per worker).
  /// FailedPrecondition when the service has no cluster workers.
  bool cluster = false;

  /// Fit/use the KDE data prior (Eq. 8 guidance).
  bool use_kde = true;
  /// Validate reported regions against the true statistic.
  bool validate = true;
  /// Feed validated (region, true value) pairs back into the cache
  /// entry's pending workload, so repeated traffic warms the next
  /// incremental retrain. Requires `validate`.
  bool record_evaluations = false;
  /// Record a hierarchical span trace of the request's pipeline stages
  /// and attach it to the response (also retained for `/v1/trace/{id}`
  /// export). Tracing never changes mining results.
  bool trace = false;
};

/// \brief One mining response.
struct MineResponse {
  /// Request outcome; `result`/`topk` are meaningful only when OK.
  Status status = Status::OK();
  /// Threshold-mode result.
  FindResult result;
  /// Top-k-mode result.
  TopKResult topk;
  /// Whether an already-resident surrogate served this request.
  bool cache_hit = false;
  /// Declared pedigree of the model that served the request.
  SurrogateProvenance provenance;
  /// End-to-end request wall-time (training share included on misses).
  double total_seconds = 0.0;
  /// Span trace of the request's pipeline stages; non-null only when
  /// the request asked for tracing (MineRequest::trace). Shared with the
  /// service's trace ring, so the response copy stays cheap.
  std::shared_ptr<const TraceContext> trace;
};

/// \brief Persistent multi-query region-mining service (the deployment
/// story of paper §V-D: "models will be trained once and successively
/// used to answer queries").
///
/// Owns named datasets, a keyed surrogate cache, and a worker pool.
/// Concurrent requests for the same (dataset, statistic, workload recipe,
/// model recipe) share one trained surrogate — the first request trains,
/// the rest block on the in-flight fit, and later ones hit the cache
/// outright. Mining itself (GSO/PSO/top-k search) runs per request
/// against read-only model snapshots, so any number of requests can be in
/// flight at once.
///
/// Requests are served through one asynchronous job core: Submit returns
/// a MineJob handle (Wait/TryGet/Cancel/progress) whose cancel token is
/// threaded cooperatively through surrogate training, KDE fitting, and
/// the GSO iteration loops — a cancelled or deadline-exceeded request
/// stops computing within one iteration and completes with
/// Status::Cancelled plus partial results. The blocking Mine/MineBatch
/// are thin wrappers that run the same job core inline. Every entry
/// point funnels through the shared v2 validation path (api/api_v2.h).
class MiningService {
 public:
  /// \brief Service configuration.
  struct Options {
    /// Worker threads for MineBatch (0 = hardware concurrency).
    size_t num_threads = 0;
    /// Surrogate-cache sizing/eviction/warm-start policy.
    SurrogateCache::Options cache;
    /// When >= 2, declare a k-fold cross-validated RMSE in each entry's
    /// provenance (costs `provenance_cv_folds` extra fits per training).
    /// 0 skips CV; provenance then carries only the holdout RMSE.
    size_t provenance_cv_folds = 0;
    /// Sample cap for the per-entry KDE data prior.
    size_t kde_max_samples = 2000;
    /// Retry policy for failed surrogate trainings (transient failures
    /// only; cancellation and invalid requests are never retried). The
    /// single-flight leader retries while its waiters keep waiting. The
    /// default policy makes exactly one attempt (retry disabled).
    RetryPolicy training_retry;
    /// Completed traces retained for `GET /v1/trace/{id}` (oldest fall
    /// off past the cap).
    size_t trace_ring_capacity = 64;
    /// Remote worker endpoints ("host:port") for the distributed
    /// scatter-gather execution mode. Empty (the default) disables the
    /// cluster path: requests with `execution.cluster` then fail with
    /// FailedPrecondition instead of silently running locally.
    std::vector<std::string> cluster_workers;
  };

  /// Service with default options (all-core pool, default cache policy).
  MiningService() : MiningService(Options{}) {}
  /// Service with an explicit configuration.
  explicit MiningService(Options options);
  /// Cancels every outstanding submitted job, then drains the worker
  /// pool, so shutdown completes within one search iteration per
  /// running job rather than their full remaining runtime — and no job
  /// touches the cache or registry after they die.
  ~MiningService();

  /// Registers a dataset under `name`. Fails with AlreadyExists on reuse.
  Status RegisterDataset(const std::string& name, Dataset data);

  /// Convenience: LoadCsv + RegisterDataset.
  Status RegisterCsvDataset(const std::string& name, const std::string& path);

  /// The registered dataset, or null.
  const Dataset* dataset(const std::string& name) const;

  /// Content fingerprint of a registered dataset (0 when unknown) —
  /// computed once at registration. The distributed shard-evaluate
  /// endpoint uses it to verify a worker holds the coordinator's data.
  uint64_t dataset_fingerprint(const std::string& name) const;

  /// The distributed worker pool (null unless Options::cluster_workers
  /// was non-empty). Exposed for /metrics export.
  const dist::WorkerPool* cluster_pool() const {
    return cluster_pool_.get();
  }

  /// Registered dataset names, sorted.
  std::vector<std::string> dataset_names() const;

  /// Serves one request synchronously on the calling thread (a thin
  /// wrapper over the async job core: the job runs inline rather than on
  /// the pool, so Mine stays safe to call from pool workers). Thread-safe;
  /// any number of Mine calls may run concurrently.
  MineResponse Mine(const MineRequest& request);

  /// Serves one v2 request synchronously, honouring
  /// `execution.deadline_seconds` (Cancelled with partial results when it
  /// expires mid-request).
  v2::MineResponse Mine(const v2::MineRequest& request);

  /// Submits a request for asynchronous execution on the worker pool and
  /// returns its job handle (Wait/TryGet/Cancel/progress). The handle
  /// may be dropped; the job still runs to completion (or cancellation).
  std::shared_ptr<MineJob> Submit(const MineRequest& request);

  /// v2 Submit: as above, plus the request's deadline arms the job's
  /// cancel token at submission time (queue wait counts against it).
  std::shared_ptr<MineJob> Submit(const v2::MineRequest& request);

  /// Serves a batch concurrently over the worker pool; responses are in
  /// request order.
  std::vector<MineResponse> MineBatch(const std::vector<MineRequest>& requests);

  /// v2 batch: fans the requests out as deadline-armed jobs (each
  /// entry's `execution.deadline_seconds` is honoured) and waits for
  /// all; responses are in request order. Must not be called from a
  /// pool worker (it blocks on pool-scheduled jobs).
  std::vector<v2::MineResponse> MineBatch(
      const std::vector<v2::MineRequest>& requests);

  /// Appends externally observed region evaluations to the cache entry
  /// `request` keys to (training it first if absent). Past the configured
  /// retrain threshold this triggers the warm-start swap.
  Status AppendEvaluations(const MineRequest& request,
                           const RegionWorkload& fresh);

  /// Cache-key derivation for a request (exposed for tests/tools).
  StatusOr<SurrogateKey> KeyFor(const MineRequest& request) const;

  /// The surrogate cache (for stats, Peek, Clear).
  SurrogateCache& cache() { return cache_; }
  /// Read-only view of the surrogate cache.
  const SurrogateCache& cache() const { return cache_; }
  /// The worker pool MineBatch schedules over.
  ThreadPool& pool() { return pool_; }
  /// Worker-thread count of the pool.
  size_t num_threads() const { return pool_.num_threads(); }
  /// Completed traces of recent traced requests (backs `/v1/trace/{id}`).
  const TraceRing& traces() const { return traces_; }

 private:
  /// A registered dataset plus its content fingerprint, computed once at
  /// registration (datasets are immutable after RegisterDataset).
  struct NamedDataset {
    std::unique_ptr<Dataset> data;
    uint64_t fingerprint = 0;
  };

  /// Validates the request against the dataset; returns the registry
  /// entry (stable address).
  StatusOr<const NamedDataset*> ResolveRequest(
      const MineRequest& request) const;

  /// Trains a cache entry for `request` (runs on a miss, outside the
  /// cache lock). `cancel` threads through workload labelling, KDE
  /// fitting, and GBRT boosting rounds; `trace` (nullable) records
  /// workload_gen/labelling/training spans.
  StatusOr<TrainedSurrogate> TrainEntry(const MineRequest& request,
                                        const Dataset* data,
                                        CancelToken cancel,
                                        TraceContext* trace);

  /// Fetches (or trains) the cache entry for `request`. A fired `cancel`
  /// aborts an owned training; waiters whose own token is live take over
  /// a leader's cancelled training instead of being stranded. Training
  /// spans land in `trace` only when this call becomes the single-flight
  /// leader (waiters' traces simply lack them).
  StatusOr<std::shared_ptr<CachedSurrogate>> EntryFor(
      const MineRequest& request, CancelToken cancel, bool* was_hit,
      TraceContext* trace);

  /// Creates the job object for a request (not yet scheduled).
  std::shared_ptr<MineJob> MakeJob(const MineRequest& request,
                                   double deadline_seconds);

  /// Registers the job for shutdown cancellation and enqueues it on the
  /// pool.
  std::shared_ptr<MineJob> Schedule(std::shared_ptr<MineJob> job);

  /// The one mining core every entry point funnels into: shared v2
  /// validation, surrogate resolution, cancellable search, terminal
  /// response publication on the job.
  void RunJob(const std::shared_ptr<MineJob>& job);

  /// RunJob's body under the root trace span: fills `*response`
  /// (without completing the job) so every return path closes the span
  /// before the trace is published.
  void ExecuteJob(const std::shared_ptr<MineJob>& job, TraceContext* trace,
                  MineResponse* response);

  Options options_;
  ThreadPool pool_;
  RequestScheduler scheduler_;
  SurrogateCache cache_;
  TraceRing traces_;
  /// Remote workers for cluster-mode requests; null when
  /// Options::cluster_workers is empty (incomplete type here — the
  /// out-of-line destructor sees the full definition).
  std::unique_ptr<dist::WorkerPool> cluster_pool_;

  /// Outstanding Submit handles, so the destructor can cancel
  /// abandoned jobs. Expired entries are pruned on each Submit.
  mutable std::mutex jobs_mu_;
  std::vector<std::weak_ptr<MineJob>> live_jobs_;

  mutable std::mutex datasets_mu_;
  /// std::map keeps entry addresses stable across inserts and names
  /// sorted for dataset_names().
  std::map<std::string, NamedDataset> datasets_;
};

}  // namespace surf

#endif  // SURF_SERVE_MINING_SERVICE_H_
