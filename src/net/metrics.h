#ifndef SURF_NET_METRICS_H_
#define SURF_NET_METRICS_H_

/// \file
/// \brief Request-level observability for the HTTP front-end, rendered in
/// Prometheus text exposition format.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace surf {

/// \brief Thread-safe counters behind `GET /metrics`: per-route request
/// counts by status code, a latency histogram, and an in-flight gauge.
///
/// The hot path (RecordRequest, once per completed request on every
/// worker) is lock-free in steady state: the histogram and latency
/// accumulators are plain relaxed atomics, and per-(route, status)
/// counters live behind a reader/writer registry — recording an
/// already-seen pair takes the shared lock only (no worker serializes on
/// another), and the exclusive lock is paid once per *new* pair (a
/// handful per process lifetime) plus at render time.
class ServerMetrics {
 public:
  /// Upper bounds (seconds) of the latency histogram buckets; the
  /// implicit final bucket is +Inf.
  static constexpr std::array<double, 14> kLatencyBucketsSeconds = {
      0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
      0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};

  /// Records one completed request: its route label (the matched
  /// endpoint pattern, not the raw target), HTTP status, and wall-time.
  void RecordRequest(const std::string& route, int status_code,
                     double seconds);

  /// Marks one request entering the handler (in-flight gauge +1).
  void BeginRequest() { inflight_.fetch_add(1, std::memory_order_relaxed); }
  /// Marks one request leaving the handler (in-flight gauge −1).
  void EndRequest() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

  /// Requests currently inside a handler.
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Total requests recorded (across routes and status codes).
  uint64_t total_requests() const {
    return latency_count_.load(std::memory_order_relaxed);
  }

  /// Latency quantile (e.g. 0.5, 0.99) estimated from the histogram:
  /// the upper bound of the bucket containing the quantile. Returns 0
  /// when nothing has been recorded.
  double LatencyQuantileSeconds(double q) const;

  /// \brief One cache figure the exporter publishes alongside transport
  /// counters (filled by the caller from SurrogateCache::Stats).
  struct CacheFigures {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t stale_evictions = 0;
    uint64_t entries = 0;
    uint64_t degraded_serves = 0;
    uint64_t negative_hits = 0;
    uint64_t breaker_rejections = 0;
    uint64_t training_failures = 0;
  };

  /// \brief Service-level figures (job table + transport health +
  /// backend/evaluator telemetry) the exporter publishes alongside
  /// request metrics.
  struct ServiceFigures {
    uint64_t jobs_tracked = 0;
    uint64_t jobs_evicted = 0;
    /// Whether the transport counters below carry live values (false
    /// when metrics are rendered outside a running server).
    bool has_transport = false;
    uint64_t worker_exceptions = 0;
    uint64_t write_failures = 0;
    /// QoS counters from the event loop's admission + scheduling layer.
    uint64_t requests_shed = 0;
    uint64_t tenant_throttled = 0;
    uint64_t tenant_over_quota = 0;
    uint64_t batch_served = 0;
    /// /v1/mine requests answered by sharing an identical in-flight
    /// computation (single-flight coalescing).
    uint64_t mine_coalesced = 0;
    /// Sharded-evaluator shard classifications (process totals; see
    /// ShardedScanEvaluator::global_telemetry()).
    uint64_t shard_evals_pruned = 0;
    uint64_t shard_evals_block_merged = 0;
    uint64_t shard_evals_scanned = 0;
    /// Active SIMD kernel backend ("generic", "avx2", "avx512");
    /// empty omits the surf_accel_backend info gauge.
    std::string accel_backend;
    /// \brief One distributed worker's figures (filled from
    /// dist::WorkerPool::Snapshot()).
    struct DistWorkerFigures {
      std::string endpoint;
      bool healthy = true;
      /// Raw (non-cumulative) RPC latency bucket counts; bounds are
      /// kLatencyBucketsSeconds (the pool uses identical bounds), last
      /// slot = +Inf.
      std::array<uint64_t, 15> buckets{};
      double latency_sum_seconds = 0.0;
      uint64_t latency_count = 0;
    };
    /// Whether the cluster figures below carry live values (false on
    /// non-coordinator deployments; every surf_dist_* series is then
    /// omitted).
    bool has_dist = false;
    /// Shard groups re-homed onto another worker after an RPC failure.
    uint64_t dist_shard_retries = 0;
    /// Per-worker health + request-latency figures.
    std::vector<DistWorkerFigures> dist_workers;
  };

  /// Renders every metric in Prometheus text format (version 0.0.4),
  /// including the per-stage pipeline histograms fed by the trace layer
  /// (surf_stage_seconds, from StageStats).
  std::string RenderPrometheus(const CacheFigures& cache,
                               const ServiceFigures& service) const;
  /// Convenience overload: no service-level figures (job gauges read 0,
  /// transport series and the accel gauge are omitted).
  std::string RenderPrometheus(const CacheFigures& cache) const {
    return RenderPrometheus(cache, ServiceFigures());
  }

 private:
  /// Stable-address atomic counter (registry values are pointers so a
  /// rehash never moves a counter under a concurrent increment).
  struct Counter {
    std::atomic<uint64_t> value{0};
  };

  /// Bumps the counter for (route, status), creating it on first sight.
  void BumpRouteCounter(const std::string& route, int status_code);

  /// (route, status code) → request count. shared lock to find+bump,
  /// exclusive lock to insert/render.
  mutable std::shared_mutex routes_mu_;
  std::map<std::pair<std::string, int>, std::unique_ptr<Counter>> requests_;

  /// Cumulative bucket counts; index i = bucket kLatencyBucketsSeconds[i],
  /// last slot = +Inf.
  std::array<std::atomic<uint64_t>, kLatencyBucketsSeconds.size() + 1>
      buckets_{};
  /// Total latency in nanoseconds (integer so the hot add is one relaxed
  /// fetch_add; rendered as seconds).
  std::atomic<uint64_t> latency_sum_ns_{0};
  std::atomic<uint64_t> latency_count_{0};
  std::atomic<uint64_t> inflight_{0};
};

}  // namespace surf

#endif  // SURF_NET_METRICS_H_
