// Tests for the statistics engine: statistic reduction semantics, the
// three exact back-ends (scan / grid / k-d tree) and their agreement, and
// the empirical CDF.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/dataset.h"
#include "stats/ecdf.h"
#include "stats/evaluator.h"
#include "stats/grid_index.h"
#include "stats/kd_tree.h"
#include "stats/rtree.h"
#include "stats/statistic.h"
#include "util/rng.h"

namespace surf {
namespace {

/// Fixed 1-D dataset with a value column: points at 0.05, 0.15, ..., 0.95
/// and value = 10 * x.
Dataset MakeLineData() {
  Dataset ds({"x", "v"});
  for (int i = 0; i < 10; ++i) {
    const double x = 0.05 + 0.1 * i;
    ds.AddRow({x, 10.0 * x});
  }
  return ds;
}

/// Random dataset over [0,1]^d with a value column and a binary label.
Dataset MakeRandomData(size_t n, size_t d, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t j = 0; j < d; ++j) names.push_back("a" + std::to_string(j));
  names.push_back("v");
  names.push_back("label");
  Dataset ds(names);
  Rng rng(seed);
  std::vector<double> row(d + 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
    row[d] = rng.Gaussian(1.0, 2.0);
    row[d + 1] = rng.Bernoulli(0.3) ? 1.0 : 0.0;
    ds.AddRow(row);
  }
  return ds;
}

// ------------------------------------------------------------- Statistic

TEST(StatisticTest, FactoryFieldsAndNames) {
  const Statistic count = Statistic::Count({0, 1});
  EXPECT_EQ(count.kind, StatisticKind::kCount);
  EXPECT_FALSE(count.needs_value_column());
  EXPECT_EQ(count.dims(), 2u);

  const Statistic avg = Statistic::Average({0}, 1);
  EXPECT_EQ(avg.kind, StatisticKind::kAverage);
  EXPECT_TRUE(avg.needs_value_column());
  EXPECT_EQ(avg.value_col, 1);

  EXPECT_EQ(StatisticKindName(StatisticKind::kCount), "count");
  EXPECT_EQ(StatisticKindName(StatisticKind::kMedian), "median");
  EXPECT_EQ(StatisticKindName(StatisticKind::kLabelRatio), "ratio");
}

TEST(StatisticTest, ReduceCount) {
  const Dataset ds = MakeLineData();
  EXPECT_DOUBLE_EQ(
      ReduceStatistic(ds, Statistic::Count({0}), {0, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(ReduceStatistic(ds, Statistic::Count({0}), {}), 0.0);
}

TEST(StatisticTest, ReduceSumAndAverage) {
  const Dataset ds = MakeLineData();
  // Rows 0,1,2 have values 0.5, 1.5, 2.5.
  EXPECT_DOUBLE_EQ(ReduceStatistic(ds, Statistic::Sum({0}, 1), {0, 1, 2}),
                   4.5);
  EXPECT_DOUBLE_EQ(
      ReduceStatistic(ds, Statistic::Average({0}, 1), {0, 1, 2}), 1.5);
}

TEST(StatisticTest, EmptyAverageIsNaN) {
  const Dataset ds = MakeLineData();
  EXPECT_TRUE(
      std::isnan(ReduceStatistic(ds, Statistic::Average({0}, 1), {})));
  EXPECT_TRUE(
      std::isnan(ReduceStatistic(ds, Statistic::MedianOf({0}, 1), {})));
  // Sum of nothing is 0, not NaN.
  EXPECT_DOUBLE_EQ(ReduceStatistic(ds, Statistic::Sum({0}, 1), {}), 0.0);
}

TEST(StatisticTest, ReduceMedianOddEven) {
  const Dataset ds = MakeLineData();
  // Values of rows 0..2: 0.5 1.5 2.5 -> median 1.5.
  EXPECT_DOUBLE_EQ(
      ReduceStatistic(ds, Statistic::MedianOf({0}, 1), {0, 1, 2}), 1.5);
  // Rows 0..3: 0.5 1.5 2.5 3.5 -> median 2.0.
  EXPECT_DOUBLE_EQ(
      ReduceStatistic(ds, Statistic::MedianOf({0}, 1), {0, 1, 2, 3}), 2.0);
}

TEST(StatisticTest, ReduceVariance) {
  Dataset ds({"x", "v"});
  ds.AddRow({0.1, 2.0});
  ds.AddRow({0.2, 4.0});
  ds.AddRow({0.3, 6.0});
  // Sample variance of {2,4,6} = 4.
  EXPECT_NEAR(
      ReduceStatistic(ds, Statistic::VarianceOf({0}, 1), {0, 1, 2}), 4.0,
      1e-12);
  // Single point: variance 0; empty: NaN.
  EXPECT_DOUBLE_EQ(
      ReduceStatistic(ds, Statistic::VarianceOf({0}, 1), {0}), 0.0);
  EXPECT_TRUE(
      std::isnan(ReduceStatistic(ds, Statistic::VarianceOf({0}, 1), {})));
}

TEST(StatisticTest, ReduceLabelRatio) {
  Dataset ds({"x", "label"});
  ds.AddRow({0.1, 1.0});
  ds.AddRow({0.2, 0.0});
  ds.AddRow({0.3, 1.0});
  ds.AddRow({0.4, 1.0});
  EXPECT_DOUBLE_EQ(ReduceStatistic(ds, Statistic::LabelRatio({0}, 1, 1.0),
                                   {0, 1, 2, 3}),
                   0.75);
  EXPECT_DOUBLE_EQ(
      ReduceStatistic(ds, Statistic::LabelRatio({0}, 1, 1.0), {}), 0.0);
}

TEST(StatisticAccumulatorTest, BlockMergeMatchesPointwise) {
  const Statistic stat = Statistic::Average({0}, 1);
  StatisticAccumulator pointwise(stat);
  for (double v : {1.0, 2.0, 3.0, 4.0}) pointwise.Add(v);

  StatisticAccumulator blocked(stat);
  blocked.Add(1.0);
  blocked.AddBlock(3, 9.0, 29.0, 0);  // {2,3,4}: sum 9, sum² 29
  EXPECT_DOUBLE_EQ(pointwise.Finalize(), blocked.Finalize());
}

// -------------------------------------------------- Evaluators (3 kinds)

TEST(ScanEvaluatorTest, CountMatchesManual) {
  const Dataset ds = MakeLineData();
  ScanEvaluator eval(&ds, Statistic::Count({0}));
  // [0.04, 0.36] holds x = 0.05, 0.15, 0.25, 0.35 (edges chosen clear of
  // the points to avoid floating-point boundary ambiguity).
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({0.2}, {0.16})), 4.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({0.5}, {0.5})), 10.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(Region({-1.0}, {0.1})), 0.0);
}

TEST(ScanEvaluatorTest, EvaluationCounter) {
  const Dataset ds = MakeLineData();
  ScanEvaluator eval(&ds, Statistic::Count({0}));
  EXPECT_EQ(eval.evaluation_count(), 0u);
  eval.Evaluate(Region({0.5}, {0.1}));
  eval.Evaluate(Region({0.5}, {0.2}));
  EXPECT_EQ(eval.evaluation_count(), 2u);
  eval.ResetEvaluationCount();
  EXPECT_EQ(eval.evaluation_count(), 0u);
}

TEST(ScanEvaluatorTest, AverageUndefinedOutsideData) {
  const Dataset ds = MakeLineData();
  ScanEvaluator eval(&ds, Statistic::Average({0}, 1));
  EXPECT_TRUE(std::isnan(eval.Evaluate(Region({5.0}, {0.1}))));
  EXPECT_NEAR(eval.Evaluate(Region({0.5}, {0.5})), 5.0, 1e-9);
}

/// Parameterized agreement suite: every back-end must produce the exact
/// same answers as the reference scan for every statistic kind.
struct BackendCase {
  const char* name;
  int backend;  // 0 scan, 1 grid, 2 kdtree
};

class BackendAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

std::unique_ptr<RegionEvaluator> MakeBackend(int which, const Dataset* ds,
                                             const Statistic& stat) {
  switch (which) {
    case 1:
      return std::make_unique<GridIndexEvaluator>(ds, stat, 8);
    case 2:
      return std::make_unique<KdTreeEvaluator>(ds, stat, 16);
    case 3:
      return std::make_unique<RTreeEvaluator>(ds, stat, 8, 32);
    default:
      return std::make_unique<ScanEvaluator>(ds, stat);
  }
}

Statistic MakeStatistic(int kind, size_t d) {
  std::vector<size_t> cols;
  for (size_t j = 0; j < d; ++j) cols.push_back(j);
  switch (kind) {
    case 0:
      return Statistic::Count(cols);
    case 1:
      return Statistic::Average(cols, d);
    case 2:
      return Statistic::Sum(cols, d);
    case 3:
      return Statistic::MedianOf(cols, d);
    case 4:
      return Statistic::VarianceOf(cols, d);
    default:
      return Statistic::LabelRatio(cols, d + 1, 1.0);
  }
}

TEST_P(BackendAgreementTest, MatchesScanOnRandomQueries) {
  const int backend = std::get<0>(GetParam());
  const int kind = std::get<1>(GetParam());
  const size_t d = 2;
  const Dataset ds = MakeRandomData(3000, d, 42);
  const Statistic stat = MakeStatistic(kind, d);

  ScanEvaluator reference(&ds, stat);
  auto candidate = MakeBackend(backend, &ds, stat);

  Rng rng(7);
  for (int q = 0; q < 60; ++q) {
    std::vector<double> center(d), half(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Uniform();
      half[j] = rng.Uniform(0.02, 0.4);
    }
    const Region region(center, half);
    const double expected = reference.Evaluate(region);
    const double actual = candidate->Evaluate(region);
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(actual)) << "query " << q;
    } else {
      EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + std::fabs(expected)))
          << "query " << q;
    }
  }
}

std::string BackendCaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* backends[] = {"scan", "grid", "kdtree", "rtree"};
  static const char* kinds[] = {"count", "avg",    "sum",
                                "median", "var",   "ratio"};
  return std::string(backends[std::get<0>(info.param)]) + "_" +
         kinds[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllStatistics, BackendAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5)),
    BackendCaseName);

TEST(GridIndexTest, HighDimensionCellCap) {
  const Dataset ds = MakeRandomData(500, 5, 9);
  const Statistic stat =
      Statistic::Count(std::vector<size_t>{0, 1, 2, 3, 4});
  GridIndexEvaluator eval(&ds, stat, 64);
  // 64^5 would be 2^30 cells; the builder must cap resolution.
  EXPECT_LE(eval.num_cells(), (1u << 20));
  // And remain exact.
  ScanEvaluator ref(&ds, stat);
  const Region probe({0.5, 0.5, 0.5, 0.5, 0.5}, {0.3, 0.3, 0.3, 0.3, 0.3});
  EXPECT_DOUBLE_EQ(eval.Evaluate(probe), ref.Evaluate(probe));
}

TEST(KdTreeTest, BuildsBalancedNodes) {
  const Dataset ds = MakeRandomData(1000, 2, 10);
  KdTreeEvaluator eval(&ds, Statistic::Count({0, 1}), 16);
  EXPECT_GT(eval.num_nodes(), 60u);   // ~2*1000/16
  EXPECT_LT(eval.num_nodes(), 300u);
}

TEST(KdTreeTest, FullDomainQueryCountsEverything) {
  const Dataset ds = MakeRandomData(777, 3, 11);
  KdTreeEvaluator eval(&ds, Statistic::Count({0, 1, 2}));
  const Region all({0.5, 0.5, 0.5}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(eval.Evaluate(all), 777.0);
}

TEST(RTreeTest, StructureIsShallow) {
  const Dataset ds = MakeRandomData(4000, 2, 12);
  RTreeEvaluator eval(&ds, Statistic::Count({0, 1}), 16, 64);
  // 4000/64 ≈ 63 leaves, fanout 16 → height 3 (leaves, inner, root).
  EXPECT_LE(eval.height(), 4u);
  EXPECT_GE(eval.height(), 2u);
}

TEST(RTreeTest, FullDomainQueryCountsEverything) {
  const Dataset ds = MakeRandomData(901, 3, 13);
  RTreeEvaluator eval(&ds, Statistic::Count({0, 1, 2}));
  EXPECT_DOUBLE_EQ(
      eval.Evaluate(Region({0.5, 0.5, 0.5}, {1.0, 1.0, 1.0})), 901.0);
}

TEST(RTreeTest, OneDimensionalData) {
  // STR tiling must cope with d = 1 (no secondary sort dimension).
  const Dataset ds = MakeRandomData(512, 1, 14);
  RTreeEvaluator eval(&ds, Statistic::Count({0}), 8, 16);
  ScanEvaluator ref(&ds, Statistic::Count({0}));
  Rng rng(15);
  for (int q = 0; q < 30; ++q) {
    const Region region({rng.Uniform()}, {rng.Uniform(0.05, 0.3)});
    EXPECT_DOUBLE_EQ(eval.Evaluate(region), ref.Evaluate(region));
  }
}

// ------------------------------------------------------------------ Ecdf

TEST(EcdfTest, CdfSteps) {
  const Ecdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(10.0), 1.0);
}

TEST(EcdfTest, ExceedanceComplements) {
  const Ecdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.Exceedance(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(2.5) + ecdf.Exceedance(2.5), 1.0);
}

TEST(EcdfTest, QuantileInterpolation) {
  const Ecdf ecdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.75), 40.0);
}

TEST(EcdfTest, DropsNaNSamples) {
  const Ecdf ecdf({1.0, std::nan(""), 3.0});
  EXPECT_EQ(ecdf.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
}

TEST(EcdfTest, EmptyIsSafe) {
  const Ecdf ecdf(std::vector<double>{});
  EXPECT_EQ(ecdf.num_samples(), 0u);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5), 0.0);
}

TEST(EcdfTest, MatchesTheoreticalUniform) {
  Rng rng(33);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Uniform());
  const Ecdf ecdf(std::move(samples));
  EXPECT_NEAR(ecdf.Cdf(0.25), 0.25, 0.01);
  EXPECT_NEAR(ecdf.Quantile(0.75), 0.75, 0.01);
}

}  // namespace
}  // namespace surf
