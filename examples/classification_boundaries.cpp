// Classification boundaries: the intro's ML use case (paper §I-A) —
// find regions with a very high ratio of one class, which "implicitly
// suggest classification boundaries" an analyst can adopt as a baseline
// classifier or investigate further.
//
// We synthesize a two-class 2-D problem (two positive clusters inside a
// negative background), mine regions with ratio(class=1) above 0.9, and
// then measure how well the mined boxes work as a rule-based classifier.
//
// Run:  ./build/examples/classification_boundaries [--points N]

#include <algorithm>
#include <cstdio>

#include "core/surf.h"
#include "data/dataset.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

/// Two Gaussian positive clusters over a uniform negative background.
surf::Dataset MakeTwoClassData(size_t n, uint64_t seed) {
  surf::Rng rng(seed);
  surf::Dataset data({"f1", "f2", "label"});
  data.Reserve(n);
  const double centers[2][2] = {{0.25, 0.7}, {0.75, 0.3}};
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.Bernoulli(0.35);
    std::vector<double> row(3);
    if (positive) {
      const auto& c = centers[rng.UniformInt(2)];
      row[0] = std::clamp(rng.Gaussian(c[0], 0.06), 0.0, 1.0);
      row[1] = std::clamp(rng.Gaussian(c[1], 0.06), 0.0, 1.0);
      row[2] = 1.0;
    } else {
      row[0] = rng.Uniform();
      row[1] = rng.Uniform();
      row[2] = 0.0;
    }
    data.AddRow(row);
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  surf::CliFlags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("points", 20000));
  const surf::Dataset data = MakeTwoClassData(n, 3);
  std::printf("two-class data: %zu points\n", data.num_rows());

  surf::SurfOptions options;
  options.workload.num_queries = 10000;
  options.finder.gso.num_glowworms = 150;
  options.finder.gso.max_iterations = 120;
  options.finder.c = 2.0;
  // High-purity requests are rare events; let stuck invalid particles
  // re-seed so the swarm can still discover the valid pockets.
  options.finder.gso.exploration_restart_prob = 0.05;

  const surf::Statistic stat = surf::Statistic::LabelRatio({0, 1}, 2, 1.0);
  auto surf_or = surf::Surf::Build(&data, stat, options);
  if (!surf_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 surf_or.status().ToString().c_str());
    return 1;
  }
  const double min_purity = flags.GetDouble("purity", 0.85);
  const surf::FindResult result =
      surf_or->FindRegions(min_purity, surf::ThresholdDirection::kAbove);

  surf::TablePrinter table(
      {"rule", "box (f1, f2)", "est. purity", "true purity"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& r = result.regions[i];
    table.AddRow(
        {"#" + std::to_string(i + 1),
         "[" + surf::FormatDouble(r.region.lo(0), 2) + "," +
             surf::FormatDouble(r.region.hi(0), 2) + "] x [" +
             surf::FormatDouble(r.region.lo(1), 2) + "," +
             surf::FormatDouble(r.region.hi(1), 2) + "]",
         surf::FormatDouble(r.estimate, 3),
         surf::FormatDouble(r.true_value, 3)});
  }
  std::printf("%s", table.ToString().c_str());

  // Evaluate the mined boxes as a rule classifier: predict positive
  // inside any box, negative outside.
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    const std::vector<double> p{data.Get(r, 0), data.Get(r, 1)};
    bool inside = false;
    for (const auto& found : result.regions) {
      if (found.region.Contains(p)) {
        inside = true;
        break;
      }
    }
    const bool positive = data.Get(r, 2) == 1.0;
    if (inside && positive) ++tp;
    if (inside && !positive) ++fp;
    if (!inside && positive) ++fn;
  }
  const double precision =
      tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                  : 0.0;
  const double recall =
      tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                  : 0.0;
  std::printf("as a rule classifier: precision=%.2f recall=%.2f "
              "(%zu rules, %.2fs to mine)\n",
              precision, recall, result.regions.size(),
              result.report.seconds);
  return 0;
}
