// Tests for the optimization module: the Eq. 2/4 objectives, the region
// solution space, GSO (multimodal capture, invalid-particle isolation,
// KDE guidance), PSO, the Naive baseline, and distinct-region extraction.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "opt/gso.h"
#include "opt/naive_search.h"
#include "opt/objective.h"
#include "opt/pso.h"
#include "opt/solution_space.h"
#include "opt/test_functions.h"

namespace surf {
namespace {

RegionSolutionSpace UnitSpace(size_t d) {
  RegionSolutionSpace space;
  space.bounds = Bounds::Unit(d);
  space.min_half_length = 0.01;
  space.max_half_length = 0.5;
  return space;
}

// -------------------------------------------------------------- Objective

TEST(ObjectiveTest, SatisfiesThresholdDirections) {
  EXPECT_TRUE(SatisfiesThreshold(5.0, 3.0, ThresholdDirection::kAbove));
  EXPECT_FALSE(SatisfiesThreshold(2.0, 3.0, ThresholdDirection::kAbove));
  EXPECT_TRUE(SatisfiesThreshold(2.0, 3.0, ThresholdDirection::kBelow));
  EXPECT_FALSE(SatisfiesThreshold(5.0, 3.0, ThresholdDirection::kBelow));
  EXPECT_FALSE(
      SatisfiesThreshold(std::nan(""), 3.0, ThresholdDirection::kAbove));
}

TEST(ObjectiveTest, LogObjectiveInvalidOutsideConstraint) {
  ObjectiveConfig config;
  config.threshold = 10.0;
  config.direction = ThresholdDirection::kAbove;
  const RegionObjective obj([](const Region&) { return 5.0; }, config);
  // f = 5 < 10: log(5-10) undefined -> invalid (the Fig. 7 white area).
  EXPECT_FALSE(obj.Evaluate(Region({0.5}, {0.1})).valid);
}

TEST(ObjectiveTest, LogObjectiveValueMatchesFormula) {
  ObjectiveConfig config;
  config.threshold = 10.0;
  config.direction = ThresholdDirection::kAbove;
  config.c = 4.0;
  const RegionObjective obj([](const Region&) { return 110.0; }, config);
  const Region region({0.5, 0.5}, {0.2, 0.1});
  const FitnessValue fv = obj.Evaluate(region);
  ASSERT_TRUE(fv.valid);
  // J = log(100) - 4*(log(0.2)+log(0.1)).
  EXPECT_NEAR(fv.value,
              std::log(100.0) - 4.0 * (std::log(0.2) + std::log(0.1)),
              1e-12);
}

TEST(ObjectiveTest, BelowDirectionFlipsDifference) {
  ObjectiveConfig config;
  config.threshold = 10.0;
  config.direction = ThresholdDirection::kBelow;
  const RegionObjective obj([](const Region&) { return 4.0; }, config);
  const FitnessValue fv = obj.Evaluate(Region({0.5}, {0.25}));
  ASSERT_TRUE(fv.valid);
  EXPECT_NEAR(fv.value, std::log(6.0) - config.c * std::log(0.25), 1e-12);
  // Above the threshold it is invalid.
  const RegionObjective obj2([](const Region&) { return 14.0; }, config);
  EXPECT_FALSE(obj2.Evaluate(Region({0.5}, {0.25})).valid);
}

TEST(ObjectiveTest, SmallerRegionsScoreHigherUnderLog) {
  ObjectiveConfig config;
  config.threshold = 0.0;
  config.direction = ThresholdDirection::kAbove;
  const RegionObjective obj([](const Region&) { return 10.0; }, config);
  const double small = obj.Evaluate(Region({0.5}, {0.05})).value;
  const double large = obj.Evaluate(Region({0.5}, {0.4})).value;
  EXPECT_GT(small, large);
}

TEST(ObjectiveTest, CRegularizerStrengthensSizePenalty) {
  ObjectiveConfig weak;
  weak.threshold = 0.0;
  weak.c = 1.0;
  ObjectiveConfig strong = weak;
  strong.c = 4.0;
  const StatisticFn f = [](const Region&) { return 10.0; };
  const Region big({0.5}, {0.4});
  // log(0.4) < 0, so larger c *rewards* small boxes more relative to big
  // ones: compare the gap between small and big boxes under both c.
  const Region small({0.5}, {0.05});
  const double gap_weak = RegionObjective(f, weak).Evaluate(small).value -
                          RegionObjective(f, weak).Evaluate(big).value;
  const double gap_strong =
      RegionObjective(f, strong).Evaluate(small).value -
      RegionObjective(f, strong).Evaluate(big).value;
  EXPECT_GT(gap_strong, gap_weak);
}

TEST(ObjectiveTest, RatioObjectiveDefinedOutsideConstraint) {
  ObjectiveConfig config;
  config.threshold = 10.0;
  config.direction = ThresholdDirection::kAbove;
  config.use_log = false;
  const RegionObjective obj([](const Region&) { return 5.0; }, config);
  const FitnessValue fv = obj.Evaluate(Region({0.5}, {0.1}));
  // Eq. 2 stays defined (negative value) where Eq. 4 would be undefined.
  ASSERT_TRUE(fv.valid);
  EXPECT_LT(fv.value, 0.0);
}

TEST(ObjectiveTest, RatioObjectiveValueMatchesFormula) {
  ObjectiveConfig config;
  config.threshold = 2.0;
  config.direction = ThresholdDirection::kAbove;
  config.c = 2.0;
  config.use_log = false;
  const RegionObjective obj([](const Region&) { return 6.0; }, config);
  const FitnessValue fv = obj.Evaluate(Region({0.5}, {0.5}));
  ASSERT_TRUE(fv.valid);
  EXPECT_NEAR(fv.value, 4.0 / std::pow(0.5, 2.0), 1e-12);
}

TEST(ObjectiveTest, NanStatisticIsInvalid) {
  ObjectiveConfig config;
  const RegionObjective obj(
      [](const Region&) { return std::nan(""); }, config);
  EXPECT_FALSE(obj.Evaluate(Region({0.5}, {0.1})).valid);
}

TEST(ObjectiveTest, DegenerateRegionIsInvalid) {
  ObjectiveConfig config;
  config.threshold = 0.0;
  const RegionObjective obj([](const Region&) { return 10.0; }, config);
  EXPECT_FALSE(obj.Evaluate(Region({0.5}, {-0.1})).valid);
}

// --------------------------------------------------------- SolutionSpace

TEST(SolutionSpaceTest, SampleStaysInside) {
  const RegionSolutionSpace space = UnitSpace(3);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Region r = space.Sample(&rng);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GE(r.center(j), 0.0);
      EXPECT_LE(r.center(j), 1.0);
      EXPECT_GE(r.half_length(j), space.min_half_length);
      EXPECT_LE(r.half_length(j), space.max_half_length);
    }
  }
}

TEST(SolutionSpaceTest, ForBoundsScalesByExtent) {
  const Bounds bounds({0.0, 0.0}, {10.0, 2.0});
  const RegionSolutionSpace space =
      RegionSolutionSpace::ForBounds(bounds, 0.01, 0.15);
  EXPECT_DOUBLE_EQ(space.min_half_length, 0.1);   // 1% of max extent 10
  EXPECT_DOUBLE_EQ(space.max_half_length, 1.5);
  EXPECT_EQ(space.flat_dims(), 4u);
}

TEST(SolutionSpaceTest, ClampPullsIntoSpace) {
  const RegionSolutionSpace space = UnitSpace(1);
  Region r({2.0}, {0.9});
  space.Clamp(&r);
  EXPECT_DOUBLE_EQ(r.center(0), 1.0);
  EXPECT_DOUBLE_EQ(r.half_length(0), 0.5);
}

TEST(SolutionSpaceTest, FlatDiagonalPositive) {
  EXPECT_GT(UnitSpace(2).FlatDiagonal(), 1.0);
}

// --------------------------------------------------------------- GSO

GaussianBumps ThreeBumps1d() {
  // Peaks in the (center, length) plane of a 1-d region space.
  GaussianBumps bumps;
  bumps.peaks = {{0.2, 0.1}, {0.5, 0.3}, {0.8, 0.15}};
  bumps.sigma = 0.08;
  bumps.validity_floor = 0.01;
  return bumps;
}

TEST(GsoTest, CapturesMultipleOptima) {
  const GaussianBumps bumps = ThreeBumps1d();
  GsoParams params;
  params.num_glowworms = 150;
  params.max_iterations = 150;
  params.seed = 3;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result =
      gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));

  // Count how many distinct peaks hold at least one near-converged
  // particle — the multimodal capture property GSO exists for.
  std::set<int> captured;
  for (size_t i = 0; i < result.particles.size(); ++i) {
    if (!result.valid[i]) continue;
    if (bumps.DistanceToNearestPeak(result.particles[i]) < 0.1) {
      captured.insert(bumps.NearestPeak(result.particles[i]));
    }
  }
  EXPECT_EQ(captured.size(), 3u);
}

TEST(GsoTest, ValidFractionGrowsFromRandomStart) {
  const GaussianBumps bumps = ThreeBumps1d();
  GsoParams params;
  params.num_glowworms = 120;
  params.max_iterations = 100;
  params.seed = 4;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  ASSERT_GE(result.history.valid_fraction.size(), 2u);
  EXPECT_GE(result.history.valid_fraction.back(),
            result.history.valid_fraction.front());
  EXPECT_GT(result.ValidFraction(), 0.3);
}

TEST(GsoTest, MeanFitnessImproves) {
  const GaussianBumps bumps = ThreeBumps1d();
  GsoParams params;
  params.num_glowworms = 100;
  params.max_iterations = 120;
  params.seed = 5;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  const auto& curve = result.history.mean_fitness;
  ASSERT_GT(curve.size(), 10u);
  EXPECT_GT(curve.back(), curve.front());
}

TEST(GsoTest, DeterministicForSeed) {
  const GaussianBumps bumps = ThreeBumps1d();
  GsoParams params;
  params.num_glowworms = 50;
  params.max_iterations = 40;
  params.seed = 6;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult a = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  const GsoResult b = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  ASSERT_EQ(a.particles.size(), b.particles.size());
  for (size_t i = 0; i < a.particles.size(); ++i) {
    EXPECT_EQ(a.particles[i], b.particles[i]);
  }
}

TEST(GsoTest, EvaluationCountMatchesCostModel) {
  const GaussianBumps bumps = ThreeBumps1d();
  GsoParams params;
  params.num_glowworms = 40;
  params.max_iterations = 30;
  params.convergence_tol_frac = 0.0;  // disable early stop
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  // T·L during iterations + one final refresh pass.
  EXPECT_EQ(result.objective_evaluations, 40u * 30u + 40u);
}

TEST(GsoTest, InvalidParticlesStayIsolatedWithoutExploration) {
  // A landscape with a single tiny valid pocket most particles miss:
  // invalid particles must not move (paper semantics).
  GaussianBumps bumps;
  bumps.peaks = {{0.5, 0.25}};
  bumps.sigma = 0.02;
  bumps.validity_floor = 0.5;
  GsoParams params;
  params.num_glowworms = 60;
  params.max_iterations = 50;
  params.seed = 8;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  // Some particles end up invalid (stationary, dim) — that's expected.
  EXPECT_LT(result.ValidFraction(), 1.0);
}

TEST(GsoTest, ExplorationRestartRecoversRareEvents) {
  GaussianBumps bumps;
  bumps.peaks = {{0.5, 0.25}};
  bumps.sigma = 0.03;
  bumps.validity_floor = 0.4;
  GsoParams params;
  params.num_glowworms = 80;
  params.max_iterations = 200;
  params.seed = 9;
  params.exploration_restart_prob = 0.2;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  size_t valid = 0;
  for (bool v : result.valid) valid += v ? 1 : 0;
  EXPECT_GT(valid, 0u);
}

TEST(GsoTest, PaperScaledParamsFollowFormulas) {
  const GsoParams params = GsoParams::PaperScaled(4);
  EXPECT_EQ(params.num_glowworms, 200u);  // 50·d
  const double L = 200.0;
  EXPECT_NEAR(params.initial_radius_frac,
              std::pow(1.0 - std::pow(0.5, 1.0 / L), 1.0 / 4.0), 1e-12);
}

TEST(GsoTest, ConvergenceFlagFires) {
  // Single bump with a huge sigma: the swarm collapses quickly.
  GaussianBumps bumps;
  bumps.peaks = {{0.5, 0.25}};
  bumps.sigma = 0.5;
  bumps.validity_floor = -1.0;
  GsoParams params;
  params.num_glowworms = 40;
  params.max_iterations = 400;
  params.convergence_tol_frac = 1e-3;
  params.convergence_window = 5;
  params.seed = 10;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult result = gso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations_run, 400u);
}

// ---------------------------------------------------------------- PSO

TEST(PsoTest, FindsSingleOptimum) {
  GaussianBumps bumps;
  bumps.peaks = {{0.3, 0.2}};
  bumps.sigma = 0.15;
  bumps.validity_floor = -1.0;
  PsoParams params;
  params.num_particles = 40;
  params.max_iterations = 80;
  const ParticleSwarmOptimizer pso(params);
  const PsoResult result = pso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  ASSERT_TRUE(result.found_valid);
  EXPECT_LT(bumps.DistanceToNearestPeak(result.best), 0.05);
}

TEST(PsoTest, CollapsesToOneModeOnMultimodal) {
  // The motivating contrast with GSO: PSO returns exactly one region.
  const GaussianBumps bumps = ThreeBumps1d();
  PsoParams params;
  params.num_particles = 60;
  params.max_iterations = 100;
  const ParticleSwarmOptimizer pso(params);
  const PsoResult result = pso.Optimize(bumps.AsFitnessFn(), UnitSpace(1));
  ASSERT_TRUE(result.found_valid);
  EXPECT_LT(bumps.DistanceToNearestPeak(result.best), 0.1);
}

TEST(PsoTest, RastriginNearGlobal) {
  PsoParams params;
  params.num_particles = 80;
  params.max_iterations = 200;
  params.seed = 12;
  const ParticleSwarmOptimizer pso(params);
  const FitnessFn fn = InvertedRastrigin({0.5, 0.2}, 0.3);
  const PsoResult result = pso.Optimize(fn, UnitSpace(1));
  ASSERT_TRUE(result.found_valid);
  EXPECT_GT(result.best_fitness, -5.0);  // global max is 0
}

// ---------------------------------------------------------- Naive search

TEST(NaiveSearchTest, EnumeratesFullGrid) {
  ObjectiveConfig config;
  config.threshold = -1.0;  // everything valid
  const RegionObjective obj([](const Region&) { return 0.0; }, config);
  NaiveSearchParams params;
  params.centers_per_dim = 4;
  params.sizes_per_dim = 3;
  const NaiveSearch naive(params);
  const NaiveSearchResult result = naive.Run(obj, UnitSpace(2));
  EXPECT_EQ(result.total_candidates, 144u);  // (4·3)^2
  EXPECT_EQ(result.examined, 144u);
  EXPECT_FALSE(result.timed_out);
  EXPECT_DOUBLE_EQ(result.FractionExamined(), 1.0);
  EXPECT_EQ(result.viable.size(), 144u);
}

TEST(NaiveSearchTest, FindsPlantedHotRegion) {
  // Statistic: high only near x = 0.5.
  const StatisticFn f = [](const Region& r) {
    return std::exp(-50.0 * (r.center(0) - 0.5) * (r.center(0) - 0.5)) *
           100.0;
  };
  ObjectiveConfig config;
  config.threshold = 50.0;
  config.direction = ThresholdDirection::kAbove;
  const RegionObjective obj(f, config);
  NaiveSearchParams params;
  params.centers_per_dim = 11;
  params.sizes_per_dim = 3;
  const NaiveSearch naive(params);
  const NaiveSearchResult result = naive.Run(obj, UnitSpace(1));
  ASSERT_FALSE(result.viable.empty());
  for (const auto& v : result.viable) {
    EXPECT_NEAR(v.region.center(0), 0.5, 0.15);
    EXPECT_GT(v.statistic, 50.0);
  }
}

TEST(NaiveSearchTest, EvaluationCapTruncates) {
  ObjectiveConfig config;
  config.threshold = -1.0;
  const RegionObjective obj([](const Region&) { return 0.0; }, config);
  NaiveSearchParams params;
  params.centers_per_dim = 6;
  params.sizes_per_dim = 6;
  params.max_evaluations = 100;
  const NaiveSearch naive(params);
  const NaiveSearchResult result = naive.Run(obj, UnitSpace(2));
  EXPECT_EQ(result.examined, 100u);
  EXPECT_TRUE(result.timed_out);
  EXPECT_LT(result.FractionExamined(), 1.0);
}

// --------------------------------------------------- Distinct extraction

TEST(SelectDistinctRegionsTest, KeepsBestAndDropsOverlaps) {
  std::vector<ScoredRegion> candidates;
  auto add = [&](double cx, double half, double score) {
    ScoredRegion s;
    s.region = Region({cx}, {half});
    s.fitness = score;
    candidates.push_back(s);
  };
  add(0.30, 0.1, 5.0);
  add(0.31, 0.1, 4.0);  // overlaps the first
  add(0.80, 0.1, 3.0);  // distinct
  const auto kept = SelectDistinctRegions(candidates, 0.3, 10);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].fitness, 5.0);
  EXPECT_DOUBLE_EQ(kept[1].fitness, 3.0);
}

TEST(SelectDistinctRegionsTest, RespectsMaxRegions) {
  std::vector<ScoredRegion> candidates;
  for (int i = 0; i < 10; ++i) {
    ScoredRegion s;
    s.region = Region({0.1 * i}, {0.01});
    s.fitness = static_cast<double>(i);
    candidates.push_back(s);
  }
  const auto kept = SelectDistinctRegions(candidates, 0.3, 3);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].fitness, 9.0);  // sorted by score
}

TEST(SelectDistinctRegionsTest, EmptyInputIsFine) {
  EXPECT_TRUE(SelectDistinctRegions({}, 0.3, 5).empty());
}

// --------------------------------------------------------- TestFunctions

TEST(TestFunctionsTest, BumpValueAtPeak) {
  GaussianBumps bumps;
  bumps.peaks = {{0.5, 0.2}};
  bumps.sigma = 0.1;
  bumps.validity_floor = -1.0;
  const FitnessValue at_peak = bumps.Evaluate(Region({0.5}, {0.2}));
  EXPECT_NEAR(at_peak.value, 1.0, 1e-12);
  const FitnessValue far = bumps.Evaluate(Region({0.0}, {0.5}));
  EXPECT_LT(far.value, 0.01);
}

TEST(TestFunctionsTest, NearestPeakIndex) {
  GaussianBumps bumps = ThreeBumps1d();
  EXPECT_EQ(bumps.NearestPeak(Region({0.21}, {0.1})), 0);
  EXPECT_EQ(bumps.NearestPeak(Region({0.78}, {0.16})), 2);
}

TEST(TestFunctionsTest, RastriginMaxAtCenter) {
  const FitnessFn fn = InvertedRastrigin({0.5, 0.2}, 0.3);
  EXPECT_NEAR(fn(Region({0.5}, {0.2})).value, 0.0, 1e-9);
  EXPECT_LT(fn(Region({0.7}, {0.3})).value, 0.0);
}

}  // namespace
}  // namespace surf
