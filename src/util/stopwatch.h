#ifndef SURF_UTIL_STOPWATCH_H_
#define SURF_UTIL_STOPWATCH_H_

#include <chrono>

namespace surf {

/// \brief Wall-clock stopwatch used by benchmark harnesses and time budgets.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace surf

#endif  // SURF_UTIL_STOPWATCH_H_
