#ifndef SURF_API_API_H_
#define SURF_API_API_H_

/// \file
/// \brief API/library version constants and build information.
///
/// The public request surface is versioned independently of the library:
/// `kApiVersion` is the current (v2) schema every front-end speaks
/// natively, `kApiMinVersion` the oldest schema still accepted (the v1
/// flat `MineRequest` document). Clients negotiate by calling
/// `GET /v1/version` (surfd), `surf_cli --version`, or `GetBuildInfo()`
/// in-process, and may then send either schema — the decoders dispatch on
/// the document's `api_version` field.

#include <string>

namespace surf {

/// Current request-schema version (the v2 surface of api_v2.h).
inline constexpr int kApiVersion = 2;
/// Oldest request-schema version still accepted.
inline constexpr int kApiMinVersion = 1;
/// Library release this tree builds.
inline constexpr const char kLibraryVersion[] = "0.4.0";

/// \brief Compile-time identification of this build, for version
/// negotiation and bug reports.
struct BuildInfo {
  /// Current request-schema version (kApiVersion).
  int api_version = kApiVersion;
  /// Oldest request-schema version still accepted (kApiMinVersion).
  int api_min_version = kApiMinVersion;
  /// Library release string (kLibraryVersion).
  std::string library_version;
  /// Compiler identification, e.g. "gcc 13.2".
  std::string compiler;
  /// C++ standard the tree was compiled as, e.g. "c++20".
  std::string cxx_standard;
};

/// This build's identification.
BuildInfo GetBuildInfo();

/// One-line human-readable form, e.g.
/// "surf 0.4.0 (api v2, min v1; gcc 13.2, c++20)".
std::string VersionString();

}  // namespace surf

#endif  // SURF_API_API_H_
