// Tests for the src/net HTTP front-end: transport behaviour of
// HttpServer (admission control / 429, per-request deadlines / 408,
// graceful drain) and the SurfHandler JSON API, including the ISSUE 3
// acceptance check — a MineRequest served over loopback HTTP must yield
// regions bit-identical to the same request served in-process, and the
// second HTTP request must be a cache hit with identical provenance.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "net/http_server.h"
#include "net/json_codec.h"
#include "net/metrics.h"
#include "net/surf_handler.h"
#include "serve/mining_service.h"
#include "util/json.h"

namespace surf {
namespace {

// ------------------------------------------------------- test HTTP client

struct ClientResponse {
  int status = 0;
  std::string body;
  bool connection_close = false;
};

/// Minimal blocking HTTP/1.1 client for loopback tests (keep-alive,
/// Content-Length framing only — mirroring what the server emits).
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval timeout{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Sends one request and reads one full response.
  ClientResponse Request(const std::string& method, const std::string& path,
                         const std::string& body = "") {
    std::string out = method + " " + path + " HTTP/1.1\r\n";
    out += "Host: 127.0.0.1\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    out += body;
    if (!SendRaw(out)) return {};
    return ReadResponse();
  }

  ClientResponse ReadResponse() {
    // Start from any bytes left over by the previous response: with
    // pipelining, one recv can carry the tail of several responses.
    std::string buffer = std::move(pending_);
    pending_.clear();
    size_t head_end = std::string::npos;
    while (true) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) break;
      if (!Fill(&buffer)) return {};
    }
    ClientResponse response;
    // Status line: HTTP/1.1 NNN Reason
    if (buffer.size() >= 12) {
      response.status = std::atoi(buffer.substr(9, 3).c_str());
    }
    response.connection_close =
        buffer.substr(0, head_end).find("Connection: close") !=
        std::string::npos;
    size_t content_length = 0;
    const std::string head = buffer.substr(0, head_end);
    const size_t cl = head.find("Content-Length: ");
    if (cl != std::string::npos) {
      content_length = static_cast<size_t>(
          std::atoll(head.c_str() + cl + std::strlen("Content-Length: ")));
    }
    std::string body = buffer.substr(head_end + 4);
    while (body.size() < content_length) {
      if (!Fill(&body)) return {};
    }
    response.body = body.substr(0, content_length);
    pending_ = body.substr(content_length);  // next response's bytes
    return response;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    pending_.clear();
  }

  bool connected() const { return fd_ >= 0; }

 private:
  bool Fill(std::string* buffer) {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string pending_;
};

// ------------------------------------------------------------- fixtures

SyntheticDataset MakeTestData() {
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 4000;
  spec.seed = 17;
  return SyntheticGenerator::Generate(spec);
}

/// The shared fast-mining recipe: small workload, short swarm, no
/// per-iteration KDE integrals — keeps each train+mine well under a
/// second on one core.
MineRequest MakeTestRequest(const std::string& dataset,
                            const std::vector<size_t>& region_cols) {
  MineRequest request;
  request.dataset = dataset;
  request.statistic = Statistic::Count(region_cols);
  request.threshold = 800.0;
  request.workload.num_queries = 800;
  request.finder.gso.max_iterations = 30;
  request.finder.use_kde_guidance = false;
  request.surrogate.gbrt.n_estimators = 60;
  return request;
}

/// JSON rows payload for inline registration of a dataset.
std::string InlineDatasetBody(const std::string& name, const Dataset& data) {
  JsonValue body = JsonValue::Object();
  body.Set("name", JsonValue(name));
  JsonValue columns = JsonValue::Array();
  for (const std::string& c : data.column_names()) {
    columns.Append(JsonValue(c));
  }
  body.Set("columns", std::move(columns));
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < data.num_rows(); ++i) {
    JsonValue row = JsonValue::Array();
    for (size_t j = 0; j < data.num_cols(); ++j) {
      row.Append(JsonValue(data.Get(i, j)));
    }
    rows.Append(std::move(row));
  }
  body.Set("rows", std::move(rows));
  return WriteJson(body);
}

/// An HttpServer + MiningService + SurfHandler bundle on an ephemeral
/// loopback port.
struct TestServer {
  explicit TestServer(HttpServer::Options options = {},
                      MiningService::Options service_options = {}) {
    service = std::make_unique<MiningService>(service_options);
    metrics = std::make_unique<ServerMetrics>();
    handler = std::make_unique<SurfHandler>(service.get(), metrics.get());
    options.port = 0;
    server = std::make_unique<HttpServer>(options, handler->AsHttpHandler());
    start_status = server->Start();
  }

  std::unique_ptr<MiningService> service;
  std::unique_ptr<ServerMetrics> metrics;
  std::unique_ptr<SurfHandler> handler;
  std::unique_ptr<HttpServer> server;
  Status start_status = Status::OK();
};

// ----------------------------------------------------------------- tests

TEST(SurfHandlerTest, RoutingAndProbes) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok()) << ts.start_status.ToString();
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  ClientResponse health = client.Request("GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"ok\""), std::string::npos);

  EXPECT_EQ(client.Request("GET", "/nope").status, 404);
  EXPECT_EQ(client.Request("DELETE", "/v1/mine").status, 405);
  // Malformed JSON → 400 from the codec, not a connection drop.
  EXPECT_EQ(client.Request("POST", "/v1/mine", "{not json").status, 400);
  // Unknown dataset → 404 via Status mapping.
  ClientResponse missing = client.Request(
      "POST", "/v1/mine",
      R"({"dataset": "ghost", "statistic": {"region_cols": [0, 1]}})");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("not_found"), std::string::npos);
}

TEST(SurfHandlerTest, DatasetRegistrationConflictsAndValidation) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  const std::string body =
      R"({"name": "tiny", "columns": ["x", "y"],
          "rows": [[0, 0], [1, 1], [2, 0.5]]})";
  EXPECT_EQ(client.Request("POST", "/v1/datasets", body).status, 201);
  // Same name again → AlreadyExists → 409.
  EXPECT_EQ(client.Request("POST", "/v1/datasets", body).status, 409);
  // Ragged row → 400.
  EXPECT_EQ(client
                .Request("POST", "/v1/datasets",
                         R"({"name": "bad", "columns": ["x", "y"],
                             "rows": [[1, 2], [3]]})")
                .status,
            400);
  // Both path and rows → 400.
  EXPECT_EQ(client
                .Request("POST", "/v1/datasets",
                         R"({"name": "bad2", "path": "x.csv",
                             "columns": ["x"], "rows": [[1]]})")
                .status,
            400);
  // Missing CSV file → IOError → 500 (not a crash).
  EXPECT_EQ(client
                .Request("POST", "/v1/datasets",
                         R"({"name": "bad3",
                             "path": "/nonexistent/x.csv"})")
                .status,
            500);
}

TEST(SurfHandlerTest, HttpMineMatchesInProcessBitExactly) {
  const SyntheticDataset ds = MakeTestData();
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  // Register over the wire (inline rows), so the server-side dataset
  // itself went through the JSON codec.
  ASSERT_EQ(client
                .Request("POST", "/v1/datasets",
                         InlineDatasetBody("synth", ds.data))
                .status,
            201);

  const MineRequest request = MakeTestRequest("synth", ds.region_cols);
  const std::string wire = WriteJson(MineRequestToJson(request));

  ClientResponse first = client.Request("POST", "/v1/mine", wire);
  ASSERT_EQ(first.status, 200) << first.body;
  auto first_json = ParseJson(first.body);
  ASSERT_TRUE(first_json.ok());
  auto first_response = MineResponseFromJson(*first_json);
  ASSERT_TRUE(first_response.ok()) << first_response.status().ToString();
  EXPECT_FALSE(first_response->cache_hit);
  ASSERT_FALSE(first_response->result.regions.empty());

  // In-process arm: an independent service instance, same dataset, same
  // request. The engine is deterministic, so regions must agree bit for
  // bit with what came over the wire.
  MiningService local;
  ASSERT_TRUE(local.RegisterDataset("synth", ds.data).ok());
  const MineResponse in_process = local.Mine(request);
  ASSERT_TRUE(in_process.status.ok()) << in_process.status.ToString();

  ASSERT_EQ(first_response->result.regions.size(),
            in_process.result.regions.size());
  for (size_t i = 0; i < in_process.result.regions.size(); ++i) {
    const FoundRegion& http = first_response->result.regions[i];
    const FoundRegion& direct = in_process.result.regions[i];
    EXPECT_EQ(http.region, direct.region) << "region " << i;
    EXPECT_EQ(http.estimate, direct.estimate) << "region " << i;
    EXPECT_EQ(http.true_value, direct.true_value) << "region " << i;
    EXPECT_EQ(http.complies_true, direct.complies_true) << "region " << i;
  }
  EXPECT_EQ(first_response->provenance.dataset_fingerprint,
            in_process.provenance.dataset_fingerprint);
  EXPECT_EQ(first_response->provenance.training_set_size,
            in_process.provenance.training_set_size);
  EXPECT_EQ(first_response->provenance.holdout_rmse,
            in_process.provenance.holdout_rmse);

  // Second HTTP request: cache hit, identical provenance, identical
  // regions.
  ClientResponse second = client.Request("POST", "/v1/mine", wire);
  ASSERT_EQ(second.status, 200);
  auto second_response = MineResponseFromJson(*ParseJson(second.body));
  ASSERT_TRUE(second_response.ok());
  EXPECT_TRUE(second_response->cache_hit);
  EXPECT_EQ(second_response->provenance.dataset_fingerprint,
            first_response->provenance.dataset_fingerprint);
  EXPECT_EQ(second_response->provenance.training_set_size,
            first_response->provenance.training_set_size);
  EXPECT_EQ(second_response->provenance.holdout_rmse,
            first_response->provenance.holdout_rmse);
  EXPECT_EQ(second_response->provenance.train_seconds,
            first_response->provenance.train_seconds);
  ASSERT_EQ(second_response->result.regions.size(),
            first_response->result.regions.size());
  for (size_t i = 0; i < first_response->result.regions.size(); ++i) {
    EXPECT_EQ(second_response->result.regions[i].region,
              first_response->result.regions[i].region);
  }

  // The cache counters observable over the wire agree.
  auto stats = ParseJson(client.Request("GET", "/v1/cache/stats").body);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("hits")->number_value(), 1.0);
  EXPECT_EQ(stats->Find("misses")->number_value(), 1.0);
}

TEST(SurfHandlerTest, BatchEndpointReportsPerRequestFailures) {
  const SyntheticDataset ds = MakeTestData();
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  ASSERT_TRUE(ts.service->RegisterDataset("synth", ds.data).ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  JsonValue batch = JsonValue::Object();
  JsonValue requests = JsonValue::Array();
  requests.Append(
      MineRequestToJson(MakeTestRequest("synth", ds.region_cols)));
  requests.Append(
      MineRequestToJson(MakeTestRequest("missing", ds.region_cols)));
  batch.Set("requests", std::move(requests));

  ClientResponse response =
      client.Request("POST", "/v1/mine:batch", WriteJson(batch));
  ASSERT_EQ(response.status, 200) << response.body;
  auto json = ParseJson(response.body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("total")->number_value(), 2.0);
  EXPECT_EQ(json->Find("failed")->number_value(), 1.0);
  const auto& responses = json->Find("responses")->array();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].Find("status")->Find("code")->string_value(), "ok");
  EXPECT_EQ(responses[1].Find("status")->Find("code")->string_value(),
            "not_found");
}

TEST(SurfHandlerTest, EvaluationsEndpointFeedsWarmStartPool) {
  const SyntheticDataset ds = MakeTestData();
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  ASSERT_TRUE(ts.service->RegisterDataset("synth", ds.data).ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  const MineRequest request = MakeTestRequest("synth", ds.region_cols);
  ClientResponse mined =
      client.Request("POST", "/v1/mine", WriteJson(MineRequestToJson(request)));
  ASSERT_EQ(mined.status, 200);
  auto mined_response = MineResponseFromJson(*ParseJson(mined.body));
  ASSERT_TRUE(mined_response.ok());
  ASSERT_FALSE(mined_response->result.regions.empty());

  JsonValue body = JsonValue::Object();
  body.Set("request", MineRequestToJson(request));
  JsonValue evaluations = JsonValue::Array();
  for (const FoundRegion& r : mined_response->result.regions) {
    JsonValue e = JsonValue::Object();
    e.Set("region", RegionToJson(r.region));
    e.Set("value", JsonValue(r.true_value));
    evaluations.Append(std::move(e));
  }
  body.Set("evaluations", std::move(evaluations));

  ClientResponse appended =
      client.Request("POST", "/v1/evaluations", WriteJson(body));
  ASSERT_EQ(appended.status, 200) << appended.body;
  auto appended_json = ParseJson(appended.body);
  ASSERT_TRUE(appended_json.ok());
  EXPECT_EQ(appended_json->Find("appended")->number_value(),
            static_cast<double>(mined_response->result.regions.size()));
  auto provenance =
      ProvenanceFromJson(*appended_json->Find("provenance"));
  ASSERT_TRUE(provenance.ok());
  EXPECT_EQ(provenance->pending_examples,
            mined_response->result.regions.size());

  // Dimension mismatch is rejected before touching the cache entry.
  JsonValue bad = JsonValue::Object();
  bad.Set("request", MineRequestToJson(request));
  JsonValue bad_list = JsonValue::Array();
  JsonValue bad_entry = JsonValue::Object();
  bad_entry.Set("region", RegionToJson(Region({0.5}, {0.1})));
  bad_entry.Set("value", JsonValue(1.0));
  bad_list.Append(std::move(bad_entry));
  bad.Set("evaluations", std::move(bad_list));
  EXPECT_EQ(client.Request("POST", "/v1/evaluations", WriteJson(bad)).status,
            400);
}

TEST(SurfHandlerTest, MetricsExposeTransportAndCache) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));
  client.Request("GET", "/healthz");
  client.Request("GET", "/nope");

  ClientResponse metrics = client.Request("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find(
                "surf_http_requests_total{route=\"/healthz\",code=\"200\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "surf_http_requests_total{route=\"unmatched\",code=\"404\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surf_http_request_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surf_http_inflight_requests 1"),
            std::string::npos)
      << "the /metrics request itself is in flight";
  EXPECT_NE(metrics.body.find("surf_cache_hit_ratio"), std::string::npos);
}

// One decoded sample line of the Prometheus text exposition format.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// Parses `name{label="v",...} value`; returns false with `*error` set
/// on any syntax violation of the exposition format.
bool ParsePromSample(const std::string& line, PromSample* out,
                     std::string* error) {
  const auto name_char = [](char c, bool first) {
    const unsigned char u = static_cast<unsigned char>(c);
    return std::isalpha(u) != 0 || c == '_' || c == ':' ||
           (!first && std::isdigit(u) != 0);
  };
  size_t i = 0;
  while (i < line.size() && name_char(line[i], i == 0)) ++i;
  if (i == 0) {
    *error = "missing metric name";
    return false;
  }
  out->name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const size_t label_start = i;
      while (i < line.size() &&
             (name_char(line[i], false) || std::isdigit(
                  static_cast<unsigned char>(line[i])) != 0)) {
        ++i;
      }
      if (i == label_start || i >= line.size() || line[i] != '=') {
        *error = "malformed label name";
        return false;
      }
      const std::string label_name = line.substr(label_start, i - label_start);
      ++i;
      if (i >= line.size() || line[i] != '"') {
        *error = "label value must be quoted";
        return false;
      }
      ++i;
      std::string label_value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= line.size()) {
            *error = "dangling escape in label value";
            return false;
          }
        }
        label_value.push_back(line[i]);
        ++i;
      }
      if (i >= line.size()) {
        *error = "unterminated label value";
        return false;
      }
      ++i;  // closing quote
      out->labels.emplace_back(label_name, label_value);
      if (i < line.size() && line[i] == ',') {
        ++i;
      } else if (i >= line.size() || line[i] != '}') {
        *error = "expected ',' or '}' after label";
        return false;
      }
    }
    if (i >= line.size()) {
      *error = "unterminated label set";
      return false;
    }
    ++i;  // '}'
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "expected single space before value";
    return false;
  }
  ++i;
  char* end = nullptr;
  out->value = std::strtod(line.c_str() + i, &end);
  if (end == line.c_str() + i || end != line.c_str() + line.size()) {
    *error = "unparseable sample value";
    return false;
  }
  return true;
}

/// Lints a /metrics body against the exposition format: every sample
/// belongs to a declared family (HELP before TYPE, TYPE before samples),
/// series are unique, and histogram buckets are cumulative with
/// le="+Inf" equal to _count — per label set, so labeled histograms
/// (e.g. the per-worker dist latency series) are checked worker by
/// worker.
void LintPrometheusExposition(const std::string& body) {
  std::set<std::string> helped;
  std::map<std::string, std::string> family_type;
  std::set<std::string> series_seen;
  // Histogram bookkeeping, keyed by family + labels-without-le.
  std::map<std::string, std::vector<double>> hist_buckets;
  std::map<std::string, double> hist_counts;
  std::set<std::string> hist_inf_seen;

  std::istringstream lines(body);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    SCOPED_TRACE("line " + std::to_string(lineno) + ": " + line);
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << "HELP without text";
      helped.insert(rest.substr(0, space));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << "TYPE without a type";
      const std::string name = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << "unknown metric type '" << type << "'";
      EXPECT_EQ(helped.count(name), 1u) << "TYPE without preceding HELP";
      EXPECT_EQ(family_type.count(name), 0u) << "duplicate TYPE";
      family_type[name] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment form";

    PromSample sample;
    std::string error;
    ASSERT_TRUE(ParsePromSample(line, &sample, &error)) << error;

    // Histogram samples attach to their base family.
    std::string family = sample.name;
    std::string hist_suffix;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::strlen(suffix);
      if (family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0) {
        const std::string base = family.substr(0, family.size() - n);
        const auto it = family_type.find(base);
        if (it != family_type.end() && it->second == "histogram") {
          family = base;
          hist_suffix = suffix;
          break;
        }
      }
    }
    EXPECT_EQ(family_type.count(family), 1u) << "sample without # TYPE";

    const std::string series = line.substr(0, line.rfind(' '));
    EXPECT_TRUE(series_seen.insert(series).second) << "duplicate series";

    if (family != sample.name) {
      std::string key = family;
      std::string le;
      for (const auto& [label, value] : sample.labels) {
        if (label == "le") {
          le = value;
        } else {
          key += "|" + label + "=" + value;
        }
      }
      if (hist_suffix == "_bucket") {
        EXPECT_FALSE(le.empty()) << "_bucket sample without an le label";
        hist_buckets[key].push_back(sample.value);
        if (le == "+Inf") hist_inf_seen.insert(key);
      } else if (hist_suffix == "_count") {
        hist_counts[key] = sample.value;
      }
    }
  }

  for (const auto& [key, buckets] : hist_buckets) {
    SCOPED_TRACE("histogram " + key);
    for (size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_LE(buckets[i - 1], buckets[i]) << "buckets not cumulative";
    }
    EXPECT_EQ(hist_inf_seen.count(key), 1u) << "missing le=\"+Inf\" bucket";
    ASSERT_EQ(hist_counts.count(key), 1u) << "missing _count sample";
    EXPECT_EQ(buckets.back(), hist_counts[key])
        << "le=\"+Inf\" must equal _count";
  }
}

// The live /metrics endpoint passes the lint, and the series added by
// the tracing / shard-telemetry work are present.
TEST(SurfHandlerTest, MetricsPassPrometheusExpositionLint) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));
  client.Request("GET", "/healthz");
  client.Request("GET", "/nope");

  const std::string body = client.Request("GET", "/metrics").body;
  ASSERT_FALSE(body.empty());
  LintPrometheusExposition(body);

  // The series introduced by the tracing + shard-telemetry layer.
  EXPECT_NE(
      body.find("surf_stage_seconds_bucket{stage=\"training\",le=\"+Inf\"}"),
      std::string::npos);
  EXPECT_NE(body.find("surf_shard_scan_total{action=\"pruned\"}"),
            std::string::npos);
  EXPECT_NE(body.find("surf_shard_scan_total{action=\"block_merged\"}"),
            std::string::npos);
  EXPECT_NE(body.find("surf_shard_scan_total{action=\"scanned\"}"),
            std::string::npos);
  EXPECT_NE(body.find("surf_accel_backend{backend=\""), std::string::npos);
}

// The cluster-coordinator series (surf_dist_*) pass the same lint: the
// per-worker latency histograms must be cumulative with a per-label-set
// le="+Inf" equal to that worker's _count, and health gauges emit one
// 0/1 sample per configured worker.
TEST(SurfHandlerTest, DistClusterMetricsPassExpositionLint) {
  ServerMetrics metrics;
  metrics.RecordRequest("/metrics", 200, 0.001);

  ServerMetrics::CacheFigures cache;
  ServerMetrics::ServiceFigures service;
  service.has_dist = true;
  service.dist_shard_retries = 3;

  ServerMetrics::ServiceFigures::DistWorkerFigures healthy;
  healthy.endpoint = "127.0.0.1:9001";
  healthy.healthy = true;
  healthy.buckets[2] = 5;   // raw counts; the renderer accumulates
  healthy.buckets[7] = 2;
  healthy.buckets[14] = 1;  // +Inf slot: one slow outlier
  healthy.latency_sum_seconds = 0.75;
  healthy.latency_count = 8;
  service.dist_workers.push_back(healthy);

  ServerMetrics::ServiceFigures::DistWorkerFigures down;
  down.endpoint = "127.0.0.1:9002";
  down.healthy = false;  // zero RPCs recorded: empty histogram is legal
  service.dist_workers.push_back(down);

  const std::string body = metrics.RenderPrometheus(cache, service);
  LintPrometheusExposition(body);

  EXPECT_NE(body.find("surf_dist_shard_retries_total 3"),
            std::string::npos);
  EXPECT_NE(
      body.find("surf_dist_worker_unhealthy{worker=\"127.0.0.1:9001\"} 0"),
      std::string::npos);
  EXPECT_NE(
      body.find("surf_dist_worker_unhealthy{worker=\"127.0.0.1:9002\"} 1"),
      std::string::npos);
  EXPECT_NE(body.find("surf_dist_worker_request_seconds_bucket{worker="
                      "\"127.0.0.1:9001\",le=\"+Inf\"} 8"),
            std::string::npos);
  EXPECT_NE(body.find("surf_dist_worker_request_seconds_count{worker="
                      "\"127.0.0.1:9001\"} 8"),
            std::string::npos);
  EXPECT_NE(body.find("surf_dist_worker_request_seconds_sum{worker="
                      "\"127.0.0.1:9001\"}"),
            std::string::npos);

  // Non-coordinator rendering stays byte-free of dist series.
  service.has_dist = false;
  EXPECT_EQ(metrics.RenderPrometheus(cache, service).find("surf_dist_"),
            std::string::npos);
}

// A traced mine request carries the summary block in its response, is
// retained for GET /v1/trace/{id} as Chrome trace-event JSON, and feeds
// the per-stage histograms — while untraced requests stay trace-free.
TEST(SurfHandlerTest, TraceRoundTripOverHttp) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  const SyntheticDataset ds = MakeTestData();
  ASSERT_EQ(client
                .Request("POST", "/v1/datasets",
                         InlineDatasetBody("traced", ds.data))
                .status,
            201);

  MineRequest request = MakeTestRequest("traced", {0, 1});
  request.trace = true;
  ClientResponse mined =
      client.Request("POST", "/v1/mine", WriteJson(MineRequestToJson(request)));
  ASSERT_EQ(mined.status, 200) << mined.body;
  auto mined_json = ParseJson(mined.body);
  ASSERT_TRUE(mined_json.ok());
  const JsonValue* trace = mined_json->Find("trace");
  ASSERT_NE(trace, nullptr) << "traced request must carry a trace block";
  const JsonValue* trace_id = trace->Find("id");
  ASSERT_NE(trace_id, nullptr);
  const JsonValue* stage_seconds = trace->Find("stage_seconds");
  ASSERT_NE(stage_seconds, nullptr);
  ASSERT_NE(stage_seconds->Find("training"), nullptr);
  EXPECT_GT(stage_seconds->Find("training")->number_value(), 0.0);
  ASSERT_NE(trace->Find("spans"), nullptr);
  EXPECT_FALSE(trace->Find("spans")->array().empty());

  // The retained trace replays in the Chrome trace-event format.
  ClientResponse exported =
      client.Request("GET", "/v1/trace/" + trace_id->string_value());
  ASSERT_EQ(exported.status, 200) << exported.body;
  auto chrome = ParseJson(exported.body);
  ASSERT_TRUE(chrome.ok());
  const JsonValue* events = chrome->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());
  const JsonValue& first = events->array().front();
  EXPECT_NE(first.Find("name"), nullptr);
  ASSERT_NE(first.Find("ph"), nullptr);
  EXPECT_EQ(first.Find("ph")->string_value(), "X");

  // Unknown ids answer 404 with a JSON error.
  EXPECT_EQ(client.Request("GET", "/v1/trace/trace-999999").status, 404);

  // An untraced request stays byte-compatible: no trace key at all.
  ClientResponse plain = client.Request(
      "POST", "/v1/mine",
      WriteJson(MineRequestToJson(MakeTestRequest("traced", {0, 1}))));
  ASSERT_EQ(plain.status, 200);
  auto plain_json = ParseJson(plain.body);
  ASSERT_TRUE(plain_json.ok());
  EXPECT_EQ(plain_json->Find("trace"), nullptr);

  // The traced run fed the per-stage histograms (process-global, so at
  // least the training stage must have a nonzero count by now).
  const std::string metrics = client.Request("GET", "/metrics").body;
  const size_t count_pos =
      metrics.find("surf_stage_seconds_count{stage=\"training\"} ");
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_NE(metrics.compare(count_pos,
                            std::strlen(
                                "surf_stage_seconds_count{stage=\"training\"} "
                                "0\n"),
                            "surf_stage_seconds_count{stage=\"training\"} 0\n"),
            0)
      << "traced request must record stage observations";

  // Shard-scan telemetry and the accel backend ride /v1/cache/stats too.
  ClientResponse stats = client.Request("GET", "/v1/cache/stats");
  ASSERT_EQ(stats.status, 200);
  auto stats_json = ParseJson(stats.body);
  ASSERT_TRUE(stats_json.ok());
  EXPECT_NE(stats_json->Find("shard_evals"), nullptr);
  const JsonValue* backend = stats_json->Find("accel_backend");
  ASSERT_NE(backend, nullptr);
  EXPECT_FALSE(backend->string_value().empty());
}

// Async job submissions expose per-phase wall time from the first poll.
TEST(SurfHandlerTest, JobProgressCarriesPhaseSeconds) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  const SyntheticDataset ds = MakeTestData();
  ASSERT_EQ(client
                .Request("POST", "/v1/datasets",
                         InlineDatasetBody("phased", ds.data))
                .status,
            201);

  ClientResponse submitted = client.Request(
      "POST", "/v1/jobs",
      WriteJson(MineRequestToJson(MakeTestRequest("phased", {0, 1}))));
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  auto submitted_json = ParseJson(submitted.body);
  ASSERT_TRUE(submitted_json.ok());
  const JsonValue* progress = submitted_json->Find("progress");
  ASSERT_NE(progress, nullptr);
  EXPECT_NE(progress->Find("queued_seconds"), nullptr);
  EXPECT_NE(progress->Find("training_seconds"), nullptr);
  EXPECT_NE(progress->Find("searching_seconds"), nullptr);
  const std::string job_id =
      submitted_json->Find("job_id")->string_value();

  // Poll to completion; the final progress must account for the work:
  // training + searching both saw wall time.
  const JsonValue* final_progress = nullptr;
  JsonValue last_poll;
  for (int attempt = 0; attempt < 600; ++attempt) {
    ClientResponse polled = client.Request("GET", "/v1/jobs/" + job_id);
    ASSERT_EQ(polled.status, 200) << polled.body;
    auto poll_json = ParseJson(polled.body);
    ASSERT_TRUE(poll_json.ok());
    last_poll = std::move(*poll_json);
    const JsonValue* p = last_poll.Find("progress");
    ASSERT_NE(p, nullptr);
    if (p->Find("phase")->string_value() == "done") {
      final_progress = p;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_NE(final_progress, nullptr) << "job never finished";
  EXPECT_GT(final_progress->Find("training_seconds")->number_value(), 0.0);
  EXPECT_GT(final_progress->Find("searching_seconds")->number_value(), 0.0);
}

// ------------------------------------------------- transport behaviour

TEST(HttpServerTest, BackpressureAnswers429PastMaxInflight) {
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  HttpServer::Options options;
  options.max_inflight = 2;
  options.num_workers = 2;
  HttpServer server(options, [&](const HttpRequest&) {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient slow1, slow2;
  ASSERT_TRUE(slow1.Connect(server.port()));
  ASSERT_TRUE(slow2.Connect(server.port()));
  ASSERT_TRUE(slow1.SendRaw("GET /a HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  ASSERT_TRUE(slow2.SendRaw("GET /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  while (entered.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Both slots are held; the next connection must be turned away with
  // 429 by the acceptor without reaching the handler.
  TestClient rejected;
  ASSERT_TRUE(rejected.Connect(server.port()));
  ClientResponse overflow = rejected.Request("GET", "/c");
  EXPECT_EQ(overflow.status, 429);
  EXPECT_NE(overflow.body.find("overloaded"), std::string::npos);

  release.store(true);
  EXPECT_EQ(slow1.ReadResponse().status, 200);
  EXPECT_EQ(slow2.ReadResponse().status, 200);
  server.Shutdown();
  const HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_rejected, 1u);
  EXPECT_EQ(stats.requests_served, 2u);
  EXPECT_EQ(entered.load(), 2);
}

TEST(HttpServerTest, RequestDeadlineAnswers408) {
  HttpServer::Options options;
  options.request_deadline_seconds = 0.25;
  options.num_workers = 2;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // A partial request that never completes: the read deadline must fire
  // and answer 408 rather than hold the worker hostage.
  ASSERT_TRUE(client.SendRaw("POST /v1/mine HTTP/1.1\r\nContent-Le"));
  ClientResponse response = client.ReadResponse();
  EXPECT_EQ(response.status, 408);
  server.Shutdown();
  EXPECT_EQ(server.stats().request_timeouts, 1u);
}

TEST(HttpServerTest, OversizedBodyAnswers413) {
  HttpServer::Options options;
  options.max_body_bytes = 128;
  options.num_workers = 1;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  EXPECT_EQ(client.Request("POST", "/x", std::string(4096, 'a')).status, 413);
  server.Shutdown();
}

TEST(HttpServerTest, GracefulDrainServesEveryInflightRequest) {
  constexpr int kClients = 8;
  std::atomic<int> entered{0};
  HttpServer::Options options;
  options.max_inflight = kClients;
  options.num_workers = kClients;
  HttpServer server(options, [&](const HttpRequest&) {
    entered.fetch_add(1);
    // Slow handler: Shutdown() arrives while all of these are running.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    HttpResponse ok;
    ok.body = R"({"served": true})";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, port] {
      TestClient client;
      if (!client.Connect(port)) return;
      ClientResponse response = client.Request("POST", "/work", "{}");
      if (response.status == 200 &&
          response.body.find("served") != std::string::npos) {
        completed.fetch_add(1);
      }
    });
  }
  while (entered.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Drain while every request is mid-handler: all of them must still
  // receive complete responses (the acceptance criterion: no dropped
  // responses under load).
  server.Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(completed.load(), kClients);
  EXPECT_EQ(server.stats().requests_served,
            static_cast<uint64_t>(kClients));

  // After the drain the listener is gone: new connections are refused.
  TestClient late;
  EXPECT_FALSE(late.Connect(port));
}

TEST(HttpServerTest, KeepAliveServesManyRequestsPerConnection) {
  std::atomic<int> served{0};
  HttpServer::Options options;
  options.num_workers = 1;
  HttpServer server(options, [&](const HttpRequest& request) {
    served.fetch_add(1);
    HttpResponse ok;
    ok.body = "{\"target\": \"" + request.target + "\"}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  for (int i = 0; i < 20; ++i) {
    ClientResponse response =
        client.Request("GET", "/req/" + std::to_string(i));
    ASSERT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("/req/" + std::to_string(i)),
              std::string::npos);
    EXPECT_FALSE(response.connection_close);
  }
  server.Shutdown();
  EXPECT_EQ(served.load(), 20);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
}

// --------------------------------- ISSUE 10: event loop + QoS transport

/// A raw HTTP/1.1 request with caller-chosen extra headers (the plain
/// TestClient::Request has no header hook).
std::string RawRequest(
    const std::string& method, const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body = "") {
  std::string out = method + " " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

TEST(HttpServerTest, RejectFloodDoesNotStallAccept) {
  // Regression for the thread-per-connection accept path: 429 rejection
  // writes used to happen synchronously on the acceptor thread, so a
  // flood of slow rejected clients stalled accept for everyone. Now the
  // loop writes rejections asynchronously like any response: a probe
  // arriving behind a flood of held-open rejected connections must
  // still be answered promptly.
  std::atomic<bool> release{false};
  HttpServer::Options options;
  options.max_inflight = 1;
  options.num_workers = 1;
  HttpServer server(options, [&](const HttpRequest&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient blocker;
  ASSERT_TRUE(blocker.Connect(server.port()));
  ASSERT_TRUE(blocker.SendRaw(RawRequest("POST", "/hold", {})));
  while (server.stats().inflight < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The flood: rejected connections that never read their 429 and never
  // close. Each one's rejection write must not block the loop.
  constexpr int kFlood = 30;
  std::vector<TestClient> flood(kFlood);
  for (TestClient& client : flood) {
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_TRUE(client.SendRaw(RawRequest("GET", "/flood", {})));
  }

  const auto probe_start = std::chrono::steady_clock::now();
  TestClient probe;
  ASSERT_TRUE(probe.Connect(server.port()));
  ASSERT_TRUE(probe.SendRaw(RawRequest("GET", "/probe", {})));
  ClientResponse answer = probe.ReadResponse();
  const double probe_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    probe_start)
          .count();
  EXPECT_EQ(answer.status, 429);
  EXPECT_LT(probe_seconds, 1.0)
      << "a rejected-connection flood stalled the accept path";

  release.store(true);
  EXPECT_EQ(blocker.ReadResponse().status, 200);
  server.Shutdown();
  EXPECT_GE(server.stats().connections_rejected,
            static_cast<uint64_t>(kFlood + 1));
}

TEST(HttpServerTest, IdleKeepAliveConnectionsDoNotStarveAdmission) {
  // Admission control counts in-flight *requests*, not connections: a
  // parked fleet of idle keep-alive connections far beyond max_inflight
  // must not consume admission slots.
  HttpServer::Options options;
  options.max_inflight = 2;
  options.num_workers = 2;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  // Twice max_inflight connections, each completing one request and
  // then going idle (holding the connection open).
  std::vector<TestClient> parked(4);
  for (TestClient& client : parked) {
    ASSERT_TRUE(client.Connect(server.port()));
    ClientResponse response = client.Request("GET", "/warm");
    ASSERT_EQ(response.status, 200);
    EXPECT_FALSE(response.connection_close);
  }

  // A new client must be admitted: the parked fleet holds no slots.
  TestClient fresh;
  ASSERT_TRUE(fresh.Connect(server.port()));
  EXPECT_EQ(fresh.Request("GET", "/new").status, 200);
  // And the parked connections themselves are still serviceable.
  EXPECT_EQ(parked[0].Request("GET", "/again").status, 200);
  server.Shutdown();
  EXPECT_EQ(server.stats().connections_rejected, 0u);
  EXPECT_EQ(server.stats().requests_served, 6u);
}

TEST(HttpServerTest, PipelinedRequestsInOneSegmentBothAnswered) {
  // Bytes beyond the first request's Content-Length belong to the next
  // request and must be carried over, not dropped (the old reader threw
  // leftovers away with its recv buffer).
  HttpServer::Options options;
  options.num_workers = 1;
  HttpServer server(options, [](const HttpRequest& request) {
    HttpResponse ok;
    ok.body = "{\"target\": \"" + request.target + "\"}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Two complete requests in one TCP segment.
  ASSERT_TRUE(client.SendRaw(RawRequest("GET", "/first", {}) +
                             RawRequest("GET", "/second", {})));
  ClientResponse first = client.ReadResponse();
  ClientResponse second = client.ReadResponse();
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("/first"), std::string::npos);
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("/second"), std::string::npos);
  server.Shutdown();
  EXPECT_EQ(server.stats().requests_served, 2u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
}

TEST(HttpServerTest, MalformedHeaderEmptyNameAnswers400) {
  HttpServer::Options options;
  options.num_workers = 1;
  std::atomic<int> handled{0};
  HttpServer server(options, [&](const HttpRequest&) {
    handled.fetch_add(1);
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  // A header line with an empty field name used to be accepted as a
  // header named "". It is malformed (RFC 9112 field-name is 1*tchar).
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendRaw(
      "GET /x HTTP/1.1\r\n: lonely-value\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_EQ(client.ReadResponse().status, 400);

  // Whitespace-only names are just as empty after trimming.
  TestClient spaces;
  ASSERT_TRUE(spaces.Connect(server.port()));
  ASSERT_TRUE(spaces.SendRaw(
      "GET /x HTTP/1.1\r\n   : v\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_EQ(spaces.ReadResponse().status, 400);

  server.Shutdown();
  EXPECT_EQ(handled.load(), 0) << "malformed request reached the handler";
  EXPECT_EQ(server.stats().parse_errors, 2u);
}

TEST(HttpServerTest, TenantConcurrencyQuotaAnswers429AndRecovers) {
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  HttpServer::Options options;
  options.num_workers = 4;
  options.qos.per_tenant["acme"].max_inflight = 1;
  HttpServer server(options, [&](const HttpRequest& request) {
    if (request.target == "/hold") {
      entered.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient holder;
  ASSERT_TRUE(holder.Connect(server.port()));
  ASSERT_TRUE(holder.SendRaw(
      RawRequest("POST", "/hold", {{"x-surf-tenant", "acme"}})));
  while (entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Same tenant: over quota. The 429 must keep the connection open —
  // a throttled tenant retrying should not pay a reconnect.
  TestClient same_tenant;
  ASSERT_TRUE(same_tenant.Connect(server.port()));
  ASSERT_TRUE(same_tenant.SendRaw(
      RawRequest("GET", "/fast", {{"x-surf-tenant", "acme"}})));
  ClientResponse over = same_tenant.ReadResponse();
  EXPECT_EQ(over.status, 429);
  EXPECT_NE(over.body.find("tenant_over_quota"), std::string::npos);
  EXPECT_FALSE(over.connection_close);

  // A different tenant is unaffected by acme's quota.
  TestClient other;
  ASSERT_TRUE(other.Connect(server.port()));
  ASSERT_TRUE(other.SendRaw(
      RawRequest("GET", "/fast", {{"x-surf-tenant", "zeta"}})));
  EXPECT_EQ(other.ReadResponse().status, 200);

  release.store(true);
  EXPECT_EQ(holder.ReadResponse().status, 200);

  // The slot came back with the response: same connection, same tenant,
  // now admitted.
  ASSERT_TRUE(same_tenant.SendRaw(
      RawRequest("GET", "/fast", {{"x-surf-tenant", "acme"}})));
  EXPECT_EQ(same_tenant.ReadResponse().status, 200);

  server.Shutdown();
  const HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.tenant_over_quota, 1u);
  EXPECT_EQ(stats.connections_rejected, 0u);
  // Served = /hold, zeta's /fast, acme's retry; the 429 is not "served".
  EXPECT_EQ(stats.requests_served, 3u);
}

TEST(HttpServerTest, TenantRateLimitThrottlesOnlyTheMeteredTenant) {
  HttpServer::Options options;
  options.num_workers = 2;
  // One-token bucket that effectively never refills within the test.
  options.qos.per_tenant["metered"].rate = 0.001;
  options.qos.per_tenant["metered"].burst = 1.0;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse ok;
    ok.body = "{}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient metered;
  ASSERT_TRUE(metered.Connect(server.port()));
  ASSERT_TRUE(metered.SendRaw(
      RawRequest("GET", "/a", {{"x-surf-tenant", "metered"}})));
  EXPECT_EQ(metered.ReadResponse().status, 200);

  ASSERT_TRUE(metered.SendRaw(
      RawRequest("GET", "/b", {{"x-surf-tenant", "metered"}})));
  ClientResponse throttled = metered.ReadResponse();
  EXPECT_EQ(throttled.status, 429);
  EXPECT_NE(throttled.body.find("tenant_throttled"), std::string::npos);
  EXPECT_FALSE(throttled.connection_close);

  // Unmetered traffic (no tenant header → the unlimited "default"
  // tenant) flows freely the whole time.
  TestClient anon;
  ASSERT_TRUE(anon.Connect(server.port()));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(anon.Request("GET", "/free").status, 200);
  }

  server.Shutdown();
  const HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.tenant_throttled, 1u);
  EXPECT_EQ(stats.requests_served, 6u);
}

TEST(HttpServerTest, BatchFloodDoesNotBlockInteractiveRequests) {
  // Priority-inversion regression: with every batch worker wedged and
  // more batch work queued, an interactive request must still be served
  // immediately by the interactive pool.
  std::atomic<bool> release{false};
  std::atomic<int> batch_entered{0};
  HttpServer::Options options;
  options.num_workers = 1;
  options.batch_workers = 1;
  HttpServer server(options, [&](const HttpRequest& request) {
    if (request.target == "/batch-hold") {
      batch_entered.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    HttpResponse ok;
    ok.body = "{\"target\": \"" + request.target + "\"}";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  // Wedge the batch worker and stack a second batch request behind it.
  TestClient wedge, queued;
  ASSERT_TRUE(wedge.Connect(server.port()));
  ASSERT_TRUE(wedge.SendRaw(RawRequest(
      "POST", "/batch-hold", {{"x-surf-priority", "batch"}})));
  while (batch_entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(queued.Connect(server.port()));
  ASSERT_TRUE(queued.SendRaw(RawRequest(
      "POST", "/batch-fast", {{"x-surf-priority", "Batch"}})));

  // The interactive request completes while the batch class is wedged.
  const auto start = std::chrono::steady_clock::now();
  TestClient interactive;
  ASSERT_TRUE(interactive.Connect(server.port()));
  ClientResponse fast = interactive.Request("GET", "/interactive");
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_EQ(fast.status, 200);
  EXPECT_LT(seconds, 1.0) << "interactive request waited behind batch work";
  EXPECT_EQ(batch_entered.load(), 1) << "queued batch job jumped the wedge";

  release.store(true);
  EXPECT_EQ(wedge.ReadResponse().status, 200);
  EXPECT_EQ(queued.ReadResponse().status, 200);
  server.Shutdown();
  const HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.batch_served, 2u);
  EXPECT_EQ(stats.requests_served, 3u);
}

TEST(HttpServerTest, DrainCompletesQueuedBacklogBeyondWorkerCount) {
  // Drain under load with a real backlog: more admitted requests than
  // workers, so some are still *queued* (not just mid-handler) when
  // Shutdown() arrives. Every one of them is owed a response.
  constexpr int kClients = 6;
  std::atomic<int> entered{0};
  HttpServer::Options options;
  options.num_workers = 1;
  options.max_inflight = kClients;
  HttpServer server(options, [&](const HttpRequest&) {
    entered.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    HttpResponse ok;
    ok.body = R"({"served": true})";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, port] {
      TestClient client;
      if (!client.Connect(port)) return;
      if (client.Request("POST", "/work", "{}").status == 200) {
        completed.fetch_add(1);
      }
    });
  }
  // Shutdown once every request is admitted (the inflight gauge counts
  // queued dispatches too); with one worker, most of the backlog is
  // still sitting in the scheduler queue at this point.
  while (server.stats().inflight < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(completed.load(), kClients);
  EXPECT_EQ(server.stats().requests_served,
            static_cast<uint64_t>(kClients));
}

// ------------------------------------------------- ISSUE 4: v2 + jobs

TEST(SurfHandlerTest, VersionEndpointReportsSchemaRange) {
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  ClientResponse version = client.Request("GET", "/v1/version");
  ASSERT_EQ(version.status, 200);
  auto parsed = ParseJson(version.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("api_version")->number_value(), 2.0);
  EXPECT_EQ(parsed->Find("api_min_version")->number_value(), 1.0);
  EXPECT_TRUE(parsed->Find("library_version")->is_string());
  EXPECT_TRUE(parsed->Find("build")->is_object());
}

TEST(SurfHandlerTest, V2SchemaMatchesV1BitExactly) {
  const SyntheticDataset ds = MakeTestData();
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  ASSERT_TRUE(ts.service->RegisterDataset("web", ds.data).ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  const MineRequest legacy = MakeTestRequest("web", ds.region_cols);
  ClientResponse v1 = client.Request("POST", "/v1/mine",
                                     WriteJson(MineRequestToJson(legacy)));
  ASSERT_EQ(v1.status, 200);

  // The same request in the v2 named-section schema must mine the same
  // regions (and hit the cache entry the v1 request trained).
  const v2::MineRequest lifted = v2::FromLegacy(legacy);
  v2::MineRequest as_v2 = lifted;
  as_v2.api_version = 2;
  ClientResponse v2_response = client.Request(
      "POST", "/v1/mine", WriteJson(MineRequestV2ToJson(as_v2)));
  ASSERT_EQ(v2_response.status, 200);

  auto decoded_v1 = ParseJson(v1.body);
  auto decoded_v2 = ParseJson(v2_response.body);
  ASSERT_TRUE(decoded_v1.ok());
  ASSERT_TRUE(decoded_v2.ok());
  EXPECT_TRUE(decoded_v2->Find("cache_hit")->bool_value());
  // Regions are bit-identical; the report matches too except for its
  // wall-time measurement.
  EXPECT_EQ(WriteJson(*decoded_v1->Find("result")->Find("regions")),
            WriteJson(*decoded_v2->Find("result")->Find("regions")));
  const JsonValue* report_v1 = decoded_v1->Find("result")->Find("report");
  const JsonValue* report_v2 = decoded_v2->Find("result")->Find("report");
  EXPECT_EQ(report_v1->Find("iterations")->number_value(),
            report_v2->Find("iterations")->number_value());
  EXPECT_EQ(report_v1->Find("objective_evaluations")->number_value(),
            report_v2->Find("objective_evaluations")->number_value());
  EXPECT_EQ(decoded_v2->Find("api_version")->number_value(), 2.0);

  // record_evaluations without validate is rejected by the shared
  // validation path in both schemas.
  MineRequest bad = legacy;
  bad.record_evaluations = true;
  bad.validate = false;
  EXPECT_EQ(client
                .Request("POST", "/v1/mine",
                         WriteJson(MineRequestToJson(bad)))
                .status,
            400);
}

TEST(SurfHandlerTest, JobLifecycleSubmitPollCancel) {
  const SyntheticDataset ds = MakeTestData();
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  ASSERT_TRUE(ts.service->RegisterDataset("web", ds.data).ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  // Warm the cache so the long job is all search.
  ASSERT_EQ(client
                .Request("POST", "/v1/mine",
                         WriteJson(MineRequestToJson(
                             MakeTestRequest("web", ds.region_cols))))
                .status,
            200);

  MineRequest slow = MakeTestRequest("web", ds.region_cols);
  slow.finder.gso.max_iterations = 200000;
  slow.finder.gso.convergence_tol_frac = 0.0;
  ClientResponse submitted = client.Request(
      "POST", "/v1/jobs", WriteJson(MineRequestToJson(slow)));
  ASSERT_EQ(submitted.status, 202);
  auto submit_body = ParseJson(submitted.body);
  ASSERT_TRUE(submit_body.ok());
  const std::string id = submit_body->Find("job_id")->string_value();
  ASSERT_FALSE(id.empty());

  // Poll until the search is visibly under way.
  bool searching = false;
  for (int i = 0; i < 2000 && !searching; ++i) {
    ClientResponse polled = client.Request("GET", "/v1/jobs/" + id);
    ASSERT_EQ(polled.status, 200);
    auto body = ParseJson(polled.body);
    ASSERT_TRUE(body.ok());
    const JsonValue* progress = body->Find("progress");
    searching = progress->Find("iterations")->number_value() >= 3.0;
    if (!searching) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(searching);

  // Cancel, then poll to the terminal state: the response must arrive
  // promptly with status cancelled and the partial report flagged.
  ClientResponse cancelled = client.Request("DELETE", "/v1/jobs/" + id);
  ASSERT_EQ(cancelled.status, 200);
  const JsonValue* response_json = nullptr;
  auto final_body = ParseJson(cancelled.body);
  for (int i = 0; i < 2000; ++i) {
    ClientResponse polled = client.Request("GET", "/v1/jobs/" + id);
    ASSERT_EQ(polled.status, 200);
    final_body = ParseJson(polled.body);
    ASSERT_TRUE(final_body.ok());
    response_json = final_body->Find("response");
    if (response_json != nullptr) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_NE(response_json, nullptr) << "job never reached a terminal state";
  EXPECT_EQ(response_json->Find("status")->Find("code")->string_value(),
            "cancelled");
  const JsonValue* report =
      response_json->Find("result")->Find("report");
  EXPECT_TRUE(report->Find("cancelled")->bool_value());
  EXPECT_LT(report->Find("iterations")->number_value(), 100000.0);

  // Cancelling a finished job is a harmless no-op.
  ClientResponse again = client.Request("DELETE", "/v1/jobs/" + id);
  EXPECT_EQ(again.status, 200);
  auto again_body = ParseJson(again.body);
  ASSERT_TRUE(again_body.ok());
  EXPECT_TRUE(again_body->Find("already_done")->bool_value());

  // Unknown ids 404; the bare collection path still submits only.
  EXPECT_EQ(client.Request("GET", "/v1/jobs/nope").status, 404);
  EXPECT_EQ(client.Request("DELETE", "/v1/jobs/nope").status, 404);
}

TEST(SurfHandlerTest, V2CodecRoundTripsExecutionShards) {
  const SyntheticDataset ds = MakeTestData();
  v2::MineRequest request =
      v2::FromLegacy(MakeTestRequest("web", ds.region_cols));
  request.api_version = 2;
  request.execution.shards = 8;

  // Encode → decode: the shard count survives the wire.
  auto decoded = MineRequestV2FromJson(
      ParseJson(WriteJson(MineRequestV2ToJson(request))).value(), nullptr);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->execution.shards, 8u);

  // Absent field: the v1-compatible default of one shard.
  v2::MineRequest plain = request;
  plain.execution.shards = 1;
  JsonValue encoded = MineRequestV2ToJson(plain);
  ASSERT_TRUE(encoded.Find("execution")->Find("shards") != nullptr);
  auto body = ParseJson(WriteJson(encoded));
  ASSERT_TRUE(body.ok());
  auto defaulted = MineRequestV2FromJson(*body, nullptr);
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->execution.shards, 1u);

  // shards: 0 normalizes to 1 through the shared validation pass...
  v2::MineRequest zero = request;
  zero.execution.shards = 0;
  auto normalized = MineRequestV2FromJson(
      ParseJson(WriteJson(MineRequestV2ToJson(zero))).value(), nullptr);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(normalized->execution.shards, 1u);

  // ...while an absurd shard count is rejected at decode time.
  v2::MineRequest excessive = request;
  excessive.execution.shards = 100000;
  auto rejected = MineRequestV2FromJson(
      ParseJson(WriteJson(MineRequestV2ToJson(excessive))).value(), nullptr);
  EXPECT_FALSE(rejected.ok());

  // The legacy flat schema carries the field too (v1 bodies without it
  // keep the single-evaluator default).
  MineRequest legacy = MakeTestRequest("web", ds.region_cols);
  legacy.shards = 4;
  auto legacy_decoded = MineRequestFromJson(
      ParseJson(WriteJson(MineRequestToJson(legacy))).value(), nullptr);
  ASSERT_TRUE(legacy_decoded.ok());
  EXPECT_EQ(legacy_decoded->shards, 4u);
}

TEST(SurfHandlerTest, JobsPathShardsOneVsEightIdenticalResponses) {
  // Two fresh servers, same dataset, same v2 job — one labelled through
  // the classic single evaluator, one through eight range-partitioned
  // shards. The mined count statistic is integer-exact under sharding,
  // so the terminal job responses must agree region for region.
  const SyntheticDataset ds = MakeTestData();

  auto run_job = [&](size_t shards) -> std::string {
    TestServer ts;
    EXPECT_TRUE(ts.start_status.ok());
    EXPECT_TRUE(ts.service->RegisterDataset("web", ds.data).ok());
    TestClient client;
    EXPECT_TRUE(client.Connect(ts.server->port()));

    v2::MineRequest request =
        v2::FromLegacy(MakeTestRequest("web", ds.region_cols));
    request.api_version = 2;
    request.execution.shards = shards;
    ClientResponse submitted = client.Request(
        "POST", "/v1/jobs", WriteJson(MineRequestV2ToJson(request)));
    EXPECT_EQ(submitted.status, 202) << submitted.body;
    auto submit_body = ParseJson(submitted.body);
    EXPECT_TRUE(submit_body.ok());
    const std::string id = submit_body->Find("job_id")->string_value();

    for (int i = 0; i < 30000; ++i) {
      ClientResponse polled = client.Request("GET", "/v1/jobs/" + id);
      EXPECT_EQ(polled.status, 200);
      auto body = ParseJson(polled.body);
      EXPECT_TRUE(body.ok());
      if (const JsonValue* response = body->Find("response")) {
        EXPECT_EQ(response->Find("status")->Find("code")->string_value(),
                  "ok");
        return WriteJson(*response->Find("result")->Find("regions"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ADD_FAILURE() << "job with shards=" << shards << " never finished";
    return "";
  };

  const std::string regions_one_shard = run_job(1);
  const std::string regions_eight_shards = run_job(8);
  ASSERT_FALSE(regions_one_shard.empty());
  EXPECT_GT(regions_one_shard.size(), 2u);  // mined something, not "[]"
  EXPECT_EQ(regions_one_shard, regions_eight_shards);
}

TEST(SurfHandlerTest, BlockingMineDeadlineCancelsAndAnswers408) {
  const SyntheticDataset ds = MakeTestData();
  TestServer ts;
  ASSERT_TRUE(ts.start_status.ok());
  ASSERT_TRUE(ts.service->RegisterDataset("web", ds.data).ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.server->port()));

  ASSERT_EQ(client
                .Request("POST", "/v1/mine",
                         WriteJson(MineRequestToJson(
                             MakeTestRequest("web", ds.region_cols))))
                .status,
            200);

  // A v2 request with a tight execution deadline on an endless search:
  // the worker must stop and answer 408 with the partial envelope.
  MineRequest slow = MakeTestRequest("web", ds.region_cols);
  slow.finder.gso.max_iterations = 200000;
  slow.finder.gso.convergence_tol_frac = 0.0;
  v2::MineRequest as_v2 = v2::FromLegacy(slow);
  as_v2.api_version = 2;
  as_v2.execution.deadline_seconds = 0.15;

  const auto started = std::chrono::steady_clock::now();
  ClientResponse response = client.Request(
      "POST", "/v1/mine", WriteJson(MineRequestV2ToJson(as_v2)));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  EXPECT_EQ(response.status, 408);
  EXPECT_LT(elapsed, 30.0);  // far below the 200k-iteration budget
  auto body = ParseJson(response.body);
  ASSERT_TRUE(body.ok());
  // The 408 carries the full envelope: cancelled status, partial
  // report, and the provenance of the model that served it.
  EXPECT_EQ(body->Find("status")->Find("code")->string_value(),
            "cancelled");
  EXPECT_TRUE(body->Find("result")
                  ->Find("report")
                  ->Find("cancelled")
                  ->bool_value());
  EXPECT_TRUE(body->Find("provenance")->is_object());
}

// ------------------------------------------------------- send-path tests

// Regression for the hardened send path: a non-blocking socket with a
// tiny SO_SNDBUF and a slow reader forces partial writes and
// EAGAIN/EWOULDBLOCK on nearly every send(2) call; SendAll must still
// deliver every byte in order.
TEST(HttpServerTest, SendAllSurvivesTinySendBufferAndSlowReader) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK), 0);

  // 1 MiB of recognizable bytes through a ~4 KiB pipe.
  std::string payload(1 << 20, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 23));
  }

  std::string received;
  std::thread reader([&] {
    char chunk[8192];
    while (received.size() < payload.size()) {
      const ssize_t n = ::recv(fds[1], chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      received.append(chunk, static_cast<size_t>(n));
      // Slow drain so the sender keeps filling the tiny buffer.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  EXPECT_TRUE(SendAll(fds[0], payload.data(), payload.size(), 30.0));
  ::shutdown(fds[0], SHUT_WR);
  reader.join();
  EXPECT_EQ(received, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

// A peer that is gone must fail the send, not crash the process
// (historically SIGPIPE) or spin.
TEST(HttpServerTest, SendAllFailsCleanlyOnClosedPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  const std::string payload(1 << 16, 'x');
  EXPECT_FALSE(SendAll(fds[0], payload.data(), payload.size(), 5.0));
  ::close(fds[0]);
}

// An expired budget bounds a stalled send: the reader never drains, so
// SendAll must give up once the deadline passes instead of blocking
// forever on a full buffer.
TEST(HttpServerTest, SendAllHonoursDeadlineAgainstStalledReader) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK), 0);
  const std::string payload(1 << 22, 'x');  // far beyond the buffer
  const auto started = std::chrono::steady_clock::now();
  EXPECT_FALSE(SendAll(fds[0], payload.data(), payload.size(), 0.3));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  EXPECT_LT(elapsed, 5.0);
  ::close(fds[0]);
  ::close(fds[1]);
}

// A handler that throws must be answered 500 and counted — never
// propagate out of the worker (which previously swallowed it silently)
// and never kill the connection loop.
TEST(HttpServerTest, ThrowingHandlerAnswers500AndCounts) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [](const HttpRequest& request) -> HttpResponse {
    if (request.target == "/boom") {
      throw std::runtime_error("handler exploded");
    }
    HttpResponse ok;
    ok.body = "fine";
    return ok;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ClientResponse boom = client.Request("GET", "/boom");
  EXPECT_EQ(boom.status, 500);
  EXPECT_NE(boom.body.find("internal"), std::string::npos);

  // The same connection (keep-alive) still serves the next request.
  ClientResponse fine = client.Request("GET", "/fine");
  EXPECT_EQ(fine.status, 200);
  EXPECT_EQ(fine.body, "fine");

  server.Shutdown();
  EXPECT_EQ(server.stats().worker_exceptions, 1u);
}

}  // namespace
}  // namespace surf
