#ifndef SURF_SERVE_MINING_SERVICE_H_
#define SURF_SERVE_MINING_SERVICE_H_

/// \file
/// \brief The persistent multi-query mining service.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/finder.h"
#include "core/surf.h"
#include "core/topk.h"
#include "serve/scheduler.h"
#include "serve/surrogate_cache.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief One mining request against a registered dataset.
///
/// The tuple (dataset, statistic, workload, surrogate) forms the
/// surrogate-cache key; everything else — threshold, direction, finder
/// knobs, top-k settings — is per-request search configuration evaluated
/// against the shared read-only model.
struct MineRequest {
  /// Name the dataset was registered under.
  std::string dataset;
  /// The statistic f whose interesting regions are sought.
  Statistic statistic;

  /// The user's cut-off value y_R (paper Problem 1).
  double threshold = 0.0;
  /// Which side of the threshold is interesting.
  ThresholdDirection direction = ThresholdDirection::kAbove;

  /// \brief Query formulation.
  enum class Mode {
    /// Regions whose statistic crosses `threshold` (paper Problem 1).
    kThreshold,
    /// The k highest-statistic regions (§VI's alternative formulation).
    kTopK,
  };
  /// Threshold query (default) vs. k-highest-statistic query.
  Mode mode = Mode::kThreshold;
  /// Top-k settings (used when mode == kTopK).
  TopKConfig topk;

  /// Per-request GSO/extraction knobs.
  FinderConfig finder;
  /// Training-workload recipe — part of the cache key.
  WorkloadParams workload;
  /// Surrogate training recipe — part of the cache key.
  SurrogateTrainOptions surrogate;
  /// Which exact back-end labels the workload and validates results.
  BackendKind backend = BackendKind::kGridIndex;

  /// Fit/use the KDE data prior (Eq. 8 guidance).
  bool use_kde = true;
  /// Validate reported regions against the true statistic.
  bool validate = true;
  /// Feed validated (region, true value) pairs back into the cache
  /// entry's pending workload, so repeated traffic warms the next
  /// incremental retrain. Requires `validate`.
  bool record_evaluations = false;
};

/// \brief One mining response.
struct MineResponse {
  /// Request outcome; `result`/`topk` are meaningful only when OK.
  Status status = Status::OK();
  /// Threshold-mode result.
  FindResult result;
  /// Top-k-mode result.
  TopKResult topk;
  /// Whether an already-resident surrogate served this request.
  bool cache_hit = false;
  /// Declared pedigree of the model that served the request.
  SurrogateProvenance provenance;
  /// End-to-end request wall-time (training share included on misses).
  double total_seconds = 0.0;
};

/// \brief Persistent multi-query region-mining service (the deployment
/// story of paper §V-D: "models will be trained once and successively
/// used to answer queries").
///
/// Owns named datasets, a keyed surrogate cache, and a worker pool.
/// Concurrent requests for the same (dataset, statistic, workload recipe,
/// model recipe) share one trained surrogate — the first request trains,
/// the rest block on the in-flight fit, and later ones hit the cache
/// outright. Mining itself (GSO/PSO/top-k search) runs per request
/// against read-only model snapshots, so any number of requests can be in
/// flight at once.
class MiningService {
 public:
  /// \brief Service configuration.
  struct Options {
    /// Worker threads for MineBatch (0 = hardware concurrency).
    size_t num_threads = 0;
    /// Surrogate-cache sizing/eviction/warm-start policy.
    SurrogateCache::Options cache;
    /// When >= 2, declare a k-fold cross-validated RMSE in each entry's
    /// provenance (costs `provenance_cv_folds` extra fits per training).
    /// 0 skips CV; provenance then carries only the holdout RMSE.
    size_t provenance_cv_folds = 0;
    /// Sample cap for the per-entry KDE data prior.
    size_t kde_max_samples = 2000;
  };

  /// Service with default options (all-core pool, default cache policy).
  MiningService() : MiningService(Options{}) {}
  /// Service with an explicit configuration.
  explicit MiningService(Options options);

  /// Registers a dataset under `name`. Fails with AlreadyExists on reuse.
  Status RegisterDataset(const std::string& name, Dataset data);

  /// Convenience: LoadCsv + RegisterDataset.
  Status RegisterCsvDataset(const std::string& name, const std::string& path);

  /// The registered dataset, or null.
  const Dataset* dataset(const std::string& name) const;

  /// Registered dataset names, sorted.
  std::vector<std::string> dataset_names() const;

  /// Serves one request synchronously on the calling thread. Thread-safe;
  /// any number of Mine calls may run concurrently.
  MineResponse Mine(const MineRequest& request);

  /// Serves a batch concurrently over the worker pool; responses are in
  /// request order.
  std::vector<MineResponse> MineBatch(const std::vector<MineRequest>& requests);

  /// Appends externally observed region evaluations to the cache entry
  /// `request` keys to (training it first if absent). Past the configured
  /// retrain threshold this triggers the warm-start swap.
  Status AppendEvaluations(const MineRequest& request,
                           const RegionWorkload& fresh);

  /// Cache-key derivation for a request (exposed for tests/tools).
  StatusOr<SurrogateKey> KeyFor(const MineRequest& request) const;

  /// The surrogate cache (for stats, Peek, Clear).
  SurrogateCache& cache() { return cache_; }
  /// Read-only view of the surrogate cache.
  const SurrogateCache& cache() const { return cache_; }
  /// The worker pool MineBatch schedules over.
  ThreadPool& pool() { return pool_; }
  /// Worker-thread count of the pool.
  size_t num_threads() const { return pool_.num_threads(); }

 private:
  /// A registered dataset plus its content fingerprint, computed once at
  /// registration (datasets are immutable after RegisterDataset).
  struct NamedDataset {
    std::unique_ptr<Dataset> data;
    uint64_t fingerprint = 0;
  };

  /// Validates the request against the dataset; returns the registry
  /// entry (stable address).
  StatusOr<const NamedDataset*> ResolveRequest(
      const MineRequest& request) const;

  /// Trains a cache entry for `request` (runs on a miss, outside the
  /// cache lock).
  StatusOr<TrainedSurrogate> TrainEntry(const MineRequest& request,
                                        const Dataset* data);

  /// Fetches (or trains) the cache entry for `request`.
  StatusOr<std::shared_ptr<CachedSurrogate>> EntryFor(
      const MineRequest& request, bool* was_hit);

  Options options_;
  ThreadPool pool_;
  RequestScheduler scheduler_;
  SurrogateCache cache_;

  mutable std::mutex datasets_mu_;
  /// std::map keeps entry addresses stable across inserts and names
  /// sorted for dataset_names().
  std::map<std::string, NamedDataset> datasets_;
};

}  // namespace surf

#endif  // SURF_SERVE_MINING_SERVICE_H_
