#include "serve/surrogate_cache.h"

#include <cmath>
#include <utility>

namespace surf {

// ---------------------------------------------------------------- entry

SurrogateSnapshot CachedSurrogate::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SurrogateSnapshot snap;
  snap.surrogate = model_;
  snap.kde = kde_;
  snap.evaluator = evaluator_;
  snap.space = space_;
  snap.provenance = provenance_;
  return snap;
}

SurrogateProvenance CachedSurrogate::provenance() const {
  std::lock_guard<std::mutex> lock(mu_);
  return provenance_;
}

void CachedSurrogate::Publish(TrainedSurrogate trained,
                              uint64_t dataset_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  space_ = trained.surrogate.space();
  provenance_.dataset_fingerprint = dataset_fingerprint;
  provenance_.training_set_size =
      trained.surrogate.metrics().num_train_examples;
  provenance_.holdout_rmse = trained.surrogate.metrics().test_rmse;
  provenance_.train_seconds = trained.surrogate.metrics().train_seconds;
  provenance_.cv_rmse = trained.cv_rmse;
  model_ = std::make_shared<const Surrogate>(std::move(trained.surrogate));
  kde_ = std::move(trained.kde);
  evaluator_ = std::move(trained.evaluator);
  state_ = State::kReady;
  cv_.notify_all();
}

void CachedSurrogate::Fail(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  status_ = std::move(status);
  state_ = State::kFailed;
  cv_.notify_all();
}

Status CachedSurrogate::WaitReady() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return state_ != State::kTraining; });
  return state_ == State::kReady ? Status::OK() : status_;
}

Status CachedSurrogate::Append(const RegionWorkload& fresh) {
  if (fresh.size() == 0) {
    return Status::InvalidArgument("empty incremental workload");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kReady) {
      return Status::FailedPrecondition("cache entry not ready");
    }
    // Reject shape mismatches up front: once a mismatched batch sat in
    // pending_, every later (correct) append would fail MergeWorkloads
    // and the entry could never warm-start again.
    if (fresh.features.num_features() != 2 * model_->dims()) {
      return Status::InvalidArgument(
          "incremental workload feature width mismatch");
    }
    if (!has_pending_) {
      pending_ = fresh;
      has_pending_ = true;
    } else {
      SURF_RETURN_IF_ERROR(MergeWorkloads(&pending_, fresh));
    }
    provenance_.pending_examples = pending_.size();
  }

  // Retrain loop: claim a batch whenever the threshold is crossed and no
  // other thread is already retraining. Looping (rather than a single
  // pass) covers appends that crossed the threshold again while this
  // thread's warm start was in flight — without it those evaluations
  // would sit pending until the *next* append arrived.
  for (;;) {
    std::shared_ptr<const Surrogate> base;
    RegionWorkload batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() < retrain_threshold_ || retraining_) {
        return Status::OK();
      }
      retraining_ = true;
      batch = std::move(pending_);
      pending_ = RegionWorkload{};
      has_pending_ = false;
      provenance_.pending_examples = 0;
      base = model_;
    }

    // Warm start outside the lock — Snapshot() keeps serving `base`.
    auto warmed = base->WarmStarted(batch, warm_start_trees_);

    std::lock_guard<std::mutex> lock(mu_);
    retraining_ = false;
    if (!warmed.ok()) {
      // Put the batch back so the evaluations are not lost; the next
      // append past the threshold retries.
      if (!has_pending_) {
        pending_ = std::move(batch);
        has_pending_ = true;
      } else {
        (void)MergeWorkloads(&pending_, batch);
      }
      provenance_.pending_examples = pending_.size();
      return warmed.status();
    }
    model_ = std::make_shared<const Surrogate>(std::move(warmed).value());
    provenance_.warm_starts += 1;
    provenance_.training_set_size = model_->metrics().num_train_examples;
    provenance_.train_seconds = model_->metrics().train_seconds;
    provenance_.holdout_rmse = model_->metrics().test_rmse;
  }
}

// ---------------------------------------------------------------- cache

void SurrogateCache::Touch(const SurrogateKey& key, Slot* slot) {
  lru_.erase(slot->lru_pos);
  lru_.push_front(key);
  slot->lru_pos = lru_.begin();
}

void SurrogateCache::EnforceCapacity() {
  // Walk from the LRU tail, skipping in-flight entries.
  auto it = lru_.end();
  while (map_.size() > options_.capacity && it != lru_.begin()) {
    --it;
    auto found = map_.find(*it);
    if (found == map_.end()) {
      it = lru_.erase(it);
      continue;
    }
    {
      std::lock_guard<std::mutex> entry_lock(found->second.entry->mu_);
      if (found->second.entry->state_ == CachedSurrogate::State::kTraining) {
        continue;
      }
    }
    map_.erase(found);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

StatusOr<std::shared_ptr<CachedSurrogate>> SurrogateCache::GetOrTrain(
    const SurrogateKey& key, const Factory& factory, bool* was_hit,
    CancelToken caller) {
  for (;;) {
    std::shared_ptr<CachedSurrogate> entry;
    bool train_here = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        bool stale = false;
        bool failed = false;
        {
          std::lock_guard<std::mutex> entry_lock(it->second.entry->mu_);
          failed =
              it->second.entry->state_ == CachedSurrogate::State::kFailed;
          if (!failed &&
              it->second.entry->state_ != CachedSurrogate::State::kTraining &&
              std::isfinite(options_.max_age_seconds)) {
            const double age =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              it->second.entry->created_)
                    .count();
            stale = age > options_.max_age_seconds;
          }
        }
        if (failed) {
          // A failed attempt its leader has not yet erased (the window
          // between Fail() and the leader re-acquiring mu_). Never a
          // hit: drop it here so retrying waiters retrain immediately
          // instead of spinning on the dead entry.
          lru_.erase(it->second.lru_pos);
          map_.erase(it);
        } else if (!stale) {
          Touch(key, &it->second);
          ++stats_.hits;
          if (was_hit != nullptr) *was_hit = true;
          entry = it->second.entry;
        } else {
          lru_.erase(it->second.lru_pos);
          map_.erase(it);
          ++stats_.stale_evictions;
        }
      }
      if (entry == nullptr) {
        entry = std::shared_ptr<CachedSurrogate>(new CachedSurrogate(
            options_.retrain_threshold, options_.warm_start_trees));
        lru_.push_front(key);
        map_.emplace(key, Slot{entry, lru_.begin()});
        ++stats_.misses;
        if (was_hit != nullptr) *was_hit = false;
        train_here = true;
        EnforceCapacity();
      }
    }

    if (train_here) {
      auto trained = factory();
      if (trained.ok()) {
        entry->Publish(std::move(trained).value(), key.dataset);
      } else {
        entry->Fail(trained.status());
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        // Only drop the slot if it still refers to this failed attempt.
        if (it != map_.end() && it->second.entry == entry) {
          lru_.erase(it->second.lru_pos);
          map_.erase(it);
        }
        return trained.status();
      }
    }

    const Status ready = entry->WaitReady();
    if (ready.ok()) return entry;
    // A cancelled *leader* must not strand its waiters: the failed entry
    // was already dropped from the map (by the leader), so a waiter whose
    // own token is still live loops and retrains — one retry wins the new
    // slot and becomes leader, the rest join its in-flight fit. Waiters
    // that were themselves cancelled (and leaders, whose own factory
    // produced the status) propagate Cancelled.
    if (!train_here && ready.code() == StatusCode::kCancelled &&
        !caller.cancelled()) {
      continue;
    }
    return ready;
  }  // for (;;)
}

std::shared_ptr<CachedSurrogate> SurrogateCache::Peek(
    const SurrogateKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second.entry;
}

void SurrogateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

size_t SurrogateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

SurrogateCache::Stats SurrogateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace surf
