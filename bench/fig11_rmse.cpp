// Figure 11: (left) the negative correlation between surrogate test RMSE
// and achieved IoU (paper: Pearson ≈ −0.57 on density d=3 k=1); (right)
// cross-validated RMSE vs number of training examples for region
// dimensionalities 2d ∈ {2..10} — the "how many past queries do I need"
// curve (paper: ~1,000 examples already learn the association).

#include <cstdio>

#include "bench_common.h"
#include "ml/grid_search.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/summary.h"
#include "util/table_printer.h"

using namespace surf;

namespace {

/// One (RMSE, IoU) observation: train a surrogate with a deliberately
/// varied quality knob, mine, and score.
void RmseVsIouPanel(bool full, CsvWriter* csv) {
  SyntheticSpec spec;
  spec.dims = full ? 3 : 2;  // paper uses d=3
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 90;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
  const Bounds domain = ds.data.ComputeBounds(ds.region_cols);

  std::vector<double> rmses, ious;
  TablePrinter table({"run", "queries", "trees", "test RMSE", "IoU"});
  int run = 0;
  // Vary surrogate quality through workload size and ensemble size.
  for (size_t queries : full ? std::vector<size_t>{300, 1000, 3000, 10000,
                                                   30000}
                             : std::vector<size_t>{300, 1000, 3000, 8000}) {
    for (size_t trees : {10u, 40u, 150u}) {
      WorkloadParams wparams;
      wparams.num_queries = queries;
      wparams.seed = 5 + queries + trees;
      const RegionWorkload workload =
          GenerateWorkload(evaluator, domain, wparams);
      SurrogateTrainOptions options;
      options.gbrt.n_estimators = trees;
      auto surrogate = Surrogate::Train(workload, options);
      if (!surrogate.ok()) continue;

      FinderConfig config = bench::MakeFinderConfig(ds.spec.dims, 0, 120);
      SurfFinder finder(surrogate->AsStatisticFn(), workload.space,
                        config);
      const FindResult result = finder.Find(bench::ThresholdFor(ds),
                                            ThresholdDirection::kAbove);
      std::vector<Region> regions;
      for (const auto& r : result.regions) regions.push_back(r.region);
      const double iou = bench::AverageIoU(regions, ds.gt_regions);
      const double rmse = surrogate->metrics().test_rmse;
      rmses.push_back(rmse);
      ious.push_back(iou);
      table.AddRow({std::to_string(++run), std::to_string(queries),
                    std::to_string(trees), FormatDouble(rmse, 1),
                    FormatDouble(iou, 3)});
      if (csv != nullptr) csv->AddRow({rmse, iou});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Pearson correlation(RMSE, IoU) = %.2f "
              "(paper: -0.57 — lower error, better regions)\n\n",
              PearsonCorrelation(rmses, ious));
}

/// RMSE vs training-set size per dimensionality.
void LearningCurvePanel(bool full) {
  std::printf("(right) cross-validated RMSE vs training examples\n");
  TablePrinter table({"2d", "examples", "CV RMSE"});
  const std::vector<size_t> sweep =
      full ? std::vector<size_t>{100, 300, 1000, 3000, 10000, 30000}
           : std::vector<size_t>{100, 300, 1000, 3000, 8000};
  const size_t max_dim = full ? 5 : 3;
  for (size_t d = 1; d <= max_dim; ++d) {
    SyntheticSpec spec;
    spec.dims = d;
    spec.num_gt_regions = 1;
    spec.statistic = SyntheticStatistic::kDensity;
    spec.seed = 91 + d;
    const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
    ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
    const Bounds domain = ds.data.ComputeBounds(ds.region_cols);

    for (size_t n : sweep) {
      WorkloadParams wparams;
      wparams.num_queries = n;
      wparams.seed = 17 + n;
      const RegionWorkload workload =
          GenerateWorkload(evaluator, domain, wparams);
      GbrtParams params;
      params.n_estimators = 80;
      const double rmse = CrossValidatedRmse(
          workload.features, workload.targets, params, 3, 23, nullptr);
      table.AddRow({std::to_string(2 * d), std::to_string(n),
                    FormatDouble(rmse, 1)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape (paper Fig. 11): RMSE decreases with the "
              "training-set size, flattening by ~1k examples; higher "
              "dimensionality needs more examples for the same error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  std::printf("Figure 11 — surrogate error vs mining accuracy "
              "(%s configuration)\n\n(left) RMSE vs IoU:\n",
              full ? "paper" : "quick");
  CsvWriter csv({"rmse", "iou"});
  RmseVsIouPanel(full, &csv);
  LearningCurvePanel(full);

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
