#ifndef SURF_ML_KDE_H_
#define SURF_ML_KDE_H_

#include <vector>

#include "geom/region.h"
#include "util/rng.h"

namespace surf {

/// \brief Gaussian product-kernel density estimator over R^d.
///
/// SuRF uses a KDE of the data distribution p_A(a) to steer GSO particles
/// toward populated space (paper §III-B, Eq. 8): the neighbour-selection
/// probability is re-weighted by the probability mass the KDE assigns to a
/// particle's box. Per the paper, the KDE is fitted on a subsample for
/// large datasets.
///
/// With a product Gaussian kernel the box-mass integral factorizes into a
/// product of per-dimension Gaussian CDF differences, so `RegionMass` is
/// exact and O(samples · d).
class Kde {
 public:
  /// Fits on row-major points (n × d). Bandwidths follow Scott's rule
  /// h_j = σ_j · n^{-1/(d+4)} with a small floor for degenerate columns.
  static Kde Fit(const std::vector<std::vector<double>>& points);

  /// Fits on a subsample of at most `max_samples` points, gathered
  /// straight into the flat sample buffer (no intermediate nested-vector
  /// copy of the subsample).
  static Kde FitSampled(const std::vector<std::vector<double>>& points,
                        size_t max_samples, Rng* rng);

  /// Density estimate p(a) at a point.
  double Density(const std::vector<double>& point) const;

  /// Probability mass the KDE assigns to the region's box:
  /// ∫_{x-l}^{x+l} p_A(a) da (the Eq. 8 integral).
  double RegionMass(const Region& region) const;

  size_t dims() const { return bandwidths_.size(); }
  size_t num_samples() const {
    return dims() == 0 ? 0 : points_.size() / dims();
  }
  const std::vector<double>& bandwidths() const { return bandwidths_; }

  /// One of the fitted sample points (i < num_samples()). Used by
  /// KDE-seeded swarm initialization: placing particles at (jittered)
  /// sample locations starts them inside populated space.
  std::vector<double> SamplePoint(size_t i) const;

  /// Draws a point from the KDE itself (random sample + per-dimension
  /// Gaussian bandwidth jitter) — a sample from the estimated density.
  std::vector<double> DrawPoint(Rng* rng) const;

 private:
  /// Shared fitting core over an already-flattened row-major buffer.
  static Kde FitFlat(std::vector<double> flat, size_t dims);

  std::vector<double> points_;  // flattened row-major samples
  std::vector<double> bandwidths_;
};

/// Standard normal CDF Φ(x) (exposed for tests).
double StdNormalCdf(double x);

}  // namespace surf

#endif  // SURF_ML_KDE_H_
