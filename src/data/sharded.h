#ifndef SURF_DATA_SHARDED_H_
#define SURF_DATA_SHARDED_H_

/// \file
/// \brief Row-range sharding of a Dataset with per-shard mergeable
/// column summaries.
///
/// A ShardedDataset splits one Dataset into contiguous row-range
/// DatasetShards, each materialized as its own column-major chunk with a
/// ColumnSummary (count / min / max / sum / sum²) per column. The
/// summaries form a mergeable monoid — merging every shard's summary in
/// shard order reproduces the whole-dataset aggregate — which is what
/// lets the sharded evaluators (stats/sharded_evaluator.h):
///
///  - prune shards whose column range is disjoint from a query box,
///  - answer fully-covered shards from the pre-aggregated summary in
///    O(1) for decomposable statistics,
///  - scan only the boundary shards, in parallel, merging per-shard
///    partial accumulators at the end.
///
/// Sharding can optionally range-partition on one column (`order_by`):
/// rows are stably sorted by that column before the split, so shards
/// become disjoint slabs along it and most queries prune or
/// block-answer the majority of shards. With `order_by` disabled (and
/// with a single shard in any mode after a stable sort of nothing) the
/// original row order is preserved, which keeps single-shard evaluation
/// bit-identical to the legacy contiguous scan.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace surf {

/// \brief Mergeable per-column aggregate: the shard-level "sufficient
/// statistics" (count, min, max, sum, sum of squares, NaN count).
///
/// NaN values are excluded from min/max (they would poison every
/// comparison) but counted in `nan_count`: the legacy scan's inclusion
/// test `!(v < lo || v > hi)` treats NaN as inside every box, so a
/// consumer may only prune on [min, max] when `nan_count == 0`. Sums
/// fold NaN in and propagate it, exactly like sequential accumulation.
struct ColumnSummary {
  size_t count = 0;
  size_t nan_count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  double sum_sq = 0.0;

  /// Folds one value in (sequential accumulation order).
  void Observe(double v) {
    ++count;
    if (std::isnan(v)) ++nan_count;
    if (v < min) min = v;
    if (v > max) max = v;
    sum += v;
    sum_sq += v * v;
  }

  /// Monoid operation; associative, with the default-constructed
  /// summary as identity.
  void Merge(const ColumnSummary& other) {
    count += other.count;
    nan_count += other.nan_count;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    sum += other.sum;
    sum_sq += other.sum_sq;
  }
};

/// \brief How to split a dataset into shards.
struct ShardingOptions {
  /// Hard ceiling Partition clamps `num_shards` to. Enforced here, at
  /// the allocation site, so every caller — API-validated or not (CLI
  /// flags, AppendEvaluations, direct library use) — is bounded; the
  /// v2 request validation rejects larger values loudly before they
  /// get this far.
  static constexpr size_t kMaxShards = 4096;

  /// Number of row-range shards (clamped to [1, kMaxShards]). When it
  /// exceeds the row count the trailing shards are empty — still
  /// valid, still merged.
  size_t num_shards = 1;
  /// Column to range-partition on (-1 keeps the natural row order).
  /// Sorting is stable, so ties and the single-shard case preserve the
  /// original relative order.
  int order_by = -1;
  /// Columns to materialize and summarize (empty = all). Shards keep the
  /// parent's column indexing; unlisted columns stay empty.
  std::vector<size_t> columns;
};

/// \brief One contiguous row range of the parent dataset, materialized
/// column-major with per-column summaries.
class DatasetShard {
 public:
  size_t num_rows() const { return num_rows_; }

  /// Column storage under the parent dataset's index (empty when the
  /// column was not materialized).
  const std::vector<double>& column(size_t c) const { return columns_[c]; }

  /// Per-column aggregate (zero-count for unmaterialized columns).
  const ColumnSummary& summary(size_t c) const { return summaries_[c]; }

 private:
  friend class ShardedDataset;
  size_t num_rows_ = 0;
  std::vector<std::vector<double>> columns_;
  std::vector<ColumnSummary> summaries_;
};

/// \brief A Dataset split into row-range shards; see file comment.
///
/// Owns its shard chunks outright — the parent Dataset may be discarded
/// after Partition returns.
class ShardedDataset {
 public:
  ShardedDataset() = default;

  /// Splits `data` into `options.num_shards` balanced contiguous row
  /// ranges (sizes differ by at most one row).
  static ShardedDataset Partition(const Dataset& data,
                                  const ShardingOptions& options);

  size_t num_shards() const { return shards_.size(); }
  const DatasetShard& shard(size_t i) const { return shards_[i]; }

  /// Total rows across shards (the parent's row count).
  size_t num_rows() const { return num_rows_; }
  /// Column count of the parent dataset.
  size_t num_cols() const { return column_names_.size(); }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  /// The options the split was made with.
  const ShardingOptions& options() const { return options_; }

  /// Whole-dataset aggregate of one column, recovered by merging the
  /// shard summaries in shard order (the monoid law the tests pin).
  ColumnSummary TotalSummary(size_t c) const;

 private:
  ShardingOptions options_;
  std::vector<std::string> column_names_;
  std::vector<DatasetShard> shards_;
  size_t num_rows_ = 0;
};

}  // namespace surf

#endif  // SURF_DATA_SHARDED_H_
