#include "accel/accel.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace surf {
namespace {

bool HostHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool HostHasAvx512() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  // Everything the avx512 TU is compiled with must be present.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

/// The published table. Selection writes it under `SelectionMutex()`;
/// Accel() reads it with one relaxed atomic load (the table objects are
/// immutable globals, so any published pointer is safe to use).
std::atomic<const AccelOps*> g_active{nullptr};

std::mutex& SelectionMutex() {
  static std::mutex m;
  return m;
}

/// Last selection result, guarded by SelectionMutex().
AccelSelection& SelectionState() {
  static AccelSelection state;
  return state;
}

/// Computes a selection from SURF_ACCEL + host support. Pure (no
/// publishing).
AccelSelection ComputeSelection() {
  AccelSelection sel;
  sel.active = BestSupportedAccelBackend();
  const char* env = std::getenv("SURF_ACCEL");
  if (env != nullptr && env[0] != '\0') {
    sel.override_requested = true;
    sel.requested = env;
    AccelBackend requested;
    if (ParseAccelBackend(sel.requested, &requested) &&
        AccelSupported(requested)) {
      sel.active = requested;
    } else {
      // Do not silently honor-by-fallback: record the miss so benches
      // and tests can fail loudly instead of measuring the wrong
      // backend.
      sel.override_honored = false;
    }
  }
  return sel;
}

/// Publishes `sel` (mutex already held by caller).
void PublishLocked(const AccelSelection& sel) {
  SelectionState() = sel;
  g_active.store(&AccelOpsFor(sel.active), std::memory_order_release);
}

void EnsureSelected() {
  if (g_active.load(std::memory_order_acquire) != nullptr) return;
  std::lock_guard<std::mutex> lock(SelectionMutex());
  if (g_active.load(std::memory_order_relaxed) != nullptr) return;
  PublishLocked(ComputeSelection());
}

}  // namespace

const char* AccelBackendName(AccelBackend backend) {
  switch (backend) {
    case AccelBackend::kGeneric:
      return "generic";
    case AccelBackend::kAvx2:
      return "avx2";
    case AccelBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseAccelBackend(const std::string& name, AccelBackend* out) {
  if (name == "generic") {
    *out = AccelBackend::kGeneric;
    return true;
  }
  if (name == "avx2") {
    *out = AccelBackend::kAvx2;
    return true;
  }
  if (name == "avx512") {
    *out = AccelBackend::kAvx512;
    return true;
  }
  return false;
}

bool AccelCompiled(AccelBackend backend) {
  switch (backend) {
    case AccelBackend::kGeneric:
      return true;
    case AccelBackend::kAvx2:
      return kAccelAvx2Compiled;
    case AccelBackend::kAvx512:
      return kAccelAvx512Compiled;
  }
  return false;
}

bool AccelSupported(AccelBackend backend) {
  if (!AccelCompiled(backend)) return false;
  switch (backend) {
    case AccelBackend::kGeneric:
      return true;
    case AccelBackend::kAvx2:
      return HostHasAvx2();
    case AccelBackend::kAvx512:
      return HostHasAvx512();
  }
  return false;
}

AccelBackend BestSupportedAccelBackend() {
  if (AccelSupported(AccelBackend::kAvx512)) return AccelBackend::kAvx512;
  if (AccelSupported(AccelBackend::kAvx2)) return AccelBackend::kAvx2;
  return AccelBackend::kGeneric;
}

const AccelOps& AccelOpsFor(AccelBackend backend) {
  switch (backend) {
    case AccelBackend::kGeneric:
      return kAccelGenericOps;
    case AccelBackend::kAvx2:
      return kAccelAvx2Compiled ? kAccelAvx2Ops : kAccelGenericOps;
    case AccelBackend::kAvx512:
      return kAccelAvx512Compiled ? kAccelAvx512Ops : kAccelGenericOps;
  }
  return kAccelGenericOps;
}

const AccelOps& Accel() {
  EnsureSelected();
  return *g_active.load(std::memory_order_acquire);
}

AccelBackend ActiveAccelBackend() {
  return static_cast<AccelBackend>(Accel().backend);
}

AccelSelection CurrentAccelSelection() {
  EnsureSelected();
  std::lock_guard<std::mutex> lock(SelectionMutex());
  return SelectionState();
}

AccelSelection ReselectAccelFromEnv() {
  std::lock_guard<std::mutex> lock(SelectionMutex());
  const AccelSelection sel = ComputeSelection();
  PublishLocked(sel);
  return sel;
}

bool SetActiveAccelBackend(AccelBackend backend) {
  if (!AccelSupported(backend)) return false;
  std::lock_guard<std::mutex> lock(SelectionMutex());
  AccelSelection sel;
  sel.active = backend;
  PublishLocked(sel);
  return true;
}

}  // namespace surf
