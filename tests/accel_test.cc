// Differential bit-identity harness for the runtime-dispatched SIMD
// kernel layer (src/accel). Every backend the host supports is compared
// kernel-by-kernel against the generic reference — bitwise, over
// randomized shapes, seeds, NaN/inf/denormal payloads, unaligned and
// offset rows, and an explicit tail-case regression corpus (0, 1,
// lane−1, lane, lane+1 rows; non-multiple-of-8 widths). Selection
// itself is tested too: SURF_ACCEL must pick each compiled backend, and
// a full mining envelope must be bit-identical under SURF_ACCEL=generic
// vs the best native backend.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "accel/accel.h"
#include "core/surf.h"
#include "data/dataset.h"
#include "ml/gbrt.h"
#include "ml/matrix.h"
#include "util/rng.h"

namespace surf {
namespace {

constexpr double kQNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<AccelBackend> AllBackends() {
  std::vector<AccelBackend> all;
  for (int b = 0; b < kNumAccelBackends; ++b) {
    all.push_back(static_cast<AccelBackend>(b));
  }
  return all;
}

std::vector<AccelBackend> SupportedBackends() {
  std::vector<AccelBackend> supported;
  for (AccelBackend b : AllBackends()) {
    if (AccelSupported(b)) supported.push_back(b);
  }
  return supported;
}

/// Restores the active backend (and the SURF_ACCEL variable) on scope
/// exit, so selection-mutating tests cannot leak into later ones.
class ScopedAccelState {
 public:
  ScopedAccelState() : active_(ActiveAccelBackend()) {
    const char* env = std::getenv("SURF_ACCEL");
    had_env_ = env != nullptr;
    if (had_env_) env_ = env;
  }
  ~ScopedAccelState() {
    if (had_env_) {
      setenv("SURF_ACCEL", env_.c_str(), 1);
    } else {
      unsetenv("SURF_ACCEL");
    }
    SetActiveAccelBackend(active_);
  }

 private:
  AccelBackend active_;
  bool had_env_ = false;
  std::string env_;
};

/// Bitwise equality including NaN payloads.
bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Uniform double with occasional adversarial payloads: quiet NaN,
/// ±inf, ±0.0, and a denormal.
double EdgyValue(Rng* rng) {
  const double roll = rng->Uniform();
  if (roll < 0.02) return kQNaN;
  if (roll < 0.03) return kInf;
  if (roll < 0.04) return -kInf;
  if (roll < 0.05) return -0.0;
  if (roll < 0.06) return 5e-324;  // smallest denormal
  return rng->Uniform(-10.0, 10.0);
}

// The tail-case regression corpus: the interesting counts around every
// kernel's vector width (widest lane count is 16 for the AVX-512 mask
// kernel, 64 for its count loop).
const size_t kRowCorpus[] = {0,  1,  7,  8,  9,  15, 16, 17,
                             31, 32, 33, 63, 64, 65, 100};
// Histogram rows: small shapes plus counts around 8K — the scale GBRT
// training actually feeds the kernel — with off-by-one and odd-remainder
// neighbors so any future vectorized variant trips its tail handling.
const size_t kHistRowCorpus[] = {0,    1,    7,    8,    9,    100,
                                 8191, 8192, 8193, 8199, 8201, 12288};

// ------------------------------------------------------------- histogram

struct HistResult {
  std::vector<double> g;
  std::vector<uint32_t> cnt;
};

HistResult RunHist(const AccelOps& ops, const std::vector<uint8_t>& bins,
                   const uint32_t* row_ids, const std::vector<double>& grad,
                   uint32_t num_bins) {
  HistResult out;
  out.g.assign(num_bins, 0.0);
  out.cnt.assign(num_bins, 0u);
  ops.hist_u8_unit(bins.data(), row_ids, grad.data(), grad.size(), num_bins,
                   out.g.data(), out.cnt.data());
  return out;
}

TEST(AccelHistTest, BitIdenticalAcrossBackendsOverShapesAndSeeds) {
  // Every backend aliases one compiled histogram routine, so equality is
  // strictly bitwise even for NaN gradient payloads — a guarantee a
  // vectorized variant could NOT give: with two differently-patterned
  // NaNs in one bin (injected quiet NaN plus the ∞ − ∞ indefinite), x86
  // `add` propagates its FIRST source operand and the compiler may emit
  // either operand order for `a += b`, so two-NaN sums are not pinned at
  // the C level. This test is the tripwire for anyone re-vectorizing.
  // Non-multiple-of-8 bin widths on purpose; 256 is the packed8 maximum.
  const uint32_t kBinWidths[] = {2, 3, 13, 64, 97, 256};
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    for (size_t n : kHistRowCorpus) {
      for (uint32_t nb : kBinWidths) {
        std::vector<uint8_t> bins(n);
        std::vector<double> grad(n);
        std::vector<uint32_t> perm(n);
        for (size_t i = 0; i < n; ++i) {
          bins[i] = static_cast<uint8_t>(
              static_cast<uint32_t>(rng.Uniform() * nb) % nb);
          grad[i] = EdgyValue(&rng);
          perm[i] = static_cast<uint32_t>(i);
        }
        rng.Shuffle(&perm);
        const HistResult ref_seq =
            RunHist(kAccelGenericOps, bins, nullptr, grad, nb);
        const HistResult ref_idx =
            RunHist(kAccelGenericOps, bins, perm.data(), grad, nb);
        for (AccelBackend b : SupportedBackends()) {
          const AccelOps& ops = AccelOpsFor(b);
          const HistResult got_seq = RunHist(ops, bins, nullptr, grad, nb);
          EXPECT_TRUE(SameBits(ref_seq.g, got_seq.g))
              << ops.name << " sequential g, n=" << n << " bins=" << nb;
          EXPECT_EQ(ref_seq.cnt, got_seq.cnt)
              << ops.name << " sequential cnt, n=" << n << " bins=" << nb;
          const HistResult got_idx =
              RunHist(ops, bins, perm.data(), grad, nb);
          EXPECT_TRUE(SameBits(ref_idx.g, got_idx.g))
              << ops.name << " indexed g, n=" << n << " bins=" << nb;
          EXPECT_EQ(ref_idx.cnt, got_idx.cnt)
              << ops.name << " indexed cnt, n=" << n << " bins=" << nb;
        }
      }
    }
  }
}

TEST(AccelHistTest, FiniteGradientsAreStrictlyBitIdentical) {
  // Finite gradients — the only thing GBRT training ever feeds this
  // kernel — at training-scale row counts. Denormals, signed zeros and
  // mixed magnitudes stay in the corpus.
  const uint32_t kBinWidths[] = {3, 13, 64, 256};
  const size_t kRows[] = {100, 8192, 8201};
  Rng rng(11);
  for (size_t n : kRows) {
    for (uint32_t nb : kBinWidths) {
      std::vector<uint8_t> bins(n);
      std::vector<double> grad(n);
      std::vector<uint32_t> perm(n);
      for (size_t i = 0; i < n; ++i) {
        bins[i] = static_cast<uint8_t>(
            static_cast<uint32_t>(rng.Uniform() * nb) % nb);
        const double roll = rng.Uniform();
        grad[i] = roll < 0.02   ? -0.0
                  : roll < 0.04 ? 5e-324
                  : roll < 0.06 ? 1e300
                                : rng.Uniform(-10.0, 10.0);
        perm[i] = static_cast<uint32_t>(i);
      }
      rng.Shuffle(&perm);
      const HistResult ref_seq =
          RunHist(kAccelGenericOps, bins, nullptr, grad, nb);
      const HistResult ref_idx =
          RunHist(kAccelGenericOps, bins, perm.data(), grad, nb);
      for (AccelBackend b : SupportedBackends()) {
        const AccelOps& ops = AccelOpsFor(b);
        const HistResult got_seq = RunHist(ops, bins, nullptr, grad, nb);
        EXPECT_TRUE(SameBits(ref_seq.g, got_seq.g))
            << ops.name << " sequential g, n=" << n << " bins=" << nb;
        EXPECT_EQ(ref_seq.cnt, got_seq.cnt);
        const HistResult got_idx = RunHist(ops, bins, perm.data(), grad, nb);
        EXPECT_TRUE(SameBits(ref_idx.g, got_idx.g))
            << ops.name << " indexed g, n=" << n << " bins=" << nb;
        EXPECT_EQ(ref_idx.cnt, got_idx.cnt);
      }
    }
  }
}

TEST(AccelHistTest, CountsMatchDirectTally) {
  // Sanity beyond differential: the counts are an exact integer
  // histogram of the bin bytes on every backend.
  Rng rng(7);
  const uint32_t nb = 17;
  const size_t n = 8197;
  std::vector<uint8_t> bins(n);
  std::vector<double> grad(n, 1.0);
  std::vector<uint32_t> expect(nb, 0u);
  for (size_t i = 0; i < n; ++i) {
    bins[i] = static_cast<uint8_t>(rng.Uniform() * nb) % nb;
    ++expect[bins[i]];
  }
  for (AccelBackend b : SupportedBackends()) {
    const HistResult got =
        RunHist(AccelOpsFor(b), bins, nullptr, grad, nb);
    EXPECT_EQ(expect, got.cnt) << AccelOpsFor(b).name;
  }
}

// --------------------------------------------------------- tree traversal

/// A random packed tree in the kernel layout: left child at idx+1,
/// leaves self-looping with a NaN threshold and feature 0.
struct PackedTree {
  std::vector<AccelTreeNode> nodes;
  std::vector<double> values;
  size_t depth = 0;
};

int32_t GrowNode(size_t levels_left, size_t num_features, Rng* rng,
                 PackedTree* tree, size_t depth) {
  const int32_t idx = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.push_back({});
  tree->values.push_back(0.0);
  tree->depth = std::max(tree->depth, depth);
  // Occasional early leaves give the walk ragged depths, exercising the
  // self-loop levels where some lanes are parked and others still move.
  if (levels_left == 0 || rng->Uniform() < 0.15) {
    tree->nodes[static_cast<size_t>(idx)] = {kQNaN, idx, 0};
    tree->values[static_cast<size_t>(idx)] = rng->Uniform(-5.0, 5.0);
    return idx;
  }
  const uint32_t feature =
      static_cast<uint32_t>(rng->Uniform() * static_cast<double>(num_features)) %
      static_cast<uint32_t>(num_features);
  const double tv = rng->Uniform();
  GrowNode(levels_left - 1, num_features, rng, tree, depth + 1);
  const int32_t right =
      GrowNode(levels_left - 1, num_features, rng, tree, depth + 1);
  tree->nodes[static_cast<size_t>(idx)] = {tv, right, feature};
  return idx;
}

TEST(AccelTreePredictTest, BitIdenticalAcrossBackendsShapesAndOffsets) {
  const size_t kNumFeatures = 3;
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    for (size_t max_levels : {0u, 1u, 3u, 6u}) {
      PackedTree tree;
      GrowNode(max_levels, kNumFeatures, &rng, &tree, 1);
      const size_t levels = tree.depth > 1 ? tree.depth - 1 : 0;

      const size_t kMaxRows = 128;
      std::vector<std::vector<double>> columns(kNumFeatures);
      std::vector<const double*> cols(kNumFeatures);
      for (size_t j = 0; j < kNumFeatures; ++j) {
        columns[j].resize(kMaxRows);
        for (size_t r = 0; r < kMaxRows; ++r) {
          columns[j][r] = EdgyValue(&rng);
        }
        cols[j] = columns[j].data();
      }

      // Offset begins (1 and 3) make the vector body start unaligned
      // relative to both the rows and the output.
      for (size_t begin : {size_t{0}, size_t{1}, size_t{3}}) {
        for (size_t n : kRowCorpus) {
          const size_t end = begin + n;
          if (end > kMaxRows) continue;
          std::vector<double> base(n);
          for (size_t i = 0; i < n; ++i) base[i] = rng.Uniform(-2.0, 2.0);
          const double scale = rng.Uniform(0.01, 0.7);

          std::vector<double> ref = base;
          kAccelGenericOps.tree_predict(tree.nodes.data(),
                                        tree.values.data(), levels,
                                        cols.data(), begin, end, scale,
                                        ref.data());
          for (AccelBackend b : SupportedBackends()) {
            const AccelOps& ops = AccelOpsFor(b);
            std::vector<double> got = base;
            ops.tree_predict(tree.nodes.data(), tree.values.data(), levels,
                             cols.data(), begin, end, scale, got.data());
            EXPECT_TRUE(SameBits(ref, got))
                << ops.name << " seed=" << seed << " levels=" << levels
                << " begin=" << begin << " n=" << n;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------- mask scan

TEST(AccelMaskTest, BitIdenticalAcrossBackendsBoundsAndTails) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    for (size_t n : kRowCorpus) {
      std::vector<double> col(n);
      std::vector<uint8_t> base_mask(n);
      for (size_t i = 0; i < n; ++i) {
        col[i] = EdgyValue(&rng);
        base_mask[i] = rng.Uniform() < 0.5 ? 1 : 0;
      }
      // Bounds corpus: a normal box, an empty box (lo > hi), the
      // everything box, and NaN bounds (the legacy test keeps every row
      // then — unordered compares must stay unordered in the kernels).
      const double bounds[][2] = {{-1.0, 5.0}, {2.0, -2.0},
                                  {-kInf, kInf}, {kQNaN, 1.0},
                                  {0.0, kQNaN}};
      for (const auto& lh : bounds) {
        std::vector<uint8_t> ref = base_mask;
        kAccelGenericOps.mask_range_and(col.data(), n, lh[0], lh[1],
                                        ref.data());
        const uint64_t ref_count =
            kAccelGenericOps.mask_count(ref.data(), n);
        // The reference really is the legacy scalar test.
        for (size_t r = 0; r < n; ++r) {
          const uint8_t expect =
              base_mask[r] & static_cast<uint8_t>(!(col[r] < lh[0])) &
              static_cast<uint8_t>(!(col[r] > lh[1]));
          ASSERT_EQ(ref[r], expect) << "generic vs legacy, row " << r;
        }
        for (AccelBackend b : SupportedBackends()) {
          const AccelOps& ops = AccelOpsFor(b);
          std::vector<uint8_t> got = base_mask;
          ops.mask_range_and(col.data(), n, lh[0], lh[1], got.data());
          EXPECT_EQ(ref, got) << ops.name << " n=" << n << " lo=" << lh[0]
                              << " hi=" << lh[1];
          EXPECT_EQ(ref_count, ops.mask_count(got.data(), n))
              << ops.name << " n=" << n;
        }
      }
    }
  }
}

TEST(AccelMaskTest, UnalignedRowsStayBitIdentical) {
  // Run the kernels at every offset into an oversized buffer: the
  // vector loads must handle arbitrary (mis)alignment.
  Rng rng(31);
  const size_t kTotal = 97;
  std::vector<double> col(kTotal);
  std::vector<uint8_t> mask_pool(kTotal, 1);
  for (size_t i = 0; i < kTotal; ++i) col[i] = EdgyValue(&rng);
  for (size_t off = 0; off < 9; ++off) {
    const size_t n = kTotal - off;
    std::vector<uint8_t> ref(mask_pool.begin() + off, mask_pool.end());
    kAccelGenericOps.mask_range_and(col.data() + off, n, -3.0, 3.0,
                                    ref.data());
    for (AccelBackend b : SupportedBackends()) {
      const AccelOps& ops = AccelOpsFor(b);
      std::vector<uint8_t> got(mask_pool.begin() + off, mask_pool.end());
      ops.mask_range_and(col.data() + off, n, -3.0, 3.0, got.data());
      EXPECT_EQ(ref, got) << ops.name << " offset=" << off;
      EXPECT_EQ(kAccelGenericOps.mask_count(ref.data(), n),
                ops.mask_count(got.data(), n))
          << ops.name << " offset=" << off;
    }
  }
}

// -------------------------------------------------------------- selection

TEST(AccelSelectTest, TablesAreSelfConsistent) {
  for (AccelBackend b : AllBackends()) {
    const AccelOps& ops = AccelOpsFor(b);
    EXPECT_NE(ops.hist_u8_unit, nullptr);
    EXPECT_NE(ops.tree_predict, nullptr);
    EXPECT_NE(ops.mask_range_and, nullptr);
    EXPECT_NE(ops.mask_count, nullptr);
    if (AccelCompiled(b)) {
      EXPECT_EQ(ops.backend, static_cast<int>(b));
      EXPECT_STREQ(ops.name, AccelBackendName(b));
    }
    AccelBackend parsed;
    ASSERT_TRUE(ParseAccelBackend(AccelBackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
  EXPECT_TRUE(AccelCompiled(AccelBackend::kGeneric));
  EXPECT_TRUE(AccelSupported(AccelBackend::kGeneric));
  AccelBackend ignored;
  EXPECT_FALSE(ParseAccelBackend("avx9000", &ignored));
  EXPECT_FALSE(ParseAccelBackend("", &ignored));
}

TEST(AccelSelectTest, EnvOverrideSelectsEveryCompiledBackend) {
  ScopedAccelState restore;
  for (AccelBackend b : AllBackends()) {
    setenv("SURF_ACCEL", AccelBackendName(b), 1);
    const AccelSelection sel = ReselectAccelFromEnv();
    EXPECT_TRUE(sel.override_requested);
    EXPECT_EQ(sel.requested, AccelBackendName(b));
    if (AccelSupported(b)) {
      // The override must select exactly the named backend...
      EXPECT_TRUE(sel.override_honored) << AccelBackendName(b);
      EXPECT_EQ(sel.active, b);
      EXPECT_STREQ(Accel().name, AccelBackendName(b));
      EXPECT_EQ(ActiveAccelBackend(), b);
    } else {
      // ...and an unsupported name must be flagged, not silently
      // downgraded into a lie about what was measured.
      EXPECT_FALSE(sel.override_honored) << AccelBackendName(b);
      EXPECT_EQ(sel.active, BestSupportedAccelBackend());
    }
    EXPECT_EQ(CurrentAccelSelection().active, sel.active);
    EXPECT_EQ(CurrentAccelSelection().override_honored,
              sel.override_honored);
  }

  setenv("SURF_ACCEL", "not-a-backend", 1);
  const AccelSelection bogus = ReselectAccelFromEnv();
  EXPECT_TRUE(bogus.override_requested);
  EXPECT_FALSE(bogus.override_honored);
  EXPECT_EQ(bogus.active, BestSupportedAccelBackend());

  unsetenv("SURF_ACCEL");
  const AccelSelection natural = ReselectAccelFromEnv();
  EXPECT_FALSE(natural.override_requested);
  EXPECT_TRUE(natural.override_honored);
  EXPECT_EQ(natural.active, BestSupportedAccelBackend());
}

TEST(AccelSelectTest, SetActiveRejectsUnsupportedAndRestores) {
  ScopedAccelState restore;
  const AccelBackend before = ActiveAccelBackend();
  for (AccelBackend b : AllBackends()) {
    if (AccelSupported(b)) {
      EXPECT_TRUE(SetActiveAccelBackend(b));
      EXPECT_EQ(ActiveAccelBackend(), b);
      SetActiveAccelBackend(before);
    } else {
      EXPECT_FALSE(SetActiveAccelBackend(b));
      EXPECT_EQ(ActiveAccelBackend(), before);
    }
  }
}

// ------------------------------------------------- end-to-end bit-identity

Dataset ClusteredData(size_t n, uint64_t seed) {
  Dataset ds({"x", "y"});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Uniform() < 0.35) {
      ds.AddRow({rng.Gaussian(0.3, 0.05), rng.Gaussian(0.7, 0.05)});
    } else {
      ds.AddRow({rng.Uniform(), rng.Uniform()});
    }
  }
  return ds;
}

FindResult MineUnder(AccelBackend backend, const Dataset& ds) {
  EXPECT_TRUE(SetActiveAccelBackend(backend));
  SurfOptions options;
  options.workload.num_queries = 600;
  options.surrogate.gbrt.n_estimators = 25;
  options.finder.gso.num_glowworms = 40;
  options.finder.gso.max_iterations = 25;
  options.shards = 2;  // route true-f evaluations through the mask kernels
  auto surf = Surf::Build(&ds, Statistic::Count({0, 1}), options);
  EXPECT_TRUE(surf.ok());
  return surf->FindRegions(30.0, ThresholdDirection::kAbove);
}

TEST(AccelEndToEndTest, MiningEnvelopeBitIdenticalGenericVsBestBackend) {
  const AccelBackend best = BestSupportedAccelBackend();
  if (best == AccelBackend::kGeneric) {
    GTEST_SKIP() << "host supports only the generic backend";
  }
  ScopedAccelState restore;
  const Dataset ds = ClusteredData(3000, 99);

  // Full pipeline — workload labelling through the sharded evaluator,
  // GBRT training (histogram kernel), batched surrogate prediction
  // (tree kernel), GSO mining, validation — once per backend.
  const FindResult generic = MineUnder(AccelBackend::kGeneric, ds);
  const FindResult native = MineUnder(best, ds);

  ASSERT_EQ(generic.regions.size(), native.regions.size());
  ASSERT_FALSE(generic.regions.empty());
  for (size_t i = 0; i < generic.regions.size(); ++i) {
    const FoundRegion& a = generic.regions[i];
    const FoundRegion& b = native.regions[i];
    EXPECT_EQ(a.fitness, b.fitness) << "region " << i;
    EXPECT_EQ(a.estimate, b.estimate) << "region " << i;
    ASSERT_EQ(a.region.dims(), b.region.dims());
    for (size_t j = 0; j < a.region.dims(); ++j) {
      EXPECT_EQ(a.region.center(j), b.region.center(j))
          << "region " << i << " dim " << j;
      EXPECT_EQ(a.region.half_length(j), b.region.half_length(j))
          << "region " << i << " dim " << j;
    }
  }
  EXPECT_EQ(generic.report.true_compliance, native.report.true_compliance);
}

TEST(AccelEndToEndTest, GbrtTrainingAndPredictionBitIdenticalPerBackend) {
  // GBRT alone, at a row count large enough that training spends real
  // time in the histogram and tree-predict kernels.
  ScopedAccelState restore;
  Rng rng(55);
  const size_t n = 9692;
  FeatureMatrix x(4);
  std::vector<double> y;
  std::vector<double> row(4);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) row[j] = rng.Uniform();
    x.AddRow(row);
    y.push_back(std::sin(6.0 * row[0]) + row[1] * row[2] - 0.5 * row[3]);
  }

  std::vector<std::vector<double>> outputs;
  for (AccelBackend b : SupportedBackends()) {
    ASSERT_TRUE(SetActiveAccelBackend(b));
    GbrtParams params;
    params.n_estimators = 15;
    params.max_depth = 6;
    GradientBoostedTrees model(params);
    ASSERT_TRUE(model.Fit(x, y).ok());
    outputs.push_back(model.PredictBatch(x));
  }
  for (size_t t = 1; t < outputs.size(); ++t) {
    EXPECT_TRUE(SameBits(outputs[0], outputs[t]))
        << AccelBackendName(SupportedBackends()[t]) << " vs generic";
  }
}

}  // namespace
}  // namespace surf
