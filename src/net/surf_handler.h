#ifndef SURF_NET_SURF_HANDLER_H_
#define SURF_NET_SURF_HANDLER_H_

/// \file
/// \brief The HTTP router exposing MiningService as a JSON API (`surfd`).
///
/// Endpoints (see docs/api.md for payload examples):
///   GET  /v1/version      API/library version + build info (negotiation)
///   POST /v1/jobs         submit an async mining job (202 + job id)
///   GET  /v1/jobs/{id}    poll a job: progress, or the final response
///   DELETE /v1/jobs/{id}  cancel a job (cooperative; no-op when done)
///   POST /v1/datasets     register a dataset (CSV path or inline rows)
///   POST /v1/mine         serve one MineRequest, blocking (v1 or v2 body)
///   POST /v1/mine:batch   serve many MineRequests over the worker pool
///   POST /v1/evaluations  append observed evaluations (warm-start feed)
///   GET  /v1/cache/stats  surrogate-cache counters
///   GET  /v1/trace/{id}   a retained request trace (Chrome trace-event
///                         JSON — load in Perfetto or chrome://tracing)
///   GET  /healthz         liveness probe
///   GET  /metrics         Prometheus text exposition
///
/// With Options::enable_failpoint_admin (debug/chaos deployments only —
/// the routes do not exist otherwise and answer 404):
///   GET    /v1/failpoints        armed failpoints + seed + known sites
///   POST   /v1/failpoints        arm from {"spec": "site=action,..."}
///                                and/or reseed via {"seed": n}
///   DELETE /v1/failpoints        disarm everything
///   DELETE /v1/failpoints/{site} disarm one site
///
/// Mining bodies may use either request schema: documents with
/// `api_version: 2` use the named-section v2 form, documents without one
/// the v1 flat form (deprecated but supported). Library `Status` codes
/// map onto HTTP statuses via HttpStatusFromStatus (NotFound→404,
/// InvalidArgument→400, AlreadyExists→409, Cancelled→408, ...);
/// transport overload is answered 429 by the HttpServer admission
/// control before a handler ever runs. The blocking /v1/mine threads the
/// transport's per-request deadline into the job's cancel token, so a
/// 408 reclaims the worker's CPU within one GSO iteration and carries
/// the partial results mined so far.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/http_server.h"
#include "net/json_codec.h"
#include "net/metrics.h"
#include "serve/mining_service.h"
#include "stats/sharded_evaluator.h"

namespace surf {

/// \brief Routes HTTP requests to MiningService calls. Thread-safe: the
/// service, the metrics registry, and the job table are all concurrent;
/// the handler holds no other mutable state.
class SurfHandler {
 public:
  /// \brief Handler configuration.
  struct Options {
    /// Registers the /v1/failpoints admin routes. Off by default: a
    /// production handler has no fault-injection surface at all (the
    /// paths 404 like any unknown route). Enable only for chaos/debug
    /// deployments (`surf_cli serve --enable-failpoints`).
    bool enable_failpoint_admin = false;
    /// Job-table retention (count cap + age cap for finished jobs).
    JobTable::Options job_retention;
    /// Single-flight coalescing for /v1/mine: concurrent requests with
    /// byte-identical bodies share one handler execution (the engine is
    /// deterministic, so the shared response is the response each would
    /// have computed). Requests asking for per-request side effects
    /// (trace capture, evaluation recording) never coalesce.
    bool coalesce_identical_mines = true;
  };

  /// Binds the handler to a service and a metrics registry (both
  /// non-owning; they must outlive the handler).
  SurfHandler(MiningService* service, ServerMetrics* metrics,
              Options options);
  /// Default-configured handler (no failpoint admin surface).
  SurfHandler(MiningService* service, ServerMetrics* metrics)
      : SurfHandler(service, metrics, Options()) {}

  /// Dispatches one request: route match → JSON decode → service call →
  /// JSON encode, recording per-route metrics on every path.
  HttpResponse Handle(const HttpRequest& request);

  /// Adapter for HttpServer's handler slot.
  HttpHandler AsHttpHandler() {
    return [this](const HttpRequest& request) { return Handle(request); };
  }

  /// The job table (exposed for tests).
  JobTable& jobs() { return jobs_; }

  /// Wires live transport counters into /metrics (worker exceptions,
  /// write failures). Optional; unset, those series are omitted.
  void set_transport_stats_provider(
      std::function<HttpServer::Stats()> provider) {
    transport_stats_ = std::move(provider);
  }

 private:
  /// One route-table entry. `prefix` routes match any target beginning
  /// with `path`; the remainder is the path parameter (the job id).
  struct Route {
    std::string method;
    std::string path;
    bool prefix = false;
    HttpResponse (SurfHandler::*fn)(const HttpRequest&,
                                    const std::string& param);
  };

  HttpResponse HandleHealthz(const HttpRequest& request,
                             const std::string& param);
  HttpResponse HandleMetrics(const HttpRequest& request,
                             const std::string& param);
  HttpResponse HandleVersion(const HttpRequest& request,
                             const std::string& param);
  HttpResponse HandleCacheStats(const HttpRequest& request,
                                const std::string& param);
  HttpResponse HandleGetTrace(const HttpRequest& request,
                              const std::string& param);
  HttpResponse HandleRegisterDataset(const HttpRequest& request,
                                     const std::string& param);
  HttpResponse HandleMine(const HttpRequest& request,
                          const std::string& param);
  /// The /v1/mine computation itself (post-coalescing-decision).
  HttpResponse ExecuteMine(const HttpRequest& request,
                           v2::MineRequest decoded);
  HttpResponse HandleMineBatch(const HttpRequest& request,
                               const std::string& param);
  HttpResponse HandleEvaluations(const HttpRequest& request,
                                 const std::string& param);
  HttpResponse HandleShardEvaluate(const HttpRequest& request,
                                   const std::string& param);
  HttpResponse HandleSubmitJob(const HttpRequest& request,
                               const std::string& param);
  HttpResponse HandleGetJob(const HttpRequest& request,
                            const std::string& param);
  HttpResponse HandleCancelJob(const HttpRequest& request,
                               const std::string& param);
  HttpResponse HandleListFailpoints(const HttpRequest& request,
                                    const std::string& param);
  HttpResponse HandleArmFailpoints(const HttpRequest& request,
                                   const std::string& param);
  HttpResponse HandleClearFailpoints(const HttpRequest& request,
                                     const std::string& param);
  HttpResponse HandleClearOneFailpoint(const HttpRequest& request,
                                       const std::string& param);

  /// Column-name → index resolver backed by the service's registry.
  ColumnResolver MakeResolver() const;

  MiningService* service_;
  ServerMetrics* metrics_;
  Options options_;
  JobTable jobs_;
  std::vector<Route> routes_;
  std::function<HttpServer::Stats()> transport_stats_;

  /// Worker-side cache of partitioned shard evaluators, keyed by
  /// (dataset | statistic fingerprint | partition spec) so repeated
  /// scatter batches from the same coordinator reuse one partition.
  /// Evaluators run single-threaded (num_threads = 1): determinism with
  /// no nested pools — scale-out comes from multiple worker processes.
  mutable std::mutex shard_evaluators_mu_;
  std::map<std::string, std::shared_ptr<const ShardedScanEvaluator>>
      shard_evaluators_;

  /// \brief One in-flight /v1/mine computation shared by every request
  /// carrying a byte-identical body (single-flight coalescing).
  struct MineFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    HttpResponse response;
  };
  /// Request body bytes → the flight computing that body's answer.
  std::mutex mine_flights_mu_;
  std::map<std::string, std::shared_ptr<MineFlight>> mine_flights_;
  /// Requests answered from a shared flight (served via /metrics).
  std::atomic<uint64_t> mine_coalesced_{0};
};

}  // namespace surf

#endif  // SURF_NET_SURF_HANDLER_H_
