#ifndef SURF_UTIL_TABLE_PRINTER_H_
#define SURF_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace surf {

/// \brief Renders aligned ASCII tables, used by every bench binary to print
/// paper-style rows (Table I, the Fig. 3 series, ...).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells; width must match the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Renders the table with column alignment and box-drawing rules.
  std::string ToString() const;

  /// Convenience: renders straight to a stream.
  void Print(std::ostream& os) const;

 private:
  static constexpr const char* kSeparatorTag = "\x01--";
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace surf

#endif  // SURF_UTIL_TABLE_PRINTER_H_
