#include "serve/mine_job.h"

#include "serve/mining_service.h"

namespace surf {

// ----------------------------------------------------------------- MineJob

MineJob::MineJob(MineRequest request, double deadline_seconds)
    : request_(std::make_unique<MineRequest>(std::move(request))) {
  if (deadline_seconds > 0.0) cancel_.SetDeadline(deadline_seconds);
}

MineJob::~MineJob() = default;

void MineJob::Cancel() { cancel_.Cancel(); }

const MineResponse& MineJob::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return response_ != nullptr; });
  return *response_;
}

bool MineJob::TryGet(MineResponse* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (response_ == nullptr) return false;
  if (out != nullptr) *out = *response_;
  return true;
}

bool MineJob::done() const {
  return phase_.load(std::memory_order_acquire) == Phase::kDone;
}

MineJob::Progress MineJob::progress() const {
  Progress p;
  p.phase = phase_.load(std::memory_order_acquire);
  p.cancel_requested = cancel_.cancelled();
  p.iterations = search_progress_.iterations.load(std::memory_order_relaxed);
  p.max_iterations =
      search_progress_.max_iterations.load(std::memory_order_relaxed);
  p.valid_particles =
      search_progress_.valid_particles.load(std::memory_order_relaxed);
  return p;
}

const MineRequest& MineJob::request() const { return *request_; }

void MineJob::SetPhase(Phase phase) {
  phase_.store(phase, std::memory_order_release);
}

void MineJob::Complete(MineResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    response_ = std::make_unique<MineResponse>(std::move(response));
  }
  // Publish the terminal phase only after the response is readable, so
  // done() == true implies TryGet succeeds.
  phase_.store(Phase::kDone, std::memory_order_release);
  cv_.notify_all();
}

MineResponse MineJob::TakeResponse() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(*response_);
}

// ---------------------------------------------------------------- JobTable

std::string JobTable::Add(std::shared_ptr<MineJob> job) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string id = "job-" + std::to_string(next_id_++);
  order_.push_back(id);
  jobs_.emplace(id, std::make_pair(std::move(job), std::prev(order_.end())));
  EnforceRetention();
  return id;
}

std::shared_ptr<MineJob> JobTable::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.first;
}

bool JobTable::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  order_.erase(it->second.second);
  jobs_.erase(it);
  return true;
}

size_t JobTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void JobTable::EnforceRetention() {
  // Size-guarded: a table within the cap costs nothing per Add. Past
  // the cap, walk from the oldest entry evicting finished jobs until
  // back under it (live jobs are never evicted, so a table dominated by
  // live jobs simply stays over the cap until they finish).
  if (jobs_.size() <= max_finished_) return;
  auto it = order_.begin();
  while (jobs_.size() > max_finished_ && it != order_.end()) {
    auto found = jobs_.find(*it);
    if (found != jobs_.end() && found->second.first->done()) {
      jobs_.erase(found);
      it = order_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace surf
