// Figure 7: the solution-space landscapes of the log objective (Eq. 4,
// top row) vs the ratio objective (Eq. 2, bottom row) as the size
// regularizer c grows from 1 to 4, over the d=1, k=3 density dataset.
//
// The key qualitative property: Eq. 4 leaves constraint-violating regions
// *undefined* (the paper's white areas), while Eq. 2 assigns them
// (negative) values the swarm could mistake for optima. The bench renders
// ASCII landscapes and reports the defined-area fraction per c.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);

  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 5;
  // Sparse background: a generic box must be ~1/3 of the domain wide to
  // reach y_R = 1000 from background mass alone, so the undefined (white)
  // area of Eq. 4 is clearly visible, as in the paper's figure.
  spec.num_background = 3000;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
  const StatisticFn f = [&evaluator](const Region& r) {
    return evaluator.Evaluate(r);
  };

  const int W = 56, H = 14;
  const double min_len = 0.01, max_len = 0.5;
  TablePrinter summary({"objective", "c", "defined fraction",
                        "defined & viable fraction"});

  for (bool use_log : {true, false}) {
    for (double c : {1.0, 2.0, 3.0, 4.0}) {
      ObjectiveConfig config;
      config.threshold = 1000.0;
      config.direction = ThresholdDirection::kAbove;
      config.c = c;
      config.use_log = use_log;
      const RegionObjective objective(f, config);

      size_t defined = 0, viable = 0, total = 0;
      std::vector<std::string> canvas(H, std::string(W, ' '));
      double vmin = 1e300, vmax = -1e300;
      std::vector<std::vector<double>> values(
          H, std::vector<double>(W, 0.0));
      std::vector<std::vector<bool>> valid(H,
                                           std::vector<bool>(W, false));
      for (int gy = 0; gy < H; ++gy) {
        for (int gx = 0; gx < W; ++gx) {
          const double x = (gx + 0.5) / W;
          const double l =
              max_len - (gy + 0.5) / H * (max_len - min_len);
          const FitnessValue fv = objective.Evaluate(Region({x}, {l}));
          ++total;
          valid[gy][gx] = fv.valid;
          if (fv.valid) {
            ++defined;
            values[gy][gx] = fv.value;
            vmin = std::min(vmin, fv.value);
            vmax = std::max(vmax, fv.value);
            if (evaluator.Evaluate(Region({x}, {l})) > 1000.0) ++viable;
          }
        }
      }
      const char* shades = " .:-=+*#%@";
      for (int gy = 0; gy < H; ++gy) {
        for (int gx = 0; gx < W; ++gx) {
          if (!valid[gy][gx]) continue;
          const double t =
              vmax > vmin ? (values[gy][gx] - vmin) / (vmax - vmin) : 0.5;
          canvas[static_cast<size_t>(gy)][static_cast<size_t>(gx)] =
              shades[static_cast<int>(t * 9.0)];
        }
      }

      if (c == 4.0) {  // print one landscape per objective form
        std::printf("%s objective (Eq. %s), c = %.0f — blank cells are "
                    "undefined:\n",
                    use_log ? "log" : "ratio", use_log ? "4" : "2", c);
        for (const auto& line : canvas) {
          std::printf("  |%s|\n", line.c_str());
        }
        std::printf("   (x: center 0..1, y: half-length %.2f..%.2f "
                    "top-down)\n\n",
                    max_len, min_len);
      }
      summary.AddRow({use_log ? "Eq.4 (log)" : "Eq.2 (ratio)",
                      FormatDouble(c, 0),
                      FormatDouble(static_cast<double>(defined) /
                                       static_cast<double>(total),
                                   3),
                      FormatDouble(static_cast<double>(viable) /
                                       static_cast<double>(total),
                                   3)});
    }
  }
  std::printf("%s", summary.ToString().c_str());
  std::printf("\nExpected shape (paper): Eq. 4's defined fraction < 1 "
              "(white areas reject invalid regions) and every defined "
              "cell is truly viable; Eq. 2 is defined everywhere, so its "
              "defined fraction is 1 while only a sliver is viable.\n");
  return 0;
}
