#ifndef SURF_STATS_GRID_INDEX_H_
#define SURF_STATS_GRID_INDEX_H_

#include <vector>

#include "geom/bounds.h"
#include "stats/evaluator.h"

namespace surf {

/// \brief Uniform-grid range evaluator.
///
/// Partitions the domain into `cells_per_dim^d` equal cells. Cells fully
/// covered by the query box contribute pre-aggregated block statistics
/// (count, sum, sum of squares, label matches) in O(1); boundary cells
/// fall back to scanning their point lists. Exact for all statistic
/// kinds (the median scans every intersecting cell so each raw value
/// reaches the accumulator's quantile sketch).
///
/// This is one of the data-system substrates the true function f is served
/// from; it turns the O(N) per-query cost of ScanEvaluator into roughly
/// O(points near the boundary) for selective queries.
class GridIndexEvaluator : public RegionEvaluator {
 public:
  /// Builds the index over `data`; `cells_per_dim` clamps to [1, 64].
  /// `data` must outlive the evaluator.
  GridIndexEvaluator(const Dataset* data, Statistic stat,
                     size_t cells_per_dim = 16);

  const Statistic& statistic() const override { return stat_; }

  size_t cells_per_dim() const { return cells_per_dim_; }
  size_t num_cells() const { return cells_.size(); }

 protected:
  double EvaluateImpl(const Region& region,
                      const CancelToken& cancel) const override;

 private:
  struct Cell {
    std::vector<uint32_t> rows;
    size_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    size_t matches = 0;
  };

  size_t CellIndex(const std::vector<size_t>& coords) const;
  size_t CoordOf(double v, size_t dim) const;

  const Dataset* data_;
  Statistic stat_;
  Bounds bounds_;
  size_t cells_per_dim_;
  std::vector<Cell> cells_;
};

}  // namespace surf

#endif  // SURF_STATS_GRID_INDEX_H_
