// Extension: incremental surrogate maintenance.
//
// The paper's deployment story trains once and serves many requests
// (§V-D). This bench quantifies the natural follow-up: when new region
// evaluations keep arriving, warm-start boosting (Surrogate::Update)
// reaches the accuracy of a bigger model at a fraction of a full
// retrain's cost.

#include <cstdio>

#include "bench_common.h"
#include "ml/metrics.h"
#include "stats/grid_index.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);

  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 21;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  GridIndexEvaluator eval(&ds.data, bench::StatisticFor(ds));
  const Bounds domain = ds.data.ComputeBounds(ds.region_cols);

  const size_t initial = full ? 20000 : 5000;
  const size_t batch = full ? 5000 : 2000;
  const size_t batches = 4;
  const size_t trees_per_update = 25;

  // Fixed probe workload for honest error measurement.
  WorkloadParams probe_params;
  probe_params.num_queries = 2000;
  probe_params.seed = 999;
  const RegionWorkload probe = GenerateWorkload(eval, domain, probe_params);
  auto probe_rmse = [&](const Surrogate& surrogate) {
    std::vector<double> pred;
    pred.reserve(probe.size());
    for (size_t i = 0; i < probe.size(); ++i) {
      pred.push_back(surrogate.Predict(probe.RegionAt(i)));
    }
    return Rmse(pred, probe.targets);
  };

  // Base model on the initial workload.
  WorkloadParams base_params;
  base_params.num_queries = initial;
  base_params.seed = 1;
  const RegionWorkload base = GenerateWorkload(eval, domain, base_params);
  SurrogateTrainOptions options;
  options.gbrt.n_estimators = 60;
  auto incremental = Surrogate::Train(base, options);
  if (!incremental.ok()) return 1;

  std::printf("Extension — incremental surrogate updates "
              "(initial %zu queries + %zu batches of %zu)\n\n",
              initial, batches, batch);
  TablePrinter table({"stage", "probe RMSE (incremental)", "update (s)",
                      "probe RMSE (full retrain)", "retrain (s)"});
  table.AddRow({"initial", FormatDouble(probe_rmse(*incremental), 1), "-",
                FormatDouble(probe_rmse(*incremental), 1),
                FormatDouble(incremental->metrics().train_seconds, 2)});

  // Accumulated workload for the retrain-from-scratch comparison arm.
  RegionWorkload accumulated = base;
  for (size_t b = 1; b <= batches; ++b) {
    WorkloadParams batch_params;
    batch_params.num_queries = batch;
    batch_params.seed = 100 + b;
    const RegionWorkload fresh =
        GenerateWorkload(eval, domain, batch_params);

    // Incremental arm.
    Stopwatch update_timer;
    if (auto st = incremental->Update(fresh, trees_per_update); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const double update_secs = update_timer.ElapsedSeconds();

    // Retrain arm on everything seen so far.
    for (size_t i = 0; i < fresh.size(); ++i) {
      accumulated.features.AddRow(fresh.features.Row(i));
      accumulated.targets.push_back(fresh.targets[i]);
    }
    SurrogateTrainOptions retrain_options;
    retrain_options.gbrt.n_estimators =
        60 + b * trees_per_update;  // same capacity as the updated model
    auto retrained = Surrogate::Train(accumulated, retrain_options);
    if (!retrained.ok()) return 1;

    table.AddRow({"after batch " + std::to_string(b),
                  FormatDouble(probe_rmse(*incremental), 1),
                  FormatDouble(update_secs, 2),
                  FormatDouble(probe_rmse(*retrained), 1),
                  FormatDouble(retrained->metrics().train_seconds, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected: incremental updates track the retrained "
              "model's error within a few percent while costing far less "
              "per batch — the refresh path for long-lived deployments.\n");
  return 0;
}
