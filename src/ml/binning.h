#ifndef SURF_ML_BINNING_H_
#define SURF_ML_BINNING_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace surf {

/// \brief Pre-binned training matrix in one contiguous column-major
/// `uint16_t` buffer.
///
/// Feature j's bins occupy `bins_[j * num_rows .. (j+1) * num_rows)`, so a
/// histogram build streams one cache-friendly span per feature — the layout
/// the threaded trainer parallelizes over. `bin_offset(j)` maps feature j
/// into a single flat histogram array shared by all features (prefix sums
/// of per-feature bin counts), which is what makes whole-histogram
/// sibling subtraction a single contiguous loop.
class BinnedMatrix {
 public:
  BinnedMatrix() = default;

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Contiguous bin ids of feature j (length num_rows()).
  const uint16_t* col(size_t j) const {
    return bins_.data() + j * num_rows_;
  }

  /// True when every feature has ≤ 256 bins and the byte-wide shadow
  /// copy exists (the default max_bins=256 case).
  bool has_packed8() const { return !bins8_.empty(); }

  /// Byte-wide view of feature j (same values as col(j)); halves the
  /// memory touched by histogram gathers and partition reads.
  const uint8_t* col8(size_t j) const {
    return bins8_.data() + j * num_rows_;
  }

  /// Start of feature j's slice in a flat histogram array.
  uint32_t bin_offset(size_t j) const { return offsets_[j]; }

  /// Bins materialized for feature j.
  uint32_t num_bins(size_t j) const {
    return offsets_[j + 1] - offsets_[j];
  }

  /// Total histogram size across all features.
  uint32_t total_bins() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

 private:
  friend class FeatureBinner;

  std::vector<uint16_t> bins_;     // column-major, num_features * num_rows
  std::vector<uint8_t> bins8_;     // byte shadow when all bins fit
  std::vector<uint32_t> offsets_;  // per-feature prefix sums, size F + 1
  size_t num_rows_ = 0;
};

/// \brief Quantile feature binning for histogram-based tree training
/// (the strategy XGBoost's `hist` mode and LightGBM use).
///
/// Bin edges are per-feature quantiles computed from (a subsample of) the
/// training data; training then operates on uint16 bin ids, making each
/// node's split search O(rows + bins) per feature instead of requiring a
/// per-node sort.
class FeatureBinner {
 public:
  /// Computes at most `max_bins` bins per feature (min 2, max 4096).
  FeatureBinner(const FeatureMatrix& x, size_t max_bins = 256);

  size_t num_features() const { return edges_.size(); }

  /// Number of bins actually materialized for feature j (distinct-value
  /// features can have fewer than max_bins).
  size_t num_bins(size_t j) const { return edges_[j].size() + 1; }

  /// Bin id of raw value v on feature j, in [0, num_bins(j)).
  uint16_t BinIndex(size_t j, double v) const;

  /// Upper edge of bin b on feature j — the split threshold a tree stores
  /// so prediction can work on raw doubles. `b < num_bins(j)-1`.
  double BinUpperEdge(size_t j, size_t b) const { return edges_[j][b]; }

  /// Bins an entire matrix into the contiguous column-major layout the
  /// tree trainer consumes.
  BinnedMatrix Bin(const FeatureMatrix& x) const;

  /// Legacy nested-vector binning (kept for tests and as the reference
  /// layout the flat `Bin` is checked against).
  std::vector<std::vector<uint16_t>> BinMatrix(const FeatureMatrix& x) const;

 private:
  // edges_[j] is the sorted list of inner edges; value <= edges_[j][b]
  // falls into bin b, values above every edge fall into the last bin.
  std::vector<std::vector<double>> edges_;
};

}  // namespace surf

#endif  // SURF_ML_BINNING_H_
