#ifndef SURF_ML_LINEAR_H_
#define SURF_ML_LINEAR_H_

#include <string>
#include <vector>

#include "ml/regressor.h"

namespace surf {

/// \brief Ridge (L2-regularized) linear regression — the simplest
/// alternative surrogate class (paper footnote 2). Closed-form normal
/// equations with Cholesky factorization; features are standardized
/// internally so the regularization penalty is scale-free.
class RidgeRegression : public Regressor {
 public:
  explicit RidgeRegression(double alpha = 1.0) : alpha_(alpha) {}

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;

  double Predict(const std::vector<double>& x) const override;

  bool trained() const override { return trained_; }
  std::string Name() const override { return "ridge"; }

  double alpha() const { return alpha_; }
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double alpha_;
  std::vector<double> coef_;       // in original (unstandardized) space
  double intercept_ = 0.0;
  bool trained_ = false;
};

/// Solves A x = b for a symmetric positive-definite matrix A (row-major
/// n×n) via Cholesky; returns false if A is not SPD. Exposed for tests.
bool CholeskySolve(std::vector<double> a, std::vector<double> b, size_t n,
                   std::vector<double>* x);

}  // namespace surf

#endif  // SURF_ML_LINEAR_H_
