#ifndef SURF_ML_REGRESSOR_H_
#define SURF_ML_REGRESSOR_H_

#include <string>
#include <vector>

#include "ml/matrix.h"
#include "util/status.h"

namespace surf {

/// \brief Common interface of the surrogate-capable regressors.
///
/// The paper (§IV, footnote 2) deliberately keeps the surrogate's model
/// class open — "alternative ML models could be employed". Everything the
/// SuRF core needs is Fit + Predict; GBRT, ridge regression, and k-NN all
/// implement this interface so the ablation benches can swap them freely.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the full matrix. Returns InvalidArgument for empty or
  /// mismatched inputs.
  virtual Status Fit(const FeatureMatrix& x,
                     const std::vector<double>& y) = 0;

  /// Predicts one point (length = num_features at fit time).
  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Batch prediction; default loops Predict().
  virtual std::vector<double> PredictBatch(const FeatureMatrix& x) const {
    std::vector<double> out(x.num_rows());
    for (size_t r = 0; r < x.num_rows(); ++r) out[r] = Predict(x.Row(r));
    return out;
  }

  /// True once Fit succeeded.
  virtual bool trained() const = 0;

  /// Model family name for reports ("gbrt", "ridge", "knn").
  virtual std::string Name() const = 0;
};

}  // namespace surf

#endif  // SURF_ML_REGRESSOR_H_
