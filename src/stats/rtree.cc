#include "stats/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace surf {

RTreeEvaluator::RTreeEvaluator(const Dataset* data, Statistic stat,
                               size_t fanout, size_t leaf_size)
    : data_(data),
      stat_(std::move(stat)),
      fanout_(std::max<size_t>(2, fanout)),
      leaf_size_(std::max<size_t>(1, leaf_size)) {
  assert(data_ != nullptr);
  assert(data_->num_rows() > 0);
  rows_.resize(data_->num_rows());
  std::iota(rows_.begin(), rows_.end(), 0);
  BulkLoad();
}

void RTreeEvaluator::ComputeLeafAggregates(Node* node) const {
  const size_t d = stat_.dims();
  node->lo.assign(d, 0.0);
  node->hi.assign(d, 0.0);
  const std::vector<double>* values =
      stat_.needs_value_column()
          ? &data_->column(static_cast<size_t>(stat_.value_col))
          : nullptr;
  for (uint32_t i = node->rows_begin; i < node->rows_end; ++i) {
    const uint32_t r = rows_[i];
    for (size_t j = 0; j < d; ++j) {
      const double v = data_->column(stat_.region_cols[j])[r];
      if (i == node->rows_begin) {
        node->lo[j] = node->hi[j] = v;
      } else {
        node->lo[j] = std::min(node->lo[j], v);
        node->hi[j] = std::max(node->hi[j], v);
      }
    }
    node->count += 1;
    if (values) {
      const double v = (*values)[r];
      node->sum += v;
      node->sum_sq += v * v;
      if (stat_.kind == StatisticKind::kLabelRatio &&
          v == stat_.label_value) {
        node->matches += 1;
      }
    }
  }
}

uint32_t RTreeEvaluator::BuildLeaves(std::vector<uint32_t>* leaf_ids) {
  // Sort-Tile-Recursive: sort rows by the first dimension, slice into
  // vertical strips, sort each strip by the next dimension, and so on;
  // the final runs of `leaf_size_` rows become leaves. For d > 2 we tile
  // the first two dimensions, which is the standard STR compromise.
  const size_t d = stat_.dims();
  const size_t n = rows_.size();
  const auto& dim0 = data_->column(stat_.region_cols[0]);
  std::sort(rows_.begin(), rows_.end(),
            [&](uint32_t a, uint32_t b) { return dim0[a] < dim0[b]; });

  const size_t leaves_needed = (n + leaf_size_ - 1) / leaf_size_;
  const size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaves_needed))));
  const size_t strip_rows = (n + strips - 1) / strips;

  if (d >= 2) {
    const auto& dim1 = data_->column(stat_.region_cols[1]);
    for (size_t s = 0; s < strips; ++s) {
      const size_t begin = s * strip_rows;
      if (begin >= n) break;
      const size_t end = std::min(n, begin + strip_rows);
      std::sort(rows_.begin() + static_cast<long>(begin),
                rows_.begin() + static_cast<long>(end),
                [&](uint32_t a, uint32_t b) { return dim1[a] < dim1[b]; });
    }
  }

  for (size_t begin = 0; begin < n; begin += leaf_size_) {
    Node leaf;
    leaf.leaf = true;
    leaf.rows_begin = static_cast<uint32_t>(begin);
    leaf.rows_end = static_cast<uint32_t>(std::min(n, begin + leaf_size_));
    ComputeLeafAggregates(&leaf);
    leaf_ids->push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }
  return static_cast<uint32_t>(leaf_ids->size());
}

RTreeEvaluator::Node RTreeEvaluator::MakeParent(
    const std::vector<uint32_t>& children) const {
  Node parent;
  parent.leaf = false;
  const size_t d = stat_.dims();
  parent.lo.assign(d, 0.0);
  parent.hi.assign(d, 0.0);
  bool first = true;
  for (uint32_t c : children) {
    const Node& child = nodes_[c];
    for (size_t j = 0; j < d; ++j) {
      if (first) {
        parent.lo[j] = child.lo[j];
        parent.hi[j] = child.hi[j];
      } else {
        parent.lo[j] = std::min(parent.lo[j], child.lo[j]);
        parent.hi[j] = std::max(parent.hi[j], child.hi[j]);
      }
    }
    parent.count += child.count;
    parent.sum += child.sum;
    parent.sum_sq += child.sum_sq;
    parent.matches += child.matches;
    first = false;
  }
  return parent;
}

void RTreeEvaluator::BulkLoad() {
  std::vector<uint32_t> level;
  BuildLeaves(&level);
  height_ = 1;

  // Pack each run of `fanout_` nodes under a parent until one root
  // remains. Children of one parent are stored contiguously in nodes_,
  // so parents reference [children_begin, children_end).
  while (level.size() > 1) {
    std::vector<uint32_t> next_level;
    for (size_t begin = 0; begin < level.size(); begin += fanout_) {
      const size_t end = std::min(level.size(), begin + fanout_);
      // Re-append the children contiguously (ids shift, so copy nodes).
      const uint32_t children_begin = static_cast<uint32_t>(nodes_.size());
      std::vector<uint32_t> group;
      for (size_t i = begin; i < end; ++i) {
        // Children that are already contiguous need not be copied, but
        // copying keeps the builder simple; memory is proportional to
        // 2 × node count, freed after shrink below if desired.
        group.push_back(level[i]);
      }
      Node parent = MakeParent(group);
      parent.children_begin = children_begin;
      parent.children_end =
          static_cast<uint32_t>(children_begin + group.size());
      for (uint32_t g : group) nodes_.push_back(nodes_[g]);
      next_level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level.empty() ? 0 : level[0];
}

void RTreeEvaluator::Query(uint32_t node_idx, const Region& region,
                           StatisticAccumulator* acc) const {
  const Node& node = nodes_[node_idx];
  const size_t d = stat_.dims();

  bool disjoint = false;
  bool contained = true;
  for (size_t j = 0; j < d; ++j) {
    if (node.hi[j] < region.lo(j) || node.lo[j] > region.hi(j)) {
      disjoint = true;
      break;
    }
    if (node.lo[j] < region.lo(j) || node.hi[j] > region.hi(j)) {
      contained = false;
    }
  }
  if (disjoint || node.count == 0) return;

  // Contained subtrees contribute their pre-aggregated block; the median
  // kind instead descends so the sketch sees each raw value.
  if (contained && stat_.kind != StatisticKind::kMedian) {
    acc->AddBlock(node.count, node.sum, node.sum_sq, node.matches);
    return;
  }
  if (node.leaf) {
    const std::vector<double>* values =
        stat_.needs_value_column()
            ? &data_->column(static_cast<size_t>(stat_.value_col))
            : nullptr;
    for (uint32_t i = node.rows_begin; i < node.rows_end; ++i) {
      const uint32_t r = rows_[i];
      bool inside = true;
      for (size_t j = 0; j < d; ++j) {
        const double v = data_->column(stat_.region_cols[j])[r];
        if (v < region.lo(j) || v > region.hi(j)) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      acc->Add(values ? (*values)[r] : 0.0);
    }
    return;
  }
  for (uint32_t c = node.children_begin; c < node.children_end; ++c) {
    Query(c, region, acc);
  }
}

double RTreeEvaluator::EvaluateImpl(const Region& region,
                                    const CancelToken& /*cancel*/) const {
  assert(region.dims() == stat_.dims());
  StatisticAccumulator acc(stat_);
  if (!nodes_.empty()) Query(root_, region, &acc);
  return acc.Finalize();
}

}  // namespace surf
