#include "net/json_codec.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace surf {

namespace {

// ---------------------------------------------------------------- readers
// Field readers share one convention: an absent key keeps the caller's
// default (so minimal HTTP payloads work), a present key of the wrong
// type is an InvalidArgument.

Status TypeError(const char* key, const char* expected) {
  return Status::InvalidArgument(std::string("field '") + key +
                                 "' must be " + expected);
}

Status ReadBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_bool()) return TypeError(key, "a boolean");
  *out = v->bool_value();
  return Status::OK();
}

Status ReadDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return TypeError(key, "a number");
  *out = v->number_value();
  return Status::OK();
}

/// null ⇒ NaN (the encoding WriteJson gives non-finite doubles).
Status ReadDoubleOrNull(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->is_null()) {
    *out = std::numeric_limits<double>::quiet_NaN();
    return Status::OK();
  }
  if (!v->is_number()) return TypeError(key, "a number or null");
  *out = v->number_value();
  return Status::OK();
}

Status ReadU64(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return TypeError(key, "a non-negative integer");
  const double d = v->number_value();
  if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15) {
    return TypeError(key, "a non-negative integer (within 2^53)");
  }
  *out = static_cast<uint64_t>(d);
  return Status::OK();
}

Status ReadSize(const JsonValue& obj, const char* key, size_t* out) {
  uint64_t v = *out;
  SURF_RETURN_IF_ERROR(ReadU64(obj, key, &v));
  *out = static_cast<size_t>(v);
  return Status::OK();
}

Status ReadString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) return TypeError(key, "a string");
  *out = v->string_value();
  return Status::OK();
}

StatusOr<std::vector<double>> NumberArray(const JsonValue& v,
                                          const char* key) {
  if (!v.is_array()) return TypeError(key, "an array of numbers");
  std::vector<double> out;
  out.reserve(v.array().size());
  for (const JsonValue& e : v.array()) {
    if (!e.is_number()) return TypeError(key, "an array of numbers");
    out.push_back(e.number_value());
  }
  return out;
}

Status ReadDoubleArray(const JsonValue& obj, const char* key,
                       std::vector<double>* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  auto parsed = NumberArray(*v, key);
  if (!parsed.ok()) return parsed.status();
  *out = std::move(parsed).value();
  return Status::OK();
}

/// True when a JSON number is a non-negative integer small enough to
/// cast to an unsigned type without UB (the same 2^53 exactness bound
/// ReadU64 enforces).
bool IsCastableIndex(const JsonValue& v) {
  return v.is_number() && v.number_value() >= 0 &&
         v.number_value() == std::floor(v.number_value()) &&
         v.number_value() <= 9.007199254740992e15;
}

Status ReadSizeArray(const JsonValue& obj, const char* key,
                     std::vector<size_t>* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_array()) return TypeError(key, "an array of integers");
  std::vector<size_t> parsed;
  parsed.reserve(v->array().size());
  for (const JsonValue& e : v->array()) {
    if (!IsCastableIndex(e)) {
      return TypeError(key, "an array of non-negative integers");
    }
    parsed.push_back(static_cast<size_t>(e.number_value()));
  }
  *out = std::move(parsed);
  return Status::OK();
}

JsonValue DoubleArray(const std::vector<double>& v) {
  JsonValue arr = JsonValue::Array();
  for (double x : v) arr.Append(JsonValue(x));
  return arr;
}

JsonValue SizeArray(const std::vector<size_t>& v) {
  JsonValue arr = JsonValue::Array();
  for (size_t x : v) arr.Append(JsonValue(static_cast<double>(x)));
  return arr;
}

// ------------------------------------------------------------------ enums

const char* DirectionName(ThresholdDirection d) {
  return d == ThresholdDirection::kBelow ? "below" : "above";
}

StatusOr<ThresholdDirection> DirectionFromName(const std::string& name) {
  if (name == "above") return ThresholdDirection::kAbove;
  if (name == "below") return ThresholdDirection::kBelow;
  return Status::InvalidArgument("unknown direction '" + name +
                                 "' (above|below)");
}

const char* ModeName(MineRequest::Mode mode) {
  return mode == MineRequest::Mode::kTopK ? "topk" : "threshold";
}

StatusOr<MineRequest::Mode> ModeFromName(const std::string& name) {
  if (name == "threshold") return MineRequest::Mode::kThreshold;
  if (name == "topk") return MineRequest::Mode::kTopK;
  return Status::InvalidArgument("unknown mode '" + name +
                                 "' (threshold|topk)");
}

const char* BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScan: return "scan";
    case BackendKind::kGridIndex: return "grid_index";
    case BackendKind::kKdTree: return "kd_tree";
    case BackendKind::kRTree: return "rtree";
  }
  return "grid_index";
}

StatusOr<BackendKind> BackendFromName(const std::string& name) {
  if (name == "scan") return BackendKind::kScan;
  if (name == "grid_index") return BackendKind::kGridIndex;
  if (name == "kd_tree") return BackendKind::kKdTree;
  if (name == "rtree") return BackendKind::kRTree;
  return Status::InvalidArgument(
      "unknown backend '" + name + "' (scan|grid_index|kd_tree|rtree)");
}

StatusOr<StatisticKind> StatisticKindFromName(const std::string& name) {
  if (name == "count") return StatisticKind::kCount;
  if (name == "avg" || name == "average") return StatisticKind::kAverage;
  if (name == "sum") return StatisticKind::kSum;
  if (name == "median") return StatisticKind::kMedian;
  if (name == "variance" || name == "var") return StatisticKind::kVariance;
  if (name == "ratio" || name == "label_ratio") {
    return StatisticKind::kLabelRatio;
  }
  return Status::InvalidArgument("unknown statistic kind '" + name + "'");
}

// ----------------------------------------------------- nested struct codecs

JsonValue GsoToJson(const GsoParams& p) {
  JsonValue obj = JsonValue::Object();
  obj.Set("num_glowworms", JsonValue(static_cast<double>(p.num_glowworms)));
  obj.Set("max_iterations", JsonValue(static_cast<double>(p.max_iterations)));
  obj.Set("luciferin_decay", JsonValue(p.luciferin_decay));
  obj.Set("luciferin_gain", JsonValue(p.luciferin_gain));
  obj.Set("initial_luciferin", JsonValue(p.initial_luciferin));
  obj.Set("initial_radius_frac", JsonValue(p.initial_radius_frac));
  obj.Set("sensor_radius_frac", JsonValue(p.sensor_radius_frac));
  obj.Set("radius_beta", JsonValue(p.radius_beta));
  obj.Set("desired_neighbors",
          JsonValue(static_cast<double>(p.desired_neighbors)));
  obj.Set("step_frac", JsonValue(p.step_frac));
  obj.Set("convergence_tol_frac", JsonValue(p.convergence_tol_frac));
  obj.Set("convergence_window",
          JsonValue(static_cast<double>(p.convergence_window)));
  obj.Set("exploration_restart_prob",
          JsonValue(p.exploration_restart_prob));
  obj.Set("kde_seeded_fraction", JsonValue(p.kde_seeded_fraction));
  obj.Set("kde_mass_guidance", JsonValue(p.kde_mass_guidance));
  obj.Set("seed", JsonValue(static_cast<double>(p.seed)));
  return obj;
}

Status GsoFromJson(const JsonValue& obj, GsoParams* p) {
  if (!obj.is_object()) return TypeError("gso", "an object");
  SURF_RETURN_IF_ERROR(ReadSize(obj, "num_glowworms", &p->num_glowworms));
  SURF_RETURN_IF_ERROR(ReadSize(obj, "max_iterations", &p->max_iterations));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "luciferin_decay", &p->luciferin_decay));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "luciferin_gain", &p->luciferin_gain));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "initial_luciferin", &p->initial_luciferin));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "initial_radius_frac", &p->initial_radius_frac));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "sensor_radius_frac", &p->sensor_radius_frac));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "radius_beta", &p->radius_beta));
  SURF_RETURN_IF_ERROR(
      ReadSize(obj, "desired_neighbors", &p->desired_neighbors));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "step_frac", &p->step_frac));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "convergence_tol_frac", &p->convergence_tol_frac));
  SURF_RETURN_IF_ERROR(
      ReadSize(obj, "convergence_window", &p->convergence_window));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "exploration_restart_prob",
                                  &p->exploration_restart_prob));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "kde_seeded_fraction", &p->kde_seeded_fraction));
  SURF_RETURN_IF_ERROR(
      ReadBool(obj, "kde_mass_guidance", &p->kde_mass_guidance));
  SURF_RETURN_IF_ERROR(ReadU64(obj, "seed", &p->seed));
  return Status::OK();
}

JsonValue GbrtToJson(const GbrtParams& p) {
  JsonValue obj = JsonValue::Object();
  obj.Set("learning_rate", JsonValue(p.learning_rate));
  obj.Set("n_estimators", JsonValue(static_cast<double>(p.n_estimators)));
  obj.Set("max_depth", JsonValue(static_cast<double>(p.max_depth)));
  obj.Set("reg_lambda", JsonValue(p.reg_lambda));
  obj.Set("min_child_weight", JsonValue(p.min_child_weight));
  obj.Set("min_split_gain", JsonValue(p.min_split_gain));
  obj.Set("min_samples_leaf",
          JsonValue(static_cast<double>(p.min_samples_leaf)));
  obj.Set("subsample", JsonValue(p.subsample));
  obj.Set("colsample", JsonValue(p.colsample));
  obj.Set("max_bins", JsonValue(static_cast<double>(p.max_bins)));
  obj.Set("early_stopping_rounds",
          JsonValue(static_cast<double>(p.early_stopping_rounds)));
  obj.Set("validation_fraction", JsonValue(p.validation_fraction));
  obj.Set("seed", JsonValue(static_cast<double>(p.seed)));
  return obj;
}

Status GbrtFromJson(const JsonValue& obj, GbrtParams* p) {
  if (!obj.is_object()) return TypeError("gbrt", "an object");
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "learning_rate", &p->learning_rate));
  SURF_RETURN_IF_ERROR(ReadSize(obj, "n_estimators", &p->n_estimators));
  SURF_RETURN_IF_ERROR(ReadSize(obj, "max_depth", &p->max_depth));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "reg_lambda", &p->reg_lambda));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "min_child_weight", &p->min_child_weight));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "min_split_gain", &p->min_split_gain));
  SURF_RETURN_IF_ERROR(
      ReadSize(obj, "min_samples_leaf", &p->min_samples_leaf));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "subsample", &p->subsample));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "colsample", &p->colsample));
  SURF_RETURN_IF_ERROR(ReadSize(obj, "max_bins", &p->max_bins));
  SURF_RETURN_IF_ERROR(
      ReadSize(obj, "early_stopping_rounds", &p->early_stopping_rounds));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "validation_fraction", &p->validation_fraction));
  SURF_RETURN_IF_ERROR(ReadU64(obj, "seed", &p->seed));
  return Status::OK();
}

JsonValue GridToJson(const GridSearchSpace& g) {
  JsonValue obj = JsonValue::Object();
  obj.Set("learning_rates", DoubleArray(g.learning_rates));
  obj.Set("max_depths", SizeArray(g.max_depths));
  obj.Set("n_estimators", SizeArray(g.n_estimators));
  obj.Set("reg_lambdas", DoubleArray(g.reg_lambdas));
  return obj;
}

Status GridFromJson(const JsonValue& obj, GridSearchSpace* g) {
  if (!obj.is_object()) return TypeError("grid", "an object");
  SURF_RETURN_IF_ERROR(
      ReadDoubleArray(obj, "learning_rates", &g->learning_rates));
  SURF_RETURN_IF_ERROR(ReadSizeArray(obj, "max_depths", &g->max_depths));
  SURF_RETURN_IF_ERROR(ReadSizeArray(obj, "n_estimators", &g->n_estimators));
  SURF_RETURN_IF_ERROR(ReadDoubleArray(obj, "reg_lambdas", &g->reg_lambdas));
  return Status::OK();
}

JsonValue WorkloadToJson(const WorkloadParams& w) {
  JsonValue obj = JsonValue::Object();
  obj.Set("num_queries", JsonValue(static_cast<double>(w.num_queries)));
  obj.Set("min_length_frac", JsonValue(w.min_length_frac));
  obj.Set("max_length_frac", JsonValue(w.max_length_frac));
  obj.Set("drop_undefined", JsonValue(w.drop_undefined));
  obj.Set("seed", JsonValue(static_cast<double>(w.seed)));
  return obj;
}

Status WorkloadFromJson(const JsonValue& obj, WorkloadParams* w) {
  if (!obj.is_object()) return TypeError("workload", "an object");
  SURF_RETURN_IF_ERROR(ReadSize(obj, "num_queries", &w->num_queries));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "min_length_frac", &w->min_length_frac));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "max_length_frac", &w->max_length_frac));
  SURF_RETURN_IF_ERROR(ReadBool(obj, "drop_undefined", &w->drop_undefined));
  SURF_RETURN_IF_ERROR(ReadU64(obj, "seed", &w->seed));
  return Status::OK();
}

JsonValue SurrogateOptionsToJson(const SurrogateTrainOptions& s) {
  JsonValue obj = JsonValue::Object();
  obj.Set("gbrt", GbrtToJson(s.gbrt));
  obj.Set("hypertune", JsonValue(s.hypertune));
  obj.Set("grid", GridToJson(s.grid));
  obj.Set("cv_folds", JsonValue(static_cast<double>(s.cv_folds)));
  obj.Set("test_fraction", JsonValue(s.test_fraction));
  obj.Set("seed", JsonValue(static_cast<double>(s.seed)));
  return obj;
}

Status SurrogateOptionsFromJson(const JsonValue& obj,
                                SurrogateTrainOptions* s) {
  if (!obj.is_object()) return TypeError("surrogate", "an object");
  if (const JsonValue* gbrt = obj.Find("gbrt")) {
    SURF_RETURN_IF_ERROR(GbrtFromJson(*gbrt, &s->gbrt));
  }
  SURF_RETURN_IF_ERROR(ReadBool(obj, "hypertune", &s->hypertune));
  if (const JsonValue* grid = obj.Find("grid")) {
    SURF_RETURN_IF_ERROR(GridFromJson(*grid, &s->grid));
  }
  SURF_RETURN_IF_ERROR(ReadSize(obj, "cv_folds", &s->cv_folds));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "test_fraction", &s->test_fraction));
  SURF_RETURN_IF_ERROR(ReadU64(obj, "seed", &s->seed));
  return Status::OK();
}

JsonValue FinderToJson(const FinderConfig& f) {
  JsonValue obj = JsonValue::Object();
  obj.Set("gso", GsoToJson(f.gso));
  obj.Set("auto_scale_gso", JsonValue(f.auto_scale_gso));
  obj.Set("c", JsonValue(f.c));
  obj.Set("use_log_objective", JsonValue(f.use_log_objective));
  obj.Set("nms_max_iou", JsonValue(f.nms_max_iou));
  obj.Set("max_regions", JsonValue(static_cast<double>(f.max_regions)));
  obj.Set("use_kde_guidance", JsonValue(f.use_kde_guidance));
  obj.Set("use_kde_seeding", JsonValue(f.use_kde_seeding));
  return obj;
}

Status FinderFromJson(const JsonValue& obj, FinderConfig* f) {
  if (!obj.is_object()) return TypeError("finder", "an object");
  if (const JsonValue* gso = obj.Find("gso")) {
    SURF_RETURN_IF_ERROR(GsoFromJson(*gso, &f->gso));
  }
  SURF_RETURN_IF_ERROR(ReadBool(obj, "auto_scale_gso", &f->auto_scale_gso));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "c", &f->c));
  SURF_RETURN_IF_ERROR(
      ReadBool(obj, "use_log_objective", &f->use_log_objective));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "nms_max_iou", &f->nms_max_iou));
  SURF_RETURN_IF_ERROR(ReadSize(obj, "max_regions", &f->max_regions));
  SURF_RETURN_IF_ERROR(
      ReadBool(obj, "use_kde_guidance", &f->use_kde_guidance));
  SURF_RETURN_IF_ERROR(ReadBool(obj, "use_kde_seeding", &f->use_kde_seeding));
  return Status::OK();
}

JsonValue TopKToJson(const TopKConfig& t) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue(static_cast<double>(t.k)));
  obj.Set("c", JsonValue(t.c));
  obj.Set("nms_max_iou", JsonValue(t.nms_max_iou));
  obj.Set("gso", GsoToJson(t.gso));
  return obj;
}

Status TopKFromJson(const JsonValue& obj, TopKConfig* t) {
  if (!obj.is_object()) return TypeError("topk", "an object");
  SURF_RETURN_IF_ERROR(ReadSize(obj, "k", &t->k));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "c", &t->c));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "nms_max_iou", &t->nms_max_iou));
  if (const JsonValue* gso = obj.Find("gso")) {
    SURF_RETURN_IF_ERROR(GsoFromJson(*gso, &t->gso));
  }
  return Status::OK();
}

JsonValue StatisticToJson(const Statistic& s) {
  JsonValue obj = JsonValue::Object();
  obj.Set("kind", JsonValue(StatisticKindName(s.kind)));
  obj.Set("region_cols", SizeArray(s.region_cols));
  obj.Set("value_col", JsonValue(static_cast<double>(s.value_col)));
  obj.Set("label_value", JsonValue(s.label_value));
  return obj;
}

Status StatisticFromJson(const JsonValue& obj, const std::string& dataset,
                         const ColumnResolver* resolver, Statistic* s) {
  if (!obj.is_object()) return TypeError("statistic", "an object");
  std::string kind = StatisticKindName(s->kind);
  SURF_RETURN_IF_ERROR(ReadString(obj, "kind", &kind));
  auto parsed_kind = StatisticKindFromName(kind);
  if (!parsed_kind.ok()) return parsed_kind.status();
  s->kind = *parsed_kind;

  if (const JsonValue* cols = obj.Find("region_cols")) {
    if (!cols->is_array()) {
      return TypeError("region_cols", "an array of indices or column names");
    }
    std::vector<size_t> indices;
    indices.reserve(cols->array().size());
    for (const JsonValue& e : cols->array()) {
      if (IsCastableIndex(e)) {
        indices.push_back(static_cast<size_t>(e.number_value()));
      } else if (e.is_string()) {
        if (resolver == nullptr) {
          return Status::InvalidArgument(
              "region_cols by name requires a registered dataset");
        }
        const int idx = (*resolver)(dataset, e.string_value());
        if (idx < 0) {
          return Status::InvalidArgument("unknown column '" +
                                         e.string_value() + "' in dataset '" +
                                         dataset + "'");
        }
        indices.push_back(static_cast<size_t>(idx));
      } else {
        return TypeError("region_cols",
                         "an array of indices or column names");
      }
    }
    s->region_cols = std::move(indices);
  }

  if (const JsonValue* vc = obj.Find("value_col")) {
    // -1 is the legal "no value column" sentinel; anything else must be
    // a castable column index.
    if (vc->is_number() && vc->number_value() == -1.0) {
      s->value_col = -1;
    } else if (IsCastableIndex(*vc) &&
               vc->number_value() <= 2147483647.0) {
      s->value_col = static_cast<int>(vc->number_value());
    } else if (vc->is_string()) {
      if (resolver == nullptr) {
        return Status::InvalidArgument(
            "value_col by name requires a registered dataset");
      }
      const int idx = (*resolver)(dataset, vc->string_value());
      if (idx < 0) {
        return Status::InvalidArgument("unknown column '" +
                                       vc->string_value() + "' in dataset '" +
                                       dataset + "'");
      }
      s->value_col = idx;
    } else {
      return TypeError("value_col", "an index or column name");
    }
  }
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "label_value", &s->label_value));
  return Status::OK();
}

JsonValue FoundRegionToJson(const FoundRegion& r) {
  JsonValue obj = JsonValue::Object();
  obj.Set("region", RegionToJson(r.region));
  obj.Set("fitness", JsonValue(r.fitness));
  obj.Set("estimate", JsonValue(r.estimate));
  obj.Set("true_value", JsonValue(r.true_value));
  obj.Set("complies_true", JsonValue(r.complies_true));
  return obj;
}

StatusOr<FoundRegion> FoundRegionFromJson(const JsonValue& obj) {
  if (!obj.is_object()) return TypeError("regions[]", "an object");
  FoundRegion r;
  const JsonValue* region = obj.Find("region");
  if (region == nullptr) return TypeError("region", "present");
  auto parsed = RegionFromJson(*region);
  if (!parsed.ok()) return parsed.status();
  r.region = std::move(parsed).value();
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "fitness", &r.fitness));
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "estimate", &r.estimate));
  SURF_RETURN_IF_ERROR(ReadDoubleOrNull(obj, "true_value", &r.true_value));
  SURF_RETURN_IF_ERROR(ReadBool(obj, "complies_true", &r.complies_true));
  return r;
}

JsonValue ReportToJson(const FindReport& r) {
  JsonValue obj = JsonValue::Object();
  obj.Set("seconds", JsonValue(r.seconds));
  obj.Set("iterations", JsonValue(static_cast<double>(r.iterations)));
  obj.Set("objective_evaluations",
          JsonValue(static_cast<double>(r.objective_evaluations)));
  obj.Set("particle_valid_fraction", JsonValue(r.particle_valid_fraction));
  obj.Set("converged", JsonValue(r.converged));
  obj.Set("cancelled", JsonValue(r.cancelled));
  obj.Set("true_compliance", JsonValue(r.true_compliance));
  return obj;
}

Status ReportFromJson(const JsonValue& obj, FindReport* r) {
  if (!obj.is_object()) return TypeError("report", "an object");
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "seconds", &r->seconds));
  SURF_RETURN_IF_ERROR(ReadSize(obj, "iterations", &r->iterations));
  uint64_t evals = r->objective_evaluations;
  SURF_RETURN_IF_ERROR(ReadU64(obj, "objective_evaluations", &evals));
  r->objective_evaluations = evals;
  SURF_RETURN_IF_ERROR(ReadDouble(obj, "particle_valid_fraction",
                                  &r->particle_valid_fraction));
  SURF_RETURN_IF_ERROR(ReadBool(obj, "converged", &r->converged));
  SURF_RETURN_IF_ERROR(ReadBool(obj, "cancelled", &r->cancelled));
  SURF_RETURN_IF_ERROR(
      ReadDouble(obj, "true_compliance", &r->true_compliance));
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------ status codes

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kFailedPrecondition: return 412;
    case StatusCode::kIOError: return 500;
    case StatusCode::kTimedOut: return 408;
    case StatusCode::kInternal: return 500;
    case StatusCode::kAlreadyExists: return 409;
    // Cancellation surfaces as 408: the dominant producer is a deadline
    // (transport or execution.deadline_seconds) firing mid-request.
    case StatusCode::kCancelled: return 408;
    // Fail-fast refusals (open circuit breaker): the client should back
    // off and retry later (Retry-After rides along on the response).
    case StatusCode::kUnavailable: return 503;
  }
  return 500;
}

std::string StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kTimedOut: return "timed_out";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "internal";
}

namespace {

StatusOr<StatusCode> StatusCodeFromName(const std::string& name) {
  if (name == "ok") return StatusCode::kOk;
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "out_of_range") return StatusCode::kOutOfRange;
  if (name == "failed_precondition") return StatusCode::kFailedPrecondition;
  if (name == "io_error") return StatusCode::kIOError;
  if (name == "timed_out") return StatusCode::kTimedOut;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "already_exists") return StatusCode::kAlreadyExists;
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "unavailable") return StatusCode::kUnavailable;
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

}  // namespace

JsonValue StatusToJson(const Status& status) {
  JsonValue obj = JsonValue::Object();
  obj.Set("code", JsonValue(StatusCodeName(status.code())));
  obj.Set("message", JsonValue(status.message()));
  return obj;
}

Status StatusFromJson(const JsonValue& json, Status* out) {
  if (!json.is_object()) return TypeError("status", "an object");
  std::string code = "ok";
  std::string message;
  SURF_RETURN_IF_ERROR(ReadString(json, "code", &code));
  SURF_RETURN_IF_ERROR(ReadString(json, "message", &message));
  auto parsed = StatusCodeFromName(code);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed == StatusCode::kOk ? Status::OK()
                                    : Status(*parsed, std::move(message));
  return Status::OK();
}

// ----------------------------------------------------------------- regions

JsonValue RegionToJson(const Region& region) {
  JsonValue obj = JsonValue::Object();
  obj.Set("center", DoubleArray(region.center()));
  obj.Set("half_lengths", DoubleArray(region.half_lengths()));
  std::vector<double> lo(region.dims()), hi(region.dims());
  for (size_t i = 0; i < region.dims(); ++i) {
    lo[i] = region.lo(i);
    hi[i] = region.hi(i);
  }
  obj.Set("lo", DoubleArray(lo));
  obj.Set("hi", DoubleArray(hi));
  return obj;
}

StatusOr<Region> RegionFromJson(const JsonValue& json) {
  if (!json.is_object()) return TypeError("region", "an object");
  std::vector<double> center;
  std::vector<double> half_lengths;
  SURF_RETURN_IF_ERROR(ReadDoubleArray(json, "center", &center));
  SURF_RETURN_IF_ERROR(ReadDoubleArray(json, "half_lengths", &half_lengths));
  if (center.empty() || center.size() != half_lengths.size()) {
    return Status::InvalidArgument(
        "region needs equal-length non-empty center and half_lengths");
  }
  return Region(std::move(center), std::move(half_lengths));
}

// -------------------------------------------------------------- provenance

JsonValue ProvenanceToJson(const SurrogateProvenance& provenance) {
  JsonValue obj = JsonValue::Object();
  char hex[24];
  std::snprintf(hex, sizeof(hex), "0x%016" PRIx64,
                provenance.dataset_fingerprint);
  obj.Set("dataset_fingerprint", JsonValue(std::string(hex)));
  obj.Set("training_set_size",
          JsonValue(static_cast<double>(provenance.training_set_size)));
  obj.Set("cv_rmse", JsonValue(provenance.cv_rmse));
  obj.Set("holdout_rmse", JsonValue(provenance.holdout_rmse));
  obj.Set("train_seconds", JsonValue(provenance.train_seconds));
  obj.Set("warm_starts",
          JsonValue(static_cast<double>(provenance.warm_starts)));
  obj.Set("pending_examples",
          JsonValue(static_cast<double>(provenance.pending_examples)));
  // Only emitted when set, so non-degraded payloads stay byte-identical
  // to the pre-degradation schema (absent ⇒ false on decode).
  if (provenance.degraded) {
    obj.Set("degraded", JsonValue(true));
    obj.Set("degraded_reason", JsonValue(provenance.degraded_reason));
  }
  return obj;
}

StatusOr<SurrogateProvenance> ProvenanceFromJson(const JsonValue& json) {
  if (!json.is_object()) return TypeError("provenance", "an object");
  SurrogateProvenance p;
  std::string fingerprint = "0x0000000000000000";
  SURF_RETURN_IF_ERROR(
      ReadString(json, "dataset_fingerprint", &fingerprint));
  char* end = nullptr;
  p.dataset_fingerprint = std::strtoull(fingerprint.c_str(), &end, 16);
  if (end == fingerprint.c_str() || *end != '\0') {
    return Status::InvalidArgument("invalid dataset_fingerprint '" +
                                   fingerprint + "'");
  }
  SURF_RETURN_IF_ERROR(
      ReadSize(json, "training_set_size", &p.training_set_size));
  SURF_RETURN_IF_ERROR(ReadDoubleOrNull(json, "cv_rmse", &p.cv_rmse));
  SURF_RETURN_IF_ERROR(ReadDouble(json, "holdout_rmse", &p.holdout_rmse));
  SURF_RETURN_IF_ERROR(ReadDouble(json, "train_seconds", &p.train_seconds));
  SURF_RETURN_IF_ERROR(ReadSize(json, "warm_starts", &p.warm_starts));
  SURF_RETURN_IF_ERROR(
      ReadSize(json, "pending_examples", &p.pending_examples));
  // Optional on the wire (absent in pre-degradation payloads ⇒ false).
  SURF_RETURN_IF_ERROR(ReadBool(json, "degraded", &p.degraded));
  SURF_RETURN_IF_ERROR(
      ReadString(json, "degraded_reason", &p.degraded_reason));
  return p;
}

// ------------------------------------------------------------ MineRequest

JsonValue MineRequestToJson(const MineRequest& request) {
  JsonValue obj = JsonValue::Object();
  obj.Set("dataset", JsonValue(request.dataset));
  obj.Set("statistic", StatisticToJson(request.statistic));
  obj.Set("threshold", JsonValue(request.threshold));
  obj.Set("direction", JsonValue(DirectionName(request.direction)));
  obj.Set("mode", JsonValue(ModeName(request.mode)));
  obj.Set("topk", TopKToJson(request.topk));
  obj.Set("finder", FinderToJson(request.finder));
  obj.Set("workload", WorkloadToJson(request.workload));
  obj.Set("surrogate", SurrogateOptionsToJson(request.surrogate));
  obj.Set("backend", JsonValue(BackendName(request.backend)));
  obj.Set("shards", JsonValue(static_cast<double>(request.shards)));
  obj.Set("cluster", JsonValue(request.cluster));
  obj.Set("use_kde", JsonValue(request.use_kde));
  obj.Set("validate", JsonValue(request.validate));
  obj.Set("record_evaluations", JsonValue(request.record_evaluations));
  obj.Set("trace", JsonValue(request.trace));
  return obj;
}

StatusOr<MineRequest> MineRequestFromJson(const JsonValue& json,
                                          const ColumnResolver* resolver) {
  if (!json.is_object()) {
    return Status::InvalidArgument("mine request must be a JSON object");
  }
  MineRequest request;
  SURF_RETURN_IF_ERROR(ReadString(json, "dataset", &request.dataset));
  if (request.dataset.empty()) {
    return Status::InvalidArgument("field 'dataset' is required");
  }
  if (const JsonValue* stat = json.Find("statistic")) {
    SURF_RETURN_IF_ERROR(StatisticFromJson(*stat, request.dataset, resolver,
                                           &request.statistic));
  }
  if (request.statistic.region_cols.empty()) {
    return Status::InvalidArgument(
        "statistic.region_cols must name at least one column");
  }
  SURF_RETURN_IF_ERROR(ReadDouble(json, "threshold", &request.threshold));
  std::string direction = DirectionName(request.direction);
  SURF_RETURN_IF_ERROR(ReadString(json, "direction", &direction));
  auto parsed_direction = DirectionFromName(direction);
  if (!parsed_direction.ok()) return parsed_direction.status();
  request.direction = *parsed_direction;

  std::string mode = ModeName(request.mode);
  SURF_RETURN_IF_ERROR(ReadString(json, "mode", &mode));
  auto parsed_mode = ModeFromName(mode);
  if (!parsed_mode.ok()) return parsed_mode.status();
  request.mode = *parsed_mode;

  if (const JsonValue* topk = json.Find("topk")) {
    SURF_RETURN_IF_ERROR(TopKFromJson(*topk, &request.topk));
  }
  if (const JsonValue* finder = json.Find("finder")) {
    SURF_RETURN_IF_ERROR(FinderFromJson(*finder, &request.finder));
  }
  if (const JsonValue* workload = json.Find("workload")) {
    SURF_RETURN_IF_ERROR(WorkloadFromJson(*workload, &request.workload));
  }
  if (const JsonValue* surrogate = json.Find("surrogate")) {
    SURF_RETURN_IF_ERROR(
        SurrogateOptionsFromJson(*surrogate, &request.surrogate));
  }
  std::string backend = BackendName(request.backend);
  SURF_RETURN_IF_ERROR(ReadString(json, "backend", &backend));
  auto parsed_backend = BackendFromName(backend);
  if (!parsed_backend.ok()) return parsed_backend.status();
  request.backend = *parsed_backend;

  SURF_RETURN_IF_ERROR(ReadSize(json, "shards", &request.shards));
  SURF_RETURN_IF_ERROR(ReadBool(json, "cluster", &request.cluster));
  SURF_RETURN_IF_ERROR(ReadBool(json, "use_kde", &request.use_kde));
  SURF_RETURN_IF_ERROR(ReadBool(json, "validate", &request.validate));
  SURF_RETURN_IF_ERROR(
      ReadBool(json, "record_evaluations", &request.record_evaluations));
  SURF_RETURN_IF_ERROR(ReadBool(json, "trace", &request.trace));
  return request;
}

// ----------------------------------------------------------- MineResponse

namespace {

/// Shared response envelope: the v1 and v2 encoders differ only in the
/// version stamp the caller adds on top. `trace` is nullable — the
/// `trace` key is emitted only for traced requests, so untraced
/// responses stay byte-identical to the pre-tracing schema.
JsonValue EncodeResponseEnvelope(const Status& status, bool cache_hit,
                                 double total_seconds,
                                 const SurrogateProvenance& provenance,
                                 const FindResult& result,
                                 const TopKResult& topk_result,
                                 MineRequest::Mode mode,
                                 const TraceContext* trace);

}  // namespace

JsonValue MineResponseToJson(const MineResponse& response,
                             MineRequest::Mode mode) {
  return EncodeResponseEnvelope(response.status, response.cache_hit,
                                response.total_seconds, response.provenance,
                                response.result, response.topk, mode,
                                response.trace.get());
}

namespace {

JsonValue EncodeResponseEnvelope(const Status& status, bool cache_hit,
                                 double total_seconds,
                                 const SurrogateProvenance& provenance,
                                 const FindResult& result,
                                 const TopKResult& topk_result,
                                 MineRequest::Mode mode,
                                 const TraceContext* trace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("status", StatusToJson(status));
  obj.Set("cache_hit", JsonValue(cache_hit));
  obj.Set("total_seconds", JsonValue(total_seconds));
  obj.Set("provenance", ProvenanceToJson(provenance));
  obj.Set("mode", JsonValue(ModeName(mode)));
  if (mode == MineRequest::Mode::kTopK) {
    JsonValue topk = JsonValue::Object();
    JsonValue regions = JsonValue::Array();
    for (const ScoredRegion& r : topk_result.regions) {
      JsonValue scored = JsonValue::Object();
      scored.Set("region", RegionToJson(r.region));
      scored.Set("fitness", JsonValue(r.fitness));
      scored.Set("statistic", JsonValue(r.statistic));
      regions.Append(std::move(scored));
    }
    topk.Set("regions", std::move(regions));
    topk.Set("iterations",
             JsonValue(static_cast<double>(topk_result.iterations)));
    topk.Set("objective_evaluations",
             JsonValue(
                 static_cast<double>(topk_result.objective_evaluations)));
    topk.Set("cancelled", JsonValue(topk_result.cancelled));
    obj.Set("topk", std::move(topk));
  } else {
    JsonValue encoded = JsonValue::Object();
    JsonValue regions = JsonValue::Array();
    for (const FoundRegion& r : result.regions) {
      regions.Append(FoundRegionToJson(r));
    }
    encoded.Set("regions", std::move(regions));
    encoded.Set("report", ReportToJson(result.report));
    obj.Set("result", std::move(encoded));
  }
  if (trace != nullptr) obj.Set("trace", TraceSummaryToJson(*trace));
  return obj;
}

}  // namespace

StatusOr<MineResponse> MineResponseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("mine response must be a JSON object");
  }
  MineResponse response;
  if (const JsonValue* status = json.Find("status")) {
    SURF_RETURN_IF_ERROR(StatusFromJson(*status, &response.status));
  }
  SURF_RETURN_IF_ERROR(ReadBool(json, "cache_hit", &response.cache_hit));
  SURF_RETURN_IF_ERROR(
      ReadDouble(json, "total_seconds", &response.total_seconds));
  if (const JsonValue* provenance = json.Find("provenance")) {
    auto parsed = ProvenanceFromJson(*provenance);
    if (!parsed.ok()) return parsed.status();
    response.provenance = *parsed;
  }
  if (const JsonValue* result = json.Find("result")) {
    if (!result->is_object()) return TypeError("result", "an object");
    if (const JsonValue* regions = result->Find("regions")) {
      if (!regions->is_array()) return TypeError("regions", "an array");
      for (const JsonValue& r : regions->array()) {
        auto parsed = FoundRegionFromJson(r);
        if (!parsed.ok()) return parsed.status();
        response.result.regions.push_back(std::move(parsed).value());
      }
    }
    if (const JsonValue* report = result->Find("report")) {
      SURF_RETURN_IF_ERROR(ReportFromJson(*report, &response.result.report));
    }
  }
  if (const JsonValue* topk = json.Find("topk")) {
    if (!topk->is_object()) return TypeError("topk", "an object");
    if (const JsonValue* regions = topk->Find("regions")) {
      if (!regions->is_array()) return TypeError("regions", "an array");
      for (const JsonValue& r : regions->array()) {
        if (!r.is_object()) return TypeError("regions[]", "an object");
        ScoredRegion scored;
        const JsonValue* region = r.Find("region");
        if (region == nullptr) return TypeError("region", "present");
        auto parsed = RegionFromJson(*region);
        if (!parsed.ok()) return parsed.status();
        scored.region = std::move(parsed).value();
        SURF_RETURN_IF_ERROR(ReadDouble(r, "fitness", &scored.fitness));
        SURF_RETURN_IF_ERROR(ReadDouble(r, "statistic", &scored.statistic));
        response.topk.regions.push_back(std::move(scored));
      }
    }
    SURF_RETURN_IF_ERROR(
        ReadSize(*topk, "iterations", &response.topk.iterations));
    uint64_t evals = 0;
    SURF_RETURN_IF_ERROR(ReadU64(*topk, "objective_evaluations", &evals));
    response.topk.objective_evaluations = evals;
    SURF_RETURN_IF_ERROR(
        ReadBool(*topk, "cancelled", &response.topk.cancelled));
  }
  return response;
}

// ------------------------------------------------------------- v2 schema

namespace {

const char* QueryKindName(v2::QueryKind kind) {
  return kind == v2::QueryKind::kTopK ? "topk" : "threshold";
}

StatusOr<v2::QueryKind> QueryKindFromName(const std::string& name) {
  if (name == "threshold") return v2::QueryKind::kThreshold;
  if (name == "topk") return v2::QueryKind::kTopK;
  return Status::InvalidArgument("unknown query kind '" + name +
                                 "' (threshold|topk)");
}

}  // namespace

JsonValue MineRequestV2ToJson(const v2::MineRequest& request) {
  JsonValue obj = JsonValue::Object();
  obj.Set("api_version",
          JsonValue(static_cast<double>(request.api_version)));
  obj.Set("dataset", JsonValue(request.dataset));

  JsonValue query = JsonValue::Object();
  query.Set("statistic", StatisticToJson(request.query.statistic));
  query.Set("kind", JsonValue(QueryKindName(request.query.kind)));
  query.Set("threshold", JsonValue(request.query.threshold));
  query.Set("direction", JsonValue(DirectionName(request.query.direction)));
  obj.Set("query", std::move(query));

  JsonValue search = JsonValue::Object();
  search.Set("finder", FinderToJson(request.search.finder));
  search.Set("topk", TopKToJson(request.search.topk));
  obj.Set("search", std::move(search));

  JsonValue training = JsonValue::Object();
  training.Set("workload", WorkloadToJson(request.training.workload));
  training.Set("surrogate",
               SurrogateOptionsToJson(request.training.surrogate));
  obj.Set("training", std::move(training));

  JsonValue execution = JsonValue::Object();
  execution.Set("backend", JsonValue(BackendName(request.execution.backend)));
  execution.Set("shards",
                JsonValue(static_cast<double>(request.execution.shards)));
  execution.Set("cluster", JsonValue(request.execution.cluster));
  execution.Set("use_kde", JsonValue(request.execution.use_kde));
  execution.Set("validate", JsonValue(request.execution.validate));
  execution.Set("record_evaluations",
                JsonValue(request.execution.record_evaluations));
  execution.Set("deadline_seconds",
                JsonValue(request.execution.deadline_seconds));
  execution.Set("trace", JsonValue(request.execution.trace));
  obj.Set("execution", std::move(execution));
  return obj;
}

StatusOr<v2::MineRequest> MineRequestV2FromJson(
    const JsonValue& json, const ColumnResolver* resolver) {
  if (!json.is_object()) {
    return Status::InvalidArgument("mine request must be a JSON object");
  }
  uint64_t api_version = 1;  // absent = the v1 flat schema
  SURF_RETURN_IF_ERROR(ReadU64(json, "api_version", &api_version));

  if (api_version == 1) {
    auto legacy = MineRequestFromJson(json, resolver);
    if (!legacy.ok()) return legacy.status();
    // Both schema versions answer 400 at decode time through the same
    // validation path (e.g. record_evaluations without validate).
    v2::MineRequest lifted = v2::FromLegacy(*legacy);
    SURF_RETURN_IF_ERROR(v2::ValidateAndNormalize(&lifted));
    return lifted;
  }
  if (api_version != 2) {
    return Status::InvalidArgument(
        "unsupported api_version " + std::to_string(api_version) +
        " (this build accepts v1..v2; see GET /v1/version)");
  }

  v2::MineRequest request;
  request.api_version = 2;
  SURF_RETURN_IF_ERROR(ReadString(json, "dataset", &request.dataset));
  if (request.dataset.empty()) {
    return Status::InvalidArgument("field 'dataset' is required");
  }

  if (const JsonValue* query = json.Find("query")) {
    if (!query->is_object()) return TypeError("query", "an object");
    if (const JsonValue* stat = query->Find("statistic")) {
      SURF_RETURN_IF_ERROR(StatisticFromJson(*stat, request.dataset, resolver,
                                             &request.query.statistic));
    }
    std::string kind = QueryKindName(request.query.kind);
    SURF_RETURN_IF_ERROR(ReadString(*query, "kind", &kind));
    auto parsed_kind = QueryKindFromName(kind);
    if (!parsed_kind.ok()) return parsed_kind.status();
    request.query.kind = *parsed_kind;
    SURF_RETURN_IF_ERROR(
        ReadDouble(*query, "threshold", &request.query.threshold));
    std::string direction = DirectionName(request.query.direction);
    SURF_RETURN_IF_ERROR(ReadString(*query, "direction", &direction));
    auto parsed_direction = DirectionFromName(direction);
    if (!parsed_direction.ok()) return parsed_direction.status();
    request.query.direction = *parsed_direction;
  }

  if (const JsonValue* search = json.Find("search")) {
    if (!search->is_object()) return TypeError("search", "an object");
    if (const JsonValue* finder = search->Find("finder")) {
      SURF_RETURN_IF_ERROR(FinderFromJson(*finder, &request.search.finder));
    }
    if (const JsonValue* topk = search->Find("topk")) {
      SURF_RETURN_IF_ERROR(TopKFromJson(*topk, &request.search.topk));
    }
  }

  if (const JsonValue* training = json.Find("training")) {
    if (!training->is_object()) return TypeError("training", "an object");
    if (const JsonValue* workload = training->Find("workload")) {
      SURF_RETURN_IF_ERROR(
          WorkloadFromJson(*workload, &request.training.workload));
    }
    if (const JsonValue* surrogate = training->Find("surrogate")) {
      SURF_RETURN_IF_ERROR(
          SurrogateOptionsFromJson(*surrogate, &request.training.surrogate));
    }
  }

  if (const JsonValue* execution = json.Find("execution")) {
    if (!execution->is_object()) return TypeError("execution", "an object");
    std::string backend = BackendName(request.execution.backend);
    SURF_RETURN_IF_ERROR(ReadString(*execution, "backend", &backend));
    auto parsed_backend = BackendFromName(backend);
    if (!parsed_backend.ok()) return parsed_backend.status();
    request.execution.backend = *parsed_backend;
    SURF_RETURN_IF_ERROR(
        ReadSize(*execution, "shards", &request.execution.shards));
    SURF_RETURN_IF_ERROR(
        ReadBool(*execution, "cluster", &request.execution.cluster));
    SURF_RETURN_IF_ERROR(
        ReadBool(*execution, "use_kde", &request.execution.use_kde));
    SURF_RETURN_IF_ERROR(
        ReadBool(*execution, "validate", &request.execution.validate));
    SURF_RETURN_IF_ERROR(ReadBool(*execution, "record_evaluations",
                                  &request.execution.record_evaluations));
    SURF_RETURN_IF_ERROR(ReadDouble(*execution, "deadline_seconds",
                                    &request.execution.deadline_seconds));
    SURF_RETURN_IF_ERROR(
        ReadBool(*execution, "trace", &request.execution.trace));
  }

  // The shared validation path runs at decode time too, so malformed
  // documents answer 400 before a job is ever created.
  SURF_RETURN_IF_ERROR(v2::ValidateAndNormalize(&request));
  return request;
}

JsonValue MineResponseV2ToJson(const v2::MineResponse& response,
                               v2::QueryKind kind) {
  JsonValue obj = EncodeResponseEnvelope(
      response.status, response.cache_hit, response.total_seconds,
      response.provenance, response.result, response.topk,
      kind == v2::QueryKind::kTopK ? MineRequest::Mode::kTopK
                                   : MineRequest::Mode::kThreshold,
      response.trace.get());
  obj.Set("api_version",
          JsonValue(static_cast<double>(response.api_version)));
  return obj;
}

// ------------------------------------------------- distributed evaluation

JsonValue ShardEvaluateRequestToJson(
    const dist::ShardEvaluateRequest& request) {
  JsonValue obj = JsonValue::Object();
  obj.Set("dataset", JsonValue(request.dataset));
  if (request.has_fingerprint) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "0x%016" PRIx64, request.fingerprint);
    obj.Set("fingerprint", JsonValue(std::string(hex)));
  }
  obj.Set("statistic", StatisticToJson(request.statistic));
  obj.Set("num_shards", JsonValue(static_cast<double>(request.num_shards)));
  obj.Set("order_by", JsonValue(static_cast<double>(request.order_by)));
  obj.Set("columns", SizeArray(request.columns));
  obj.Set("shards", SizeArray(request.shards));
  JsonValue queries = JsonValue::Array();
  for (const Region& q : request.queries) queries.Append(RegionToJson(q));
  obj.Set("queries", std::move(queries));
  obj.Set("deadline_seconds", JsonValue(request.deadline_seconds));
  return obj;
}

StatusOr<dist::ShardEvaluateRequest> ShardEvaluateRequestFromJson(
    const JsonValue& json, const ColumnResolver* resolver) {
  if (!json.is_object()) {
    return Status::InvalidArgument(
        "shard-evaluate request must be a JSON object");
  }
  dist::ShardEvaluateRequest request;
  SURF_RETURN_IF_ERROR(ReadString(json, "dataset", &request.dataset));
  if (request.dataset.empty()) {
    return Status::InvalidArgument("field 'dataset' is required");
  }
  if (const JsonValue* fp = json.Find("fingerprint")) {
    if (!fp->is_string()) return TypeError("fingerprint", "a hex string");
    const std::string text = fp->string_value();
    char* end = nullptr;
    request.fingerprint = std::strtoull(text.c_str(), &end, 16);
    if (end == text.c_str() || *end != '\0') {
      return Status::InvalidArgument("invalid fingerprint '" + text + "'");
    }
    request.has_fingerprint = true;
  }
  if (const JsonValue* stat = json.Find("statistic")) {
    SURF_RETURN_IF_ERROR(StatisticFromJson(*stat, request.dataset, resolver,
                                           &request.statistic));
  }
  if (request.statistic.region_cols.empty()) {
    return Status::InvalidArgument(
        "statistic.region_cols must name at least one column");
  }
  SURF_RETURN_IF_ERROR(ReadSize(json, "num_shards", &request.num_shards));
  if (request.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  double order_by = static_cast<double>(request.order_by);
  SURF_RETURN_IF_ERROR(ReadDouble(json, "order_by", &order_by));
  if (order_by != std::floor(order_by) || order_by < -1.0 ||
      order_by > 2147483647.0) {
    return TypeError("order_by", "a column index or -1");
  }
  request.order_by = static_cast<int>(order_by);
  SURF_RETURN_IF_ERROR(ReadSizeArray(json, "columns", &request.columns));
  SURF_RETURN_IF_ERROR(ReadSizeArray(json, "shards", &request.shards));
  if (request.shards.empty()) {
    return Status::InvalidArgument("field 'shards' must name >= 1 shard");
  }
  // Ascending order is part of the contract: the coordinator's gather
  // fold relies on per-group shard order matching the in-process walk.
  for (size_t i = 0; i < request.shards.size(); ++i) {
    if (request.shards[i] >= request.num_shards) {
      return Status::InvalidArgument("shard index out of range");
    }
    if (i > 0 && request.shards[i] <= request.shards[i - 1]) {
      return Status::InvalidArgument(
          "shard indices must be strictly ascending");
    }
  }
  if (const JsonValue* queries = json.Find("queries")) {
    if (!queries->is_array()) return TypeError("queries", "an array");
    request.queries.reserve(queries->array().size());
    for (const JsonValue& q : queries->array()) {
      auto region = RegionFromJson(q);
      if (!region.ok()) return region.status();
      request.queries.push_back(std::move(region).value());
    }
  }
  SURF_RETURN_IF_ERROR(
      ReadDouble(json, "deadline_seconds", &request.deadline_seconds));
  if (std::isnan(request.deadline_seconds) ||
      request.deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "deadline_seconds must be >= 0 (0 = no deadline)");
  }
  return request;
}

JsonValue ShardEvaluateResponseToJson(
    const dist::ShardEvaluateResponse& response) {
  JsonValue obj = JsonValue::Object();
  JsonValue partials = JsonValue::Array();
  for (const auto& per_query : response.partials) {
    JsonValue row = JsonValue::Array();
    for (const StatisticAccumulator& acc : per_query) {
      row.Append(acc.ToJson());
    }
    partials.Append(std::move(row));
  }
  obj.Set("partials", std::move(partials));
  return obj;
}

StatusOr<dist::ShardEvaluateResponse> ShardEvaluateResponseFromJson(
    const JsonValue& json, const Statistic& stat) {
  if (!json.is_object()) {
    return Status::InvalidArgument(
        "shard-evaluate response must be a JSON object");
  }
  const JsonValue* partials = json.Find("partials");
  if (partials == nullptr || !partials->is_array()) {
    return TypeError("partials", "an array of arrays");
  }
  dist::ShardEvaluateResponse response;
  response.partials.reserve(partials->array().size());
  for (const JsonValue& row : partials->array()) {
    if (!row.is_array()) return TypeError("partials[]", "an array");
    std::vector<StatisticAccumulator> per_query;
    per_query.reserve(row.array().size());
    for (const JsonValue& acc : row.array()) {
      auto parsed = StatisticAccumulator::FromJson(acc, stat);
      if (!parsed.ok()) return parsed.status();
      per_query.push_back(std::move(parsed).value());
    }
    response.partials.push_back(std::move(per_query));
  }
  return response;
}

// ------------------------------------------------------------------ traces

namespace {

JsonValue SpanAttrsToJson(const TraceContext::Span& span) {
  JsonValue attrs = JsonValue::Object();
  for (const auto& [key, value] : span.attrs) {
    attrs.Set(key, JsonValue(value));
  }
  return attrs;
}

}  // namespace

JsonValue TraceSummaryToJson(const TraceContext& trace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue(trace.id()));
  obj.Set("dropped_spans",
          JsonValue(static_cast<double>(trace.dropped())));

  const std::array<double, kNumTraceStages> stages = trace.StageSeconds();
  JsonValue stage_seconds = JsonValue::Object();
  for (int s = 1; s < kNumTraceStages; ++s) {
    stage_seconds.Set(TraceStageName(static_cast<TraceStage>(s)),
                      JsonValue(stages[s]));
  }
  obj.Set("stage_seconds", std::move(stage_seconds));

  JsonValue spans = JsonValue::Array();
  for (const TraceContext::Span& span : trace.Snapshot()) {
    JsonValue encoded = JsonValue::Object();
    encoded.Set("name", JsonValue(span.name));
    if (span.stage != TraceStage::kNone) {
      encoded.Set("stage", JsonValue(TraceStageName(span.stage)));
    }
    encoded.Set("parent", JsonValue(static_cast<double>(span.parent)));
    encoded.Set("start_us", JsonValue(span.start_ns * 1e-3));
    encoded.Set("dur_us", JsonValue(span.dur_ns * 1e-3));
    encoded.Set("tid", JsonValue(static_cast<double>(span.tid)));
    if (!span.attrs.empty()) encoded.Set("attrs", SpanAttrsToJson(span));
    spans.Append(std::move(encoded));
  }
  obj.Set("spans", std::move(spans));
  return obj;
}

JsonValue TraceToChromeJson(const TraceContext& trace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("displayTimeUnit", JsonValue("ms"));

  JsonValue other = JsonValue::Object();
  other.Set("trace_id", JsonValue(trace.id()));
  other.Set("dropped_spans",
            JsonValue(static_cast<double>(trace.dropped())));
  obj.Set("otherData", std::move(other));

  // One complete-duration ("ph": "X") event per span; timestamps are
  // microseconds, the unit the trace-event format mandates. Open spans
  // (dur 0) still emit — Perfetto renders them as instant-like slivers.
  JsonValue events = JsonValue::Array();
  for (const TraceContext::Span& span : trace.Snapshot()) {
    JsonValue event = JsonValue::Object();
    event.Set("name", JsonValue(span.name));
    event.Set("cat", JsonValue(span.stage == TraceStage::kNone
                                   ? "pipeline"
                                   : TraceStageName(span.stage)));
    event.Set("ph", JsonValue("X"));
    event.Set("ts", JsonValue(span.start_ns * 1e-3));
    event.Set("dur", JsonValue(span.dur_ns * 1e-3));
    event.Set("pid", JsonValue(1.0));
    event.Set("tid", JsonValue(static_cast<double>(span.tid)));
    event.Set("args", SpanAttrsToJson(span));
    events.Append(std::move(event));
  }
  obj.Set("traceEvents", std::move(events));
  return obj;
}

}  // namespace surf
