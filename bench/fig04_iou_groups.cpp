// Figure 4: average IoU ± standard deviation grouped (left) by the number
// of GT regions k ∈ {1, 3} and (right) by statistic type, for all four
// methods — the aggregate view of the Fig. 3 sweep.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/summary.h"
#include "util/table_printer.h"

using namespace surf;

namespace {

struct GroupKey {
  std::string group;
  std::string method;
  bool operator<(const GroupKey& o) const {
    return group != o.group ? group < o.group : method < o.method;
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t max_dim = static_cast<size_t>(
      flags.GetInt("max-dim", full ? 5 : 3));
  const size_t iterations = full ? 200 : 100;

  std::map<GroupKey, RunningStats> by_k, by_type;

  for (SyntheticStatistic stat :
       {SyntheticStatistic::kAggregate, SyntheticStatistic::kDensity}) {
    for (size_t k : {1u, 3u}) {
      for (size_t d = 1; d <= max_dim; ++d) {
        SyntheticSpec spec;
        spec.dims = d;
        spec.num_gt_regions = k;
        spec.statistic = stat;
        spec.seed = 142 + d + 10 * k +
                    (stat == SyntheticStatistic::kDensity ? 100 : 0);
        const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
        ScanEvaluator evaluator(&ds.data, bench::StatisticFor(ds));
        const size_t queries = (full ? 4000 : 1500) * d + 1500;

        const std::map<std::string, std::vector<Region>> found = {
            {"SuRF", bench::RunSurf(ds, queries, 0, iterations).regions},
            {"Naive",
             bench::RunNaive(ds, evaluator, 6, 6, full ? 60.0 : 4.0)
                 .regions},
            {"PRIM", bench::RunPrim(ds).regions},
            {"f+GlowWorm",
             bench::RunFGso(ds, evaluator, 0, iterations).regions},
        };
        const std::string k_group = "k=" + std::to_string(k);
        const std::string type_group =
            stat == SyntheticStatistic::kAggregate ? "Aggregate"
                                                   : "Density";
        for (const auto& [method, regions] : found) {
          const double iou = bench::AverageIoU(regions, ds.gt_regions);
          by_k[{k_group, method}].Add(iou);
          by_type[{type_group, method}].Add(iou);
        }
      }
    }
  }

  auto print_group = [](const char* title,
                        const std::map<GroupKey, RunningStats>& groups) {
    std::printf("%s\n", title);
    TablePrinter table({"group", "method", "mean IoU", "std"});
    for (const auto& [key, stats] : groups) {
      table.AddRow({key.group, key.method, FormatDouble(stats.mean(), 3),
                    FormatDouble(stats.stddev(), 3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  };

  std::printf("Figure 4 — grouped IoU (%s configuration)\n\n",
              full ? "paper" : "quick");
  print_group("(left) by number of GT regions:", by_k);
  print_group("(right) by statistic type:", by_type);
  std::printf(
      "Expected shape (paper): all methods dip slightly from k=1 to k=3; "
      "PRIM has the largest spread and collapses on Density.\n");
  return 0;
}
