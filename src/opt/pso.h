#ifndef SURF_OPT_PSO_H_
#define SURF_OPT_PSO_H_

#include <cstdint>

#include "opt/objective.h"
#include "opt/solution_space.h"
#include "util/cancel.h"

namespace surf {

/// \brief Canonical global-best Particle Swarm Optimization parameters.
struct PsoParams {
  size_t num_particles = 60;
  size_t max_iterations = 100;
  /// Inertia weight w.
  double inertia = 0.72;
  /// Cognitive acceleration c1.
  double cognitive = 1.49;
  /// Social acceleration c2.
  double social = 1.49;
  /// Velocity clamp as a fraction of the flat diagonal.
  double max_velocity_frac = 0.1;
  uint64_t seed = 17;
};

/// \brief Result of a PSO run: the single global best.
struct PsoResult {
  Region best;
  double best_fitness = 0.0;
  bool found_valid = false;
  size_t iterations_run = 0;
  uint64_t objective_evaluations = 0;
  /// True when a CancelToken stopped the swarm early; `best` still holds
  /// the best-so-far when `found_valid`.
  bool cancelled = false;
};

/// \brief Global-best PSO over the region solution space.
///
/// The paper motivates GSO as the multimodal member of the PSO family
/// (§III-A): PSO collapses to one optimum. This implementation exists as
/// the single-modal reference for the ablation benches — it demonstrates
/// why a multimodal optimizer is required when k > 1 ground-truth regions
/// exist.
class ParticleSwarmOptimizer {
 public:
  explicit ParticleSwarmOptimizer(PsoParams params) : params_(params) {}

  /// `cancel` is polled once per iteration; a fired token stops the swarm
  /// within one iteration with `cancelled` set and best-so-far preserved.
  PsoResult Optimize(const FitnessFn& fitness, const RegionSolutionSpace& space,
                     CancelToken cancel = {}) const;

  /// Batched variant: one `fitness` call scores the whole swarm per
  /// iteration. Identical trajectory to the scalar overload.
  PsoResult Optimize(const BatchFitnessFn& fitness,
                     const RegionSolutionSpace& space,
                     CancelToken cancel = {}) const;

  const PsoParams& params() const { return params_; }

 private:
  PsoParams params_;
};

}  // namespace surf

#endif  // SURF_OPT_PSO_H_
